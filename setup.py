"""Legacy setup shim.

The offline evaluation environment lacks the ``wheel`` package, so PEP 517
editable installs are unavailable; this file lets ``pip install -e .`` fall
back to the classic ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Energy-Efficient Hybrid Stochastic-Binary Neural "
        "Networks for Near-Sensor Computing' (Lee et al., DATE 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
