#!/usr/bin/env python3
"""A tour of the stochastic-computing substrate, from bit-streams to gates.

Goes one level deeper than the quickstart: correlation metrics, the effect of
auto-correlated (sensor-style) streams on different adders, the packed-word
simulation backend, the exhaustive Table 1 / Table 2 sweeps, the
gate-level netlists behind the hardware numbers (cell counts, area, simulated
switching activity), and the static analyzer that proves those netlists
well-formed (``repro.netlist.lint`` / ``python -m repro lint``).

Run with:  python examples/sc_primitives_tour.py
"""

import time

import numpy as np

from repro.bitstream import Bitstream, autocorrelation, stochastic_cross_correlation
from repro.bitstream.packed import PackedBitstream
from repro.eval import format_table1, format_table2, run_table1, run_table2
from repro.faults import FaultSpec, flip_binary_words, inject_stream
from repro.netlist import (
    LintError,
    build_binary_mac,
    build_sc_dot_product,
    build_sng,
    build_tff_adder,
    estimate_area_mm2,
    estimate_power,
    lint,
    simulate,
    simulate_batch,
)
from repro.rng import MAXIMAL_TAPS, ComparatorSNG, LFSRSource, VanDerCorputSource, ramp_compare_stream
from repro.sc import (
    MuxAdder,
    StochasticConv2D,
    StochasticDotProductEngine,
    TffAdder,
    stochastic_to_binary,
)


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("Correlation: why SNG choice matters")
    lfsr_a = ComparatorSNG(LFSRSource(8, seed=1)).generate(0.5, 256)
    lfsr_b = ComparatorSNG(LFSRSource(8, seed=77)).generate(0.5, 256)
    lowdisc = ComparatorSNG(VanDerCorputSource(8)).generate(0.5, 256)
    ramp = Bitstream(ramp_compare_stream(0.5, 256))
    print(f"SCC(two LFSR streams)          = {stochastic_cross_correlation(lfsr_a, lfsr_b):+.3f}")
    print(f"SCC(LFSR, low-discrepancy)     = {stochastic_cross_correlation(lfsr_a, lowdisc):+.3f}")
    print(f"lag-1 autocorrelation, LFSR    = {autocorrelation(lfsr_a):+.3f}")
    print(f"lag-1 autocorrelation, ramp    = {autocorrelation(ramp):+.3f}   "
          "(sensor streams are heavily auto-correlated)")

    section("Auto-correlated inputs break nothing for the TFF adder")
    x = Bitstream(ramp_compare_stream(0.7, 128))
    y = Bitstream(ramp_compare_stream(0.2, 128))
    tff = TffAdder()(x, y)
    mux = MuxAdder(seed=3)(x, y)
    print("expected (0.7 + 0.2)/2 = 0.450")
    print(f"TFF adder on ramp streams: {stochastic_to_binary(tff):.4f}")
    print(f"MUX adder on ramp streams: {stochastic_to_binary(mux):.4f}")

    section("Packed words: 64 clock cycles per machine instruction")
    stream = Bitstream.from_random(0.5, 4096, rng=0)
    packed = stream.pack()
    assert packed.unpack() == stream  # the conversion is lossless
    print(f"unpacked storage: {stream.bits.nbytes} bytes;  "
          f"packed: {packed.words.nbytes} bytes "
          f"({stream.bits.nbytes // packed.words.nbytes}x smaller)")
    rng = np.random.default_rng(1)
    x = rng.random((16, 25))
    w = rng.uniform(-1, 1, 25)
    counts = {}
    for backend in ("unpacked", "packed"):
        engine = StochasticDotProductEngine(precision=10, backend=backend)
        start = time.perf_counter()
        result = engine.dot(x, w)
        elapsed = time.perf_counter() - start
        counts[backend] = result.positive_count
        print(f"{backend:>8s} dot-product engine (N=1024): {elapsed * 1e3:6.1f} ms, "
              f"first count {int(result.positive_count[0])}")
    assert np.array_equal(counts["packed"], counts["unpacked"])
    print("identical counter values, one backend ~an order of magnitude faster")

    section("Exhaustive accuracy sweeps (Tables 1 and 2, 6-bit for speed)")
    print(format_table1(run_table1(precisions=(6, 4))))
    print()
    print(format_table2(run_table2(precisions=(6, 4))))

    section("Gate-level view: the netlists behind the Table 3 hardware numbers")
    adder = build_tff_adder()
    print(f"TFF adder netlist: {adder.cell_counts()}")
    engine = build_sc_dot_product(taps=25, counter_bits=9, adder="tff")
    mac = build_binary_mac(bits=8, accumulator_bits=21)
    print(f"stochastic dot-product engine: {len(engine.instances)} cells, "
          f"{estimate_area_mm2(engine) * 1e6:.0f} um^2")
    print(f"binary 8-bit MAC unit:         {len(mac.instances)} cells, "
          f"{estimate_area_mm2(mac) * 1e6:.0f} um^2")

    rng = np.random.default_rng(0)
    stimulus = {"x": rng.integers(0, 2, 64), "y": rng.integers(0, 2, 64)}
    result = simulate(adder, stimulus)
    report = estimate_power(adder, frequency_mhz=500.0, simulation=result)
    print(f"TFF adder simulated for 64 cycles: average switching activity "
          f"{result.average_activity():.2f}, power {report.total_mw * 1e3:.1f} uW at 500 MHz")

    section("Packed netlist simulation: whole waveforms, 64 cycles per word")
    cycles = 512
    stimulus = {net: rng.integers(0, 2, cycles) for net in engine.primary_inputs}
    timings = {}
    for backend in ("unpacked", "packed"):
        start = time.perf_counter()
        activity = simulate(engine, stimulus, backend=backend)
        timings[backend] = time.perf_counter() - start
        print(f"{backend:>8s} simulation of the engine netlist "
              f"({len(engine.instances)} cells x {cycles} cycles): "
              f"{timings[backend] * 1e3:6.1f} ms, "
              f"{activity.total_toggles()} toggles")
    print(f"identical toggle counts, packed "
          f"{timings['unpacked'] / timings['packed']:.0f}x faster "
          "(same word kernels now also drive the bipolar XNOR engine)")

    section("Feedback cores: LFSR netlists stay word-parallel")
    sng = build_sng(8, MAXIMAL_TAPS[8])
    cycles = 2048
    stimulus = {net: rng.integers(0, 2, cycles) for net in sng.primary_inputs}
    timings = {}
    for backend in ("unpacked", "packed"):
        start = time.perf_counter()
        activity = simulate(sng, stimulus, backend=backend)
        timings[backend] = time.perf_counter() - start
    print(f"SNG netlist (8-bit LFSR + comparator, {len(sng.instances)} cells, "
          f"{cycles} cycles):")
    print(f"  cycle loop {timings['unpacked'] * 1e3:6.1f} ms, "
          f"packed {timings['packed'] * 1e3:6.1f} ms "
          f"({timings['unpacked'] / timings['packed']:.0f}x)")
    print("  the LFSR loop is iterated only over its 255-state period and the")
    print("  waveform wrapped out to the full run; the comparator stays packed")

    section("Filter-parallel convolution: all kernels in one vectorized pass")
    # The hybrid first layer applies 32 kernels to every image window.  The
    # engine's prepare_weights() builds one weight bank with a leading filter
    # axis (plus fused positive/negative trees) so a single reduction covers
    # every kernel -- bit-identical to looping dot_prepared per kernel, and
    # for the TFF adder the tree collapses to exact count arithmetic.
    conv_engine = StochasticDotProductEngine(precision=8, backend="packed")
    windows = rng.random((256, 25))          # one 16x16 image's worth of patches
    conv_kernels = rng.uniform(-1, 1, (32, 25))
    prepared = conv_engine.prepare_inputs(windows)
    start = time.perf_counter()
    loop_counts = [
        conv_engine.dot_prepared(prepared, k).positive_count for k in conv_kernels
    ]
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    bank_result = conv_engine.dot_filters_prepared(prepared, conv_kernels)
    bank_s = time.perf_counter() - start
    assert np.array_equal(bank_result.positive_count, np.stack(loop_counts, axis=-1))
    print(f"32 kernels x 256 windows at N=256: per-filter loop {loop_s * 1e3:6.1f} ms, "
          f"filter-parallel {bank_s * 1e3:6.1f} ms ({loop_s / bank_s:.0f}x)")

    section("Count-domain mode: adder trees without adder-tree streams")
    # mode="counts" (the default via "auto") never materializes a tree node's
    # bit-stream: all-TFF trees reduce integer counts with floor/ceil((cx+cy)/2)
    # per level, and all-MUX trees fold their cached select streams into one
    # disjoint ownership mask per leaf, so the root count is a single masked
    # popcount.  Both shortcuts are exact -- identical counters, not close ones
    # -- so the mode (engine arg, REPRO_MODE, or --mode on the CLI) trades
    # speed and memory only.  OR trees are position-dependent and always run
    # as streams ("counts" raises for them).
    for adder in ("mux", "tff"):
        stream_eng = StochasticDotProductEngine(
            precision=8, adder=adder, backend="packed", mode="streams")
        count_eng = StochasticDotProductEngine(
            precision=8, adder=adder, backend="packed", mode="counts")
        start = time.perf_counter()
        via_streams = stream_eng.dot_filters(windows, conv_kernels)
        stream_s = time.perf_counter() - start
        start = time.perf_counter()
        via_counts = count_eng.dot_filters(windows, conv_kernels)
        count_s = time.perf_counter() - start
        assert np.array_equal(via_streams.positive_count, via_counts.positive_count)
        assert np.array_equal(via_streams.negative_count, via_counts.negative_count)
        print(f"{adder:>4s} tree, 32 kernels x 256 windows: streams "
              f"{stream_s * 1e3:6.1f} ms, counts {count_s * 1e3:6.1f} ms "
              f"({stream_s / count_s:.1f}x), identical counters")

    section("Tile-streamed execution: full-scale bit-exact runs in bounded memory")
    # StochasticConv2D(tile_patches=...) / REPRO_TILE_PATCHES caps how many
    # patches are in flight; counts are accumulated tile by tile and stay
    # bit-identical for ANY tile size (stream generation is stateless, the
    # weight bank and its select streams are reused).  This is what lets
    # REPRO_BITEXACT=1 Table 3 runs cover the whole MNIST test set.
    image = rng.random((1, 16, 16))
    full_layer = StochasticConv2D(
        conv_kernels.reshape(32, 5, 5), engine=StochasticDotProductEngine(
            precision=8, backend="packed"), padding=2)
    tiled_layer = StochasticConv2D(
        conv_kernels.reshape(32, 5, 5), engine=StochasticDotProductEngine(
            precision=8, backend="packed"), padding=2, tile_patches=60)
    full = full_layer.forward(image)
    tiled = tiled_layer.forward(image)
    assert np.array_equal(full.positive_count, tiled.positive_count)
    assert np.array_equal(full.sign, tiled.sign)
    print(f"16x16 image, 32 kernels: untiled vs tile_patches=60 (doesn't divide "
          f"256 patches) -> identical counters on all "
          f"{full.positive_count.size} outputs")

    section("Batched multi-trace simulation: one run, a whole trace set")
    traces = 16
    batched_stim = {
        net: rng.integers(0, 2, (traces, cycles)) for net in engine.primary_inputs
    }
    start = time.perf_counter()
    batched = simulate_batch(engine, batched_stim)
    batched_s = time.perf_counter() - start
    start = time.perf_counter()
    sequential = [
        simulate(engine, {net: w[k] for net, w in batched_stim.items()})
        for k in range(traces)
    ]
    sequential_s = time.perf_counter() - start
    assert batched.trace(0).toggles == sequential[0].toggles
    report = estimate_power(engine, frequency_mhz=500.0, simulation=batched)
    spread = batched.average_activity_per_trace()
    print(f"{traces} stimulus traces x {cycles} cycles, stacked on a leading axis:")
    print(f"  batched {batched_s * 1e3:6.1f} ms vs sequential "
          f"{sequential_s * 1e3:6.1f} ms ({sequential_s / batched_s:.0f}x)")
    print(f"  activity {batched.average_activity():.3f} "
          f"(per-trace spread {spread.min():.3f} .. {spread.max():.3f}), "
          f"trace-driven power {report.total_mw * 1e3:.0f} uW")

    section("Static analysis: proving netlists well-formed without simulating")
    clean = lint(engine)
    print(f"engine lint report: {clean.format().splitlines()[0]}")
    print(f"  critical path: {clean.stats.critical_path_length} combinational "
          f"levels, max fanout {clean.stats.max_fanout}")
    # Deliberately corrupt a copy of the engine: rewire one adder input to a
    # net that does not exist, and export an output nobody drives.
    broken = build_sc_dot_product(9, 8)
    victim = broken.instances[len(broken.instances) // 2]
    victim.inputs = (victim.inputs[0], "severed_net") + victim.inputs[2:]
    broken.add_output("phantom_out")
    report = lint(broken)
    print("after cutting one wire and exporting a phantom output:")
    for finding in report.errors[:2]:
        print(f"  {finding.format()}".replace("\n", "\n  "))
    # strict=True runs the error-severity rules as an elaboration step, so
    # the corruption is refused up front instead of producing wrong waveforms.
    try:
        simulate(broken, {}, strict=True)
    except LintError as exc:
        print(f"simulate(strict=True) refused: {str(exc)[:72]}...")

    section("Fault injection: the 1/N graceful-degradation bound, measured")
    # A flipped stream bit moves the encoded value by exactly 1/N -- the
    # error of a faulted stream is bounded by (number of flips) / N.
    n = 256
    stream = PackedBitstream.from_random(0.7, n, rng=1)
    spec = FaultSpec(flip_rate=0.02, seed=3)
    faulted = inject_stream(stream, spec)
    flips = (faulted ^ stream).ones
    err = abs(faulted.value - stream.value)
    assert err <= flips / n + 1e-12
    print(f"N={n} stream at p=0.7, flip rate 2%: {flips} flips, "
          f"|value error| {err:.4f} <= {flips}/N = {flips / n:.4f}")
    # The same per-bit upset on a binary word has no such bound: one hit on
    # the top of a 16-bit two's-complement word swings the value by 2**15.
    word = np.array([1000], dtype=np.int64)
    worst = max(abs(int(flip_binary_words(word, 16, 0.06, seed=s)[0]) - 1000)
                for s in range(40))
    print(f"16-bit binary word 1000 at the same exposure: worst observed "
          f"swing {worst} LSBs across 40 seeds")

    # Stuck-at faults drop straight into the gate-level view: force the SNG
    # comparator's output net and the stream density collapses, on both
    # simulation backends identically.
    sng = build_sng(4, MAXIMAL_TAPS[4])
    value_bits = {f"value{i}": np.full(16, (11 >> i) & 1, dtype=np.uint8)
                  for i in range(4)}
    healthy = simulate(sng, value_bits)
    stuck = simulate(sng, value_bits, faults={"stream": 0})
    stuck_unpacked = simulate(sng, value_bits, backend="unpacked",
                              faults={"stream": 0})
    assert np.array_equal(stuck.waveforms["stream"],
                          stuck_unpacked.waveforms["stream"])
    print(f"SNG netlist converting 11/16: healthy density "
          f"{healthy.waveforms['stream'].mean():.3f}, stream stuck-at-0 -> "
          f"{stuck.waveforms['stream'].mean():.3f} (backends agree)")

    # And the engine-level spec threads through a convolution tile: stream
    # faults force the stream-domain evaluation and corrupt every tile at
    # its global patch offset, so tiling never changes the faulted counts.
    rng2 = np.random.default_rng(5)
    tile_image = rng2.random((1, 12, 12))
    tile_kernels = rng2.uniform(-1, 1, (4, 3, 3))
    conv_spec = FaultSpec(flip_rate=0.01, seed=7)
    clean_conv = StochasticConv2D(
        tile_kernels, engine=StochasticDotProductEngine(precision=8),
        padding=1).forward(tile_image)
    runs = [
        StochasticConv2D(
            tile_kernels,
            engine=StochasticDotProductEngine(precision=8, faults=conv_spec),
            padding=1, tile_patches=tile,
        ).forward(tile_image)
        for tile in (None, 37)
    ]
    assert np.array_equal(runs[0].positive_count, runs[1].positive_count)
    agreement = (runs[0].sign == clean_conv.sign).mean()
    print(f"conv tile under 1% stream flips: sign agreement {agreement:.3f} "
          f"vs clean, untiled == tile_patches=37 bit-identically")


if __name__ == "__main__":
    main()
