#!/usr/bin/env python3
"""Quickstart: stochastic computing primitives and the paper's TFF adder.

Walks through the building blocks of the paper in five minutes:

1. encode numbers as stochastic bit-streams;
2. multiply with a single AND gate;
3. add with the conventional MUX adder and with the proposed TFF adder,
   reproducing the worked example of Section III;
4. compare number-generation schemes (a miniature Table 1);
5. run one stochastic dot product the way the hybrid first layer does.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import Bitstream, MuxAdder, new_sc_engine
from repro.eval import multiplier_mse
from repro.rng import ComparatorSNG, SobolSource, VanDerCorputSource, ramp_compare_stream
from repro.sc import and_multiply, tff_add


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("1. Stochastic numbers are bit-streams interpreted as probabilities")
    x = Bitstream("001011")
    print(f"stream {x.to_string()}  ->  unipolar value {x.value:.3f}")
    sng = ComparatorSNG(VanDerCorputSource(bits=4))
    encoded = sng.generate(0.625, length=16)
    print(f"SNG encoding of 0.625 over 16 cycles: {encoded.to_string()} "
          f"(value {encoded.value:.4f})")
    ramp = ramp_compare_stream(0.625, 16)
    print(f"ramp-compare (sensor-style) encoding:  {Bitstream(ramp).to_string()} "
          "(note the single run of ones)")

    section("2. Multiplication is a single AND gate")
    # The two inputs must come from independent (jointly well-distributed)
    # sources -- here two different Sobol dimensions.
    a = sng.generate(0.5, 16)
    b = ComparatorSNG(SobolSource(bits=4, dimension=1)).generate(0.75, 16)
    product = and_multiply(a, b)
    print(f"0.5 x 0.75 = {product.value:.4f}  (exact 0.375)")

    section("3. Addition: conventional MUX adder vs. the paper's TFF adder")
    x = Bitstream("0110 0011 0101 0111 1000")  # 1/2, from Section III
    y = Bitstream("1011 1111 0101 0111 1111")  # 4/5
    z_tff = tff_add(x, y)
    print(f"X = {x.to_string()}  (value {x.value:.2f})")
    print(f"Y = {y.to_string()}  (value {y.value:.2f})")
    print(f"TFF adder output  Z = {z_tff.to_string()}  (value {z_tff.value:.2f}, "
          "exactly 13/20 as in the paper)")
    mux = MuxAdder(seed=7)
    z_mux = mux(x, y)
    print(f"MUX adder output  Z = {z_mux.to_string()}  (value {z_mux.value:.2f}, "
          "sampling noise included)")
    print(f"TFF adder error: {abs(z_tff.value - 0.65):.4f}   "
          f"MUX adder error: {abs(z_mux.value - 0.65):.4f}")

    section("4. Why the number source matters (miniature Table 1)")
    for scheme, label in [
        ("shared_lfsr", "one LFSR + rotated copy"),
        ("two_lfsrs", "two independent LFSRs"),
        ("low_discrepancy", "low-discrepancy sequences"),
        ("ramp_low_discrepancy", "ramp-compare + low-discrepancy"),
    ]:
        mse = multiplier_mse(scheme, precision=6)
        print(f"  {label:<32} multiplier MSE = {mse:.2e}")

    section("5. A stochastic dot product, as used by the hybrid first layer")
    rng = np.random.default_rng(0)
    window = rng.random(25)           # a 5x5 image window in [0, 1]
    kernel = rng.uniform(-1, 1, 25)   # a conditioned 5x5 kernel in [-1, 1]
    engine = new_sc_engine(precision=8)
    result = engine.dot(window, kernel)
    print(f"exact dot product      : {float(window @ kernel):+.4f}")
    print(f"stochastic dot product : {float(result.value):+.4f}")
    print(f"sign activation output : {int(result.sign)}")
    print()
    print("Next: examples/hybrid_digit_classification.py runs the full "
          "hybrid stochastic-binary network.")


if __name__ == "__main__":
    main()
