#!/usr/bin/env python3
"""Regenerate every table of the paper and write a paper-vs-measured report.

This is the one-shot driver behind EXPERIMENTS.md: it runs Tables 1 and 2
exhaustively, the Table 3 hardware comparison, the (scaled-down) Table 3
accuracy experiment, and the headline-claim summary, then prints a markdown
report with the paper's published numbers next to the reproduction's.

Usage:
    python examples/reproduce_paper_tables.py [--quick] [--output FILE]

``--quick`` shrinks the accuracy experiment (for a smoke run); without it the
default benchmark-scale configuration is used (~10 minutes on a laptop CPU).
Environment variables REPRO_TRAIN_SIZE / REPRO_TEST_SIZE / REPRO_BITEXACT
scale it up further.
"""

import argparse
import time

from repro.eval import (
    AccuracyConfig,
    format_headline_claims,
    format_table1,
    format_table2,
    format_table3_accuracy,
    format_table3_hardware,
    run_table1,
    run_table2,
    run_table3_accuracy,
    run_table3_hardware,
    summarize,
)
from repro.eval.table2 import ADDER_CONFIGS
from repro.hw import PAPER_TABLE3_REFERENCE
from repro.rng.sng import TABLE1_SCHEMES

PAPER_TABLE1 = {
    "shared_lfsr": {8: 2.78e-3, 4: 2.99e-3},
    "two_lfsrs": {8: 2.57e-4, 4: 1.60e-3},
    "low_discrepancy": {8: 1.28e-5, 4: 1.01e-3},
    "ramp_low_discrepancy": {8: 8.66e-6, 4: 7.21e-4},
}

PAPER_TABLE2 = {
    "old_random_lfsr": {8: 3.24e-4, 4: 5.55e-3},
    "old_random_tff": {8: 5.49e-4, 4: 5.49e-3},
    "old_lfsr_tff": {8: 1.06e-4, 4: 2.66e-3},
    "new_tff": {8: 1.91e-6, 4: 4.88e-4},
}

PAPER_TABLE3_ACCURACY = {
    "binary": {8: 0.89, 7: 0.86, 6: 0.89, 5: 0.74, 4: 0.79, 3: 0.79, 2: 1.30},
    "old_sc": {8: 2.22, 7: 3.91, 6: 1.30, 5: 1.55, 4: 1.63, 3: 2.71, 2: 4.89},
    "this_work": {8: 0.94, 7: 0.99, 6: 1.04, 5: 1.12, 4: 1.04, 3: 2.20, 2: 43.82},
}


def emit(lines, text=""):
    lines.append(text)


def report_table1(lines):
    result = run_table1(precisions=(8, 4))
    emit(lines, "## Table 1 — stochastic multiplier MSE per number-generation scheme")
    emit(lines)
    emit(lines, "| Scheme | paper 8-bit | measured 8-bit | paper 4-bit | measured 4-bit |")
    emit(lines, "|---|---|---|---|---|")
    for scheme, label in TABLE1_SCHEMES.items():
        emit(
            lines,
            f"| {label} | {PAPER_TABLE1[scheme][8]:.2e} | {result.mse[scheme][8]:.2e} "
            f"| {PAPER_TABLE1[scheme][4]:.2e} | {result.mse[scheme][4]:.2e} |",
        )
    emit(lines)
    print(format_table1(result))
    return result


def report_table2(lines):
    result = run_table2(precisions=(8, 4))
    emit(lines, "## Table 2 — stochastic adder MSE per implementation")
    emit(lines)
    emit(lines, "| Implementation | paper 8-bit | measured 8-bit | paper 4-bit | measured 4-bit |")
    emit(lines, "|---|---|---|---|---|")
    for config, label in ADDER_CONFIGS.items():
        emit(
            lines,
            f"| {label} | {PAPER_TABLE2[config][8]:.2e} | {result.mse[config][8]:.2e} "
            f"| {PAPER_TABLE2[config][4]:.2e} | {result.mse[config][4]:.2e} |",
        )
    emit(lines)
    print(format_table2(result))
    return result


def report_hardware(lines):
    result = run_table3_hardware(precisions=(8, 7, 6, 5, 4, 3, 2))
    reference = PAPER_TABLE3_REFERENCE
    emit(lines, "## Table 3 (bottom) — throughput-normalized power, energy per frame, area")
    emit(lines)
    emit(lines, "| Precision | Binary power mW (paper / measured) | SC power mW | Binary nJ/frame | SC nJ/frame | Binary mm^2 | SC mm^2 |")
    emit(lines, "|---|---|---|---|---|---|---|")
    for row in result.rows:
        p = row.precision
        emit(
            lines,
            f"| {p} | {reference['binary_power_mw'][p]:.1f} / {row.binary_power_mw:.1f} "
            f"| {reference['sc_power_mw'][p]:.1f} / {row.sc_power_mw:.1f} "
            f"| {reference['binary_energy_nj'][p]:.0f} / {row.binary_energy_nj:.0f} "
            f"| {reference['sc_energy_nj'][p]:.1f} / {row.sc_energy_nj:.1f} "
            f"| {reference['binary_area_mm2'][p]:.3f} / {row.binary_area_mm2:.3f} "
            f"| {reference['sc_area_mm2'][p]:.3f} / {row.sc_area_mm2:.3f} |",
        )
    emit(lines)
    print(format_table3_hardware(result))
    return result


def report_accuracy(lines, quick):
    if quick:
        config = AccuracyConfig(
            precisions=(8, 4, 2),
            train_size=500,
            test_size=150,
            baseline_epochs=2,
            retrain_epochs=1,
        )
    else:
        config = AccuracyConfig(
            precisions=(8, 6, 4, 3, 2),
            train_size=1500,
            test_size=400,
            baseline_epochs=4,
            retrain_epochs=3,
            include_no_retrain=True,
        )
    result = run_table3_accuracy(config)
    emit(lines, "## Table 3 (top) — misclassification rate (%) vs. first-layer precision")
    emit(lines)
    emit(lines, "Synthetic-digit dataset (see DESIGN.md §5); paper numbers are MNIST.")
    emit(lines)
    header = "| Design | " + " | ".join(f"{p} bits" for p in config.precisions) + " |"
    emit(lines, header)
    emit(lines, "|---" * (len(config.precisions) + 1) + "|")
    labels = {"binary": "Binary", "old_sc": "Old SC", "this_work": "This Work",
              "binary_no_retrain": "Binary, no retraining (ablation)"}
    for design in ("binary", "old_sc", "this_work", "binary_no_retrain"):
        if design not in result.rates:
            continue
        cells = []
        for p in config.precisions:
            measured = 100 * result.rates[design][p]
            paper = PAPER_TABLE3_ACCURACY.get(design, {}).get(p)
            cells.append(f"{paper:.2f} / {measured:.2f}" if paper else f"- / {measured:.2f}")
        emit(lines, f"| {labels[design]} (paper / measured) | " + " | ".join(cells) + " |")
    emit(lines)
    print(format_table3_accuracy(result))
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small smoke-test configuration")
    parser.add_argument("--output", default=None, help="write the markdown report to this file")
    args = parser.parse_args()

    lines = ["# Paper-vs-measured report (generated by examples/reproduce_paper_tables.py)", ""]
    start = time.time()
    report_table1(lines)
    report_table2(lines)
    hardware = report_hardware(lines)
    accuracy = report_accuracy(lines, quick=args.quick)

    claims = summarize(hardware, accuracy)
    emit(lines, "## Headline claims")
    emit(lines)
    emit(lines, "```")
    emit(lines, format_headline_claims(claims))
    emit(lines, "```")
    print()
    print(format_headline_claims(claims))
    print(f"\ntotal time: {time.time() - start:.0f}s")

    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"markdown report written to {args.output}")


if __name__ == "__main__":
    main()
