#!/usr/bin/env python3
"""Energy / power / area trade-off sweep (paper Table 3, bottom half).

Sweeps the first-layer precision from 8 down to 2 bits and reports, for the
binary sliding-window convolution engine and the proposed stochastic engine:

* throughput-normalized power (the binary engine is clocked to match the
  stochastic engine's frame rate),
* energy per frame,
* die area,

first with the raw gate-count model and then calibrated to the paper's 8-bit
synthesis anchor (see DESIGN.md for the substitution rationale).  Ends with
the headline claims: break-even precision and the energy advantage at 4 bits.

Run with:  python examples/energy_tradeoff_sweep.py
"""

from repro.eval import format_table3_hardware, run_table3_hardware, summarize
from repro.eval.report import format_headline_claims
from repro.hw import BinaryEngineModel, StochasticEngineModel


def main() -> None:
    precisions = (8, 7, 6, 5, 4, 3, 2)

    print("Raw gate-count model (no calibration):")
    raw = run_table3_hardware(precisions, calibrate=False)
    print(format_table3_hardware(raw))
    print()

    print("Calibrated to the paper's 8-bit synthesis anchor:")
    calibrated = run_table3_hardware(precisions, calibrate=True)
    print(format_table3_hardware(calibrated))
    print()

    print("Where do the numbers come from?  One 8-bit design point in detail:")
    sc = StochasticEngineModel(8)
    binary = BinaryEngineModel(8)
    sc_report = sc.report()
    print(f"  stochastic engine: {len(sc.unit_netlist().instances)} cells/unit x "
          f"{sc.geometry.windows} units, {sc.cycles_per_frame()} cycles/frame, "
          f"{sc_report.frame_time_us:.1f} us/frame at {sc.tech.sc_clock_mhz:.0f} MHz")
    matched = binary.matched_frequency_mhz(sc_report.throughput_fps)
    print(f"  binary engine:     {len(binary.mac_netlist().instances)} cells/MAC x "
          f"{binary.unit_count} units, {binary.cycles_per_frame()} cycles/frame, "
          f"needs {matched:.0f} MHz to match the stochastic frame rate")
    print()

    claims = summarize(calibrated)
    print(format_headline_claims(claims))


if __name__ == "__main__":
    main()
