#!/usr/bin/env python3
"""End-to-end hybrid stochastic-binary digit classification (paper Fig. 3).

This example walks through the paper's full workflow on the MNIST-like
dataset:

1. train the baseline LeNet-5 variant in floating point;
2. condition the first layer (per-kernel weight scaling, b-bit quantization,
   sign activation), freeze it, and retrain the binary remainder
   (Section V-B);
3. evaluate three first-layer implementations: binary (quantized), the
   proposed stochastic design (TFF adders, ramp-compare inputs), and the
   conventional "old SC" design -- first with the calibrated fast emulator
   over the whole test set, then bit-exactly on a handful of images.

Runtime is a few minutes on a laptop CPU with the default (scaled-down)
sizes; set REPRO_TRAIN_SIZE / REPRO_TEST_SIZE for larger runs.

Run with:  python examples/hybrid_digit_classification.py [precision]
"""

import os
import sys
import time

import numpy as np

from repro.datasets import load_dataset
from repro.hybrid import HybridStochasticBinaryNetwork
from repro.nn import Adam, build_lenet5_small, quantize_and_freeze, retrain
from repro.sc import new_sc_engine, old_sc_engine


def main() -> None:
    precision = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    train_size = int(os.environ.get("REPRO_TRAIN_SIZE", 2000))
    test_size = int(os.environ.get("REPRO_TEST_SIZE", 500))

    print(f"Loading dataset ({train_size} train / {test_size} test images) ...")
    data = load_dataset(train_size=train_size, test_size=test_size, seed=0)
    x_train = data.x_train[:, np.newaxis, :, :]
    x_test = data.x_test[:, np.newaxis, :, :]

    print("Training the baseline LeNet-5 variant (floating point, ReLU) ...")
    start = time.time()
    model = build_lenet5_small(seed=0)
    model.fit(x_train, data.y_train, epochs=4, batch_size=64, optimizer=Adam(1e-3))
    baseline_error = model.misclassification_rate(x_test, data.y_test)
    print(f"  baseline misclassification: {100 * baseline_error:.2f}%  "
          f"({time.time() - start:.0f}s)")

    print(f"Conditioning + freezing the first layer at {precision}-bit precision, "
          "then retraining the binary remainder ...")
    start = time.time()
    # Binary row: quantized weights + sign activation, full-resolution accumulation.
    frozen = quantize_and_freeze(model, precision=precision)
    no_retrain_error = frozen.misclassification_rate(x_test, data.y_test)
    retrain(frozen, x_train, data.y_train, epochs=3, optimizer=Adam(2e-3))
    binary_error = frozen.misclassification_rate(x_test, data.y_test)
    print(f"  without retraining: {100 * no_retrain_error:.2f}%")
    print(f"  after retraining  : {100 * binary_error:.2f}%  ({time.time() - start:.0f}s)")

    # Hybrid rows: retrain against the stochastic engine's resolution so the
    # binary remainder compensates for the bit-stream precision loss (V-B).
    print("Retraining against the stochastic first-layer resolution ...")
    start = time.time()
    sc_model = quantize_and_freeze(
        model, precision=precision, sc_resolution=True, soft_threshold=0.02
    )
    retrain(sc_model, x_train, data.y_train, epochs=3, optimizer=Adam(2e-3))
    print(f"  done ({time.time() - start:.0f}s)")

    print("Evaluating the stochastic first layer (fast calibrated emulation) ...")
    results = {"binary (quantized first layer)": binary_error}
    for label, engine_factory in (
        ("this work (TFF adder, ramp input)", new_sc_engine),
        ("old SC (MUX adder, LFSR SNGs)", old_sc_engine),
    ):
        hybrid = HybridStochasticBinaryNetwork(
            sc_model, engine=engine_factory(precision), soft_threshold=0.02
        )
        error = hybrid.misclassification_rate(data.x_test, data.y_test, mode="emulate")
        results[label] = error

    print()
    print(f"Misclassification rates at {precision}-bit first-layer precision:")
    for label, error in results.items():
        print(f"  {label:<38} {100 * error:6.2f}%")

    print()
    print("Bit-exact stochastic simulation on 10 test images (ground truth check):")
    hybrid = HybridStochasticBinaryNetwork(
        sc_model, engine=new_sc_engine(precision), soft_threshold=0.02
    )
    start = time.time()
    exact_error = hybrid.misclassification_rate(
        data.x_test, data.y_test, mode="bitexact", limit=10
    )
    print(f"  bit-exact error on the subset: {100 * exact_error:.1f}%  "
          f"({time.time() - start:.1f}s for 10 images)")
    print()
    print("Try different precisions: python examples/hybrid_digit_classification.py 4")


if __name__ == "__main__":
    main()
