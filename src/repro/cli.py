"""Command-line interface: regenerate any of the paper's tables from a shell.

Usage (after ``pip install -e .``):

    python -m repro table1                 # multiplier MSE (Table 1)
    python -m repro table2                 # adder MSE (Table 2)
    python -m repro hardware               # power / energy / area (Table 3 bottom)
    python -m repro hardware --raw         # same, without the 8-bit anchoring
    python -m repro accuracy --quick       # misclassification rates (Table 3 top)
    python -m repro activity               # simulated switching activity + power
    python -m repro lint                   # static analysis of builder netlists
    python -m repro faults                 # fault-injection degradation sweep
    python -m repro claims                 # headline-claim summary

``lint`` runs the rule-based static analyzer (:mod:`repro.netlist.lint`)
over every builder circuit in
:data:`repro.netlist.circuits.BUILDER_CATALOG` (or a ``--circuit``
selection) and exits non-zero when findings at or above ``--fail-on``
(default ``error``) are present -- the CI gate that keeps the Table 3
netlists structurally sound.  ``--verbose`` adds info-level findings plus
the fanout histogram and critical-path statistics.

The accuracy experiment honours the same environment variables as the
benchmark suite (REPRO_TRAIN_SIZE, REPRO_TEST_SIZE, REPRO_BITEXACT,
REPRO_EVAL_IMAGES, REPRO_BACKEND, REPRO_MODE, REPRO_TILE_PATCHES).  For full-test-set
bit-exact runs (``REPRO_BITEXACT=1`` without ``REPRO_EVAL_IMAGES``), pass
``accuracy --tile-patches P`` (or set ``REPRO_TILE_PATCHES``) to stream the
stochastic convolution in bounded-memory patch tiles.  ``table1``, ``table2``, ``accuracy`` and
``activity`` accept ``--backend {packed,unpacked}`` to select the bit-level
simulation backend (both produce bit-identical numbers; packed is ~10x
faster).  ``table1``, ``table2`` and ``accuracy`` also accept
``--mode {auto,counts,streams}`` (or ``REPRO_MODE``) to choose the
adder-tree evaluation mode: ``counts`` runs the exact count-domain shortcut
(no adder-tree stream tensors), ``streams`` forces the reference stream
reduction, and ``auto`` -- the default -- picks counts whenever exact.
Every mode is bit-identical; the knob trades speed and memory only.
``activity`` runs the PrimeTime-style switching-annotated power
estimate: it simulates the Table 3 stochastic dot-product netlist against a
random bit-stream trace and rolls the per-net toggle counts into power;
``--traces K`` stacks K stimulus sets on a leading axis and covers them all
with one batched word-parallel simulation.  ``hardware --activity-traces N``
replaces the assumed activity factor of the stochastic power model by one
measured the same way.

``faults`` runs the deterministic fault-injection degradation sweep
(:mod:`repro.faults.sweep`): it convolves synthetic digits through the
stochastic first layer under seeded per-bit stream flips and compares the
sign-map degradation against a matched binary fixed-point baseline whose
accumulator words are upset at the same per-bit per-cycle rate.  The curve
prints as a table and merges into a JSON artifact (``--output``, default
``BENCH_faults.json``) unless ``--no-artifact`` is given.  ``--quick``
selects the small smoke geometry used by CI.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .sc import BACKENDS, MODES, resolve_backend, resolve_mode

from .eval import (
    AccuracyConfig,
    format_headline_claims,
    format_table1,
    format_table2,
    format_table3_accuracy,
    format_table3_hardware,
    run_table1,
    run_table2,
    run_table3_accuracy,
    run_table3_hardware,
    summarize,
)

__all__ = ["build_parser", "main"]


def _parse_precisions(text: str) -> tuple:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid precision list {text!r}") from exc
    if not values or any(v < 2 for v in values):
        raise argparse.ArgumentTypeError("precisions must be integers >= 2")
    return values


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables of Lee et al., DATE 2017.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend(subparser: argparse.ArgumentParser) -> None:
        # No hard-coded default: an omitted flag defers to REPRO_BACKEND
        # (then "packed"), while an explicit flag beats the environment.
        subparser.add_argument(
            "--backend", choices=BACKENDS, default=None,
            help="bit-level simulation backend (both are bit-identical; "
                 "packed is ~10x faster; default: $REPRO_BACKEND or packed)",
        )

    def add_mode(subparser: argparse.ArgumentParser) -> None:
        # Mirrors add_backend: an omitted flag defers to REPRO_MODE (then
        # "auto"), while an explicit flag beats the environment.
        subparser.add_argument(
            "--mode", choices=MODES, default=None,
            help="adder-tree evaluation mode: counts (exact count-domain "
                 "shortcut), streams (reference stream reduction) or auto "
                 "(counts whenever exact); bit-identical results either way "
                 "(default: $REPRO_MODE or auto)",
        )

    table1 = sub.add_parser("table1", help="stochastic multiplier MSE (Table 1)")
    table1.add_argument(
        "--precisions", type=_parse_precisions, default=(8, 4),
        help="comma-separated precisions, e.g. 8,4",
    )
    add_backend(table1)
    add_mode(table1)

    table2 = sub.add_parser("table2", help="stochastic adder MSE (Table 2)")
    table2.add_argument("--precisions", type=_parse_precisions, default=(8, 4))
    add_backend(table2)
    add_mode(table2)

    hardware = sub.add_parser("hardware", help="power / energy / area (Table 3 bottom)")
    hardware.add_argument("--precisions", type=_parse_precisions, default=(8, 7, 6, 5, 4, 3, 2))
    hardware.add_argument(
        "--raw", action="store_true",
        help="report the raw gate-count model instead of anchoring to the paper's 8-bit results",
    )
    hardware.add_argument(
        "--activity-traces", type=int, default=0, metavar="N",
        help="measure the SC engine's switching activity from a batched "
             "netlist simulation over N random input traces instead of "
             "assuming the technology default (measured independently at "
             "every requested precision)",
    )

    accuracy = sub.add_parser("accuracy", help="misclassification rates (Table 3 top)")
    accuracy.add_argument("--precisions", type=_parse_precisions, default=(8, 6, 4, 3, 2))
    accuracy.add_argument("--train-size", type=int, default=None)
    accuracy.add_argument("--test-size", type=int, default=None)
    accuracy.add_argument("--epochs", type=int, default=4, help="baseline training epochs")
    accuracy.add_argument("--retrain-epochs", type=int, default=3)
    accuracy.add_argument("--quick", action="store_true", help="small smoke-test configuration")
    accuracy.add_argument("--no-retrain-row", action="store_true",
                          help="also report the no-retraining ablation row")
    accuracy.add_argument(
        "--tile-patches", type=int, default=None, metavar="P",
        help="simulate at most P image patches at once in the bit-exact "
             "stochastic path (bounded memory at full-test-set scale; "
             "bit-identical for any tile size; default: $REPRO_TILE_PATCHES "
             "or untiled)",
    )
    add_backend(accuracy)
    add_mode(accuracy)

    activity = sub.add_parser(
        "activity",
        help="switching-activity power simulation of the Table 3 SC engine netlist",
    )
    activity.add_argument(
        "--precision", type=int, default=6,
        help="stream precision: simulates 2**precision cycles with a "
             "(precision+1)-bit counter",
    )
    activity.add_argument("--taps", type=int, default=25, help="dot-product tap count")
    activity.add_argument("--adder", choices=("tff", "mux"), default="tff")
    activity.add_argument("--seed", type=int, default=0, help="stimulus RNG seed")
    activity.add_argument(
        "--traces", type=int, default=1, metavar="K",
        help="number of stimulus trace sets, simulated in one batched "
             "word-parallel run (default 1)",
    )
    add_backend(activity)

    lint_cmd = sub.add_parser(
        "lint",
        help="static analysis of the gate-level builder netlists",
    )
    lint_cmd.add_argument(
        "--circuit", action="append", default=None, metavar="NAME",
        help="lint only this builder circuit (repeatable; default: all; "
             "see `repro lint --list` for names)",
    )
    lint_cmd.add_argument(
        "--list", action="store_true",
        help="list the available builder circuits and exit",
    )
    lint_cmd.add_argument(
        "--fail-on", choices=("error", "warning", "info", "never"),
        default="error",
        help="exit non-zero when findings at or above this severity are "
             "present (default: error)",
    )
    lint_cmd.add_argument(
        "--verbose", "-v", action="store_true",
        help="also print info-level findings, the fanout histogram and the "
             "critical path",
    )

    faults_cmd = sub.add_parser(
        "faults",
        help="fault-injection degradation sweep (SC conv layer vs binary baseline)",
    )
    faults_cmd.add_argument(
        "--rates", type=_parse_rates, default=None, metavar="R1,R2,...",
        help="comma-separated per-bit per-cycle upset rates in [0, 1] "
             "(default: 0,1e-4,1e-3,1e-2,1e-1)",
    )
    faults_cmd.add_argument(
        "--precision", type=int, default=8,
        help="stream precision: 2**precision-bit streams and a matched "
             "binary datapath (default 8)",
    )
    faults_cmd.add_argument("--images", type=int, default=6,
                            help="synthetic digit images convolved (default 6)")
    faults_cmd.add_argument("--filters", type=int, default=8,
                            help="convolution kernels (default 8)")
    faults_cmd.add_argument("--kernel", type=int, default=5,
                            help="square kernel side (default 5)")
    faults_cmd.add_argument("--trials", type=int, default=2,
                            help="independent fault seeds averaged per rate")
    faults_cmd.add_argument("--seed", type=int, default=0,
                            help="master seed (dataset, kernels, fault seeds)")
    faults_cmd.add_argument(
        "--tile-patches", type=int, default=None, metavar="P",
        help="simulate at most P image patches at once (bit-identical for "
             "any tile size; default: $REPRO_TILE_PATCHES or untiled)",
    )
    faults_cmd.add_argument(
        "--output", default="BENCH_faults.json", metavar="PATH",
        help="JSON artifact the curve is merged into (default BENCH_faults.json)",
    )
    faults_cmd.add_argument(
        "--no-artifact", action="store_true",
        help="print the table only; do not write the JSON artifact",
    )
    faults_cmd.add_argument(
        "--quick", action="store_true",
        help="small smoke-test geometry (3 rates, 2 images, 4 filters, 1 trial)",
    )
    add_backend(faults_cmd)

    claims = sub.add_parser("claims", help="headline-claim summary (hardware only)")
    claims.add_argument("--raw", action="store_true")
    return parser


def _parse_rates(text: str) -> tuple:
    from .faults.sweep import parse_rates

    try:
        return parse_rates(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _resolve_backend(arg: Optional[str]) -> str:
    """CLI wrapper for :func:`repro.sc.resolve_backend`: fail with a clean message."""
    try:
        return resolve_backend(arg)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}") from exc


def _resolve_mode(arg: Optional[str]) -> str:
    """CLI wrapper for :func:`repro.sc.resolve_mode`: fail with a clean message."""
    try:
        return resolve_mode(arg)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}") from exc


def _run_activity(args: argparse.Namespace) -> None:
    """Simulate the SC engine netlist and print the activity-annotated power."""
    import numpy as np

    from .hw.technology import DEFAULT_TECH
    from .netlist import build_sc_dot_product, estimate_power, simulate, simulate_batch

    if args.precision < 2:
        raise SystemExit("repro: error: precision must be at least 2")
    if args.taps < 2:
        raise SystemExit("repro: error: taps must be at least 2")
    if args.traces < 1:
        raise SystemExit("repro: error: traces must be at least 1")
    backend = _resolve_backend(args.backend)
    cycles = 1 << args.precision
    netlist = build_sc_dot_product(args.taps, args.precision + 1, adder=args.adder)
    rng = np.random.default_rng(args.seed)
    if args.traces == 1:
        stimulus = {
            net: rng.integers(0, 2, cycles, dtype=np.int64).astype(np.uint8)
            for net in netlist.primary_inputs
        }
        result = simulate(netlist, stimulus, backend=backend, strict=True)
        trace_note = ""
    else:
        stimulus = {
            net: rng.integers(
                0, 2, (args.traces, cycles), dtype=np.int64
            ).astype(np.uint8)
            for net in netlist.primary_inputs
        }
        result = simulate_batch(netlist, stimulus, backend=backend, strict=True)
        trace_note = f" x {args.traces} traces (batched)"
    report = estimate_power(
        netlist, DEFAULT_TECH.sc_clock_mhz, simulation=result
    )
    print(f"netlist: {netlist.name} ({len(netlist.instances)} cells), "
          f"{cycles} cycles{trace_note}, backend={backend}")
    print(f"total toggles:      {result.total_toggles()}")
    print(f"average activity:   {result.average_activity():.4f} toggles/cycle/net")
    if args.traces > 1:
        per_trace = result.average_activity_per_trace()
        print(f"activity spread:    {per_trace.min():.4f} .. {per_trace.max():.4f} "
              "across traces")
    print(f"dynamic power:      {report.dynamic_mw * 1e3:.2f} uW at "
          f"{report.frequency_mhz:.0f} MHz")
    print(f"leakage power:      {report.leakage_mw * 1e3:.2f} uW")
    print(f"total power:        {report.total_mw * 1e3:.2f} uW")


def _run_lint(args: argparse.Namespace) -> int:
    """Lint the builder netlists; return the process exit code."""
    from .netlist import BUILDER_CATALOG, lint

    if args.list:
        for name in sorted(BUILDER_CATALOG):
            print(name)
        return 0

    names = sorted(BUILDER_CATALOG) if args.circuit is None else args.circuit
    unknown = [name for name in names if name not in BUILDER_CATALOG]
    if unknown:
        raise SystemExit(
            f"repro: error: unknown circuit(s) {unknown}; "
            f"available: {sorted(BUILDER_CATALOG)}"
        )

    severity_rank = {"error": 0, "warning": 1, "info": 2}
    fail_rank = severity_rank.get(args.fail_on)  # None for "never"
    failed = False
    totals = {"error": 0, "warning": 0, "info": 0}
    for name in names:
        report = lint(BUILDER_CATALOG[name]())
        print(report.format(verbose=args.verbose))
        for severity, count in report.counts().items():
            totals[severity] += count
        if fail_rank is not None and any(
            severity_rank[f.severity] <= fail_rank for f in report.findings
        ):
            failed = True
    print(
        f"linted {len(names)} netlist(s): {totals['error']} error(s), "
        f"{totals['warning']} warning(s), {totals['info']} info"
    )
    if failed:
        print(f"repro lint: findings at or above --fail-on={args.fail_on}")
        return 1
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    """Run the fault-injection degradation sweep; return the exit code."""
    from pathlib import Path

    from .faults.sweep import (
        DEFAULT_RATES,
        FaultSweepConfig,
        format_fault_sweep,
        run_fault_sweep,
        write_artifact,
    )

    kwargs = dict(
        backend=_resolve_backend(args.backend),
        seed=args.seed,
        tile_patches=args.tile_patches,
    )
    if args.quick:
        kwargs.update(
            rates=(0.0, 1e-3, 1e-2),
            images=2,
            filters=4,
            kernel=args.kernel,
            precision=args.precision,
            trials=1,
        )
        # Explicit --rates still wins over the quick preset.
        if args.rates is not None:
            kwargs["rates"] = args.rates
    else:
        kwargs.update(
            rates=args.rates if args.rates is not None else DEFAULT_RATES,
            precision=args.precision,
            images=args.images,
            filters=args.filters,
            kernel=args.kernel,
            trials=args.trials,
        )
    try:
        config = FaultSweepConfig(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}") from exc

    result = run_fault_sweep(config)
    print(format_fault_sweep(result))
    if not args.no_artifact:
        path = Path(args.output)
        write_artifact(result, path)
        print(f"wrote {path}")
    return 0


def _accuracy_config(args: argparse.Namespace) -> AccuracyConfig:
    kwargs = dict(
        include_no_retrain=args.no_retrain_row,
        backend=_resolve_backend(args.backend),
        mode=_resolve_mode(args.mode),
        tile_patches=args.tile_patches,
    )
    if args.quick:
        kwargs.update(
            precisions=(8, 4, 2),
            train_size=400,
            test_size=120,
            baseline_epochs=2,
            retrain_epochs=1,
        )
    else:
        kwargs.update(
            precisions=args.precisions,
            train_size=args.train_size,
            test_size=args.test_size,
            baseline_epochs=args.epochs,
            retrain_epochs=args.retrain_epochs,
        )
    try:
        return AccuracyConfig(**kwargs)
    except ValueError as exc:
        # e.g. a bad --tile-patches value or an unusable REPRO_TILE_PATCHES /
        # REPRO_EVAL_IMAGES environment setting: fail with the same clean
        # message style as other flag errors, not a traceback.
        raise SystemExit(f"repro: error: {exc}") from exc


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "table1":
        backend = _resolve_backend(args.backend)
        mode = _resolve_mode(args.mode)
        print(format_table1(
            run_table1(precisions=args.precisions, backend=backend, mode=mode)
        ))
    elif args.command == "table2":
        backend = _resolve_backend(args.backend)
        mode = _resolve_mode(args.mode)
        print(format_table2(
            run_table2(precisions=args.precisions, backend=backend, mode=mode)
        ))
    elif args.command == "hardware":
        if args.activity_traces < 0:
            raise SystemExit("repro: error: --activity-traces must be non-negative")
        result = run_table3_hardware(
            precisions=args.precisions,
            calibrate=not args.raw,
            activity_traces=args.activity_traces,
        )
        if result.measured_activity_by_precision is not None:
            per_precision = ", ".join(
                f"{p}b: {a:.4f}"
                for p, a in sorted(
                    result.measured_activity_by_precision.items(), reverse=True
                )
            )
            print(f"measured SC activity over {args.activity_traces} traces "
                  f"(toggles/cycle/net, per precision): {per_precision}")
        print(format_table3_hardware(result))
    elif args.command == "accuracy":
        result = run_table3_accuracy(_accuracy_config(args))
        print(format_table3_accuracy(result))
    elif args.command == "activity":
        _run_activity(args)
    elif args.command == "lint":
        return _run_lint(args)
    elif args.command == "faults":
        return _run_faults(args)
    elif args.command == "claims":
        hardware = run_table3_hardware(calibrate=not args.raw)
        print(format_headline_claims(summarize(hardware)))
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
