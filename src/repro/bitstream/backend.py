"""Simulation-backend selection shared by every bit-level simulator.

Two interchangeable stream representations exist (see this package's
docstring): the byte-per-bit reference arrays and the 64-bits-per-word packed
arrays.  Every simulator that owns a representation choice -- the stochastic
dot-product engines, the netlist simulator, the Table 1/2 sweep kernels --
selects it through the single resolution rule below, so ``REPRO_BACKEND``
and an explicit ``backend=`` argument behave identically everywhere.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["BACKENDS", "validate_backend", "resolve_backend"]

#: Supported simulation backends: ``"packed"`` stores 64 stream bits per
#: uint64 word and runs word-level kernels (bit-identical results, roughly an
#: order of magnitude faster); ``"unpacked"`` keeps one uint8 byte per bit.
BACKENDS = ("packed", "unpacked")


def validate_backend(backend: str) -> str:
    """Raise ``ValueError`` unless ``backend`` names a supported backend."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve and validate a backend choice.

    Precedence: an explicitly passed value beats the ``REPRO_BACKEND``
    environment variable, which beats the ``"packed"`` default.  This is the
    single resolution rule shared by the CLI and the experiment configs.
    Only ``None`` defers to the environment -- an explicit empty string is
    rejected like any other invalid name -- while an empty/unset environment
    variable falls back to the default.
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "packed"
    return validate_backend(backend)
