"""The :class:`Bitstream` container used by every stochastic-computing element.

A stochastic number (SN) is a finite sequence of bits whose ones-density
encodes a value (see :mod:`repro.bitstream.encoding`).  This module wraps a
numpy boolean array with the bookkeeping the rest of the library needs:

* the encoding (unipolar / bipolar) used to interpret the ones-density;
* convenience constructors (constant streams, streams from probabilities and
  explicit ``"0101"`` strings as printed in the paper's figures);
* estimation of the encoded value and of the exact rational ``ones / length``;
* elementwise logical operations, which are the physical gates of SC.

Streams are immutable from the point of view of the arithmetic elements: all
operations return new :class:`Bitstream` instances.  Internally bits are kept
as ``uint8`` (0/1) so that vectorized batch simulation can reuse the same
kernels on large arrays.

For long streams the one-byte-per-bit layout is the simulation bottleneck;
:meth:`Bitstream.pack` converts losslessly to the 64-bits-per-word
:class:`~repro.bitstream.packed.PackedBitstream` representation, whose
word-level gate kernels are roughly an order of magnitude faster and ~8x
smaller in memory (see :mod:`repro.bitstream.packed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence, Union

import numpy as np

from .encoding import (
    BIPOLAR,
    UNIPOLAR,
    from_probability,
    to_probability,
)

__all__ = ["Bitstream"]

BitsLike = Union[str, Sequence[int], np.ndarray, "Bitstream"]


def _coerce_bits(bits: BitsLike) -> np.ndarray:
    """Normalize any accepted bit container into a 1-D uint8 array of 0/1."""
    if isinstance(bits, Bitstream):
        return bits.bits.copy()
    if isinstance(bits, str):
        cleaned = bits.replace(" ", "").replace("_", "")
        if not cleaned or any(c not in "01" for c in cleaned):
            raise ValueError(f"bit string must contain only 0/1, got {bits!r}")
        return np.frombuffer(cleaned.encode("ascii"), dtype=np.uint8) - ord("0")
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError(f"bits must be one-dimensional, got shape {arr.shape}")
    if arr.dtype == np.bool_:
        return arr.astype(np.uint8)
    arr = arr.astype(np.int64)
    if np.any((arr != 0) & (arr != 1)):
        raise ValueError("bits must be 0 or 1")
    return arr.astype(np.uint8)


@dataclass(frozen=True)
class Bitstream:
    """A finite stochastic bit-stream.

    Parameters
    ----------
    bits:
        The bit values, any of: a ``"0101 0011"`` style string (spaces and
        underscores ignored), a sequence of 0/1 integers, a boolean / integer
        numpy array, or another :class:`Bitstream`.
    encoding:
        ``"unipolar"`` (default) or ``"bipolar"``; only affects how
        :attr:`value` interprets the ones-density.
    """

    bits: np.ndarray
    encoding: str = UNIPOLAR

    def __init__(self, bits: BitsLike, encoding: str = UNIPOLAR) -> None:
        if encoding not in (UNIPOLAR, BIPOLAR):
            raise ValueError(f"unknown encoding {encoding!r}")
        object.__setattr__(self, "bits", _coerce_bits(bits))
        object.__setattr__(self, "encoding", encoding)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, text: str, encoding: str = UNIPOLAR) -> "Bitstream":
        """Build a stream from a ``"0110 0011"`` string as printed in the paper."""
        return cls(text, encoding=encoding)

    @classmethod
    def all_zeros(cls, length: int, encoding: str = UNIPOLAR) -> "Bitstream":
        """An all-zero stream (unipolar value 0, bipolar value -1)."""
        return cls(np.zeros(length, dtype=np.uint8), encoding=encoding)

    @classmethod
    def all_ones(cls, length: int, encoding: str = UNIPOLAR) -> "Bitstream":
        """An all-one stream (unipolar value 1, bipolar value +1)."""
        return cls(np.ones(length, dtype=np.uint8), encoding=encoding)

    @classmethod
    def from_random(
        cls,
        value: float,
        length: int,
        rng: np.random.Generator | int | None = None,
        encoding: str = UNIPOLAR,
    ) -> "Bitstream":
        """Bernoulli-sample a stream whose expected density encodes ``value``.

        This mirrors the idealized "random bit-stream" configurations used in
        Tables 1 and 2; deterministic generators live in :mod:`repro.rng`.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        p = float(to_probability(value, encoding))
        bits = (rng.random(length) < p).astype(np.uint8)
        return cls(bits, encoding=encoding)

    @classmethod
    def from_exact(
        cls, value: float, length: int, encoding: str = UNIPOLAR
    ) -> "Bitstream":
        """Build a stream whose ones-count is exactly ``floor(p * length + 0.5)``.

        Half-way counts round *up* (``floor(p * length + 0.5)``) rather than
        to-nearest-even: Python's ``round`` would under-count the ones of e.g.
        value 0.5 at odd lengths, biasing every exactly-representable midpoint
        downward.  Ones are placed at the front of the stream; combine with a
        permutation or use :mod:`repro.rng` generators when bit ordering
        matters.
        """
        p = float(to_probability(value, encoding))
        k = min(int(np.floor(p * length + 0.5)), length)
        bits = np.zeros(length, dtype=np.uint8)
        bits[:k] = 1
        return cls(bits, encoding=encoding)

    # ------------------------------------------------------------------ #
    # interpretation
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.bits.shape[0])

    @property
    def length(self) -> int:
        """Number of bits (clock cycles) in the stream."""
        return len(self)

    @property
    def ones(self) -> int:
        """Number of ``1`` bits in the stream."""
        return int(self.bits.sum())

    @property
    def probability(self) -> float:
        """Empirical ones-density ``ones / length``."""
        if len(self) == 0:
            raise ValueError("empty bit-stream has no probability")
        return self.ones / len(self)

    @property
    def exact_value(self) -> Fraction:
        """The encoded value as an exact rational number."""
        p = Fraction(self.ones, len(self))
        if self.encoding == UNIPOLAR:
            return p
        return 2 * p - 1

    @property
    def value(self) -> float:
        """The encoded value as a float (unipolar ``p`` or bipolar ``2p - 1``)."""
        return float(from_probability(self.probability, self.encoding))

    def as_encoding(self, encoding: str) -> "Bitstream":
        """Return the same bits re-interpreted under another encoding."""
        return Bitstream(self.bits, encoding=encoding)

    def pack(self):
        """Convert to the packed 64-bits-per-word representation (lossless).

        Returns a :class:`~repro.bitstream.packed.PackedBitstream` with the
        same bits, length and encoding; ``stream.pack().unpack() == stream``.
        """
        from .packed import PackedBitstream, pack_bits

        return PackedBitstream(pack_bits(self.bits), len(self), self.encoding)

    # ------------------------------------------------------------------ #
    # elementwise logic (the physical gates of stochastic computing)
    # ------------------------------------------------------------------ #
    def _binary_op(self, other: "Bitstream", op) -> "Bitstream":
        if not isinstance(other, Bitstream):
            raise TypeError(f"expected Bitstream, got {type(other).__name__}")
        if len(other) != len(self):
            raise ValueError(
                f"length mismatch: {len(self)} vs {len(other)} bits"
            )
        return Bitstream(op(self.bits, other.bits).astype(np.uint8), self.encoding)

    def __and__(self, other: "Bitstream") -> "Bitstream":
        return self._binary_op(other, np.bitwise_and)

    def __or__(self, other: "Bitstream") -> "Bitstream":
        return self._binary_op(other, np.bitwise_or)

    def __xor__(self, other: "Bitstream") -> "Bitstream":
        return self._binary_op(other, np.bitwise_xor)

    def __invert__(self) -> "Bitstream":
        return Bitstream((1 - self.bits).astype(np.uint8), self.encoding)

    # ------------------------------------------------------------------ #
    # manipulation helpers
    # ------------------------------------------------------------------ #
    def repeat(self, times: int) -> "Bitstream":
        """Concatenate ``times`` copies of the stream (longer observation)."""
        if times < 1:
            raise ValueError("times must be >= 1")
        return Bitstream(np.tile(self.bits, times), self.encoding)

    def rotate(self, shift: int) -> "Bitstream":
        """Circularly rotate the stream by ``shift`` positions."""
        return Bitstream(np.roll(self.bits, shift), self.encoding)

    def permute(self, rng: np.random.Generator | int | None = None) -> "Bitstream":
        """Randomly permute bit positions (value preserved, correlation broken)."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return Bitstream(rng.permutation(self.bits), self.encoding)

    def to_string(self, group: int = 4) -> str:
        """Render as a grouped ``"0110 0011"`` string like the paper's figures."""
        text = "".join(str(int(b)) for b in self.bits)
        if group <= 0:
            return text
        return " ".join(text[i : i + group] for i in range(0, len(text), group))

    def __iter__(self) -> Iterable[int]:
        return iter(int(b) for b in self.bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitstream):
            return NotImplemented
        return (
            self.encoding == other.encoding
            and len(self) == len(other)
            and bool(np.array_equal(self.bits, other.bits))
        )

    def __hash__(self) -> int:  # frozen dataclass with ndarray needs a manual hash
        return hash((self.encoding, self.bits.tobytes()))

    def __repr__(self) -> str:
        preview = self.to_string() if len(self) <= 32 else self.to_string()[:40] + "..."
        return (
            f"Bitstream({preview!r}, encoding={self.encoding!r}, "
            f"value={self.value:.6g}, length={len(self)})"
        )
