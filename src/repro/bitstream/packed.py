"""Packed-word bit-stream backend: 64 bits per machine word, popcount kernels.

The unpacked :class:`~repro.bitstream.bitstream.Bitstream` representation
stores every bit as one ``uint8`` byte, which is convenient but makes the
bit-exact simulation of long streams (``2**precision`` cycles per kernel
evaluation, across hundreds of dot-product engines) the dominant wall-clock
cost of the MNIST accuracy path.  This module provides the standard
SC-simulator remedy: bits are packed 64-per-``uint64`` word and every gate of
the stochastic datapath becomes a word-level bitwise operation, so one numpy
instruction simulates 64 clock cycles of 1 gate (or, on batched arrays, 64
cycles of thousands of gates).

Layout
------
A stream of ``n_bits`` bits occupies ``ceil(n_bits / 64)`` words.  Bit ``i``
of the stream lives in word ``i // 64`` at bit position ``i % 64`` (LSB
first), which is exactly what ``np.packbits(..., bitorder="little")`` produces
when the byte array is viewed as little-endian ``uint64``.  Unused positions
in the final ("tail") word are always zero -- every kernel below preserves
that invariant, and :class:`PackedBitstream` validates it on construction.

Contents
--------
* :func:`pack_bits` / :func:`unpack_bits` -- lossless converters between
  uint8 bit arrays (last axis = time) and uint64 word arrays;
* word kernels for the physical gates of SC: AND/OR/XOR/NOT, the MUX adder,
  the TFF adder (a word-parallel prefix-parity scan), and popcount;
* :class:`PackedBitstream` -- a drop-in packed counterpart of
  :class:`~repro.bitstream.bitstream.Bitstream` with ``pack()``/``unpack()``
  round-tripping.

All batched kernels follow the same convention as the unpacked ones: streams
live on the *last* axis, which here holds words instead of bits, and an
explicit ``n_bits`` carries the true stream length.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

import numpy as np

from .encoding import BIPOLAR, UNIPOLAR, from_probability

__all__ = [
    "WORD_BITS",
    "words_for",
    "pack_bits",
    "pack_comparator_output",
    "unpack_bits",
    "mask_tail",
    "tail_is_clear",
    "extend_periodic",
    "packed_popcount",
    "packed_not",
    "packed_xnor",
    "packed_mux",
    "packed_alternating",
    "packed_delay",
    "packed_transition_count",
    "packed_toggle_states",
    "packed_tff_add",
    "packed_or_add",
    "packed_mux_add",
    "packed_apply_faults",
    "PackedBitstream",
]

#: Number of stream bits stored per machine word.
WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def words_for(n_bits: int) -> int:
    """Number of uint64 words needed to hold ``n_bits`` stream bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


def _as_words(words: np.ndarray) -> np.ndarray:
    arr = np.asarray(words)
    if arr.dtype != np.uint64:
        raise TypeError(f"packed words must be uint64, got {arr.dtype}")
    return arr


def _native_words(byte_view: np.ndarray) -> np.ndarray:
    """Reinterpret a little-endian byte array as uint64 words."""
    words = byte_view.view(np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - exercised on s390x etc. only
        words = words.byteswap()
    return words


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 bit array (time on the last axis) into uint64 words.

    ``bits`` of shape ``(..., n)`` becomes ``(..., ceil(n / 64))`` words with
    bit ``i`` stored LSB-first at word ``i // 64``, position ``i % 64``; tail
    positions are zero.  Accepts uint8 or bool input.
    """
    arr = np.asarray(bits)
    if arr.dtype == np.bool_:
        arr = arr.view(np.uint8)
    elif arr.dtype != np.uint8:
        arr = arr.astype(np.uint8)
    n = arr.shape[-1]
    w = words_for(n)
    packed = np.packbits(arr, axis=-1, bitorder="little")  # (..., ceil(n/8))
    if packed.shape[-1] == w * 8:
        byte_view = np.ascontiguousarray(packed)
    else:
        byte_view = np.zeros(arr.shape[:-1] + (w * 8,), dtype=np.uint8)
        byte_view[..., : packed.shape[-1]] = packed
    return _native_words(byte_view)


def pack_comparator_output(
    reference: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """Pack the comparator matrix ``reference < threshold`` straight into words.

    ``reference`` is the 1-D number-source sequence (one value per clock
    cycle) and ``thresholds`` the target probabilities, any shape; the result
    has shape ``thresholds.shape + (ceil(len(reference) / 64),)``.  The
    comparison is evaluated chunk by chunk over the flattened thresholds so
    the transient unpacked bit matrix stays within a few MiB regardless of
    batch size.  This is the shared packing core of every SNG-style
    generator (comparator SNGs, the ramp-compare converter).
    """
    reference = np.asarray(reference, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    length = reference.shape[-1]
    flat = thresholds.reshape(-1)
    words = np.empty((flat.size, words_for(length)), dtype=np.uint64)
    chunk = max(1, (1 << 23) // max(length, 1))
    for start in range(0, flat.size, chunk):
        block = flat[start : start + chunk]
        words[start : start + chunk] = pack_bits(reference < block[:, np.newaxis])
    return words.reshape(thresholds.shape + (words.shape[-1],))


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack uint64 words back into a uint8 0/1 array of ``n_bits`` bits."""
    arr = np.ascontiguousarray(_as_words(words))
    if arr.shape[-1] != words_for(n_bits):
        raise ValueError(
            f"expected {words_for(n_bits)} words for {n_bits} bits, "
            f"got {arr.shape[-1]}"
        )
    if n_bits == 0:
        return np.zeros(arr.shape[:-1] + (0,), dtype=np.uint8)
    if sys.byteorder == "big":  # pragma: no cover
        arr = arr.byteswap()
    byte_view = arr.view(np.uint8)
    return np.unpackbits(byte_view, axis=-1, bitorder="little", count=n_bits)


def mask_tail(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Zero the unused positions of the tail word (in place; returns ``words``)."""
    arr = _as_words(words)
    rem = n_bits % WORD_BITS
    if rem and arr.shape[-1]:
        arr[..., -1] &= np.uint64((1 << rem) - 1)
    return arr


def tail_is_clear(words: np.ndarray, n_bits: int) -> bool:
    """Audit the tail-word invariant: no bit past ``n_bits`` may be set.

    Every kernel in this module is required to return words whose unused tail
    positions are zero -- otherwise a later :func:`packed_popcount` would
    count garbage bits.  Kernels that can *set* bits past the stream length
    (NOT, XNOR, the alternating pad, and the fault-injection masks of
    :func:`packed_apply_faults`) must therefore end with :func:`mask_tail`;
    this predicate is the test hook that enforces the contract (see the
    hypothesis invariant suite).
    """
    arr = _as_words(words)
    rem = int(n_bits) % WORD_BITS
    if rem == 0 or arr.shape[-1] == 0:
        return True
    tail = arr[..., -1] >> np.uint64(rem)
    return not bool(np.any(tail))


def extend_periodic(
    bits: np.ndarray, n_bits: int, transient: int, period: int
) -> np.ndarray:
    """Extend an eventually-periodic bit prefix to ``n_bits`` positions.

    ``bits`` (time on the last axis) must hold at least the first
    ``transient + period`` positions of the sequence; the result repeats the
    ``period``-long cycle after the transient, so position ``t >= transient``
    takes the value at ``transient + (t - transient) % period``.  This is the
    wrap kernel behind closed-form LFSR resolution in the packed netlist
    simulator: an autonomous register core is iterated only until its state
    repeats, and the recorded waveforms are extended to the full run length
    here.
    """
    arr = np.asarray(bits)
    if transient < 0:
        raise ValueError(f"transient must be non-negative, got {transient}")
    if period < 1:
        raise ValueError(f"period must be positive, got {period}")
    if arr.shape[-1] < transient + period:
        raise ValueError(
            f"need at least transient + period = {transient + period} "
            f"positions, got {arr.shape[-1]}"
        )
    idx = np.arange(int(n_bits))
    tail = idx >= transient
    idx[tail] = transient + (idx[tail] - transient) % period
    return arr[..., idx]


if hasattr(np, "bitwise_count"):

    def _word_popcount(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words)

else:  # pragma: no cover - numpy < 2.0 fallback
    _POPCOUNT_LUT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _word_popcount(words: np.ndarray) -> np.ndarray:
        byte_view = np.ascontiguousarray(words).view(np.uint8)
        counts = _POPCOUNT_LUT[byte_view]
        return counts.reshape(words.shape + (8,)).sum(axis=-1)


def packed_popcount(words: np.ndarray) -> np.ndarray:
    """Ones-count of each packed stream (sums the word axis, returns int64)."""
    counts = _word_popcount(_as_words(words))
    width = counts.shape[-1]
    if width == 0:
        return np.zeros(counts.shape[:-1], dtype=np.int64)
    if width > 16:
        return counts.sum(axis=-1, dtype=np.int64)
    # Unrolled accumulation: ufunc.reduce over a short strided last axis is
    # several times slower than summing word slices on batched count tensors.
    # Accumulate in uint16 (max 16 words * 64 ones = 1024 fits comfortably)
    # to quarter the memory traffic, then widen once.
    total = counts[..., 0].astype(np.uint16)
    for j in range(1, width):
        total += counts[..., j]
    return total.astype(np.int64)


def packed_not(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Bitwise NOT of packed stream(s), with the tail word re-masked."""
    return mask_tail(~_as_words(words), n_bits)


def packed_xnor(x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
    """Bitwise XNOR of packed streams (the bipolar multiplier), tail re-masked."""
    return mask_tail(~(_as_words(x) ^ _as_words(y)), n_bits)


def packed_mux(select: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Word-level 2:1 multiplexer: ``y`` where ``select`` is 1, else ``x``."""
    s = _as_words(select)
    return (_as_words(y) & s) | (_as_words(x) & ~s)


def packed_alternating(n_bits: int) -> np.ndarray:
    """The packed ``1010...`` stream (bit 1 at even cycles): density exactly 0.5.

    This is the bipolar-zero stream used to pad adder-tree inputs -- an
    all-zeros pad would encode bipolar -1 and bias the scaled sum.
    """
    words = np.full(words_for(n_bits), np.uint64(0x5555555555555555), dtype=np.uint64)
    return mask_tail(words, n_bits)


def packed_delay(words: np.ndarray, n_bits: int, fill: int = 0) -> np.ndarray:
    """Delay packed stream(s) by one cycle: output bit ``t`` is input bit ``t-1``.

    ``fill`` (0 or 1) supplies the value seen at cycle 0 -- exactly the Q
    waveform of a D flip-flop with ``initial_state=fill`` whose D input is
    ``words``.  Works on batched arrays (words on the last axis).
    """
    if fill not in (0, 1):
        raise ValueError(f"fill must be 0 or 1, got {fill}")
    w = _as_words(words)
    if w.shape[-1] == 0:
        return w.copy()
    out = w << np.uint64(1)
    out[..., 1:] |= w[..., :-1] >> np.uint64(WORD_BITS - 1)
    out[..., 0] |= np.uint64(fill)
    return mask_tail(out, n_bits)


def packed_transition_count(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Number of value changes between consecutive cycles of each stream.

    The word kernel behind activity extraction: XOR each stream with its
    one-cycle-delayed self and popcount, i.e. ``popcount(w ^ (w >> 1))``
    evaluated across word boundaries.  Cycle 0 has no predecessor and never
    counts as a transition.  Returns int64 counts (word axis reduced).
    """
    w = _as_words(words)
    if n_bits <= 1 or w.shape[-1] == 0:
        return np.zeros(w.shape[:-1], dtype=np.int64)
    diff = w ^ packed_delay(w, n_bits, fill=0)
    diff[..., 0] &= np.uint64(0xFFFFFFFFFFFFFFFE)  # cycle 0: no predecessor
    return packed_popcount(diff)


def packed_toggle_states(
    trigger: np.ndarray, n_bits: int, initial_state: int = 0
) -> np.ndarray:
    """Packed counterpart of :func:`repro.sc.elements.flipflops.toggle_states`.

    Returns, for every stream position, the TFF state *seen at* that cycle
    (the parity of trigger ones strictly before it, XOR ``initial_state``).
    The sequential scan is computed without unpacking: an in-word prefix-XOR
    ladder (log2(64) shifted XORs) produces the inclusive bit-parity prefix of
    each word, whose top bit is the word's total parity; an exclusive XOR
    accumulation across the word axis then supplies each word's carry-in.
    """
    if initial_state not in (0, 1):
        raise ValueError(f"initial_state must be 0 or 1, got {initial_state}")
    t = _as_words(trigger)
    prefix = t.astype(np.uint64, copy=True)
    for shift in (1, 2, 4, 8, 16, 32):
        prefix ^= prefix << np.uint64(shift)
    # In-word exclusive prefix: shift the inclusive prefix up one position.
    exclusive = prefix << np.uint64(1)
    word_parity = prefix >> np.uint64(WORD_BITS - 1)
    carry = np.bitwise_xor.accumulate(word_parity, axis=-1) ^ word_parity
    flip = (carry ^ np.uint64(initial_state)) & np.uint64(1)
    state = exclusive ^ (flip * _ALL_ONES)
    return mask_tail(state, n_bits)


def packed_tff_add(
    x: np.ndarray, y: np.ndarray, n_bits: int, initial_state: int = 0
) -> np.ndarray:
    """Packed TFF-based scaled addition, bit-identical to :func:`tff_add`."""
    xw = _as_words(x)
    disagree = xw ^ _as_words(y)
    state = packed_toggle_states(disagree, n_bits, initial_state)
    return (state & disagree) | (xw & ~disagree)


def packed_or_add(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Packed OR-gate approximate adder."""
    return _as_words(x) | _as_words(y)


def packed_mux_add(x: np.ndarray, y: np.ndarray, select: np.ndarray) -> np.ndarray:
    """Packed multiplexer-based scaled adder, bit-identical to :func:`mux_add`."""
    return packed_mux(select, x, y)


def packed_apply_faults(
    words: np.ndarray,
    stuck0: np.ndarray,
    stuck1: np.ndarray,
    flips: np.ndarray,
    n_bits: int,
) -> np.ndarray:
    """Apply composed fault masks to packed stream(s): one vectorized pass.

    The canonical fault composition of :mod:`repro.faults` (order is part of
    the contract and pinned by tests):

    1. stuck-at-1 positions are forced high (``w | stuck1``),
    2. stuck-at-0 positions are forced low (``& ~stuck0``) -- a position in
       both masks therefore reads 0, the dominant-low convention of a short
       to ground,
    3. soft-error flips (including burst flips) invert the *faulted* wire
       (``^ flips``), modelling transient upsets downstream of the stuck
       defects.

    All masks broadcast against ``words``; the tail word is re-masked because
    ``stuck1`` / ``flips`` may carry bits past ``n_bits`` (the mask
    generators hash whole words).  Returns a new array.
    """
    out = (_as_words(words) | _as_words(stuck1)) & ~_as_words(stuck0)
    out = out ^ _as_words(flips)
    return mask_tail(out, n_bits)


@dataclass(frozen=True)
class PackedBitstream:
    """A finite stochastic bit-stream stored 64 bits per ``uint64`` word.

    The packed counterpart of :class:`~repro.bitstream.bitstream.Bitstream`:
    same value semantics (``ones / length`` density under a unipolar or
    bipolar interpretation), ~8x smaller storage and word-parallel logic
    operators.  Use :meth:`Bitstream.pack` / :meth:`unpack` to convert
    losslessly between the two representations.

    Parameters
    ----------
    words:
        1-D uint64 array of ``ceil(n_bits / 64)`` words, LSB-first bit order,
        with all tail positions zero.
    n_bits:
        The stream length in bits (clock cycles).
    encoding:
        ``"unipolar"`` (default) or ``"bipolar"``.
    """

    words: np.ndarray
    n_bits: int
    encoding: str = UNIPOLAR

    def __init__(
        self, words: np.ndarray, n_bits: int, encoding: str = UNIPOLAR
    ) -> None:
        if encoding not in (UNIPOLAR, BIPOLAR):
            raise ValueError(f"unknown encoding {encoding!r}")
        arr = np.asarray(words)
        if arr.dtype != np.uint64:
            raise TypeError(f"words must be uint64, got {arr.dtype}")
        if arr.ndim != 1:
            raise ValueError(f"words must be one-dimensional, got shape {arr.shape}")
        n_bits = int(n_bits)
        if arr.shape[0] != words_for(n_bits):
            raise ValueError(
                f"expected {words_for(n_bits)} words for {n_bits} bits, "
                f"got {arr.shape[0]}"
            )
        rem = n_bits % WORD_BITS
        if rem and arr.shape[0] and int(arr[-1] >> np.uint64(rem)) != 0:
            raise ValueError(
                "stray bits beyond the stream length in the tail word; "
                "use pack_bits()/mask_tail() to build well-formed words"
            )
        # Copy like the unpacked Bitstream does: the frozen value object must
        # not alias caller-owned storage, or external writes would bypass the
        # tail invariant just checked and change the hash under a dict key.
        object.__setattr__(self, "words", arr.copy())
        object.__setattr__(self, "n_bits", n_bits)
        object.__setattr__(self, "encoding", encoding)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_bits(
        cls, bits, encoding: str | None = None
    ) -> "PackedBitstream":
        """Build from any container :class:`Bitstream` accepts (string, 0/1 array...).

        When ``bits`` is already a :class:`Bitstream` its encoding is kept
        unless ``encoding`` is given explicitly; raw containers default to
        unipolar, as everywhere else.
        """
        from .bitstream import Bitstream

        if isinstance(bits, Bitstream):
            stream = bits
            if encoding is None:
                encoding = stream.encoding
        else:
            if encoding is None:
                encoding = UNIPOLAR
            stream = Bitstream(bits, encoding)
        return cls(pack_bits(stream.bits), len(stream), encoding=encoding)

    @classmethod
    def all_zeros(cls, length: int, encoding: str = UNIPOLAR) -> "PackedBitstream":
        """An all-zero stream (unipolar value 0, bipolar value -1)."""
        return cls(np.zeros(words_for(length), dtype=np.uint64), length, encoding)

    @classmethod
    def all_ones(cls, length: int, encoding: str = UNIPOLAR) -> "PackedBitstream":
        """An all-one stream (unipolar value 1, bipolar value +1)."""
        words = np.full(words_for(length), _ALL_ONES, dtype=np.uint64)
        return cls(mask_tail(words, length), length, encoding)

    @classmethod
    def from_exact(
        cls, value: float, length: int, encoding: str = UNIPOLAR
    ) -> "PackedBitstream":
        """Packed version of :meth:`Bitstream.from_exact` (same rounding)."""
        from .bitstream import Bitstream

        return Bitstream.from_exact(value, length, encoding).pack()

    @classmethod
    def from_random(
        cls,
        value: float,
        length: int,
        rng: np.random.Generator | int | None = None,
        encoding: str = UNIPOLAR,
    ) -> "PackedBitstream":
        """Packed version of :meth:`Bitstream.from_random` (same bit sequence)."""
        from .bitstream import Bitstream

        return Bitstream.from_random(value, length, rng=rng, encoding=encoding).pack()

    def unpack(self):
        """The lossless unpacked :class:`Bitstream` with the same bits."""
        from .bitstream import Bitstream

        return Bitstream(unpack_bits(self.words, self.n_bits), self.encoding)

    # ------------------------------------------------------------------ #
    # interpretation
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n_bits

    @property
    def length(self) -> int:
        """Number of bits (clock cycles) in the stream."""
        return self.n_bits

    @property
    def ones(self) -> int:
        """Number of ``1`` bits in the stream (word-level popcount)."""
        return int(packed_popcount(self.words))

    @property
    def probability(self) -> float:
        """Empirical ones-density ``ones / length``."""
        if self.n_bits == 0:
            raise ValueError("empty bit-stream has no probability")
        return self.ones / self.n_bits

    @property
    def exact_value(self) -> Fraction:
        """The encoded value as an exact rational number."""
        p = Fraction(self.ones, self.n_bits)
        if self.encoding == UNIPOLAR:
            return p
        return 2 * p - 1

    @property
    def value(self) -> float:
        """The encoded value as a float (unipolar ``p`` or bipolar ``2p - 1``)."""
        return float(from_probability(self.probability, self.encoding))

    def as_encoding(self, encoding: str) -> "PackedBitstream":
        """Return the same bits re-interpreted under another encoding."""
        return PackedBitstream(self.words, self.n_bits, encoding=encoding)

    # ------------------------------------------------------------------ #
    # elementwise logic (word-parallel gates)
    # ------------------------------------------------------------------ #
    def _binary_op(self, other: "PackedBitstream", op) -> "PackedBitstream":
        if not isinstance(other, PackedBitstream):
            raise TypeError(
                f"expected PackedBitstream, got {type(other).__name__}"
            )
        if other.n_bits != self.n_bits:
            raise ValueError(
                f"length mismatch: {self.n_bits} vs {other.n_bits} bits"
            )
        return PackedBitstream(op(self.words, other.words), self.n_bits, self.encoding)

    def __and__(self, other: "PackedBitstream") -> "PackedBitstream":
        return self._binary_op(other, np.bitwise_and)

    def __or__(self, other: "PackedBitstream") -> "PackedBitstream":
        return self._binary_op(other, np.bitwise_or)

    def __xor__(self, other: "PackedBitstream") -> "PackedBitstream":
        return self._binary_op(other, np.bitwise_xor)

    def __invert__(self) -> "PackedBitstream":
        return PackedBitstream(
            packed_not(self.words, self.n_bits), self.n_bits, self.encoding
        )

    # ------------------------------------------------------------------ #
    # manipulation helpers (value-preserving, as in the unpacked class)
    # ------------------------------------------------------------------ #
    def repeat(self, times: int) -> "PackedBitstream":
        """Concatenate ``times`` copies of the stream (longer observation)."""
        if times < 1:
            raise ValueError("times must be >= 1")
        if self.n_bits % WORD_BITS == 0:
            return PackedBitstream(
                np.tile(self.words, times), self.n_bits * times, self.encoding
            )
        # A tail that is not word-aligned shifts on every copy; go through the
        # unpacked representation (these helpers are not on the hot path).
        return self.unpack().repeat(times).pack()

    def rotate(self, shift: int) -> "PackedBitstream":
        """Circularly rotate the stream by ``shift`` positions."""
        return self.unpack().rotate(shift).pack()

    def permute(
        self, rng: np.random.Generator | int | None = None
    ) -> "PackedBitstream":
        """Randomly permute bit positions (value preserved, correlation broken)."""
        return self.unpack().permute(rng=rng).pack()

    def to_string(self, group: int = 4) -> str:
        """Render as a grouped ``"0110 0011"`` string like the paper's figures."""
        return self.unpack().to_string(group=group)

    def __iter__(self) -> Iterable[int]:
        return iter(self.unpack())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedBitstream):
            return NotImplemented
        return (
            self.encoding == other.encoding
            and self.n_bits == other.n_bits
            and bool(np.array_equal(self.words, other.words))
        )

    def __hash__(self) -> int:  # frozen dataclass with ndarray needs a manual hash
        return hash((self.encoding, self.n_bits, self.words.tobytes()))

    def __repr__(self) -> str:
        if self.n_bits <= 32:
            preview = self.to_string()
        else:
            preview = self.to_string()[:40] + "..."
        value = f"{self.value:.6g}" if self.n_bits else "nan"
        return (
            f"PackedBitstream({preview!r}, encoding={self.encoding!r}, "
            f"value={value}, length={self.n_bits})"
        )
