"""Correlation metrics between stochastic bit-streams.

Stochastic arithmetic elements are only accurate under specific correlation
assumptions: the AND-gate multiplier requires *uncorrelated* inputs, while
the paper's TFF adder is explicitly insensitive to input auto-correlation
(Section III).  This module provides the standard metrics used to reason
about those assumptions:

* :func:`stochastic_cross_correlation` -- the SCC metric of Alaghi & Hayes,
  which is 0 for independent streams, +1 for maximally overlapping streams
  and -1 for maximally anti-overlapping streams.
* :func:`pearson_correlation` -- the ordinary Pearson coefficient between the
  bit sequences.
* :func:`autocorrelation` -- lag-k autocorrelation of one stream, used to
  demonstrate that ramp-compare converted streams are heavily auto-correlated
  yet still usable by the TFF adder.
* :func:`overlap_count` -- raw counts of the four joint bit outcomes.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from .bitstream import Bitstream

__all__ = [
    "overlap_count",
    "stochastic_cross_correlation",
    "pearson_correlation",
    "autocorrelation",
]

StreamLike = Union[Bitstream, np.ndarray]


def _as_bits(stream: StreamLike) -> np.ndarray:
    if isinstance(stream, Bitstream):
        return stream.bits.astype(np.float64)
    arr = np.asarray(stream, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("expected a one-dimensional bit array")
    return arr


def overlap_count(x: StreamLike, y: StreamLike) -> Dict[str, int]:
    """Return the counts of the four joint outcomes of two equal-length streams.

    Keys are ``"11"``, ``"10"``, ``"01"`` and ``"00"`` where the first digit
    refers to ``x`` and the second to ``y``.
    """
    a = _as_bits(x)
    b = _as_bits(y)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    both = int(np.sum((a == 1) & (b == 1)))
    only_x = int(np.sum((a == 1) & (b == 0)))
    only_y = int(np.sum((a == 0) & (b == 1)))
    neither = int(np.sum((a == 0) & (b == 0)))
    return {"11": both, "10": only_x, "01": only_y, "00": neither}


def stochastic_cross_correlation(x: StreamLike, y: StreamLike) -> float:
    """Stochastic cross-correlation (SCC) between two bit-streams.

    SCC normalizes the deviation of the joint ones-density from independence
    by the maximum deviation achievable at the given marginal densities:

    * ``SCC = 0``  -- streams behave as if independent;
    * ``SCC = +1`` -- ones overlap as much as possible (maximum correlation);
    * ``SCC = -1`` -- ones overlap as little as possible.

    Streams whose marginals are constant 0 or 1 have no correlation degree of
    freedom; by convention this function returns 0 for them.
    """
    a = _as_bits(x)
    b = _as_bits(y)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    n = a.shape[0]
    if n == 0:
        raise ValueError("cannot compute SCC of empty streams")
    p_x = float(a.mean())
    p_y = float(b.mean())
    p_xy = float(np.mean(a * b))
    delta = p_xy - p_x * p_y
    if delta > 0:
        denom = min(p_x, p_y) - p_x * p_y
    else:
        denom = p_x * p_y - max(p_x + p_y - 1.0, 0.0)
    if denom <= 0:
        return 0.0
    return float(delta / denom)


def pearson_correlation(x: StreamLike, y: StreamLike) -> float:
    """Pearson correlation coefficient between two bit sequences.

    Returns 0 when either stream is constant (zero variance).
    """
    a = _as_bits(x)
    b = _as_bits(y)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    std_a = a.std()
    std_b = b.std()
    if std_a == 0.0 or std_b == 0.0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (std_a * std_b))


def autocorrelation(x: StreamLike, lag: int = 1) -> float:
    """Lag-``lag`` autocorrelation of a single bit-stream.

    Ramp-compare analog-to-stochastic conversion produces streams whose bits
    are sorted runs of ones/zeros; their lag-1 autocorrelation is close to 1.
    Independent Bernoulli streams have autocorrelation close to 0.  Constant
    streams return 0 by convention.
    """
    a = _as_bits(x)
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if lag >= a.shape[0]:
        raise ValueError(f"lag {lag} too large for stream of length {a.shape[0]}")
    if lag == 0:
        return 1.0 if a.std() > 0 else 0.0
    head = a[:-lag]
    tail = a[lag:]
    std_h = head.std()
    std_t = tail.std()
    if std_h == 0.0 or std_t == 0.0:
        return 0.0
    return float(np.mean((head - head.mean()) * (tail - tail.mean())) / (std_h * std_t))
