"""Value encodings used by stochastic computing.

Stochastic computing (SC) represents a number as the probability of observing
a ``1`` in a bit-stream.  Two interpretations are used throughout the paper
and this library:

* **unipolar** -- a stream with ones-density ``p`` encodes the value ``p`` in
  the interval ``[0, 1]``.
* **bipolar** -- a stream with ones-density ``p`` encodes ``2 * p - 1`` in the
  interval ``[-1, 1]``.

A stream of length ``N = 2**n`` can represent values on the grid
``{0/N, 1/N, ..., N/N}``, i.e. roughly ``n`` bits of precision (paper,
Section II-A).  The helpers below convert between real values, stream
probabilities and the quantized grid, and are shared by the stochastic number
generators, the arithmetic elements and the neural-network quantizers.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, int, np.ndarray]

__all__ = [
    "UNIPOLAR",
    "BIPOLAR",
    "stream_length",
    "precision_bits",
    "clip_unipolar",
    "clip_bipolar",
    "unipolar_to_bipolar",
    "bipolar_to_unipolar",
    "quantize_unipolar",
    "quantize_bipolar",
    "quantization_grid",
    "to_probability",
    "from_probability",
]

#: Name of the unipolar encoding (values in ``[0, 1]``).
UNIPOLAR = "unipolar"

#: Name of the bipolar encoding (values in ``[-1, 1]``).
BIPOLAR = "bipolar"

_ENCODINGS = (UNIPOLAR, BIPOLAR)


def _check_encoding(encoding: str) -> str:
    if encoding not in _ENCODINGS:
        raise ValueError(
            f"unknown encoding {encoding!r}; expected one of {_ENCODINGS}"
        )
    return encoding


def stream_length(precision_bits: int) -> int:
    """Return the bit-stream length needed for ``precision_bits`` of precision.

    The paper uses the rule ``N = 2**n``: each extra bit of precision doubles
    the stream length (Section II-A).

    >>> stream_length(4)
    16
    """
    if precision_bits < 1:
        raise ValueError(f"precision_bits must be >= 1, got {precision_bits}")
    return 1 << int(precision_bits)


def precision_bits(length: int) -> int:
    """Return the equivalent binary precision of a stream of ``length`` bits.

    The inverse of :func:`stream_length`; ``length`` must be a power of two.
    """
    if length < 2 or (length & (length - 1)) != 0:
        raise ValueError(f"length must be a power of two >= 2, got {length}")
    return int(length).bit_length() - 1


def clip_unipolar(value: ArrayLike) -> np.ndarray:
    """Clip ``value`` into the unipolar range ``[0, 1]``."""
    return np.clip(np.asarray(value, dtype=np.float64), 0.0, 1.0)


def clip_bipolar(value: ArrayLike) -> np.ndarray:
    """Clip ``value`` into the bipolar range ``[-1, 1]``."""
    return np.clip(np.asarray(value, dtype=np.float64), -1.0, 1.0)


def unipolar_to_bipolar(p: ArrayLike) -> np.ndarray:
    """Map a ones-probability ``p`` to the bipolar value ``2 p - 1``."""
    return 2.0 * np.asarray(p, dtype=np.float64) - 1.0


def bipolar_to_unipolar(x: ArrayLike) -> np.ndarray:
    """Map a bipolar value ``x`` to the ones-probability ``(x + 1) / 2``."""
    return (np.asarray(x, dtype=np.float64) + 1.0) / 2.0


def to_probability(value: ArrayLike, encoding: str = UNIPOLAR) -> np.ndarray:
    """Convert an encoded value to the underlying ones-probability.

    Parameters
    ----------
    value:
        Value(s) in the encoding's range.
    encoding:
        Either :data:`UNIPOLAR` or :data:`BIPOLAR`.
    """
    _check_encoding(encoding)
    if encoding == UNIPOLAR:
        return clip_unipolar(value)
    return clip_unipolar(bipolar_to_unipolar(clip_bipolar(value)))


def from_probability(p: ArrayLike, encoding: str = UNIPOLAR) -> np.ndarray:
    """Convert a ones-probability back to the encoded value."""
    _check_encoding(encoding)
    p = clip_unipolar(p)
    if encoding == UNIPOLAR:
        return p
    return unipolar_to_bipolar(p)


def quantization_grid(precision: int, encoding: str = UNIPOLAR) -> np.ndarray:
    """Return every representable value at ``precision`` bits.

    For unipolar streams of length ``N = 2**precision`` the representable
    values are ``k / N`` for ``k`` in ``0..N`` -- note this includes both end
    points, matching the exhaustive sweeps used for Tables 1 and 2.
    """
    _check_encoding(encoding)
    n = stream_length(precision)
    grid = np.arange(n + 1, dtype=np.float64) / n
    return from_probability(grid, encoding)


def quantize_unipolar(value: ArrayLike, precision: int) -> np.ndarray:
    """Round ``value`` to the nearest representable unipolar value.

    Values are clipped to ``[0, 1]`` and snapped to the grid ``k / 2**precision``.
    """
    n = stream_length(precision)
    return np.round(clip_unipolar(value) * n) / n


def quantize_bipolar(value: ArrayLike, precision: int) -> np.ndarray:
    """Round ``value`` to the nearest representable bipolar value.

    The bipolar grid is the image of the unipolar grid under ``2 p - 1``,
    i.e. steps of ``2 / 2**precision``.
    """
    p = bipolar_to_unipolar(clip_bipolar(value))
    return unipolar_to_bipolar(quantize_unipolar(p, precision))
