"""Bit-stream representations and value encodings for stochastic computing.

Two interchangeable stream representations are provided: the byte-per-bit
:class:`Bitstream` reference and the 64-bits-per-word
:class:`~repro.bitstream.packed.PackedBitstream` fast backend, convertible
losslessly via ``Bitstream.pack()`` / ``PackedBitstream.unpack()``.
"""

from .backend import BACKENDS, resolve_backend, validate_backend
from .bitstream import Bitstream
from .correlation import (
    autocorrelation,
    overlap_count,
    pearson_correlation,
    stochastic_cross_correlation,
)
from .packed import (
    WORD_BITS,
    PackedBitstream,
    mask_tail,
    pack_bits,
    pack_comparator_output,
    packed_alternating,
    packed_delay,
    packed_mux,
    packed_mux_add,
    packed_not,
    packed_or_add,
    packed_popcount,
    packed_tff_add,
    packed_toggle_states,
    packed_transition_count,
    packed_xnor,
    unpack_bits,
    words_for,
)
from .encoding import (
    BIPOLAR,
    UNIPOLAR,
    bipolar_to_unipolar,
    clip_bipolar,
    clip_unipolar,
    from_probability,
    precision_bits,
    quantization_grid,
    quantize_bipolar,
    quantize_unipolar,
    stream_length,
    to_probability,
    unipolar_to_bipolar,
)

__all__ = [
    "BACKENDS",
    "resolve_backend",
    "validate_backend",
    "Bitstream",
    "PackedBitstream",
    "WORD_BITS",
    "words_for",
    "pack_bits",
    "pack_comparator_output",
    "unpack_bits",
    "mask_tail",
    "packed_popcount",
    "packed_not",
    "packed_xnor",
    "packed_mux",
    "packed_alternating",
    "packed_delay",
    "packed_transition_count",
    "packed_tff_add",
    "packed_or_add",
    "packed_mux_add",
    "packed_toggle_states",
    "UNIPOLAR",
    "BIPOLAR",
    "stream_length",
    "precision_bits",
    "clip_unipolar",
    "clip_bipolar",
    "unipolar_to_bipolar",
    "bipolar_to_unipolar",
    "quantize_unipolar",
    "quantize_bipolar",
    "quantization_grid",
    "to_probability",
    "from_probability",
    "stochastic_cross_correlation",
    "pearson_correlation",
    "autocorrelation",
    "overlap_count",
]
