"""Bit-stream representation and value encodings for stochastic computing."""

from .bitstream import Bitstream
from .correlation import (
    autocorrelation,
    overlap_count,
    pearson_correlation,
    stochastic_cross_correlation,
)
from .encoding import (
    BIPOLAR,
    UNIPOLAR,
    bipolar_to_unipolar,
    clip_bipolar,
    clip_unipolar,
    from_probability,
    precision_bits,
    quantization_grid,
    quantize_bipolar,
    quantize_unipolar,
    stream_length,
    to_probability,
    unipolar_to_bipolar,
)

__all__ = [
    "Bitstream",
    "UNIPOLAR",
    "BIPOLAR",
    "stream_length",
    "precision_bits",
    "clip_unipolar",
    "clip_bipolar",
    "unipolar_to_bipolar",
    "bipolar_to_unipolar",
    "quantize_unipolar",
    "quantize_bipolar",
    "quantization_grid",
    "to_probability",
    "from_probability",
    "stochastic_cross_correlation",
    "pearson_correlation",
    "autocorrelation",
    "overlap_count",
]
