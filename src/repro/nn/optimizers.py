"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: updates ``params`` in place from matching ``grads`` lists."""

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any accumulated state (momentum, moments)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        for param, grad in zip(params, grads):
            if self.momentum > 0.0:
                key = id(param)
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity - self.learning_rate * grad
                self._velocity[key] = velocity
                param += velocity
            else:
                param -= self.learning_rate * grad

    def reset(self) -> None:
        self._velocity.clear()


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must lie in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        self._t += 1
        for param, grad in zip(params, grads):
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t = 0
