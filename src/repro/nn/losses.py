"""Loss functions.

The paper trains with the standard cross-entropy classification loss
(Section II-B); mean squared error is included for completeness and for the
regression-style unit tests of the training loop.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .activations import softmax

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "one_hot"]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer labels to one-hot rows."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be one-dimensional, got shape {labels.shape}")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError(
            f"labels must lie in [0, {num_classes - 1}], got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


class Loss:
    """Base class: compute the scalar loss and the gradient w.r.t. predictions."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy, fused for numerical stability.

    The network's last layer should output raw logits; this loss applies the
    softmax internally, so the combined gradient is simply
    ``probabilities - one_hot_targets``.
    """

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        if logits.ndim != 2:
            raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
        if targets.ndim == 1:
            targets = one_hot(targets, logits.shape[1])
        if targets.shape != logits.shape:
            raise ValueError(
                f"targets shape {targets.shape} does not match logits {logits.shape}"
            )
        probs = softmax(logits, axis=1)
        batch = logits.shape[0]
        eps = 1e-12
        loss = -np.sum(targets * np.log(probs + eps)) / batch
        grad = (probs - targets) / batch
        return float(loss), grad


class MeanSquaredError(Loss):
    """Mean squared error over all elements."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        diff = predictions - targets
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return loss, grad
