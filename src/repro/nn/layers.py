"""Trainable layers of the numpy neural-network substrate.

The layer zoo covers exactly what the paper's LeNet-5 variant needs --
convolution, max-pooling, dense, flatten, dropout and elementwise activation
-- plus a :class:`FrozenConv2D` used to model the quantized / stochastic
first layer whose weights must *not* move during retraining (Section V-B).

Data layout is ``(batch, channels, height, width)`` for images and
``(batch, features)`` for dense layers.  Every layer implements

* ``forward(x, training)`` -- compute outputs, caching what backward needs;
* ``backward(grad_output)`` -- return the gradient w.r.t. the input and store
  parameter gradients in ``grads``;
* ``params`` / ``grads`` -- parallel lists consumed by the optimizers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .activations import Activation, get_activation
from .conv_ops import col2im, conv_output_hw, im2col
from .initializers import glorot_uniform, zeros

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "FrozenConv2D",
    "StochasticResolutionConv2D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "ActivationLayer",
]


class Layer:
    """Base class for all layers."""

    #: Whether the optimizer should update this layer's parameters.
    trainable = True

    def __init__(self) -> None:
        self.params: List[np.ndarray] = []
        self.grads: List[np.ndarray] = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def parameter_count(self) -> int:
        """Total number of scalar parameters in the layer."""
        return int(sum(p.size for p in self.params))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer ``y = activation(x @ W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.activation: Activation = get_activation(activation)
        self.weights = glorot_uniform(
            (in_features, out_features), in_features, out_features, rng
        )
        self.bias = zeros((out_features,))
        self.params = [self.weights, self.bias]
        self.grads = [np.zeros_like(self.weights), np.zeros_like(self.bias)]
        self._x: Optional[np.ndarray] = None
        self._pre_activation: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expects (batch, {self.in_features}) input, got {x.shape}"
            )
        self._x = x
        self._pre_activation = x @ self.weights + self.bias
        return self.activation.forward(self._pre_activation)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_pre = self.activation.backward(self._pre_activation, grad_output)
        self.grads[0][...] = self._x.T @ grad_pre
        self.grads[1][...] = grad_pre.sum(axis=0)
        return grad_pre @ self.weights.T

    def __repr__(self) -> str:
        return (
            f"Dense({self.in_features} -> {self.out_features}, "
            f"activation={self.activation.name})"
        )


class Conv2D(Layer):
    """2-D convolution over ``(batch, channels, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        filters: int,
        kernel_size: int | Tuple[int, int],
        stride: int = 1,
        padding: int = 0,
        activation=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.in_channels = int(in_channels)
        self.filters = int(filters)
        self.kernel_size = (int(kernel_size[0]), int(kernel_size[1]))
        self.stride = int(stride)
        self.padding = int(padding)
        self.activation: Activation = get_activation(activation)

        kh, kw = self.kernel_size
        fan_in = in_channels * kh * kw
        fan_out = filters * kh * kw
        self.weights = glorot_uniform(
            (filters, in_channels, kh, kw), fan_in, fan_out, rng
        )
        self.bias = zeros((filters,))
        self.params = [self.weights, self.bias]
        self.grads = [np.zeros_like(self.weights), np.zeros_like(self.bias)]
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._pre_activation: Optional[np.ndarray] = None

    def output_shape(self, height: int, width: int) -> Tuple[int, int]:
        """Spatial output size for a given input size."""
        return conv_output_hw(height, width, self.kernel_size, self.stride, self.padding)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expects (batch, {self.in_channels}, H, W) input, got {x.shape}"
            )
        batch = x.shape[0]
        out_h, out_w = self.output_shape(x.shape[2], x.shape[3])
        cols = im2col(x, self.kernel_size, self.stride, self.padding)
        weight_matrix = self.weights.reshape(self.filters, -1)
        out = cols @ weight_matrix.T + self.bias  # (B, P, F)
        self._cols = cols
        self._input_shape = x.shape
        pre = out.transpose(0, 2, 1).reshape(batch, self.filters, out_h, out_w)
        self._pre_activation = pre
        return self.activation.forward(pre)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_pre = self.activation.backward(self._pre_activation, grad_output)
        batch, filters, out_h, out_w = grad_pre.shape
        grad_mat = grad_pre.reshape(batch, filters, out_h * out_w).transpose(0, 2, 1)
        weight_matrix = self.weights.reshape(self.filters, -1)

        grad_weights = np.einsum("bpf,bpk->fk", grad_mat, self._cols)
        self.grads[0][...] = grad_weights.reshape(self.weights.shape)
        self.grads[1][...] = grad_pre.sum(axis=(0, 2, 3))

        grad_cols = grad_mat @ weight_matrix  # (B, P, C*kh*kw)
        return col2im(
            grad_cols, self._input_shape, self.kernel_size, self.stride, self.padding
        )

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels} -> {self.filters}, kernel={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, "
            f"activation={self.activation.name})"
        )


class FrozenConv2D(Conv2D):
    """A convolution whose weights are fixed (not updated by the optimizer).

    Used for the retraining experiments: the first layer is replaced by its
    quantized / stochastic version and frozen, then the rest of the network
    is retrained around it.
    """

    trainable = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)

    @classmethod
    def from_conv(cls, conv: Conv2D, weights: np.ndarray, bias: Optional[np.ndarray] = None,
                  activation=None) -> "FrozenConv2D":
        """Clone geometry from an existing conv layer with replacement weights."""
        frozen = cls(
            conv.in_channels,
            conv.filters,
            conv.kernel_size,
            stride=conv.stride,
            padding=conv.padding,
            activation=activation if activation is not None else conv.activation,
        )
        if weights.shape != frozen.weights.shape:
            raise ValueError(
                f"replacement weights shape {weights.shape} does not match "
                f"{frozen.weights.shape}"
            )
        frozen.weights[...] = weights
        frozen.bias[...] = bias if bias is not None else 0.0
        return frozen

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Parameter gradients are still computed cheaply enough, but the
        # optimizer skips non-trainable layers; pass the input gradient on so
        # any (hypothetical) earlier layers could still train.
        return super().backward(grad_output)


class StochasticResolutionConv2D(FrozenConv2D):
    """A frozen conv layer that emulates the *ideal* stochastic first layer.

    The paper retrains the binary portion of the network to compensate for
    "precision losses introduced by shorter stochastic bit-streams"
    (Abstract, Section V-B).  For that compensation to happen, retraining has
    to see the losses the stochastic engine actually introduces, which go
    beyond weight quantization:

    * the input pixels are quantized to ``precision`` bits by the
      ramp-compare converter;
    * the positive- and negative-weight dot products are only resolved to the
      output-counter LSB, i.e. in steps of ``2**tree_depth / 2**precision``;
    * the activation is the sign of the counter difference, with an optional
      soft threshold.

    This layer reproduces exactly that computation (the noise-free limit of
    the stochastic engine -- what a TFF-adder engine computes up to +/-1 LSB),
    so a network retrained around it has adapted to the stochastic first
    layer's resolution.  The backward pass uses the straight-through estimator
    on the underlying real-valued dot products, like :class:`~repro.nn.activations.Sign`.
    """

    trainable = False

    def __init__(
        self,
        in_channels: int,
        filters: int,
        kernel_size,
        precision: int,
        stride: int = 1,
        padding: int = 0,
        soft_threshold: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(
            in_channels,
            filters,
            kernel_size,
            stride=stride,
            padding=padding,
            activation=None,
            rng=rng,
        )
        if precision < 2:
            raise ValueError("precision must be at least 2 bits")
        if soft_threshold < 0:
            raise ValueError("soft_threshold must be non-negative")
        self.precision = int(precision)
        self.soft_threshold = float(soft_threshold)
        kh, kw = self.kernel_size
        taps = in_channels * kh * kw
        depth = 0
        while (1 << depth) < taps:
            depth += 1
        #: Scaling factor 2**depth of the balanced adder tree.
        self.tree_scale = 1 << depth

    @classmethod
    def from_conv(
        cls,
        conv: Conv2D,
        weights: np.ndarray,
        precision: int,
        soft_threshold: float = 0.0,
    ) -> "StochasticResolutionConv2D":
        """Clone geometry from an existing conv layer with conditioned weights."""
        layer = cls(
            conv.in_channels,
            conv.filters,
            conv.kernel_size,
            precision=precision,
            stride=conv.stride,
            padding=conv.padding,
            soft_threshold=soft_threshold,
        )
        if weights.shape != layer.weights.shape:
            raise ValueError(
                f"replacement weights shape {weights.shape} does not match "
                f"{layer.weights.shape}"
            )
        if np.any(np.abs(weights) > 1.0 + 1e-9):
            raise ValueError("weights must be conditioned into [-1, 1]")
        layer.weights[...] = weights
        layer.bias[...] = 0.0
        return layer

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (batch, {self.in_channels}, H, W) input, got {x.shape}"
            )
        n = 1 << self.precision
        # Ramp-compare conversion quantizes the pixels (floor to the grid).
        quantized = np.floor(np.clip(x, 0.0, 1.0) * n) / n
        batch = x.shape[0]
        out_h, out_w = self.output_shape(x.shape[2], x.shape[3])
        cols = im2col(quantized, self.kernel_size, self.stride, self.padding)

        flat = self.weights.reshape(self.filters, -1)
        w_pos = np.clip(flat, 0.0, None)
        w_neg = np.clip(-flat, 0.0, None)
        pos = cols @ w_pos.T  # (B, P, F) in dot-product units
        neg = cols @ w_neg.T

        # Counter resolution: one LSB corresponds to tree_scale / N.
        lsb = self.tree_scale / n
        pos_counts = np.round(pos / lsb)
        neg_counts = np.round(neg / lsb)
        diff = pos_counts - neg_counts

        sign = np.sign(diff)
        if self.soft_threshold > 0.0:
            sign = np.where(np.abs(diff) < self.soft_threshold * n, 0.0, sign)

        # Cache the real-valued difference for the straight-through backward.
        self._cols = cols
        self._input_shape = x.shape
        self._pre_activation = (
            (pos - neg).transpose(0, 2, 1).reshape(batch, self.filters, out_h, out_w)
        )
        return sign.transpose(0, 2, 1).reshape(batch, self.filters, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Straight-through estimator on the real-valued dot-product difference.
        grad_pre = grad_output * (np.abs(self._pre_activation) <= self.tree_scale)
        batch, filters, out_h, out_w = grad_pre.shape
        grad_mat = grad_pre.reshape(batch, filters, out_h * out_w).transpose(0, 2, 1)
        weight_matrix = self.weights.reshape(self.filters, -1)
        self.grads[0][...] = np.einsum("bpf,bpk->fk", grad_mat, self._cols).reshape(
            self.weights.shape
        )
        self.grads[1][...] = grad_pre.sum(axis=(0, 2, 3))
        grad_cols = grad_mat @ weight_matrix
        return col2im(
            grad_cols, self._input_shape, self.kernel_size, self.stride, self.padding
        )

    def __repr__(self) -> str:
        return (
            f"StochasticResolutionConv2D(filters={self.filters}, "
            f"kernel={self.kernel_size}, precision={self.precision}, "
            f"soft_threshold={self.soft_threshold})"
        )


class MaxPool2D(Layer):
    """Max pooling over non-overlapping windows."""

    trainable = False

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = int(pool_size)
        self._mask: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"MaxPool2D expects (B, C, H, W) input, got {x.shape}")
        batch, channels, height, width = x.shape
        p = self.pool_size
        if height % p or width % p:
            raise ValueError(
                f"input size {height}x{width} not divisible by pool size {p}"
            )
        self._input_shape = x.shape
        reshaped = x.reshape(batch, channels, height // p, p, width // p, p)
        windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, height // p, width // p, p * p
        )
        out = windows.max(axis=-1)
        # Mask of the (first) argmax within each window for routing gradients.
        argmax = windows.argmax(axis=-1)
        mask = np.zeros_like(windows)
        np.put_along_axis(mask, argmax[..., np.newaxis], 1.0, axis=-1)
        self._mask = mask
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._input_shape
        p = self.pool_size
        distributed = self._mask * grad_output[..., np.newaxis]
        grad = distributed.reshape(
            batch, channels, height // p, width // p, p, p
        ).transpose(0, 1, 2, 4, 3, 5)
        return grad.reshape(batch, channels, height, width)

    def __repr__(self) -> str:
        return f"MaxPool2D(pool_size={self.pool_size})"


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    trainable = False

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout (active only during training)."""

    trainable = False

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must lie in [0, 1)")
        self.rate = float(rate)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class ActivationLayer(Layer):
    """Standalone elementwise activation layer."""

    trainable = False

    def __init__(self, activation) -> None:
        super().__init__()
        self.activation = get_activation(activation)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return self.activation.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.activation.backward(self._x, grad_output)

    def __repr__(self) -> str:
        return f"ActivationLayer({self.activation.name})"
