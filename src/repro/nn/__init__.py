"""A from-scratch numpy neural-network library (the TensorFlow/Keras substitute)."""

from .activations import Activation, Identity, ReLU, Sigmoid, Sign, Tanh, get_activation, softmax
from .conv_ops import col2im, conv_output_hw, im2col
from .initializers import glorot_uniform, he_uniform, zeros
from .layers import (
    ActivationLayer,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FrozenConv2D,
    Layer,
    MaxPool2D,
    StochasticResolutionConv2D,
)
from .lenet import FIRST_LAYER_FILTERS, FIRST_LAYER_KERNEL, build_lenet5, build_lenet5_small
from .losses import Loss, MeanSquaredError, SoftmaxCrossEntropy, one_hot
from .network import Sequential, TrainingHistory
from .optimizers import Adam, Optimizer, SGD
from .quantization import (
    prepare_first_layer_weights,
    quantize_weights,
    scale_kernels,
    soft_threshold,
)
from .retraining import freeze_first_layer, quantize_and_freeze, retrain

__all__ = [
    "Activation",
    "ReLU",
    "Sign",
    "Tanh",
    "Sigmoid",
    "Identity",
    "softmax",
    "get_activation",
    "im2col",
    "col2im",
    "conv_output_hw",
    "glorot_uniform",
    "he_uniform",
    "zeros",
    "Layer",
    "Dense",
    "Conv2D",
    "FrozenConv2D",
    "StochasticResolutionConv2D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "ActivationLayer",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "one_hot",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "TrainingHistory",
    "build_lenet5",
    "build_lenet5_small",
    "FIRST_LAYER_FILTERS",
    "FIRST_LAYER_KERNEL",
    "scale_kernels",
    "quantize_weights",
    "prepare_first_layer_weights",
    "soft_threshold",
    "freeze_first_layer",
    "quantize_and_freeze",
    "retrain",
]
