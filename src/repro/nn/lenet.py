"""LeNet-5 topology builders.

The paper evaluates on "a variant [of LeNet-5] provided by the Keras library"
whose first layer has 32 convolution kernels applied to the full 28x28 image
(Fig. 3 shows 784 parallel dot-product engines, i.e. "same" padding).  Two
builders are provided:

* :func:`build_lenet5` -- the full variant: two convolutional layers with
  max-pooling, a hidden dense layer with dropout, and a 10-way output.
* :func:`build_lenet5_small` -- a single-conv variant with the *same first
  layer geometry* (32 kernels, 5x5, same padding) but a lighter binary
  remainder.  Because the paper's experiments only ever modify the first
  layer, this variant exercises the identical hybrid code path at a fraction
  of the CPU-only training cost; it is the default for the Table 3 accuracy
  benchmarks (see DESIGN.md, "Known scale-downs").

Both builders accept ``first_activation`` so the ReLU of the baseline model
can be swapped for the sign activation used by the quantized / stochastic
first layer.
"""

from __future__ import annotations

import numpy as np

from .layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D
from .network import Sequential

__all__ = ["FIRST_LAYER_FILTERS", "FIRST_LAYER_KERNEL", "build_lenet5", "build_lenet5_small"]


#: Number of first-layer kernels in the paper's Fig. 3 topology.
FIRST_LAYER_FILTERS = 32

#: First-layer kernel size (5x5 with "same" padding -> 784 output positions).
FIRST_LAYER_KERNEL = 5


def build_lenet5(
    first_activation: str = "relu",
    dropout_rate: float = 0.5,
    hidden_units: int = 256,
    filters1: int = FIRST_LAYER_FILTERS,
    filters2: int = 64,
    seed: int = 0,
) -> Sequential:
    """The full LeNet-5 variant (two conv layers), image input ``(B, 1, 28, 28)``."""
    rng = np.random.default_rng(seed)
    model = Sequential(name="lenet5")
    model.add(
        Conv2D(1, filters1, FIRST_LAYER_KERNEL, padding=FIRST_LAYER_KERNEL // 2,
               activation=first_activation, rng=rng)
    )
    model.add(MaxPool2D(2))
    model.add(Conv2D(filters1, filters2, 5, padding=2, activation="relu", rng=rng))
    model.add(MaxPool2D(2))
    model.add(Flatten())
    model.add(Dense(filters2 * 7 * 7, hidden_units, activation="relu", rng=rng))
    model.add(Dropout(dropout_rate, rng=rng))
    model.add(Dense(hidden_units, 10, activation=None, rng=rng))
    return model


def build_lenet5_small(
    first_activation: str = "relu",
    dropout_rate: float = 0.25,
    hidden_units: int = 64,
    filters1: int = FIRST_LAYER_FILTERS,
    filters2: int = 16,
    seed: int = 0,
    image_size: int = 28,
) -> Sequential:
    """The reduced variant: identical first layer, lighter binary remainder.

    A small 3x3 second convolution is kept so that -- as in the full LeNet-5
    -- the binary portion of the network can re-extract features from the
    sign-activated first-layer maps during retraining; dropping it makes the
    retraining recovery of Section V-B markedly weaker.
    """
    rng = np.random.default_rng(seed)
    if image_size % 4 != 0:
        raise ValueError("image_size must be divisible by 4 (two 2x2 pooling stages)")
    model = Sequential(name="lenet5-small")
    model.add(
        Conv2D(1, filters1, FIRST_LAYER_KERNEL, padding=FIRST_LAYER_KERNEL // 2,
               activation=first_activation, rng=rng)
    )
    model.add(MaxPool2D(2))
    model.add(Conv2D(filters1, filters2, 3, padding=1, activation="relu", rng=rng))
    model.add(MaxPool2D(2))
    model.add(Flatten())
    pooled = image_size // 4
    model.add(Dense(filters2 * pooled * pooled, hidden_units, activation="relu", rng=rng))
    model.add(Dropout(dropout_rate, rng=rng))
    model.add(Dense(hidden_units, 10, activation=None, rng=rng))
    return model
