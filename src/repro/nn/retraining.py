"""The freeze-and-retrain workflow of Section V-B.

The paper's key enabler for low-precision stochastic first layers is that the
*binary* remainder of the network can be retrained to absorb the noise the
first layer introduces:

1. train the baseline network normally (ReLU first layer, full precision);
2. replace the first layer with its conditioned version -- per-kernel weight
   scaling, ``b``-bit quantization, sign activation, zero bias -- and freeze
   it;
3. retrain the remaining layers for a few epochs.

Step 2/3 are implemented here.  The frozen layer is the exact binary-domain
model of what the stochastic engine computes (up to SC noise, which the
hybrid pipeline adds at inference time), so a single retraining pass serves
both the "Binary" and the two stochastic rows of Table 3.
"""

from __future__ import annotations

import copy
from typing import Optional

import numpy as np

from .activations import Sign
from .layers import Conv2D, FrozenConv2D, StochasticResolutionConv2D
from .network import Sequential, TrainingHistory
from .optimizers import Adam, Optimizer
from .quantization import prepare_first_layer_weights

__all__ = ["freeze_first_layer", "quantize_and_freeze", "retrain"]


def _first_conv_index(model: Sequential) -> int:
    for index, layer in enumerate(model.layers):
        if isinstance(layer, Conv2D):
            return index
    raise ValueError("model has no Conv2D layer to replace")


def freeze_first_layer(
    model: Sequential,
    weights: np.ndarray,
    activation=None,
    name_suffix: str = "frozen",
) -> Sequential:
    """Return a copy of ``model`` whose first conv layer is frozen with ``weights``.

    The remaining layers are deep-copied so retraining the new model leaves
    the original untouched.  The frozen layer's bias is zero, matching the
    bias-free stochastic dot-product engine.
    """
    index = _first_conv_index(model)
    original: Conv2D = model.layers[index]
    frozen = FrozenConv2D.from_conv(
        original,
        weights=np.asarray(weights, dtype=np.float64),
        bias=np.zeros(original.filters),
        activation=activation if activation is not None else original.activation,
    )
    new_layers = []
    for i, layer in enumerate(model.layers):
        if i == index:
            new_layers.append(frozen)
        else:
            new_layers.append(copy.deepcopy(layer))
    return Sequential(new_layers, name=f"{model.name}-{name_suffix}")


def quantize_and_freeze(
    model: Sequential,
    precision: int,
    scale: bool = True,
    sign_threshold: float = 0.0,
    sc_resolution: bool = False,
    soft_threshold: float = 0.0,
) -> Sequential:
    """Freeze the first conv layer in its conditioned (scaled, quantized, sign) form.

    With ``sc_resolution=False`` (default) the frozen layer is the *binary*
    design's first layer: quantized weights, full-resolution accumulation and
    a sign activation.  With ``sc_resolution=True`` the frozen layer instead
    emulates the ideal stochastic engine -- input quantization, counter-LSB
    resolution and soft thresholding -- so that retraining the remaining
    layers compensates for the precision losses the stochastic bit-streams
    introduce (the paper's Section V-B workflow for the hybrid design).  The
    same conditioned weights are later loaded into
    :class:`~repro.sc.convolution.StochasticConv2D` for bit-level evaluation.
    """
    index = _first_conv_index(model)
    original: Conv2D = model.layers[index]
    conditioned = prepare_first_layer_weights(
        original.weights.copy(), precision=precision, scale=scale
    )
    if sc_resolution:
        frozen = StochasticResolutionConv2D.from_conv(
            original,
            weights=conditioned,
            precision=precision,
            soft_threshold=soft_threshold,
        )
        new_layers = []
        for i, layer in enumerate(model.layers):
            new_layers.append(frozen if i == index else copy.deepcopy(layer))
        return Sequential(new_layers, name=f"{model.name}-scq{precision}")
    return freeze_first_layer(
        model,
        conditioned,
        activation=Sign(threshold=sign_threshold),
        name_suffix=f"q{precision}",
    )


def retrain(
    model: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    epochs: int = 2,
    batch_size: int = 64,
    optimizer: Optional[Optimizer] = None,
    validation_data=None,
    rng: Optional[np.random.Generator] = None,
    verbose: bool = False,
) -> TrainingHistory:
    """Retrain the trainable (non-frozen) layers of ``model``.

    A thin wrapper over :meth:`Sequential.fit`; the frozen first layer is
    skipped automatically because the optimizer only sees trainable layers.
    """
    optimizer = optimizer if optimizer is not None else Adam(learning_rate=1e-3)
    return model.fit(
        x_train,
        y_train,
        epochs=epochs,
        batch_size=batch_size,
        optimizer=optimizer,
        validation_data=validation_data,
        rng=rng,
        verbose=verbose,
    )
