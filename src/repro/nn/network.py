"""The sequential network container and training loop.

:class:`Sequential` plays the role of the Keras ``Sequential`` model used by
the paper: it chains layers, runs mini-batch training with any loss /
optimizer pair, evaluates classification accuracy, and supports the
freeze-and-retrain workflow of Section V-B (layer ``trainable`` flags are
honoured by the optimizer step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .layers import Layer
from .losses import Loss, SoftmaxCrossEntropy
from .optimizers import Adam, Optimizer

__all__ = ["TrainingHistory", "Sequential"]


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected by :meth:`Sequential.fit`."""

    loss: List[float] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, List[float]]:
        """Return the history as a plain dictionary."""
        return {
            "loss": list(self.loss),
            "accuracy": list(self.accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


class Sequential:
    """A simple feed-forward stack of layers."""

    def __init__(self, layers: Optional[Sequence[Layer]] = None, name: str = "model") -> None:
        self.layers: List[Layer] = list(layers) if layers else []
        self.name = name

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer (returns self for chaining)."""
        self.layers.append(layer)
        return self

    # ------------------------------------------------------------------ #
    # forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network forward and return the final layer output (logits)."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate a gradient through every layer (reverse order)."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Forward pass in inference mode, batched to bound memory."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(outputs, axis=0)

    def predict_classes(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Return the argmax class of each sample."""
        return np.argmax(self.predict(x, batch_size=batch_size), axis=1)

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    def trainable_parameters(self):
        """Yield ``(params, grads)`` lists of every trainable layer."""
        params: List[np.ndarray] = []
        grads: List[np.ndarray] = []
        for layer in self.layers:
            if layer.trainable and layer.params:
                params.extend(layer.params)
                grads.extend(layer.grads)
        return params, grads

    @property
    def parameter_count(self) -> int:
        """Total number of scalar parameters (trainable and frozen)."""
        return int(sum(layer.parameter_count for layer in self.layers))

    def get_weights(self) -> List[np.ndarray]:
        """Copies of every parameter array, in layer order."""
        return [p.copy() for layer in self.layers for p in layer.params]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load parameter arrays previously produced by :meth:`get_weights`."""
        flat = [p for layer in self.layers for p in layer.params]
        if len(flat) != len(weights):
            raise ValueError(
                f"expected {len(flat)} weight arrays, got {len(weights)}"
            )
        for param, new in zip(flat, weights):
            if param.shape != new.shape:
                raise ValueError(
                    f"weight shape mismatch: {param.shape} vs {new.shape}"
                )
            param[...] = new

    # ------------------------------------------------------------------ #
    # training / evaluation
    # ------------------------------------------------------------------ #
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 64,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        validation_data: Optional[tuple] = None,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Mini-batch gradient descent training.

        Parameters mirror the Keras ``fit`` API; ``y`` may be integer class
        labels (for classification losses) or dense targets.
        """
        loss = loss if loss is not None else SoftmaxCrossEntropy()
        optimizer = optimizer if optimizer is not None else Adam()
        rng = rng if rng is not None else np.random.default_rng(0)
        history = TrainingHistory()
        n = x.shape[0]
        if n != y.shape[0]:
            raise ValueError(f"x has {n} samples but y has {y.shape[0]}")

        for epoch in range(epochs):
            indices = rng.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            correct = 0
            seen = 0
            for start in range(0, n, batch_size):
                batch_idx = indices[start : start + batch_size]
                xb, yb = x[batch_idx], y[batch_idx]
                logits = self.forward(xb, training=True)
                batch_loss, grad = loss.forward(logits, yb)
                self.backward(grad)
                params, grads = self.trainable_parameters()
                optimizer.step(params, grads)

                epoch_loss += batch_loss * len(batch_idx)
                seen += len(batch_idx)
                if yb.ndim == 1:
                    correct += int(np.sum(np.argmax(logits, axis=1) == yb))

            history.loss.append(epoch_loss / seen)
            history.accuracy.append(correct / seen if seen else 0.0)

            if validation_data is not None:
                val_loss, val_acc = self.evaluate(
                    validation_data[0], validation_data[1], loss=loss
                )
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)

            if verbose:
                message = (
                    f"[{self.name}] epoch {epoch + 1}/{epochs} "
                    f"loss={history.loss[-1]:.4f} acc={history.accuracy[-1]:.4f}"
                )
                if validation_data is not None:
                    message += (
                        f" val_loss={history.val_loss[-1]:.4f} "
                        f"val_acc={history.val_accuracy[-1]:.4f}"
                    )
                print(message)
        return history

    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: Optional[Loss] = None,
        batch_size: int = 256,
    ) -> tuple:
        """Return ``(loss, accuracy)`` over a labelled dataset."""
        loss = loss if loss is not None else SoftmaxCrossEntropy()
        total_loss = 0.0
        correct = 0
        n = x.shape[0]
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.forward(xb, training=False)
            batch_loss, _ = loss.forward(logits, yb)
            total_loss += batch_loss * xb.shape[0]
            if yb.ndim == 1:
                correct += int(np.sum(np.argmax(logits, axis=1) == yb))
        return total_loss / n, correct / n

    def misclassification_rate(self, x: np.ndarray, y: np.ndarray) -> float:
        """The paper's headline accuracy metric: 1 - classification accuracy."""
        _, accuracy = self.evaluate(x, y)
        return 1.0 - accuracy

    def summary(self) -> str:
        """Human-readable layer-by-layer summary."""
        lines = [f"Sequential model {self.name!r}"]
        for i, layer in enumerate(self.layers):
            flag = "" if layer.trainable else " [frozen]"
            lines.append(f"  {i:2d}: {layer!r} params={layer.parameter_count}{flag}")
        lines.append(f"  total parameters: {self.parameter_count}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Sequential(name={self.name!r}, layers={len(self.layers)})"
