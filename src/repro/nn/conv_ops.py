"""im2col / col2im primitives for multi-channel convolutions.

The numpy convolution layers lower convolution onto matrix multiplication:
``im2col`` unfolds the input into patch rows, the kernel bank becomes a
``(filters, C*kh*kw)`` matrix, and the convolution is a single ``matmul``.
``col2im`` is the adjoint operation needed for the input gradient in
backpropagation.

Data layout everywhere is ``(batch, channels, height, width)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["im2col", "col2im", "conv_output_hw"]


def conv_output_hw(
    height: int, width: int, kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[int, int]:
    """Output spatial size of a convolution."""
    kh, kw = kernel
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"invalid convolution geometry: input {height}x{width}, kernel {kernel}, "
            f"stride {stride}, padding {padding}"
        )
    return out_h, out_w


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold ``(B, C, H, W)`` inputs into ``(B, out_h*out_w, C*kh*kw)`` patch rows."""
    if x.ndim != 4:
        raise ValueError(f"expected (B, C, H, W) input, got shape {x.shape}")
    batch, channels, height, width = x.shape
    kh, kw = kernel
    out_h, out_w = conv_output_hw(height, width, kernel, stride, padding)

    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )

    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    # (B, out_h, out_w, C, kh, kw) -> (B, P, C*kh*kw)
    patches = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kh * kw
    )
    return np.ascontiguousarray(patches)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter patch rows back onto the input grid.

    Overlapping patch contributions are summed, which is exactly the input
    gradient of a convolution.
    """
    batch, channels, height, width = input_shape
    kh, kw = kernel
    out_h, out_w = conv_output_hw(height, width, kernel, stride, padding)
    if cols.shape != (batch, out_h * out_w, channels * kh * kw):
        raise ValueError(
            f"cols shape {cols.shape} does not match expected "
            f"{(batch, out_h * out_w, channels * kh * kw)}"
        )

    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    reshaped = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[
                :,
                :,
                i : i + stride * out_h : stride,
                j : j + stride * out_w : stride,
            ] += reshaped[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
