"""Weight initializers for the numpy neural-network substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "zeros"]


def glorot_uniform(
    shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization (the Keras default for dense/conv)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(
    shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He uniform initialization, appropriate for ReLU layers."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)
