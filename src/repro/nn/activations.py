"""Activation functions and their derivatives.

Alongside the standard ReLU / softmax pair used by the Keras LeNet-5 variant,
this module provides the **sign activation** the paper substitutes into the
first layer (Section V-B): it outputs -1, 0 or +1 and is trivially cheap in
hardware (a comparator).  Because its true derivative is zero almost
everywhere, training through it uses the straight-through estimator, which is
also what makes *retraining the remaining layers* (rather than the first
layer itself) the natural recovery mechanism in the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Activation",
    "ReLU",
    "Sign",
    "Tanh",
    "Sigmoid",
    "Identity",
    "softmax",
    "get_activation",
]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


class Activation:
    """Base class: elementwise function with a derivative for backprop."""

    name = "activation"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        """Gradient of the loss w.r.t. ``x`` given the gradient w.r.t. the output."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (x > 0.0)


class Sign(Activation):
    """The sign activation used by the stochastic first layer.

    ``threshold`` implements soft thresholding: inputs with magnitude below it
    map to 0 (the near-zero error-mitigation trick of Section V-B).  The
    backward pass uses the straight-through estimator clipped to the linear
    region, so the activation can sit inside a trainable network without
    killing all gradients.
    """

    name = "sign"

    def __init__(self, threshold: float = 0.0, clip: float = 1.0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = float(threshold)
        self.clip = float(clip)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.sign(x)
        if self.threshold > 0.0:
            out = np.where(np.abs(x) < self.threshold, 0.0, out)
        return out

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        # Straight-through estimator: pass the gradient where |x| <= clip.
        return grad_output * (np.abs(x) <= self.clip)

    def __repr__(self) -> str:
        return f"Sign(threshold={self.threshold})"


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - np.tanh(x) ** 2)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        s = self.forward(x)
        return grad_output * s * (1.0 - s)


class Identity(Activation):
    """No-op activation (linear layer output)."""

    name = "linear"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


_BY_NAME = {
    "relu": ReLU,
    "sign": Sign,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "linear": Identity,
    "identity": Identity,
}


def get_activation(spec) -> Activation:
    """Resolve an activation from a name, an instance, or ``None`` (identity)."""
    if spec is None:
        return Identity()
    if isinstance(spec, Activation):
        return spec
    if isinstance(spec, str):
        try:
            return _BY_NAME[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown activation {spec!r}; expected one of {sorted(_BY_NAME)}"
            ) from None
    raise TypeError(f"cannot interpret {spec!r} as an activation")
