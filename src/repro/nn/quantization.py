"""Weight quantization, per-kernel weight scaling and soft thresholding.

These are the three conditioning steps the paper applies to the first-layer
weights before they enter the stochastic domain (Sections IV-B and V-B):

* **quantization** -- weights are rounded to the ``b``-bit bipolar grid, the
  precision of the weight SNGs;
* **weight scaling** -- each convolution kernel is normalized so its largest
  magnitude becomes 1.0, using the full dynamic range of the bipolar encoding
  (Kim et al.'s trick).  Because the first layer's activation is a sign
  function, the positive per-kernel scale factor does not change the layer's
  output, so no rescaling is needed downstream;
* **soft thresholding** -- dot-product results whose magnitude falls below a
  threshold are forced to zero, mitigating SC's inaccuracy near zero.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..bitstream import quantize_bipolar

__all__ = [
    "scale_kernels",
    "quantize_weights",
    "prepare_first_layer_weights",
    "soft_threshold",
]


def scale_kernels(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize each kernel to the full bipolar range ``[-1, 1]``.

    Parameters
    ----------
    weights:
        Kernel bank of shape ``(filters, ...)``; scaling is per filter.

    Returns
    -------
    (scaled, scales):
        ``scaled`` has every kernel's maximum magnitude equal to 1 (kernels
        that are exactly zero are left untouched); ``scales`` holds the
        per-filter divisors so callers can undo the scaling if needed.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim < 2:
        raise ValueError("expected a (filters, ...) kernel bank")
    flat = weights.reshape(weights.shape[0], -1)
    scales = np.max(np.abs(flat), axis=1)
    safe = np.where(scales > 0, scales, 1.0)
    scaled = weights / safe.reshape((-1,) + (1,) * (weights.ndim - 1))
    return scaled, safe


def quantize_weights(weights: np.ndarray, precision: int) -> np.ndarray:
    """Round weights (already in ``[-1, 1]``) to the ``precision``-bit bipolar grid."""
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(np.abs(weights) > 1.0 + 1e-9):
        raise ValueError(
            "weights must lie in [-1, 1] before quantization; apply scale_kernels first"
        )
    return quantize_bipolar(weights, precision)


def prepare_first_layer_weights(
    weights: np.ndarray, precision: int, scale: bool = True
) -> np.ndarray:
    """The full conditioning pipeline for first-layer kernels.

    Applies (optional) per-kernel weight scaling followed by ``precision``-bit
    quantization; the result is what both the binary-quantized baseline and
    the stochastic engine load as kernel weights.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if scale:
        weights, _ = scale_kernels(weights)
    else:
        max_mag = np.max(np.abs(weights))
        if max_mag > 1.0:
            weights = weights / max_mag
    return quantize_weights(weights, precision)


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Force values with magnitude below ``threshold`` to zero."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    values = np.asarray(values, dtype=np.float64)
    if threshold == 0.0:
        return values
    return np.where(np.abs(values) < threshold, 0.0, values)
