"""Deterministic fault-mask generation: counter-hashed packed word masks.

Every fault model in :mod:`repro.faults` reduces to three packed 64-bit word
masks per stream -- ``stuck0``, ``stuck1`` and ``flips`` -- applied in one
vectorized pass by :func:`repro.bitstream.packed.packed_apply_faults`:

    faulted = ((w | stuck1) & ~stuck0) ^ flips

The masks are *counter-based*: the random word at ``(stream, tap, word,
slice)`` is a SplitMix64 hash of that coordinate tuple and the spec's seed,
never a draw from sequential generator state.  This is what makes fault
injection deterministic under recomposition: the mask a stream receives
depends only on its global identity (its index in the flattened batch, plus
the caller-supplied ``offset``), not on tile boundaries, evaluation order,
the simulation backend, or how many streams were faulted before it.  Tiled
and untiled convolutions, packed and unpacked engines, and repeated ``dot()``
calls therefore all see bit-identical faulted streams.

Per-bit Bernoulli masks with arbitrary rate ``p`` are built by the standard
bit-slicing (Horner) combination of ``RATE_BITS`` independent uniform words:
writing ``p`` in binary as ``0.b1 b2 ... bK``, the accumulator is combined
MSB-last as ``acc = word | acc`` where ``b_i == 1`` and ``acc = word & acc``
where ``b_i == 0``, which yields exactly ``P(bit set) = p`` truncated to
``K`` bits of resolution per bit position, independently across positions.

Burst faults smear a Bernoulli "burst start" mask downstream over
``burst_length`` consecutive cycles (across word boundaries), modelling a
multi-cycle upset such as a latched glitch.
"""

from __future__ import annotations

import numpy as np

from ..bitstream.packed import WORD_BITS, mask_tail, words_for

__all__ = [
    "RATE_BITS",
    "splitmix64",
    "coordinate_words",
    "bernoulli_words",
    "burst_words",
]

#: Binary digits of the fault rate used by the Bernoulli bit-slicing scheme;
#: rates are realized with resolution ``2**-RATE_BITS`` (~6e-10 at 31 bits),
#: far below any physically meaningful fault-rate difference.
RATE_BITS = 31

_U64 = np.uint64
_GOLDEN = _U64(0x9E3779B97F4A7C15)
_MIX1 = _U64(0xBF58476D1CE4E5B9)
_MIX2 = _U64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer: uniform uint64 words from counters.

    This is the output function of the SplitMix64 generator (Steele et al.),
    whose designed use is exactly this: hashing sequential counter values
    into statistically independent 64-bit words.  Input must be uint64.
    """
    z = (x + _GOLDEN).astype(_U64)
    z = (z ^ (z >> _U64(30))) * _MIX1
    z = (z ^ (z >> _U64(27))) * _MIX2
    return z ^ (z >> _U64(31))


def coordinate_words(
    seed: int, salt: int, n_streams: int, taps: int, n_bits: int, offset: int = 0
) -> np.ndarray:
    """Base counter grid for one mask channel: shape ``(n_streams, taps, W)``.

    Every ``(stream, tap, word)`` cell holds a distinct uint64 counter derived
    from the *global* stream index ``offset + stream``; ``salt`` separates the
    mask channels (flips vs. stuck-at-0 vs. ...) and the Bernoulli slices so
    no two channels ever reuse a hash input.
    """
    width = words_for(n_bits)
    stream_idx = np.arange(offset, offset + n_streams, dtype=np.uint64)
    tap_idx = np.arange(taps, dtype=np.uint64)
    word_idx = np.arange(width, dtype=np.uint64)
    flat = (
        stream_idx[:, np.newaxis, np.newaxis] * _U64(taps)
        + tap_idx[np.newaxis, :, np.newaxis]
    ) * _U64(max(width, 1)) + word_idx[np.newaxis, np.newaxis, :]
    # Fold seed and salt in through one mixing round so adjacent seeds do not
    # produce correlated counter grids.  The fold is computed in Python ints
    # modulo 2**64 (numpy uint64 *scalar* arithmetic warns on wraparound).
    mixed = (int(seed) * 0x632BE59BD9B4E019 + int(salt) * 0xD6E8FEB86659FD93) % (
        1 << 64
    )
    return flat * _GOLDEN + splitmix64(np.asarray([mixed], dtype=np.uint64))


def bernoulli_words(
    rate: float,
    seed: int,
    salt: int,
    n_streams: int,
    taps: int,
    n_bits: int,
    offset: int = 0,
) -> np.ndarray:
    """Per-bit Bernoulli(``rate``) packed masks, shape ``(n_streams, taps, W)``.

    Deterministic in ``(seed, salt, global stream index, tap, word)``; the
    tail word is pre-masked so downstream popcounts never see garbage bits.
    A ``rate`` of 0 returns all-zero words without hashing.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must lie in [0, 1], got {rate}")
    width = words_for(n_bits)
    shape = (n_streams, taps, width)
    if rate == 0.0 or n_bits == 0 or n_streams == 0 or taps == 0:
        return np.zeros(shape, dtype=np.uint64)
    # Truncate the rate to RATE_BITS binary digits b1..bK (MSB first).
    scaled = int(round(rate * (1 << RATE_BITS)))
    scaled = min(max(scaled, 0), 1 << RATE_BITS)
    if scaled == 0:
        return np.zeros(shape, dtype=np.uint64)
    if scaled == 1 << RATE_BITS:
        return mask_tail(np.full(shape, _U64(0xFFFFFFFFFFFFFFFF)), n_bits)
    digits = [(scaled >> (RATE_BITS - 1 - i)) & 1 for i in range(RATE_BITS)]
    # Drop trailing zero digits: they only AND in extra words without
    # changing the realized probability.
    while digits and digits[-1] == 0:
        digits.pop()
    base = coordinate_words(seed, salt, n_streams, taps, n_bits, offset)

    # Odd stride: Bernoulli slice offsets never collide.  Offsets are folded
    # in Python ints modulo 2**64 (numpy uint64 *scalar* products warn on
    # wraparound; the subsequent array + scalar add wraps silently).
    def slice_base(i: int) -> np.ndarray:
        return base + _U64((i * 0x3C6EF372FE94F82B) % (1 << 64))

    # Horner combination, LSB digit first: after processing digit b_i the
    # accumulator's set-probability is exactly 0.b_i b_{i+1} ... b_M.  The
    # last digit is 1 (trailing zeros were dropped), so the seed step
    # ``acc = w | 0`` collapses to ``acc = w``.
    acc = splitmix64(slice_base(len(digits) - 1))
    for i in range(len(digits) - 2, -1, -1):
        word = splitmix64(slice_base(i))
        if digits[i]:
            acc = word | acc
        else:
            acc = word & acc
    return mask_tail(acc, n_bits)


def burst_words(
    rate: float,
    length: int,
    seed: int,
    salt: int,
    n_streams: int,
    taps: int,
    n_bits: int,
    offset: int = 0,
) -> np.ndarray:
    """Burst-fault flip masks: Bernoulli(``rate``) starts smeared ``length`` bits.

    Each burst start flips itself and the ``length - 1`` following stream
    positions (later cycles, across word boundaries), so a burst of length
    ``L`` corrupts ``L`` consecutive clock edges.  Overlapping bursts merge
    (OR), as colliding upsets would on a real wire.
    """
    if length < 1:
        raise ValueError(f"burst_length must be positive, got {length}")
    starts = bernoulli_words(rate, seed, salt, n_streams, taps, n_bits, offset)
    if length == 1 or not starts.any():
        return starts
    out = starts.copy()
    shifted = starts
    for _ in range(min(length, n_bits) - 1):
        # Shift every stream one position toward later cycles, carrying the
        # top bit of each word into the next word (same layout as
        # packed_delay, but accumulated so each start covers a whole run).
        nxt = shifted << _U64(1)
        if shifted.shape[-1] > 1:
            nxt[..., 1:] |= shifted[..., :-1] >> _U64(WORD_BITS - 1)
        shifted = nxt
        out |= shifted
    return mask_tail(out, n_bits)
