"""Bit flips in binary two's-complement words: the baseline fault model.

The paper's graceful-degradation argument needs a *matched* binary
comparison: the same per-bit soft-error rate applied to the words of a
conventional fixed-point pipeline.  A stochastic stream bit carries weight
``1/N`` wherever it flips; a two's-complement word bit carries weight
``2**k`` -- up to the sign bit -- so the same physical upset rate produces
wildly different value errors.  :func:`flip_binary_words` implements that
baseline injection with the *same* counter-hashed mask machinery as the
stream faults (:mod:`repro.faults.masks`), so both sides of the comparison
are seeded, deterministic, and rate-matched by construction.
"""

from __future__ import annotations

import numpy as np

from ..bitstream.packed import WORD_BITS
from .masks import bernoulli_words

__all__ = ["flip_binary_words"]

#: Salt separating the binary-word flip channel from every stream channel.
_SALT_BINARY = 101


def flip_binary_words(
    values: np.ndarray,
    bits: int,
    rate: float,
    seed: int,
    offset: int = 0,
) -> np.ndarray:
    """Flip bits of signed integers' two's-complement representations.

    Parameters
    ----------
    values:
        Signed integer array of any shape.  Each element is interpreted as a
        ``bits``-wide two's-complement word (elements must fit that width).
    bits:
        Word width in bits (sign bit included), e.g. a binary engine's
        accumulator width.  At most 63 so the result round-trips through
        int64.
    rate:
        Per-bit Bernoulli flip probability -- pass the *same* rate as the
        stream-fault spec to rate-match the comparison.
    seed:
        Mask seed; same ``(seed, offset)`` always flips the same bits.
    offset:
        Global index of the first element (flattened C order), mirroring the
        tiling contract of :meth:`repro.faults.FaultPlan.apply`.

    Returns
    -------
    Flipped values as int64, re-interpreted from the faulted two's-complement
    words (a flipped sign bit swings the value by ``2**(bits-1)`` -- the
    catastrophe the stochastic encoding avoids).
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"values must be integers, got dtype {values.dtype}")
    bits = int(bits)
    if not 1 <= bits <= 63:
        raise ValueError(f"word width must lie in [1, 63] bits, got {bits}")
    flat = values.astype(np.int64).ravel()
    half = np.int64(1) << np.int64(bits - 1)
    if flat.size and (flat.min() < -half or flat.max() >= half):
        raise ValueError(
            f"values exceed the {bits}-bit two's-complement range "
            f"[{-int(half)}, {int(half) - 1}]"
        )
    if rate == 0.0 or flat.size == 0:
        return values.astype(np.int64)
    # One mask "stream" per element whose first `bits` mask bits flip the
    # word: reuse the Bernoulli generator with n_bits = word width.  Width
    # <= 63 < 64 means one uint64 word per element.
    masks = bernoulli_words(
        rate, seed, _SALT_BINARY, flat.size, 1, bits, offset
    ).reshape(flat.size)
    wrap = np.uint64(1) << np.uint64(bits)
    words = flat.view(np.uint64) & (wrap - np.uint64(1))
    flipped = words ^ masks
    # Sign-extend back from `bits` wide to int64.
    signed = flipped.astype(np.int64)
    signed = np.where(signed >= int(half), signed - np.int64(1 << bits), signed)
    return signed.reshape(values.shape)
