"""Deterministic fault injection and graceful degradation (``repro.faults``).

The paper's headline robustness claim is that stochastic-computing
arithmetic degrades *gracefully* under bit errors: a flipped stream bit
perturbs an encoded value by only ``1/N``, while a flipped high-order bit of
a binary two's-complement word is catastrophic.  This package makes that
claim measurable:

* :mod:`~repro.faults.masks` -- counter-hashed (SplitMix64) packed word
  masks: seed-deterministic randomness that is independent of tile
  boundaries, evaluation order, and simulation backend;
* :mod:`~repro.faults.spec` -- :class:`FaultSpec` (the composable fault
  environment: soft-error flips, stuck-at-0/1 stream bits, burst faults,
  stuck SNG register cells, sensor noise), :class:`FaultPlan` (mask
  application with the documented ``((w | stuck1) & ~stuck0) ^ flips``
  composition), :func:`inject_stream`, and :class:`NetlistFaults`
  (per-cell stuck-at faults for the gate-level simulator);
* :mod:`~repro.faults.binary` -- the matched binary baseline:
  :func:`flip_binary_words` upsets two's-complement words at the same
  per-bit rate;
* :mod:`~repro.faults.sweep` -- the accuracy-vs-fault-rate degradation
  experiment behind the ``repro faults`` CLI and ``BENCH_faults.json``.

Engines accept a spec via their ``faults`` field; stream-level faults force
the stream-domain evaluation (``mode="auto"`` resolves to streams, explicit
``mode="counts"`` raises) because the count-domain shortcuts assume
uncorrupted adder-tree inputs.
"""

from .binary import flip_binary_words
from .masks import RATE_BITS, bernoulli_words, burst_words, coordinate_words, splitmix64
from .spec import FaultPlan, FaultSpec, NetlistFaults, inject_stream

__all__ = [
    "RATE_BITS",
    "splitmix64",
    "coordinate_words",
    "bernoulli_words",
    "burst_words",
    "FaultSpec",
    "FaultPlan",
    "NetlistFaults",
    "inject_stream",
    "flip_binary_words",
]
