"""Accuracy-vs-fault-rate degradation curves (the ``repro faults`` sweep).

This module measures the paper's graceful-degradation claim end to end: the
stochastic first conv layer and a matched binary fixed-point baseline are
exposed to the *same* per-bit soft-error rate, and the sweep records how each
side's sign map degrades relative to its own fault-free reference.

* **SC side** -- a :class:`~repro.sc.convolution.StochasticConv2D` layer
  whose engine carries a :class:`~repro.faults.FaultSpec` with the given
  ``flip_rate``: every input stream bit flips independently with that
  probability, so one upset perturbs the encoded value by ``1/N``.
* **Binary side** -- the same convolution evaluated as exact fixed-point
  integer accumulation (``precision``-bit pixels times ``precision``-bit
  bipolar weights into a ``2 * precision + 5``-bit accumulator, the
  :class:`~repro.hw.binary_engine.BinaryEngineModel` datapath), with the same
  per-bit rate applied to the accumulator words' two's-complement bits via
  :func:`~repro.faults.flip_binary_words`.  One upset there swings the value
  by up to ``2**(bits-1)`` -- the catastrophic high-order-bit failure mode.

The swept ``rate`` is a per-bit **per-cycle** upset probability, because soft
errors strike storage per unit time: an SC stream bit lives for exactly one
engine cycle (one upset opportunity, probability ``rate``), while the binary
accumulator word is held across the ``taps`` MAC cycles it takes to produce
one output.  The binary injection therefore uses the net parity of ``taps``
independent per-cycle flips per bit, ``(1 - (1 - 2 rate)**taps) / 2`` --
``taps * rate`` to first order (see ``_binary_word_rate``).  This still
*understates* the binary engine's exposure: its window/weight registers are
ignored and its exponentially higher matched-throughput clock (see
:mod:`repro.hw.binary_engine`) would multiply the per-cycle opportunity
count again.

The degradation metric is *sign agreement*: the fraction of (patch, filter)
sign activations that match the fault-free evaluation, averaged over
``trials`` independent fault seeds.  Both injections run on the shared
counter-hashed mask machinery (:mod:`repro.faults.masks`), so the whole sweep
is seed-deterministic and backend/tiling independent.

``write_artifact`` merges the curve into ``BENCH_faults.json`` using the same
section-merge convention as the benchmark suite's ``BENCH_packed.json``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from ..datasets.synthetic import generate_digits
from ..nn.quantization import prepare_first_layer_weights
from ..sc.convolution import StochasticConv2D
from ..sc.dotproduct import new_sc_engine
from ..utils.windows import extract_patches
from .binary import flip_binary_words
from .spec import FaultSpec

__all__ = [
    "DEFAULT_RATES",
    "FaultSweepConfig",
    "FaultSweepResult",
    "run_fault_sweep",
    "format_fault_sweep",
    "write_artifact",
    "parse_rates",
]

#: Default per-bit flip rates: a fault-free sanity row plus four decades.
DEFAULT_RATES: tuple[float, ...] = (0.0, 1e-4, 1e-3, 1e-2, 1e-1)


@dataclass(frozen=True)
class FaultSweepConfig:
    """Geometry and seeding of one degradation sweep."""

    #: Per-bit flip probabilities swept (applied to SC stream bits and to
    #: binary accumulator bits alike).
    rates: tuple[float, ...] = DEFAULT_RATES
    #: Stream precision: streams are ``2**precision`` bits long and the
    #: binary datapath quantizes pixels/weights to the same grid.
    precision: int = 8
    #: Number of synthetic digit images convolved.
    images: int = 6
    #: Number of convolution kernels (filters).
    filters: int = 8
    #: Square kernel side; padding is ``kernel // 2`` ("same"-style).
    kernel: int = 5
    #: Bit-level simulation backend ("packed" or "unpacked").
    backend: str = "packed"
    #: Master seed: fixes the dataset, the kernels and the fault seeds.
    seed: int = 0
    #: Independent fault seeds averaged per rate.
    trials: int = 2
    #: Patch-tile bound forwarded to the stochastic convolution.
    tile_patches: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("rates must not be empty")
        for rate in self.rates:
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(f"fault rates must lie in [0, 1], got {rate}")
        if self.precision < 2:
            raise ValueError("precision must be at least 2 bits")
        if self.images < 1:
            raise ValueError("need at least one image")
        if self.filters < 1:
            raise ValueError("need at least one filter")
        if self.kernel < 1:
            raise ValueError("kernel side must be positive")
        if self.trials < 1:
            raise ValueError("need at least one fault trial")


@dataclass
class FaultSweepResult:
    """One degradation curve: per-rate rows plus the geometry that made them."""

    config: FaultSweepConfig
    #: Binary accumulator width in bits (sign included).
    accumulator_bits: int
    #: One dict per swept rate with sign-agreement and value-RMSE columns.
    rows: list = field(default_factory=list)

    def to_section(self) -> dict:
        """The JSON-serializable ``fault_sweep`` artifact section."""
        cfg = self.config
        return {
            "rates": list(cfg.rates),
            "precision": cfg.precision,
            "stream_bits": 1 << cfg.precision,
            "accumulator_bits": self.accumulator_bits,
            "images": cfg.images,
            "filters": cfg.filters,
            "kernel": cfg.kernel,
            "backend": cfg.backend,
            "seed": cfg.seed,
            "trials": cfg.trials,
            "rows": self.rows,
        }


def _make_kernels(config: FaultSweepConfig) -> np.ndarray:
    """Deterministic conditioned kernel bank (scaled + quantized weights)."""
    rng = np.random.default_rng(config.seed + 1)
    raw = rng.standard_normal((config.filters, config.kernel, config.kernel))
    return prepare_first_layer_weights(raw, config.precision)


def _binary_accumulators(
    patches: np.ndarray, kernels: np.ndarray, precision: int
) -> tuple[np.ndarray, float]:
    """Exact fixed-point accumulators of the binary sliding-window engine.

    Pixels quantize to the unipolar grid ``q / L`` (``q`` in ``0..L``) and
    weights to the bipolar grid ``2 m / L`` (``m`` in ``-L/2..L/2``), so the
    integer accumulator ``sum(q * m)`` relates to the real dot product by the
    returned ``value_scale = 2 / L**2``.
    """
    length = 1 << precision
    pixels = np.rint(patches * length).astype(np.int64)
    flat_kernels = kernels.reshape(kernels.shape[0], -1)
    weights = np.rint(flat_kernels * (length // 2)).astype(np.int64)
    acc = pixels @ weights.T  # (total_patches, filters)
    return acc, 2.0 / float(length) ** 2


def _binary_word_rate(rate: float, cycles: int) -> float:
    """Net per-bit flip probability of a word exposed for ``cycles`` cycles.

    Each cycle flips the bit independently with probability ``rate``; an even
    number of hits cancels, so the net probability is the XOR parity
    ``(1 - (1 - 2 rate)**cycles) / 2`` (~``cycles * rate`` for small rates).
    """
    return 0.5 * (1.0 - (1.0 - 2.0 * float(rate)) ** int(cycles))


def _fault_seed(config: FaultSweepConfig, trial: int) -> int:
    """Per-trial fault seed derived from the master seed (distinct primes)."""
    return (config.seed * 7919 + trial * 104729 + 13) % (1 << 63)


def run_fault_sweep(config: FaultSweepConfig = FaultSweepConfig()) -> FaultSweepResult:
    """Run the degradation sweep and return the per-rate curve."""
    images, _ = generate_digits(config.images, rng=config.seed)
    kernels = _make_kernels(config)
    padding = config.kernel // 2

    engine = new_sc_engine(precision=config.precision, backend=config.backend)
    conv = StochasticConv2D(
        kernels, engine=engine, padding=padding, tile_patches=config.tile_patches
    )
    clean = conv.forward(images)

    taps = config.kernel * config.kernel
    patches = extract_patches(
        images, (config.kernel, config.kernel), 1, padding
    ).reshape(-1, taps)
    acc, value_scale = _binary_accumulators(patches, kernels, config.precision)
    bits = 2 * config.precision + 5  # BinaryEngineModel.accumulator_bits
    clean_binary_sign = np.sign(acc)

    result = FaultSweepResult(config=config, accumulator_bits=bits)
    for rate in config.rates:
        word_rate = _binary_word_rate(float(rate), taps)
        sc_agree, bin_agree, sc_rmse, bin_rmse = [], [], [], []
        for trial in range(config.trials):
            fault_seed = _fault_seed(config, trial)
            spec = FaultSpec(flip_rate=float(rate), seed=fault_seed)
            faulted = StochasticConv2D(
                kernels,
                engine=dataclasses.replace(engine, faults=spec),
                padding=padding,
                tile_patches=config.tile_patches,
            ).forward(images)
            sc_agree.append(float(np.mean(faulted.sign == clean.sign)))
            sc_rmse.append(
                float(np.sqrt(np.mean((faulted.value - clean.value) ** 2)))
            )

            faulted_acc = flip_binary_words(acc, bits, word_rate, fault_seed)
            bin_agree.append(
                float(np.mean(np.sign(faulted_acc) == clean_binary_sign))
            )
            bin_rmse.append(
                float(
                    np.sqrt(np.mean(((faulted_acc - acc) * value_scale) ** 2.0))
                )
            )
        result.rows.append(
            {
                "rate": float(rate),
                "binary_word_rate": word_rate,
                "sc_sign_agreement": float(np.mean(sc_agree)),
                "binary_sign_agreement": float(np.mean(bin_agree)),
                "sc_value_rmse": float(np.mean(sc_rmse)),
                "binary_value_rmse": float(np.mean(bin_rmse)),
            }
        )
    return result


def format_fault_sweep(result: FaultSweepResult) -> str:
    """Human-readable degradation table."""
    cfg = result.config
    lines = [
        "Fault-injection degradation sweep "
        f"(precision={cfg.precision}, N={1 << cfg.precision} stream bits, "
        f"{cfg.filters}x{cfg.kernel}x{cfg.kernel} kernels, "
        f"{cfg.images} images, {cfg.trials} trial(s), backend={cfg.backend})",
        f"binary baseline: {result.accumulator_bits}-bit accumulator words "
        "exposed for one MAC pass (same per-bit per-cycle upset rate)",
        "",
        f"{'rate':>10}  {'SC agree':>9}  {'bin agree':>9}  "
        f"{'SC rmse':>9}  {'bin rmse':>9}",
    ]
    for row in result.rows:
        lines.append(
            f"{row['rate']:>10.2e}  {row['sc_sign_agreement']:>9.4f}  "
            f"{row['binary_sign_agreement']:>9.4f}  "
            f"{row['sc_value_rmse']:>9.4f}  {row['binary_value_rmse']:>9.4f}"
        )
    lines.append("")
    lines.append(
        "sign agreement = fraction of (patch, filter) sign activations "
        "matching the fault-free evaluation"
    )
    return "\n".join(lines)


def write_artifact(result: FaultSweepResult, path: Path) -> None:
    """Merge the sweep into a JSON artifact (``BENCH_faults.json``)."""
    path = Path(path)
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    data["fault_sweep"] = result.to_section()
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def parse_rates(text: str) -> tuple[float, ...]:
    """Parse a comma-separated rate list (CLI helper)."""
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ValueError(f"invalid rate list {text!r}") from exc
    if not values:
        raise ValueError(f"invalid rate list {text!r}")
    return values
