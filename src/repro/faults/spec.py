"""Fault specifications and plans: seeded, composable fault models.

:class:`FaultSpec` is the user-facing description of a fault environment --
per-bit soft-error flip rate, stuck-at-0/1 rates, burst faults, stuck
SNG/LFSR register cells, and input sensor noise.  It is a frozen value
object: two equal specs always produce bit-identical faults.

:class:`FaultPlan` binds a spec to a stream geometry and produces the packed
word masks actually applied to bit-streams.  The composition order is part
of the contract (pinned by tests):

    faulted = ((stream | stuck1) & ~stuck0) ^ flips

i.e. permanent stuck-at defects first (stuck-at-0 dominates where both
masks hit one position), transient flips -- soft errors and bursts -- last,
modelling upsets observed downstream of the stuck wires.  Injection is
implemented once, on packed 64-bit words
(:func:`repro.bitstream.packed.packed_apply_faults`); the unpacked backend
unpacks the *same* masks, so both backends corrupt bit-identically.

Mask randomness is counter-hashed per global stream index (see
:mod:`repro.faults.masks`): the caller passes the ``offset`` of its current
tile into :meth:`FaultPlan.apply`, which is how tiled and untiled
convolution passes, any ``tile_patches`` value, and repeated ``dot()`` calls
all see identical faults.

:class:`NetlistFaults` carries stuck-at-cell-output faults for the gate
level simulator (:func:`repro.netlist.simulator.simulate`), validated
against the netlist's driven nets before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple, Union

import numpy as np

from ..bitstream.bitstream import Bitstream
from ..bitstream.packed import (
    PackedBitstream,
    pack_bits,
    packed_apply_faults,
    unpack_bits,
)
from .masks import bernoulli_words, burst_words

__all__ = ["FaultSpec", "FaultPlan", "NetlistFaults", "inject_stream"]

# Channel salts: every mask type hashes a disjoint counter space.
_SALT_FLIP = 1
_SALT_STUCK0 = 2
_SALT_STUCK1 = 3
_SALT_BURST = 4


@dataclass(frozen=True)
class FaultSpec:
    """A seeded, deterministic description of a fault environment.

    Parameters
    ----------
    flip_rate:
        Per-bit Bernoulli probability of a soft-error flip on a stream wire
        (each clock cycle of each stream bit is upset independently).  This
        is the headline knob of the graceful-degradation experiment: a
        flipped stream bit perturbs the encoded value by only ``1/N``.
    stuck_zero_rate / stuck_one_rate:
        Per-bit probabilities of permanent stuck-at-0 / stuck-at-1 positions.
        Positions hit by both are read as 0 (short-to-ground dominates).
    burst_rate:
        Per-bit probability that a burst upset *starts* at a position; each
        burst flips ``burst_length`` consecutive cycles (bursts merge when
        they overlap).
    burst_length:
        Number of consecutive cycles corrupted per burst (>= 1).
    sensor_noise_sigma:
        Standard deviation of additive Gaussian input noise applied during
        acquisition (threaded into
        :class:`~repro.hybrid.acquisition.SensorFrontEnd` by the hybrid
        network); 0 disables acquisition noise.
    sng_stuck_cells:
        Stuck register cells inside LFSR-based stochastic number generators:
        a tuple of ``(bit_index, value)`` pairs forced after every register
        update (see :class:`repro.rng.lfsr.LFSR`).  Only affects engines
        whose generators are LFSR-backed.
    seed:
        Seed of the counter-hashed mask generator.  Same spec + same seed =>
        bit-identical faults everywhere, across backends and tilings.
    """

    flip_rate: float = 0.0
    stuck_zero_rate: float = 0.0
    stuck_one_rate: float = 0.0
    burst_rate: float = 0.0
    burst_length: int = 8
    sensor_noise_sigma: float = 0.0
    sng_stuck_cells: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("flip_rate", "stuck_zero_rate", "stuck_one_rate", "burst_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        if self.burst_length < 1:
            raise ValueError(
                f"burst_length must be at least 1, got {self.burst_length}"
            )
        if self.sensor_noise_sigma < 0.0:
            raise ValueError(
                f"sensor_noise_sigma must be non-negative, "
                f"got {self.sensor_noise_sigma}"
            )
        cells = tuple((int(i), int(v)) for i, v in self.sng_stuck_cells)
        for i, v in cells:
            if i < 0:
                raise ValueError(f"stuck cell index must be non-negative, got {i}")
            if v not in (0, 1):
                raise ValueError(f"stuck cell value must be 0 or 1, got {v}")
        object.__setattr__(self, "sng_stuck_cells", cells)

    @property
    def corrupts_streams(self) -> bool:
        """Whether any stream-level fault channel is active.

        Sensor noise and stuck SNG cells act *before* stream generation, so
        they do not by themselves force stream-mask injection (or disable
        the count-domain engine mode).
        """
        return (
            self.flip_rate > 0.0
            or self.stuck_zero_rate > 0.0
            or self.stuck_one_rate > 0.0
            or self.burst_rate > 0.0
        )

    @property
    def active(self) -> bool:
        """Whether the spec perturbs anything at all."""
        return (
            self.corrupts_streams
            or self.sensor_noise_sigma > 0.0
            or bool(self.sng_stuck_cells)
        )

    def plan(self) -> "FaultPlan":
        """Bind the spec into an applicable :class:`FaultPlan`."""
        return FaultPlan(self)


@dataclass(frozen=True)
class FaultPlan:
    """Applies a :class:`FaultSpec`'s stream faults to prepared bit-streams."""

    spec: FaultSpec

    def masks(
        self, n_streams: int, taps: int, n_bits: int, offset: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(stuck0, stuck1, flips)`` packed masks for one stream block.

        Shapes are ``(n_streams, taps, ceil(n_bits / 64))``; burst flips are
        already folded (OR) into the flip mask.  Depends only on the global
        stream indices ``offset .. offset + n_streams - 1``.
        """
        spec = self.spec
        stuck0 = bernoulli_words(
            spec.stuck_zero_rate, spec.seed, _SALT_STUCK0,
            n_streams, taps, n_bits, offset,
        )
        stuck1 = bernoulli_words(
            spec.stuck_one_rate, spec.seed, _SALT_STUCK1,
            n_streams, taps, n_bits, offset,
        )
        flips = bernoulli_words(
            spec.flip_rate, spec.seed, _SALT_FLIP, n_streams, taps, n_bits, offset
        )
        if spec.burst_rate > 0.0:
            flips = flips | burst_words(
                spec.burst_rate, spec.burst_length, spec.seed, _SALT_BURST,
                n_streams, taps, n_bits, offset,
            )
        return stuck0, stuck1, flips

    def apply(
        self, prepared: np.ndarray, n_bits: int, offset: int = 0, packed: bool = True
    ) -> np.ndarray:
        """Inject stream faults into a prepared input block.

        ``prepared`` has shape ``(..., taps, W)`` packed words
        (``packed=True``) or ``(..., taps, N)`` uint8 bits; leading axes are
        flattened in C order to assign global stream indices ``offset + i``.
        Empty blocks (zero streams, zero taps or zero-length streams) pass
        through untouched -- a fault spec on nothing is a no-op, not an
        index error.  Returns a new array of the same shape and dtype.
        """
        arr = np.asarray(prepared)
        if not self.spec.corrupts_streams or arr.size == 0 or n_bits == 0:
            return arr
        if arr.ndim < 2:
            raise ValueError(
                f"prepared streams must have shape (..., taps, words-or-bits), "
                f"got {arr.shape}"
            )
        taps = arr.shape[-2]
        lead = arr.shape[:-2]
        n_streams = int(np.prod(lead)) if lead else 1
        stuck0, stuck1, flips = self.masks(n_streams, taps, n_bits, offset)
        if packed:
            flat = arr.reshape((n_streams, taps, arr.shape[-1]))
            out = packed_apply_faults(flat, stuck0, stuck1, flips, n_bits)
            return out.reshape(arr.shape)
        # Unpacked backend: unpack the *same* masks so both backends corrupt
        # bit-identically, then apply the identical composition on bytes.
        if arr.shape[-1] != n_bits:
            raise ValueError(
                f"expected {n_bits} stream bits on the last axis, "
                f"got {arr.shape[-1]}"
            )
        flat = arr.reshape((n_streams, taps, n_bits)).astype(np.uint8)
        s0 = unpack_bits(stuck0, n_bits)
        s1 = unpack_bits(stuck1, n_bits)
        fl = unpack_bits(flips, n_bits)
        out = ((flat | s1) & (1 - s0)) ^ fl
        return out.reshape(arr.shape).astype(arr.dtype, copy=False)


def inject_stream(
    stream: Union[Bitstream, PackedBitstream],
    spec: FaultSpec,
    index: int = 0,
) -> Union[Bitstream, PackedBitstream]:
    """Inject ``spec``'s stream faults into a single bit-stream object.

    ``index`` is the stream's global identity (its position in whatever
    batch it conceptually belongs to); the same ``(spec, index)`` pair
    always produces the same faulted bits, whichever representation is
    passed.  Empty streams are returned unchanged (no-op, not an error).
    Returns the same type as the input, preserving the encoding.
    """
    plan = spec.plan()
    if isinstance(stream, PackedBitstream):
        if stream.n_bits == 0 or not spec.corrupts_streams:
            return stream
        words = plan.apply(
            stream.words[np.newaxis, :], stream.n_bits, offset=index, packed=True
        )[0]
        return PackedBitstream(words, stream.n_bits, encoding=stream.encoding)
    if isinstance(stream, Bitstream):
        if len(stream) == 0 or not spec.corrupts_streams:
            return stream
        words = plan.apply(
            pack_bits(stream.bits)[np.newaxis, :],
            len(stream),
            offset=index,
            packed=True,
        )[0]
        return Bitstream(unpack_bits(words, len(stream)), encoding=stream.encoding)
    raise TypeError(
        f"expected Bitstream or PackedBitstream, got {type(stream).__name__}"
    )


@dataclass(frozen=True)
class NetlistFaults:
    """Stuck-at faults on cell output nets of a gate-level netlist.

    ``stuck_at`` maps net names to the constant (0 or 1) the net is forced
    to for the whole simulation -- the classical stuck-at fault model of
    manufacturing test.  Forcing happens at the driver, so every reader of
    the net (combinational fan-out, register D inputs, feedback cores,
    recorded waveforms and toggle counts) sees the faulted constant.

    Nets are validated against the netlist before execution: unknown names
    raise ``ValueError`` listing the offenders, exactly like
    ``simulate(record=...)`` does, so a typo cannot silently simulate a
    fault-free circuit.
    """

    stuck_at: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized = {}
        for net, value in dict(self.stuck_at).items():
            value = int(value)
            if value not in (0, 1):
                raise ValueError(
                    f"stuck-at value for net {net!r} must be 0 or 1, got {value}"
                )
            normalized[str(net)] = value
        object.__setattr__(self, "stuck_at", normalized)

    def __bool__(self) -> bool:
        return bool(self.stuck_at)

    @classmethod
    def coerce(
        cls, faults: Optional[Union["NetlistFaults", Mapping[str, int]]]
    ) -> Optional["NetlistFaults"]:
        """Accept a plain ``{net: value}`` mapping or an existing instance."""
        if faults is None:
            return None
        if isinstance(faults, cls):
            return faults
        return cls(stuck_at=faults)
