"""The stochastic dot-product engine (paper Fig. 3, middle).

Each convolution engine of the hybrid first layer computes

    g(x, w) = sign(x . w)

entirely in the stochastic domain, with the trick described in Section IV-B:
instead of using bipolar arithmetic (whose decision point sits at the
maximum-fluctuation density 0.5), the weights are split into positive and
negative magnitude vectors and *two unipolar* dot products are evaluated:

    g_pos = x . w_pos        g_neg = x . w_neg

Each dot product is an AND-multiplier per tap followed by a balanced tree of
scaled adders; two counters convert the results to binary and a binary
comparator implements the sign activation.

This module provides both the raw bit-level kernel
(:func:`stochastic_dot_product`) that operates on pre-generated bit arrays,
and :class:`StochasticDotProductEngine`, which owns the number-generation
configuration (the knob that distinguishes "this work" from the "old SC"
baseline in Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from ..bitstream import stream_length
from ..bitstream.backend import BACKENDS, resolve_backend, validate_backend
from ..bitstream.packed import packed_popcount
from ..faults.spec import FaultSpec
from ..rng import (
    ComparatorSNG,
    LFSRSource,
    VanDerCorputSource,
    ramp_compare_batch,
    ramp_compare_packed,
)
from .elements.adders import AdderTree, MuxAdder, OrAdder, TffAdder, TreePlan
from .elements.converters import count_ones, sign_from_counts
from .elements.util import as_bits
from .mode import MODES, resolve_mode, validate_mode

__all__ = [
    "BACKENDS",
    "MODES",
    "resolve_backend",
    "resolve_mode",
    "validate_backend",
    "validate_mode",
    "split_weights",
    "stochastic_dot_product",
    "stochastic_dot_product_packed",
    "DotProductResult",
    "PreparedWeights",
    "StochasticDotProductEngine",
    "new_sc_engine",
    "old_sc_engine",
]

# Backend selection lives in the shared representation layer
# (repro.bitstream.backend) and mode selection in repro.sc.mode; both are
# re-exported here because the engines are their primary consumers and
# existing callers import them from this module.


def split_weights(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split signed weights into positive and negative unipolar magnitudes.

    Returns ``(w_pos, w_neg)`` with ``weights = w_pos - w_neg`` and both parts
    in ``[0, 1]`` (weights are expected to be pre-scaled into ``[-1, 1]``; see
    :func:`repro.nn.quantization.scale_kernel`).
    """
    w = np.asarray(weights, dtype=np.float64)
    if np.any(np.abs(w) > 1.0 + 1e-9):
        raise ValueError("weights must lie in [-1, 1]; apply weight scaling first")
    w_pos = np.clip(w, 0.0, 1.0)
    w_neg = np.clip(-w, 0.0, 1.0)
    return w_pos, w_neg


def stochastic_dot_product(
    x_bits: np.ndarray,
    w_bits: np.ndarray,
    adder_factory: Callable[[], object] = TffAdder,
) -> np.ndarray:
    """Bit-level unipolar dot product of input streams with weight streams.

    Parameters
    ----------
    x_bits:
        Input bit array of shape ``(..., k, N)``.
    w_bits:
        Weight bit array broadcastable to ``x_bits`` (typically ``(k, N)``).
    adder_factory:
        Factory for the two-input scaled adder used at every tree node.

    Returns
    -------
    counts:
        Ones-count of the tree output, shape ``(...,)``.  The encoded value is
        ``counts / N * 2**depth`` where ``depth = ceil(log2 k)``.
    """
    x_arr, _ = as_bits(x_bits)
    w_arr, _ = as_bits(w_bits)
    products = (x_arr & w_arr).astype(np.uint8)
    tree = AdderTree(adder_factory)
    summed = tree.reduce(products)
    return count_ones(summed)


def stochastic_dot_product_packed(
    x_words: np.ndarray,
    w_words: np.ndarray,
    n_bits: int,
    adder_factory: Callable[[], object] = TffAdder,
) -> np.ndarray:
    """Packed-word counterpart of :func:`stochastic_dot_product`.

    ``x_words`` has shape ``(..., k, W)`` and ``w_words`` broadcasts to it,
    where ``W = ceil(n_bits / 64)`` uint64 words per stream (see
    :mod:`repro.bitstream.packed`).  Produces bit-identical ones-counts to the
    unpacked kernel while simulating 64 clock cycles per word operation.
    """
    products = np.asarray(x_words) & np.asarray(w_words)
    tree = AdderTree(adder_factory)
    summed = tree.reduce_packed(products, n_bits)
    return packed_popcount(summed)


@dataclass
class DotProductResult:
    """Outputs of one batch of stochastic dot products."""

    #: Ones-count of the positive-weight tree output.
    positive_count: np.ndarray
    #: Ones-count of the negative-weight tree output.
    negative_count: np.ndarray
    #: Stream length used.
    length: int
    #: Scale factor 2**depth of the adder tree.
    tree_scale: int

    @property
    def sign(self) -> np.ndarray:
        """The sign activation ``sign(x . w)`` (-1, 0 or +1)."""
        return sign_from_counts(self.positive_count, self.negative_count)

    @property
    def value(self) -> np.ndarray:
        """The reconstructed (scaled-back) dot-product value ``x . w``."""
        diff = self.positive_count.astype(np.float64) - self.negative_count
        return diff / self.length * self.tree_scale


class PreparedWeights:
    """A filter bank: all-kernel weight streams plus a shared adder-tree plan.

    Built once per kernel set by
    :meth:`StochasticDotProductEngine.prepare_weights` and applied to any
    number of input tiles via :meth:`counts`.  Weight streams carry a leading
    *filter* axis and a positive/negative axis -- ``(filters, 2, taps, W)``
    packed words (or ``(..., N)`` bits) -- so one vectorized tree reduction
    covers every ``(filter, sign)`` pair at once, and the positive and
    negative dot products of the paper's split-weight trick are fused into a
    single pass over shared input streams.

    The tree plan's adders are instantiated filter-major (filter 0's positive
    tree, then its negative tree, then filter 1, ...), exactly the order the
    per-filter :meth:`~StochasticDotProductEngine.dot_prepared` loop used, so
    stateful adder factories (per-node MUX select seeds) keep producing
    bit-identical counts -- including across successive calls on one engine.
    Because the plan caches its select streams, evaluating inputs tile by
    tile is bit-identical to one untiled pass.
    """

    def __init__(self, engine: "StochasticDotProductEngine", weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError(
                f"weights must have shape (filters, taps), got {weights.shape}"
            )
        if weights.shape[0] == 0:
            raise ValueError("need at least one filter kernel")
        self.engine = engine
        self.filters, self.taps = weights.shape
        self.n_bits = engine.length
        if engine.backend == "packed":
            w_pos, w_neg = engine.weight_words(weights)
        else:
            w_pos, w_neg = engine.weight_streams(weights)
        #: Weight streams with the filter axis leading: ``(filters, 2, taps, .)``
        #: where index 0 of the second axis is the positive tree's streams.
        self.weight_streams = np.stack([w_pos, w_neg], axis=1)
        # One tree lane per (filter, sign) pair, laid out filter-major like
        # the sequential dot_prepared calls the bank replaces.
        self.plan: TreePlan = AdderTree(engine._adder_factory()).plan(
            self.taps, lanes=2 * self.filters
        )
        # MUX count mode folds the leaf ownership masks into the weight
        # streams once (lazily), so per-tile evaluation is a masked AND/OR
        # accumulate plus one popcount -- no adder-tree stream tensor.
        self._masked_weights: Optional[np.ndarray] = None

    @property
    def tree_scale(self) -> int:
        """Counter scale ``2**depth`` of each per-filter adder tree."""
        return self.plan.tree_scale

    def _masked_weight_bank(self) -> np.ndarray:
        """Weight streams pre-ANDed with their lane's leaf ownership masks.

        Shape ``(2 * filters, taps, W-or-N)`` (lane-major like the plan).
        Because the masks of one lane are disjoint across leaves, the lane's
        root stream is ``OR over taps of (input & masked_weight)`` and its
        count one popcount -- the MUX count-mode kernel.
        """
        if self._masked_weights is None:
            masks = self.plan.leaf_masks(
                self.n_bits, packed=self.engine.backend == "packed"
            )
            flat = self.weight_streams.reshape(
                2 * self.filters, self.taps, self.weight_streams.shape[-1]
            )
            self._masked_weights = flat & masks
        return self._masked_weights

    def counts(self, prepared: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Positive and negative tree counts for prepared input streams.

        ``prepared`` is the output of
        :meth:`StochasticDotProductEngine.prepare_inputs`, shape
        ``(..., taps, W-or-N)``; returns ``(positive, negative)`` int64 count
        arrays of shape ``(..., filters)``, bit-identical to per-filter
        :meth:`~StochasticDotProductEngine.dot_prepared` calls.

        The engine's :attr:`~StochasticDotProductEngine.mode` selects the
        evaluation: in count mode (the default whenever exact) TFF trees
        reduce integer leaf counts and MUX trees apply the cached select
        masks -- neither materializes an adder-tree stream tensor -- while
        stream mode runs the reference level-by-level reduction.  Every path
        produces identical counts.
        """
        x = np.asarray(prepared)
        if x.ndim < 2 or x.shape[-2] != self.taps:
            raise ValueError(
                f"prepared inputs must have {self.taps} taps on axis -2, "
                f"got shape {x.shape}"
            )
        packed = self.engine.backend == "packed"
        use_counts = self.engine._use_count_mode(self.plan)
        if use_counts and not self.plan.supports_count_reduction:
            # All-MUX count mode: accumulate the select-masked products
            # tap by tap (bounded temporaries) and popcount once per lane.
            masked_w = self._masked_weight_bank()
            acc = np.zeros(
                x.shape[:-2] + (2 * self.filters, x.shape[-1]), dtype=x.dtype
            )
            for t in range(self.taps):
                acc |= x[..., t, :][..., np.newaxis, :] & masked_w[:, t, :]
            flat_counts = (
                packed_popcount(acc) if packed else acc.sum(axis=-1, dtype=np.int64)
            )
            stacked = flat_counts.reshape(
                flat_counts.shape[:-1] + (self.filters, 2)
            )
            return stacked[..., 0], stacked[..., 1]
        products = x[..., np.newaxis, np.newaxis, :, :] & self.weight_streams
        lanes = products.reshape(
            products.shape[:-4] + (2 * self.filters, self.taps, products.shape[-1])
        )
        if use_counts:
            # All-TFF trees admit the exact count-domain shortcut: popcount
            # the tap products once, then reduce integer counts level by
            # level (floor/ceil halving) -- provably bit-identical to the
            # stream-level tree and an order of magnitude less work.
            leaf = packed_popcount(lanes) if packed else count_ones(lanes)
            flat_counts = self.plan.reduce_counts(leaf)
        elif packed:
            flat_counts = packed_popcount(self.plan.reduce_packed(lanes, self.n_bits))
        else:
            flat_counts = count_ones(self.plan.reduce_bits(lanes))
        stacked = flat_counts.reshape(flat_counts.shape[:-1] + (self.filters, 2))
        return stacked[..., 0], stacked[..., 1]

    def __repr__(self) -> str:
        return (
            f"PreparedWeights(filters={self.filters}, taps={self.taps}, "
            f"n_bits={self.n_bits}, backend={self.engine.backend!r})"
        )


@dataclass
class StochasticDotProductEngine:
    """A configurable stochastic dot-product engine.

    Parameters
    ----------
    precision:
        Binary precision in bits; the bit-stream length is ``2**precision``.
    adder:
        ``"tff"`` (this work), ``"mux"`` (conventional) or ``"or"``.
    input_generator:
        ``"ramp"`` -- ramp-compare analog-to-stochastic conversion (this work),
        ``"lfsr"`` -- conventional comparator SNG with an LFSR,
        ``"lowdisc"`` -- comparator SNG with a van der Corput source.
    weight_generator:
        ``"lowdisc"`` (this work) or ``"lfsr"`` (old designs).
    seed:
        Seed for LFSR-based and MUX-select sources.
    backend:
        ``"packed"`` simulates with 64-bits-per-word kernels; ``"unpacked"``
        keeps the one-byte-per-bit arrays.  Both backends are bit-order exact
        -- they produce identical counter values for every configuration --
        so the choice only affects speed and memory.  ``None`` (the default)
        resolves to the ``REPRO_BACKEND`` environment variable, falling back
        to ``"packed"`` (see :func:`resolve_backend`).
    mode:
        ``"counts"`` evaluates the adder tree in the count domain -- integer
        halving for TFF trees, cached select masks for MUX trees -- and
        never materializes a tree stream tensor; ``"streams"`` forces the
        reference stream reduction; ``"auto"`` (the resolution default)
        picks counts whenever the configuration admits the exact shortcut
        (TFF and MUX trees do, OR trees do not).  Every mode produces
        bit-identical counter values; the choice only affects speed and
        memory.  ``None`` resolves to the ``REPRO_MODE`` environment
        variable, falling back to ``"auto"`` (see :func:`resolve_mode`).
    faults:
        Optional :class:`~repro.faults.FaultSpec` describing the fault
        environment.  Stream-level faults (flips, stuck-at, bursts) are
        injected into the *input* streams -- by :meth:`dot` /
        :meth:`dot_filters` directly, or by tile drivers calling
        :meth:`apply_faults` with their tile offset -- and force the
        stream-domain evaluation: the count-domain shortcuts assume
        uncorrupted tree inputs, so ``mode="auto"`` resolves to streams
        whenever stream faults are active and an explicit ``mode="counts"``
        raises.  ``sng_stuck_cells`` additionally defects the LFSR of
        LFSR-based input SNGs.  Injection is seed-deterministic and
        bit-identical across backends, tilings, and repeated calls.
    """

    precision: int = 8
    adder: str = "tff"
    input_generator: str = "ramp"
    weight_generator: str = "lowdisc"
    seed: int = 1
    backend: Optional[str] = None
    mode: Optional[str] = None
    faults: Optional[FaultSpec] = None
    _mux_seed_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.precision < 2:
            raise ValueError("precision must be at least 2 bits")
        if self.adder not in ("tff", "mux", "or"):
            raise ValueError(f"unknown adder {self.adder!r}")
        if self.input_generator not in ("ramp", "lfsr", "lowdisc"):
            raise ValueError(f"unknown input generator {self.input_generator!r}")
        if self.weight_generator not in ("lowdisc", "lfsr"):
            raise ValueError(f"unknown weight generator {self.weight_generator!r}")
        self.backend = resolve_backend(self.backend)
        self.mode = resolve_mode(self.mode)
        if self.mode == "counts" and self.adder == "or":
            raise ValueError(
                "mode='counts' is exact only for TFF and MUX adder trees; "
                "the OR adder's output is position-dependent -- use "
                "mode='streams' (or 'auto')"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise TypeError(
                f"faults must be a FaultSpec or None, got {type(self.faults).__name__}"
            )
        if self.mode == "counts" and self._stream_faults_active:
            raise ValueError(
                "mode='counts' is invalid under stream-level fault injection: "
                "the count-domain shortcuts assume uncorrupted tree inputs -- "
                "use mode='streams' (or 'auto', which resolves to streams "
                "while faults are active)"
            )

    @property
    def _stream_faults_active(self) -> bool:
        """Whether the engine must inject fault masks into input streams."""
        return self.faults is not None and self.faults.corrupts_streams

    def apply_faults(self, prepared: np.ndarray, offset: int = 0) -> np.ndarray:
        """Inject the engine's stream faults into :meth:`prepare_inputs` output.

        ``offset`` is the global index of the first stream in ``prepared``
        (tile drivers pass their tile start so any ``tile_patches`` value
        yields bit-identical faulted streams).  A no-op when no stream fault
        channel is active.  :meth:`dot` and :meth:`dot_filters` call this
        internally at offset 0; callers feeding :meth:`dot_prepared` /
        :meth:`dot_filters_prepared` directly apply it themselves so the
        offset (and the once-per-tile injection point) stays under their
        control.
        """
        if not self._stream_faults_active:
            return prepared
        return self.faults.plan().apply(
            prepared, self.length, offset=offset, packed=self.backend == "packed"
        )

    def _use_count_mode(self, plan: TreePlan) -> bool:
        """Whether ``plan`` should reduce in the count domain under :attr:`mode`."""
        if self.mode == "streams":
            return False
        if self._stream_faults_active:
            # Faulted streams invalidate the count-domain algebra (auto =>
            # streams); explicit counts was already rejected at init.
            return False
        supported = plan.supports_count_reduction or plan.supports_masked_reduction
        if not supported and self.mode == "counts":
            raise ValueError(
                "mode='counts' is exact only for all-TFF or all-MUX adder "
                "trees; this plan mixes or lacks such levels"
            )
        return supported

    # ------------------------------------------------------------------ #
    # stream generation
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Bit-stream length ``2**precision``."""
        return stream_length(self.precision)

    def input_streams(self, values: np.ndarray) -> np.ndarray:
        """Convert unipolar input values (shape ``(...,)``) to bit arrays ``(..., N)``."""
        values = np.asarray(values, dtype=np.float64)
        if self.input_generator == "ramp":
            return ramp_compare_batch(values, self.length)
        return self._input_sng().generate_bits(values, self.length)

    def input_words(self, values: np.ndarray) -> np.ndarray:
        """Packed variant of :meth:`input_streams`: shape ``(..., ceil(N/64))`` uint64."""
        values = np.asarray(values, dtype=np.float64)
        if self.input_generator == "ramp":
            return ramp_compare_packed(values, self.length)
        return self._input_sng().generate_packed(values, self.length)

    def _input_sng(self) -> ComparatorSNG:
        if self.input_generator == "lfsr":
            stuck = self.faults.sng_stuck_cells if self.faults is not None else ()
            return ComparatorSNG(
                LFSRSource(self.precision, seed=self.seed, stuck_cells=stuck)
            )
        return ComparatorSNG(VanDerCorputSource(self.precision))

    def _weight_sng(self) -> ComparatorSNG:
        if self.weight_generator == "lowdisc":
            return ComparatorSNG(VanDerCorputSource(self.precision))
        return ComparatorSNG(
            LFSRSource(self.precision, seed=(self.seed * 3 + 1) % 255 or 1)
        )

    def weight_streams(self, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Generate positive and negative weight bit arrays (shape ``w.shape + (N,)``)."""
        w_pos, w_neg = split_weights(weights)
        sng = self._weight_sng()
        return sng.generate_bits(w_pos, self.length), sng.generate_bits(
            w_neg, self.length
        )

    def weight_words(self, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Packed variant of :meth:`weight_streams` (uint64 words per stream)."""
        w_pos, w_neg = split_weights(weights)
        sng = self._weight_sng()
        return sng.generate_packed(w_pos, self.length), sng.generate_packed(
            w_neg, self.length
        )

    def prepare_inputs(self, values: np.ndarray) -> np.ndarray:
        """Generate input streams in the active backend's representation.

        The returned array is meant to be passed to :meth:`dot_prepared`
        (possibly many times, e.g. once per convolution kernel); its layout --
        uint8 bits or uint64 words on the last axis -- depends on
        :attr:`backend`, so treat it as opaque.
        """
        if self.backend == "packed":
            return self.input_words(values)
        return self.input_streams(values)

    def dot_prepared(
        self, prepared: np.ndarray, weights: np.ndarray
    ) -> DotProductResult:
        """Dot product of :meth:`prepare_inputs` output with fresh weight streams."""
        if self.backend == "packed":
            w_pos, w_neg = self.weight_words(weights)
            return self.dot_from_packed(prepared, w_pos, w_neg)
        w_pos, w_neg = self.weight_streams(weights)
        return self.dot_from_streams(prepared, w_pos, w_neg)

    def prepare_weights(self, weights: np.ndarray) -> PreparedWeights:
        """Generate the filter bank for a whole ``(filters, taps)`` kernel set.

        The returned :class:`PreparedWeights` evaluates every filter's
        positive and negative dot products in one vectorized pass and is
        reusable across input tiles; combined with :meth:`prepare_inputs` it
        replaces a loop of per-filter :meth:`dot_prepared` calls with
        bit-identical counts.
        """
        return PreparedWeights(self, weights)

    def dot_filters_prepared(
        self, prepared: np.ndarray, weights: np.ndarray | PreparedWeights
    ) -> DotProductResult:
        """All-filter dot products of prepared inputs: counts shaped ``(..., filters)``.

        ``weights`` is either a raw ``(filters, taps)`` kernel array or an
        existing :class:`PreparedWeights` bank (pass the bank when evaluating
        several input tiles so weight streams and adder nodes are built only
        once).
        """
        bank = (
            weights
            if isinstance(weights, PreparedWeights)
            else self.prepare_weights(weights)
        )
        if bank.engine is not self:
            raise ValueError("prepared weights belong to a different engine")
        pos, neg = bank.counts(prepared)
        return DotProductResult(
            positive_count=pos,
            negative_count=neg,
            length=self.length,
            tree_scale=bank.tree_scale,
        )

    def dot_filters(self, x: np.ndarray, weights: np.ndarray) -> DotProductResult:
        """Filter-parallel :meth:`dot`: ``x`` is ``(..., taps)``, weights
        ``(filters, taps)``; result counts have shape ``(..., filters)``."""
        x = np.asarray(x, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or x.shape[-1] != weights.shape[-1]:
            raise ValueError(
                f"tap count mismatch: inputs have {x.shape[-1]}, "
                f"weights have shape {weights.shape}"
            )
        return self.dot_filters_prepared(
            self.apply_faults(self.prepare_inputs(x)), weights
        )

    def _adder_factory(self) -> Callable[[], object]:
        if self.adder == "tff":
            return TffAdder
        if self.adder == "or":
            return OrAdder

        def make_mux() -> MuxAdder:
            # Give every tree node its own select source so node outputs stay
            # mutually uncorrelated, mirroring independent hardware LFSRs.
            # The counter deliberately advances across dot()/dot_prepared()
            # calls: sequential kernel evaluations on one engine see
            # *continuing* select streams, modelling free-running hardware
            # sources (the bipolar engine, whose ablation needs repeatable
            # single evaluations, resets its counter per call instead).
            self._mux_seed_counter += 1
            return MuxAdder(seed=self.seed * 1000 + self._mux_seed_counter)

        return make_mux

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    def dot(self, x: np.ndarray, weights: np.ndarray) -> DotProductResult:
        """Compute ``x . w`` for inputs ``x`` in ``[0, 1]`` and weights in ``[-1, 1]``.

        ``x`` has shape ``(..., k)`` and ``weights`` shape ``(k,)``; the result
        arrays have shape ``(...,)``.
        """
        x = np.asarray(x, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if x.shape[-1] != weights.shape[-1]:
            raise ValueError(
                f"tap count mismatch: inputs have {x.shape[-1]}, "
                f"weights have {weights.shape[-1]}"
            )
        return self.dot_prepared(self.apply_faults(self.prepare_inputs(x)), weights)

    def _plan_counts(self, products: np.ndarray, plan: TreePlan) -> np.ndarray:
        """Root ones-counts of ``(..., k, W-or-N)`` leaf products under :attr:`mode`."""
        packed = self.backend == "packed"
        if self._use_count_mode(plan):
            if plan.supports_count_reduction:
                leaf = packed_popcount(products) if packed else count_ones(products)
                return plan.reduce_counts(leaf)
            if packed:
                return plan.masked_counts_packed(products, self.length)
            return plan.masked_counts_bits(products)
        if packed:
            return packed_popcount(plan.reduce_packed(products, self.length))
        return count_ones(plan.reduce_bits(products))

    def dot_from_streams(
        self,
        x_bits: np.ndarray,
        w_pos_bits: np.ndarray,
        w_neg_bits: np.ndarray,
    ) -> DotProductResult:
        """Compute the dot product from pre-generated bit arrays.

        This is the path used by the convolution driver, which generates the
        input streams once per image and reuses them for all 32 kernels.
        Honours :attr:`mode`: the count-domain path never builds the tree's
        stream tensors, with counter values bit-identical to the stream path.
        """
        x_arr, _ = as_bits(x_bits)
        wp_arr, _ = as_bits(w_pos_bits)
        wn_arr, _ = as_bits(w_neg_bits)
        taps = x_arr.shape[-2]
        # Both plans are instantiated through one shared factory before any
        # reduction runs -- the exact node enumeration (positive tree first)
        # the historical back-to-back AdderTree.reduce() calls produced, so
        # stateful factories (per-node MUX select seeds) stay bit-identical.
        factory = self._adder_factory()
        tree = AdderTree(factory)
        plan_pos = tree.plan(taps)
        plan_neg = tree.plan(taps)
        pos = self._plan_counts((x_arr & wp_arr).astype(np.uint8), plan_pos)
        neg = self._plan_counts((x_arr & wn_arr).astype(np.uint8), plan_neg)
        return self._dot_result(pos, neg, taps)

    def dot_from_packed(
        self,
        x_words: np.ndarray,
        w_pos_words: np.ndarray,
        w_neg_words: np.ndarray,
    ) -> DotProductResult:
        """Packed-word counterpart of :meth:`dot_from_streams`.

        All arguments are uint64 word arrays (``(..., k, W)`` inputs, weight
        arrays broadcastable to them) as produced by :meth:`input_words` and
        :meth:`weight_words`; the counter values are bit-identical to the
        unpacked path (and, per :attr:`mode`, across count/stream modes).
        """
        x_arr = np.asarray(x_words)
        taps = x_arr.shape[-2]
        factory = self._adder_factory()
        tree = AdderTree(factory)
        plan_pos = tree.plan(taps)
        plan_neg = tree.plan(taps)
        pos = self._plan_counts(x_arr & np.asarray(w_pos_words), plan_pos)
        neg = self._plan_counts(x_arr & np.asarray(w_neg_words), plan_neg)
        return self._dot_result(pos, neg, taps)

    def _dot_result(
        self, pos: np.ndarray, neg: np.ndarray, taps: int
    ) -> DotProductResult:
        """Assemble the result both backends share (single tree_scale rule)."""
        return DotProductResult(
            positive_count=pos,
            negative_count=neg,
            length=self.length,
            tree_scale=1 << AdderTree().depth(taps),
        )


def new_sc_engine(
    precision: int,
    seed: int = 1,
    backend: Optional[str] = None,
    mode: Optional[str] = None,
    faults: Optional[FaultSpec] = None,
) -> StochasticDotProductEngine:
    """The paper's proposed configuration: TFF adder, ramp input, low-discrepancy weights."""
    return StochasticDotProductEngine(
        precision=precision,
        adder="tff",
        input_generator="ramp",
        weight_generator="lowdisc",
        seed=seed,
        backend=backend,
        mode=mode,
        faults=faults,
    )


def old_sc_engine(
    precision: int,
    seed: int = 1,
    backend: Optional[str] = None,
    mode: Optional[str] = None,
    faults: Optional[FaultSpec] = None,
) -> StochasticDotProductEngine:
    """The conventional configuration used as the "Old SC" baseline in Table 3.

    MUX adders driven by pseudo-random select streams and LFSR-based SNGs for
    both inputs and weights, matching the Fig. 1 primitives of prior work.
    """
    return StochasticDotProductEngine(
        precision=precision,
        adder="mux",
        input_generator="lfsr",
        weight_generator="lfsr",
        seed=seed,
        backend=backend,
        mode=mode,
        faults=faults,
    )
