"""The bipolar stochastic dot product -- the design alternative the paper rejects.

Section IV-B explains why the hybrid design does *not* use bipolar stochastic
arithmetic even though the weights are signed: in the bipolar encoding the
sign-activation decision point maps to bit-streams of unipolar density 0.5,
which is exactly where stochastic fluctuation (and switching activity) is
maximal, so accuracy and power both suffer.  The paper's solution is the
positive/negative weight split implemented by
:class:`~repro.sc.dotproduct.StochasticDotProductEngine`.

This module implements the rejected alternative so the claim can be measured:
:class:`BipolarDotProductEngine` evaluates ``x . w`` with XNOR multipliers and
a scaled adder tree entirely in the bipolar domain.  The ablation benchmark
``benchmarks/test_ablation_bipolar.py`` compares the two designs' accuracy
near the decision point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..bitstream import bipolar_to_unipolar
from ..rng import ComparatorSNG, SobolSource, VanDerCorputSource
from .elements.adders import AdderTree, MuxAdder, TffAdder
from .elements.converters import count_ones
from .elements.multipliers import xnor_multiply
from .dotproduct import stream_length

__all__ = ["BipolarDotProductResult", "BipolarDotProductEngine"]


@dataclass
class BipolarDotProductResult:
    """Outputs of one batch of bipolar stochastic dot products."""

    #: Ones-count of the adder-tree output stream.
    count: np.ndarray
    #: Stream length used.
    length: int
    #: Scale factor 2**depth of the adder tree.
    tree_scale: int

    @property
    def value(self) -> np.ndarray:
        """The reconstructed dot-product value ``x . w``."""
        bipolar = 2.0 * self.count.astype(np.float64) / self.length - 1.0
        return bipolar * self.tree_scale

    @property
    def sign(self) -> np.ndarray:
        """Sign activation: compare the counter against the mid-scale N/2."""
        return np.sign(self.count.astype(np.int64) * 2 - self.length).astype(np.int8)


@dataclass
class BipolarDotProductEngine:
    """Fully bipolar stochastic dot-product engine (XNOR multipliers).

    Parameters
    ----------
    precision:
        Binary precision in bits (stream length ``2**precision``).
    adder:
        ``"tff"`` or ``"mux"`` scaled adders for the reduction tree.
    seed:
        Seed for LFSR/MUX-select sources.
    """

    precision: int = 8
    adder: str = "tff"
    seed: int = 1
    _mux_seed_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.precision < 2:
            raise ValueError("precision must be at least 2 bits")
        if self.adder not in ("tff", "mux"):
            raise ValueError(f"unknown adder {self.adder!r}")

    @property
    def length(self) -> int:
        """Bit-stream length ``2**precision``."""
        return stream_length(self.precision)

    def _adder_factory(self) -> Callable[[], object]:
        if self.adder == "tff":
            return TffAdder

        def make_mux() -> MuxAdder:
            self._mux_seed_counter += 1
            return MuxAdder(seed=self.seed * 777 + self._mux_seed_counter)

        return make_mux

    def input_streams(self, values: np.ndarray) -> np.ndarray:
        """Encode inputs (in ``[-1, 1]``; image pixels use ``[0, 1]``) as bipolar streams."""
        values = np.asarray(values, dtype=np.float64)
        probabilities = bipolar_to_unipolar(np.clip(values, -1.0, 1.0))
        sng = ComparatorSNG(VanDerCorputSource(self.precision))
        return sng.generate_bits(probabilities, self.length)

    def weight_streams(self, weights: np.ndarray) -> np.ndarray:
        """Encode signed weights as bipolar streams (one stream per tap)."""
        weights = np.asarray(weights, dtype=np.float64)
        if np.any(np.abs(weights) > 1.0 + 1e-9):
            raise ValueError("weights must lie in [-1, 1]")
        probabilities = bipolar_to_unipolar(weights)
        sng = ComparatorSNG(SobolSource(self.precision, dimension=1))
        return sng.generate_bits(probabilities, self.length)

    def dot(self, x: np.ndarray, weights: np.ndarray) -> BipolarDotProductResult:
        """Compute ``x . w`` for inputs ``x`` (shape ``(..., k)``) and weights ``(k,)``."""
        x = np.asarray(x, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if x.shape[-1] != weights.shape[-1]:
            raise ValueError(
                f"tap count mismatch: inputs have {x.shape[-1]}, "
                f"weights have {weights.shape[-1]}"
            )
        x_bits = self.input_streams(x)
        w_bits = self.weight_streams(weights)
        products = np.asarray(xnor_multiply(x_bits, w_bits))

        # Pad the tap axis to a power of two with bipolar-zero (density 0.5)
        # streams: an all-zeros pad would encode -1 and bias the sum.
        taps = x.shape[-1]
        tree = AdderTree(self._adder_factory())
        depth = tree.depth(taps)
        padded_taps = 1 << depth
        if padded_taps != taps:
            pad_shape = products.shape[:-2] + (padded_taps - taps, self.length)
            zero_value = np.zeros(pad_shape, dtype=np.uint8)
            zero_value[..., ::2] = 1  # alternating 0101... -> density exactly 0.5
            products = np.concatenate([products, zero_value], axis=-2)

        summed = tree.reduce(products)
        return BipolarDotProductResult(
            count=count_ones(summed), length=self.length, tree_scale=1 << depth
        )
