"""The bipolar stochastic dot product -- the design alternative the paper rejects.

Section IV-B explains why the hybrid design does *not* use bipolar stochastic
arithmetic even though the weights are signed: in the bipolar encoding the
sign-activation decision point maps to bit-streams of unipolar density 0.5,
which is exactly where stochastic fluctuation (and switching activity) is
maximal, so accuracy and power both suffer.  The paper's solution is the
positive/negative weight split implemented by
:class:`~repro.sc.dotproduct.StochasticDotProductEngine`.

This module implements the rejected alternative so the claim can be measured:
:class:`BipolarDotProductEngine` evaluates ``x . w`` with XNOR multipliers and
a scaled adder tree entirely in the bipolar domain.  The ablation benchmark
``benchmarks/test_ablation_bipolar.py`` compares the two designs' accuracy
near the decision point.

Like the unipolar engine, the bipolar engine runs on either simulation
``backend``: ``"packed"`` (64 stream bits per uint64 word, word-level XNOR /
adder-tree kernels) or ``"unpacked"`` (one byte per bit).  Both backends are
bit-order exact -- identical counter values in every configuration -- so the
choice only affects speed and memory.  It also honours the engine ``mode``
(:mod:`repro.sc.mode`): in count mode (the default, exact for both its adder
types) the XNOR products are popcounted once and the tree is reduced in the
count domain -- integer ``floor((cx + cy) / 2)`` halving for TFF trees, with
odd tap counts padded by the exact alternating-stream count ``N / 2``;
cached select masks for MUX trees -- never materializing an adder-tree
stream tensor, bit-identically to stream mode.

Sign-tie contract
-----------------
The bipolar sign activation is a hardware comparator against the mid-scale
count ``N / 2`` and emits only +-1: the exact tie ``2 * count == length``
resolves to **+1** (the comparator's "not below the decision point" side).
This deliberately differs from the paper's split-weight unipolar design,
whose sign activation compares *two* counters and reports **0** when they
are exactly equal (see :func:`repro.sc.elements.converters.sign_from_counts`
and :class:`repro.sc.convolution.StochasticConv2D`): there a tie is a
representable "exactly zero" output, while a single mid-scale counter has no
zero code.  Both behaviours are pinned by regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..bitstream import bipolar_to_unipolar
from ..bitstream.packed import packed_alternating, packed_popcount, packed_xnor
from ..faults.spec import FaultSpec
from ..rng import ComparatorSNG, SobolSource, VanDerCorputSource
from .elements.adders import AdderTree, MuxAdder, TffAdder, TreePlan
from .elements.converters import count_ones
from .elements.multipliers import xnor_multiply
from .dotproduct import resolve_backend, resolve_mode, stream_length

__all__ = ["BipolarDotProductResult", "BipolarDotProductEngine"]


@dataclass
class BipolarDotProductResult:
    """Outputs of one batch of bipolar stochastic dot products."""

    #: Ones-count of the adder-tree output stream.
    count: np.ndarray
    #: Stream length used.
    length: int
    #: Scale factor 2**depth of the adder tree.
    tree_scale: int

    @property
    def value(self) -> np.ndarray:
        """The reconstructed dot-product value ``x . w``."""
        bipolar = 2.0 * self.count.astype(np.float64) / self.length - 1.0
        return bipolar * self.tree_scale

    @property
    def sign(self) -> np.ndarray:
        """Sign activation: compare the counter against the mid-scale N/2.

        A hardware sign activation emits only +-1; the exact tie
        ``2 * count == length`` (counter at mid-scale) resolves to +1, the
        comparator's "not below the decision point" side.  This is
        intentionally asymmetric with the split-weight unipolar design,
        which compares two counters and emits 0 on an exact tie (see the
        module docstring's sign-tie contract).
        """
        count2 = self.count.astype(np.int64) * 2
        return np.where(count2 >= self.length, 1, -1).astype(np.int8)


@dataclass
class BipolarDotProductEngine:
    """Fully bipolar stochastic dot-product engine (XNOR multipliers).

    Parameters
    ----------
    precision:
        Binary precision in bits (stream length ``2**precision``).
    adder:
        ``"tff"`` or ``"mux"`` scaled adders for the reduction tree.
    seed:
        Seed for LFSR/MUX-select sources.
    backend:
        ``"packed"`` simulates with 64-bits-per-word kernels; ``"unpacked"``
        keeps the one-byte-per-bit arrays.  Bit-identical counter values
        either way.  ``None`` (the default) resolves to the ``REPRO_BACKEND``
        environment variable, falling back to ``"packed"`` (see
        :func:`repro.sc.dotproduct.resolve_backend`).
    mode:
        ``"counts"`` reduces the adder tree in the count domain (exact for
        both supported adders -- see the module docstring), ``"streams"``
        forces the reference stream reduction, ``"auto"`` picks counts.
        Bit-identical counter values either way.  ``None`` (the default)
        resolves to the ``REPRO_MODE`` environment variable, falling back to
        ``"auto"`` (see :func:`repro.sc.dotproduct.resolve_mode`).
    faults:
        Optional :class:`~repro.faults.FaultSpec`.  Stream-level faults are
        injected into the input streams (by :meth:`dot` at offset 0, or by
        tile drivers via :meth:`apply_faults`) and force the stream-domain
        evaluation -- ``mode="auto"`` resolves to streams while faults are
        active, and an explicit ``mode="counts"`` raises, exactly like the
        unipolar engine.
    """

    precision: int = 8
    adder: str = "tff"
    seed: int = 1
    backend: Optional[str] = None
    mode: Optional[str] = None
    faults: Optional[FaultSpec] = None
    _mux_seed_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.precision < 2:
            raise ValueError("precision must be at least 2 bits")
        if self.adder not in ("tff", "mux"):
            raise ValueError(f"unknown adder {self.adder!r}")
        self.backend = resolve_backend(self.backend)
        self.mode = resolve_mode(self.mode)
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise TypeError(
                f"faults must be a FaultSpec or None, got {type(self.faults).__name__}"
            )
        if self.mode == "counts" and self._stream_faults_active:
            raise ValueError(
                "mode='counts' is invalid under stream-level fault injection: "
                "the count-domain shortcuts assume uncorrupted tree inputs -- "
                "use mode='streams' (or 'auto', which resolves to streams "
                "while faults are active)"
            )

    @property
    def _stream_faults_active(self) -> bool:
        """Whether the engine must inject fault masks into input streams."""
        return self.faults is not None and self.faults.corrupts_streams

    @property
    def _use_count_mode(self) -> bool:
        # Both supported adders (TFF, MUX) have exact count-domain
        # evaluations, so only an explicit "streams" -- or active stream
        # faults, which invalidate the count-domain algebra -- forces
        # stream tensors.
        return self.mode != "streams" and not self._stream_faults_active

    def apply_faults(self, prepared: np.ndarray, offset: int = 0) -> np.ndarray:
        """Inject the engine's stream faults into :meth:`prepare_inputs` output.

        Mirrors :meth:`StochasticDotProductEngine.apply_faults`: ``offset``
        is the global index of the first stream in ``prepared`` (tile
        drivers pass their tile start), and the injection is a no-op when no
        stream fault channel is active.
        """
        if not self._stream_faults_active:
            return prepared
        return self.faults.plan().apply(
            prepared, self.length, offset=offset, packed=self.backend == "packed"
        )

    @property
    def length(self) -> int:
        """Bit-stream length ``2**precision``."""
        return stream_length(self.precision)

    def _adder_factory(self) -> Callable[[], object]:
        if self.adder == "tff":
            return TffAdder

        def make_mux() -> MuxAdder:
            self._mux_seed_counter += 1
            return MuxAdder(seed=self.seed * 777 + self._mux_seed_counter)

        return make_mux

    # ------------------------------------------------------------------ #
    # stream generation
    # ------------------------------------------------------------------ #
    def _input_sng(self) -> ComparatorSNG:
        return ComparatorSNG(VanDerCorputSource(self.precision))

    def _weight_sng(self) -> ComparatorSNG:
        return ComparatorSNG(SobolSource(self.precision, dimension=1))

    def _input_probabilities(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if np.any(np.abs(values) > 1.0 + 1e-9):
            # Raise exactly like the weight side: silently clipping here
            # used to mask calibration errors upstream (values far outside
            # the bipolar range would quietly saturate to +-1).
            raise ValueError("bipolar inputs must lie in [-1, 1]")
        return bipolar_to_unipolar(np.clip(values, -1.0, 1.0))

    def _weight_probabilities(self, weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights, dtype=np.float64)
        if np.any(np.abs(weights) > 1.0 + 1e-9):
            raise ValueError("weights must lie in [-1, 1]")
        return bipolar_to_unipolar(weights)

    def input_streams(self, values: np.ndarray) -> np.ndarray:
        """Encode inputs (in ``[-1, 1]``; image pixels use ``[0, 1]``) as bipolar streams."""
        return self._input_sng().generate_bits(
            self._input_probabilities(values), self.length
        )

    def input_words(self, values: np.ndarray) -> np.ndarray:
        """Packed variant of :meth:`input_streams`: ``(..., ceil(N/64))`` uint64 words."""
        return self._input_sng().generate_packed(
            self._input_probabilities(values), self.length
        )

    def weight_streams(self, weights: np.ndarray) -> np.ndarray:
        """Encode signed weights as bipolar streams (one stream per tap)."""
        return self._weight_sng().generate_bits(
            self._weight_probabilities(weights), self.length
        )

    def weight_words(self, weights: np.ndarray) -> np.ndarray:
        """Packed variant of :meth:`weight_streams` (uint64 words per stream)."""
        return self._weight_sng().generate_packed(
            self._weight_probabilities(weights), self.length
        )

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    def prepare_inputs(self, values: np.ndarray) -> np.ndarray:
        """Generate input streams in the active backend's representation.

        Mirrors :meth:`StochasticDotProductEngine.prepare_inputs`: the
        returned array (uint8 bits or uint64 words on the last axis) is meant
        to be passed to :meth:`dot_prepared`, possibly several times.
        """
        if self.backend == "packed":
            return self.input_words(values)
        return self.input_streams(values)

    def dot(self, x: np.ndarray, weights: np.ndarray) -> BipolarDotProductResult:
        """Compute ``x . w`` for inputs ``x`` (shape ``(..., k)``) and weights ``(k,)``.

        Every call re-seeds the per-node MUX select sources from scratch, so
        repeated ``dot()`` invocations on one engine are deterministic:
        identical inputs always produce identical counts.
        """
        x = np.asarray(x, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if x.shape[-1] != weights.shape[-1]:
            raise ValueError(
                f"tap count mismatch: inputs have {x.shape[-1]}, "
                f"weights have {weights.shape[-1]}"
            )
        return self.dot_prepared(self.apply_faults(self.prepare_inputs(x)), weights)

    def dot_prepared(
        self, prepared: np.ndarray, weights: np.ndarray
    ) -> BipolarDotProductResult:
        """Dot product of :meth:`prepare_inputs` output with fresh weight streams."""
        # Reset the MUX seed counter so every evaluation instantiates the
        # same select sources (node i always gets seed 777*seed + i + 1).
        self._mux_seed_counter = 0
        weights = np.asarray(weights, dtype=np.float64)
        if self.backend == "packed":
            return self._dot_packed(prepared, weights)
        return self._dot_unpacked(prepared, weights)

    def _dot_unpacked(
        self, x_bits: np.ndarray, weights: np.ndarray
    ) -> BipolarDotProductResult:
        """Byte-per-bit evaluation (count or stream domain per :attr:`mode`)."""
        w_bits = self.weight_streams(weights)
        products = np.asarray(xnor_multiply(x_bits, w_bits))
        taps = products.shape[-2]
        depth = AdderTree().depth(taps)
        padded_taps = 1 << depth

        if self._use_count_mode and self.adder == "tff":
            # Exact count shortcut: popcount the XNOR products once and
            # halve integer counts level by level.  Odd tap counts are
            # padded with the *count* of the alternating bipolar-zero pad
            # stream -- exactly N/2 ones -- instead of the stream itself.
            counts = self._tff_tree_counts(count_ones(products), depth, padded_taps)
            return BipolarDotProductResult(
                count=counts, length=self.length, tree_scale=1 << depth
            )

        # Pad the tap axis to a power of two with bipolar-zero (density 0.5)
        # streams: an all-zeros pad would encode -1 and bias the sum.
        if padded_taps != taps:
            pad_shape = products.shape[:-2] + (padded_taps - taps, self.length)
            zero_value = np.zeros(pad_shape, dtype=np.uint8)
            zero_value[..., ::2] = 1  # alternating 0101... -> density exactly 0.5
            products = np.concatenate([products, zero_value], axis=-2)

        plan = AdderTree(self._adder_factory()).plan(padded_taps)
        if self._use_count_mode:
            counts = plan.masked_counts_bits(products)
        else:
            counts = count_ones(plan.reduce_bits(products))
        return BipolarDotProductResult(
            count=counts, length=self.length, tree_scale=1 << depth
        )

    def _dot_packed(
        self, x_words: np.ndarray, weights: np.ndarray
    ) -> BipolarDotProductResult:
        """Packed-word evaluation, bit-identical to :meth:`_dot_unpacked`."""
        w_words = self.weight_words(weights)
        products = packed_xnor(x_words, w_words, self.length)
        taps = products.shape[-2]
        depth = AdderTree().depth(taps)
        padded_taps = 1 << depth

        if self._use_count_mode and self.adder == "tff":
            counts = self._tff_tree_counts(
                packed_popcount(products), depth, padded_taps
            )
            return BipolarDotProductResult(
                count=counts, length=self.length, tree_scale=1 << depth
            )

        if padded_taps != taps:
            pad = np.broadcast_to(
                packed_alternating(self.length),
                products.shape[:-2] + (padded_taps - taps, products.shape[-1]),
            )
            products = np.concatenate([products, pad], axis=-2)

        plan = AdderTree(self._adder_factory()).plan(padded_taps)
        if self._use_count_mode:
            counts = plan.masked_counts_packed(products, self.length)
        else:
            counts = packed_popcount(plan.reduce_packed(products, self.length))
        return BipolarDotProductResult(
            count=counts, length=self.length, tree_scale=1 << depth
        )

    def _tff_tree_counts(
        self, leaf_counts: np.ndarray, depth: int, padded_taps: int
    ) -> np.ndarray:
        """Count-domain all-TFF reduction with exact bipolar-zero padding.

        ``leaf_counts`` holds the per-tap XNOR product ones-counts
        ``(..., taps)``.  Missing leaves up to ``padded_taps`` contribute
        exactly ``N / 2`` ones each (the alternating 0101... pad stream has
        one 1 per bit pair and ``N = 2**precision`` is even), so the padded
        integer reduction is bit-identical to reducing the padded streams.
        """
        taps = leaf_counts.shape[-1]
        if padded_taps != taps:
            padded = np.full(
                leaf_counts.shape[:-1] + (padded_taps,),
                self.length // 2,
                dtype=np.int64,
            )
            padded[..., :taps] = leaf_counts
            leaf_counts = padded
        plan = TreePlan(TffAdder, padded_taps)
        return plan.reduce_counts(leaf_counts)
