"""Engine evaluation-mode selection: count-domain vs. stream-domain reduction.

The dot-product engines can evaluate their adder trees two ways:

* ``"streams"`` -- materialize every tree node's bit-stream (through the
  active backend's representation) and popcount the root.  This is the
  reference path: it works for every adder type and is what the hardware
  literally does.
* ``"counts"`` -- never build an adder-tree stream tensor at all.  For
  all-TFF trees each node's output ones-count is exactly
  ``floor/ceil((ones_x + ones_y) / 2)``, so the root count follows from the
  leaf-product counts by integer halving per level.  For all-MUX trees the
  cached per-node select streams determine, for every clock cycle, which
  *leaf* the root forwards; folding those select decisions into per-leaf
  ownership masks makes the root count one masked popcount over the leaf
  products.  Both shortcuts are provably bit-identical to the stream path --
  the mode changes speed and memory only, never a counter value.
* ``"auto"`` (default) -- use ``"counts"`` whenever the configured adder
  tree admits an exact count-domain evaluation (TFF and MUX trees do; OR
  trees are value-approximate in a position-dependent way and always run as
  streams).

Like the backend choice (:mod:`repro.bitstream.backend`), the mode is
resolved through a single rule shared by the engines, the experiment configs
and the CLI: an explicitly passed value beats the ``REPRO_MODE`` environment
variable, which beats the ``"auto"`` default.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["MODES", "validate_mode", "resolve_mode"]

#: Supported engine evaluation modes.  ``"counts"`` forbids stream-tensor
#: adder trees (raising if the configuration has no exact count shortcut),
#: ``"streams"`` forces the reference stream reduction, ``"auto"`` picks
#: counts whenever exact.
MODES = ("auto", "counts", "streams")


def validate_mode(mode: str) -> str:
    """Raise ``ValueError`` unless ``mode`` names a supported evaluation mode."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    return mode


def resolve_mode(mode: Optional[str] = None) -> str:
    """Resolve and validate an evaluation-mode choice.

    Precedence: an explicitly passed value beats the ``REPRO_MODE``
    environment variable, which beats the ``"auto"`` default.  Only ``None``
    defers to the environment -- an explicit empty string is rejected like
    any other invalid name -- while an empty/unset environment variable
    falls back to the default.
    """
    if mode is None:
        mode = os.environ.get("REPRO_MODE") or "auto"
    return validate_mode(mode)
