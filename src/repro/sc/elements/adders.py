"""Stochastic adders: the conventional MUX adder, the OR adder and the paper's
new TFF-based adder.

All stochastic adders compute the *scaled* sum ``(p_x + p_y) / 2`` so the
result stays inside the unit interval.  They differ in where their error
comes from:

* :class:`MuxAdder` (Fig. 1b) randomly discards half of the input bits via a
  multiplexer whose select input is a 0.5-valued stream; it therefore needs an
  extra number source and exhibits sampling error even for exactly
  representable results.
* :class:`OrAdder` approximates ``p_x + p_y`` by a single OR gate, which is
  only accurate when both inputs are near zero.
* :class:`TffAdder` (Fig. 2b, the paper's contribution) stores the
  "carry" information of disagreeing input bits in a toggle flip-flop and
  releases it on the next disagreement.  Its output ones-count is *exactly*
  ``round((ones_x + ones_y) / 2)``, with the rounding direction chosen by the
  flip-flop's initial state -- no extra random source, no sensitivity to
  input correlation or auto-correlation.

:class:`AdderTree` builds balanced trees of any of these two-input adders, the
structure used by the stochastic dot-product engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...bitstream.packed import (
    pack_bits,
    packed_mux_add,
    packed_or_add,
    packed_tff_add,
)
from ...rng.sources import NumberSource, PseudoRandomSource
from .flipflops import toggle_states
from .util import StreamLike, as_bits, check_same_length, wrap_like

__all__ = [
    "StochasticAdder",
    "MuxAdder",
    "OrAdder",
    "TffAdder",
    "AdderTree",
    "tff_add",
    "mux_add",
    "or_add",
]


def tff_add(
    x: StreamLike, y: StreamLike, initial_state: int = 0
) -> StreamLike:
    """The paper's TFF-based scaled addition ``(p_x + p_y) / 2`` (Fig. 2b).

    At each cycle, equal input bits propagate directly to the output; when the
    inputs disagree the current flip-flop state is emitted and the flip-flop
    toggles.  The output ones-count is exactly ``(ones_x + ones_y) / 2``
    rounded down (``initial_state=0``) or up (``initial_state=1``).
    """
    xb, _ = as_bits(x)
    yb, _ = as_bits(y)
    check_same_length(xb, yb)
    disagree = (xb ^ yb).astype(np.uint8)
    state = toggle_states(disagree, initial_state)
    out = np.where(disagree == 1, state, xb).astype(np.uint8)
    return wrap_like(out, x)


def mux_add(
    x: StreamLike, y: StreamLike, select: StreamLike
) -> StreamLike:
    """The conventional multiplexer-based scaled adder (Fig. 1b).

    ``select`` must be a bit-stream of unipolar value 0.5 that is uncorrelated
    with both data inputs; bits of ``y`` are taken where ``select`` is 1 and
    bits of ``x`` elsewhere.
    """
    xb, _ = as_bits(x)
    yb, _ = as_bits(y)
    sb, _ = as_bits(select)
    check_same_length(xb, yb, sb)
    out = np.where(sb == 1, yb, xb).astype(np.uint8)
    return wrap_like(out, x)


def or_add(x: StreamLike, y: StreamLike) -> StreamLike:
    """The OR-gate approximate adder: accurate only for inputs near zero."""
    xb, _ = as_bits(x)
    yb, _ = as_bits(y)
    check_same_length(xb, yb)
    return wrap_like((xb | yb).astype(np.uint8), x)


class StochasticAdder:
    """Common interface of all two-input scaled stochastic adders."""

    #: True if the adder needs an auxiliary 0.5-valued select stream.
    needs_select = False

    #: Approximate complexity in two-input gate equivalents (hardware model).
    gate_count = 1

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        raise NotImplementedError

    def packed(self, x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
        """Word-level addition of packed streams, bit-identical to ``__call__``.

        ``x`` and ``y`` are uint64 word arrays (words on the last axis) of
        ``n_bits``-bit streams, as produced by
        :func:`repro.bitstream.pack_bits`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no packed fast path"
        )

    def expected(self, px: float, py: float) -> float:
        """Ideal scaled-sum output value for unipolar inputs."""
        return 0.5 * (float(px) + float(py))


class TffAdder(StochasticAdder):
    """The paper's TFF-based adder (Fig. 2b).

    Parameters
    ----------
    initial_state:
        Initial flip-flop value; selects the rounding direction when the exact
        scaled sum is not representable at the stream length (Fig. 2c).
    """

    # MUX2 + TFF + XOR for the disagree detection: ~4 gate equivalents.
    gate_count = 4

    def __init__(self, initial_state: int = 0) -> None:
        if initial_state not in (0, 1):
            raise ValueError("initial_state must be 0 or 1")
        self.initial_state = int(initial_state)

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        return tff_add(x, y, initial_state=self.initial_state)

    def packed(self, x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
        return packed_tff_add(x, y, n_bits, initial_state=self.initial_state)

    def __repr__(self) -> str:
        return f"TffAdder(initial_state={self.initial_state})"


class OrAdder(StochasticAdder):
    """OR-gate approximate adder (no scaling, saturating)."""

    gate_count = 1

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        return or_add(x, y)

    def packed(self, x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
        return packed_or_add(x, y)

    def expected(self, px: float, py: float) -> float:
        """The OR adder targets the *unscaled* sum, saturating at 1."""
        return min(1.0, float(px) + float(py))

    def __repr__(self) -> str:
        return "OrAdder()"


class MuxAdder(StochasticAdder):
    """The conventional multiplexer adder with a configurable select source.

    Parameters
    ----------
    select_source:
        Number source whose comparison against 0.5 produces the select stream
        (Table 2 evaluates LFSR- and random-driven variants).  Ignored when
        ``toggle_select`` is true.
    toggle_select:
        Use a deterministic 0101... select stream produced by a free-running
        TFF (the "+ TFF" select configurations in Table 2).
    seed:
        Seed of the default pseudo-random select source.
    """

    needs_select = True
    # MUX2 plus the select generator's comparator share; the dominant cost is
    # the extra number source, accounted separately by the hardware model.
    gate_count = 3

    def __init__(
        self,
        select_source: Optional[NumberSource] = None,
        toggle_select: bool = False,
        seed: int = 12345,
    ) -> None:
        self.toggle_select = bool(toggle_select)
        if select_source is None and not toggle_select:
            select_source = PseudoRandomSource(seed=seed)
        self.select_source = select_source

    def select_bits(self, length: int) -> np.ndarray:
        """Generate the 0.5-valued select stream for ``length`` cycles."""
        if self.toggle_select:
            return (np.arange(length, dtype=np.int64) & 1).astype(np.uint8)
        reference = self.select_source.sequence(length)
        return (reference < 0.5).astype(np.uint8)

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        xb, _ = as_bits(x)
        yb, _ = as_bits(y)
        length = check_same_length(xb, yb)
        return mux_add(x, y, self.select_bits(length))

    def packed(self, x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
        select = pack_bits(self.select_bits(n_bits))
        return packed_mux_add(x, y, select)

    def __repr__(self) -> str:
        if self.toggle_select:
            return "MuxAdder(toggle_select=True)"
        return f"MuxAdder(select_source={self.select_source!r})"


class AdderTree:
    """A balanced binary tree of two-input scaled adders.

    Summing ``k`` streams through a depth-``ceil(log2 k)`` tree produces the
    scaled sum ``sum(p_i) / 2**depth``.  For the TFF adder the result is exact
    up to one LSB *per adder*, so the tree error stays bounded by
    ``depth / N`` instead of compounding statistically as it does for MUX
    adders.  Missing leaves (when ``k`` is not a power of two) are filled with
    all-zero streams, exactly like the padded hardware tree.

    Parameters
    ----------
    adder_factory:
        Callable returning a fresh two-input adder for each tree node
        (a fresh node per position keeps MUX select sources independent and
        lets TFF initial states alternate if desired).
    """

    def __init__(self, adder_factory=TffAdder) -> None:
        self.adder_factory = adder_factory

    def depth(self, count: int) -> int:
        """Number of adder levels needed for ``count`` inputs."""
        if count < 1:
            raise ValueError("need at least one input")
        depth = 0
        while (1 << depth) < count:
            depth += 1
        return depth

    def scale_factor(self, count: int) -> float:
        """The overall scaling ``2**-depth`` applied to the sum."""
        return 0.5 ** self.depth(count)

    def reduce(self, streams: Sequence[StreamLike] | np.ndarray) -> StreamLike:
        """Reduce a list of streams (or an array stacked on axis -2) to one stream."""
        if isinstance(streams, np.ndarray):
            if streams.ndim < 2 or streams.shape[-2] == 0:
                raise ValueError("stacked input must have shape (..., k, N) with k >= 1")
            stream_list: List[np.ndarray] = [
                streams[..., i, :] for i in range(streams.shape[-2])
            ]
            template: StreamLike = streams[..., 0, :]
        else:
            if len(streams) == 0:
                raise ValueError("need at least one input stream")
            stream_list = [as_bits(s)[0] for s in streams]
            template = streams[0]
        length = check_same_length(*stream_list)

        level = stream_list
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [np.zeros_like(level[0])]
            next_level = []
            for i in range(0, len(level), 2):
                adder = self.adder_factory()
                result = adder(level[i], level[i + 1])
                bits, _ = as_bits(result)
                next_level.append(bits)
            level = next_level
        del length
        return wrap_like(level[0], template)

    def reduce_packed(self, words: np.ndarray, n_bits: int) -> np.ndarray:
        """Word-level :meth:`reduce` over packed streams stacked on axis -2.

        ``words`` has shape ``(..., k, W)`` with ``W = ceil(n_bits / 64)``
        uint64 words per stream.  Nodes are instantiated in exactly the same
        order as in :meth:`reduce` (level by level, left to right, zero-padded
        odd levels), so stateful factories -- e.g. per-node MUX select seeds --
        produce bit-identical trees in both representations.
        """
        arr = np.asarray(words)
        if arr.ndim < 2 or arr.shape[-2] == 0:
            raise ValueError("stacked input must have shape (..., k, W) with k >= 1")
        level: List[np.ndarray] = [arr[..., i, :] for i in range(arr.shape[-2])]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [np.zeros_like(level[0])]
            next_level = []
            for i in range(0, len(level), 2):
                adder = self.adder_factory()
                next_level.append(adder.packed(level[i], level[i + 1], n_bits))
            level = next_level
        return level[0]

    def expected(self, values: Sequence[float]) -> float:
        """Ideal output of the tree for unipolar input values."""
        return float(np.sum(values)) * self.scale_factor(len(values))

    def __repr__(self) -> str:
        return f"AdderTree(adder_factory={self.adder_factory!r})"
