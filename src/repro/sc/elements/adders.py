"""Stochastic adders: the conventional MUX adder, the OR adder and the paper's
new TFF-based adder.

All stochastic adders compute the *scaled* sum ``(p_x + p_y) / 2`` so the
result stays inside the unit interval.  They differ in where their error
comes from:

* :class:`MuxAdder` (Fig. 1b) randomly discards half of the input bits via a
  multiplexer whose select input is a 0.5-valued stream; it therefore needs an
  extra number source and exhibits sampling error even for exactly
  representable results.
* :class:`OrAdder` approximates ``p_x + p_y`` by a single OR gate, which is
  only accurate when both inputs are near zero.
* :class:`TffAdder` (Fig. 2b, the paper's contribution) stores the
  "carry" information of disagreeing input bits in a toggle flip-flop and
  releases it on the next disagreement.  Its output ones-count is *exactly*
  ``round((ones_x + ones_y) / 2)``, with the rounding direction chosen by the
  flip-flop's initial state -- no extra random source, no sensitivity to
  input correlation or auto-correlation.

:class:`AdderTree` builds balanced trees of any of these two-input adders, the
structure used by the stochastic dot-product engine.

Array-level reduction
---------------------
Tree reduction is evaluated *level by level on whole arrays*, not node by
node: every level pairs the stream axis (``(..., k, N)`` bits or ``(..., k,
W)`` packed words) and applies one vectorized kernel to all nodes of the
level at once -- a single prefix-parity scan for TFF nodes, a single masked
select for MUX nodes (per-node select streams stacked on the node axis), a
single OR for OR nodes.  Adder *objects* are still instantiated through the
factory in the historical order (level by level, left to right), so stateful
factories -- e.g. per-node MUX select seeds -- see exactly the node
enumeration of the old per-node loop and every count stays bit-identical.

:class:`TreePlan` extends this to *lanes*: several identical trees (for the
stochastic convolution, one tree per ``(filter, positive/negative)`` pair)
laid side by side on axis ``-3`` and reduced together in the same vectorized
level passes.  Lane adders are instantiated lane-major (lane 0's whole tree,
then lane 1's, ...), matching a sequence of independent per-lane reductions,
and the plan object is reusable across input tiles: select streams are
generated once and cached, so tiled evaluation is bit-identical to a single
untiled pass.

Count-domain shortcuts
----------------------
Two tree families admit an *exact* count-domain evaluation that never
materializes a node's output stream (the engines' ``mode="counts"`` path,
see :mod:`repro.sc.mode`):

* **all-TFF trees** -- every node's output ones-count is exactly
  ``floor/ceil((ones_x + ones_y) / 2)``, so :meth:`TreePlan.reduce_counts`
  halves integer leaf counts level by level;
* **all-MUX trees** -- at each clock cycle the select bits along the tree
  pick exactly one leaf whose bit the root forwards (or a zero pad), so
  pushing the cached select streams down the tree yields one disjoint
  *ownership mask* per leaf (:meth:`TreePlan.leaf_masks`) and the root count
  is a single masked popcount over the leaf streams
  (:meth:`TreePlan.masked_counts_bits` / :meth:`TreePlan.masked_counts_packed`).

Both shortcuts are bit-identical to reducing the streams; OR trees are
position-dependent in a way neither shortcut captures and always reduce
streams.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...bitstream.packed import (
    mask_tail,
    pack_bits,
    packed_mux,
    packed_mux_add,
    packed_or_add,
    packed_popcount,
    packed_tff_add,
    words_for,
)
from ...rng.sources import NumberSource, PseudoRandomSource
from .flipflops import toggle_states
from .util import StreamLike, as_bits, check_same_length, wrap_like

_ALL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

__all__ = [
    "StochasticAdder",
    "MuxAdder",
    "OrAdder",
    "TffAdder",
    "AdderTree",
    "TreePlan",
    "tff_add",
    "mux_add",
    "or_add",
]


def tff_add(
    x: StreamLike, y: StreamLike, initial_state: int = 0
) -> StreamLike:
    """The paper's TFF-based scaled addition ``(p_x + p_y) / 2`` (Fig. 2b).

    At each cycle, equal input bits propagate directly to the output; when the
    inputs disagree the current flip-flop state is emitted and the flip-flop
    toggles.  The output ones-count is exactly ``(ones_x + ones_y) / 2``
    rounded down (``initial_state=0``) or up (``initial_state=1``).
    """
    xb, _ = as_bits(x)
    yb, _ = as_bits(y)
    check_same_length(xb, yb)
    disagree = (xb ^ yb).astype(np.uint8)
    state = toggle_states(disagree, initial_state)
    out = np.where(disagree == 1, state, xb).astype(np.uint8)
    return wrap_like(out, x)


def mux_add(
    x: StreamLike, y: StreamLike, select: StreamLike
) -> StreamLike:
    """The conventional multiplexer-based scaled adder (Fig. 1b).

    ``select`` must be a bit-stream of unipolar value 0.5 that is uncorrelated
    with both data inputs; bits of ``y`` are taken where ``select`` is 1 and
    bits of ``x`` elsewhere.
    """
    xb, _ = as_bits(x)
    yb, _ = as_bits(y)
    sb, _ = as_bits(select)
    check_same_length(xb, yb, sb)
    out = np.where(sb == 1, yb, xb).astype(np.uint8)
    return wrap_like(out, x)


def or_add(x: StreamLike, y: StreamLike) -> StreamLike:
    """The OR-gate approximate adder: accurate only for inputs near zero."""
    xb, _ = as_bits(x)
    yb, _ = as_bits(y)
    check_same_length(xb, yb)
    return wrap_like((xb | yb).astype(np.uint8), x)


class StochasticAdder:
    """Common interface of all two-input scaled stochastic adders."""

    #: True if the adder needs an auxiliary 0.5-valued select stream.
    needs_select = False

    #: Approximate complexity in two-input gate equivalents (hardware model).
    gate_count = 1

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        raise NotImplementedError

    def packed(self, x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
        """Word-level addition of packed streams, bit-identical to ``__call__``.

        ``x`` and ``y`` are uint64 word arrays (words on the last axis) of
        ``n_bits``-bit streams, as produced by
        :func:`repro.bitstream.pack_bits`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no packed fast path"
        )

    def expected(self, px: float, py: float) -> float:
        """Ideal scaled-sum output value for unipolar inputs."""
        return 0.5 * (float(px) + float(py))


class TffAdder(StochasticAdder):
    """The paper's TFF-based adder (Fig. 2b).

    Parameters
    ----------
    initial_state:
        Initial flip-flop value; selects the rounding direction when the exact
        scaled sum is not representable at the stream length (Fig. 2c).
    """

    # MUX2 + TFF + XOR for the disagree detection: ~4 gate equivalents.
    gate_count = 4

    def __init__(self, initial_state: int = 0) -> None:
        if initial_state not in (0, 1):
            raise ValueError("initial_state must be 0 or 1")
        self.initial_state = int(initial_state)

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        return tff_add(x, y, initial_state=self.initial_state)

    def packed(self, x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
        return packed_tff_add(x, y, n_bits, initial_state=self.initial_state)

    def __repr__(self) -> str:
        return f"TffAdder(initial_state={self.initial_state})"


class OrAdder(StochasticAdder):
    """OR-gate approximate adder (no scaling, saturating)."""

    gate_count = 1

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        return or_add(x, y)

    def packed(self, x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
        return packed_or_add(x, y)

    def expected(self, px: float, py: float) -> float:
        """The OR adder targets the *unscaled* sum, saturating at 1."""
        return min(1.0, float(px) + float(py))

    def __repr__(self) -> str:
        return "OrAdder()"


class MuxAdder(StochasticAdder):
    """The conventional multiplexer adder with a configurable select source.

    Parameters
    ----------
    select_source:
        Number source whose comparison against 0.5 produces the select stream
        (Table 2 evaluates LFSR- and random-driven variants).  Ignored when
        ``toggle_select`` is true.
    toggle_select:
        Use a deterministic 0101... select stream produced by a free-running
        TFF (the "+ TFF" select configurations in Table 2).
    seed:
        Seed of the default pseudo-random select source.
    """

    needs_select = True
    # MUX2 plus the select generator's comparator share; the dominant cost is
    # the extra number source, accounted separately by the hardware model.
    gate_count = 3

    def __init__(
        self,
        select_source: Optional[NumberSource] = None,
        toggle_select: bool = False,
        seed: int = 12345,
    ) -> None:
        self.toggle_select = bool(toggle_select)
        if select_source is None and not toggle_select:
            select_source = PseudoRandomSource(seed=seed)
        self.select_source = select_source

    def select_bits(self, length: int) -> np.ndarray:
        """Generate the 0.5-valued select stream for ``length`` cycles."""
        if self.toggle_select:
            return (np.arange(length, dtype=np.int64) & 1).astype(np.uint8)
        reference = self.select_source.sequence(length)
        return (reference < 0.5).astype(np.uint8)

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        xb, _ = as_bits(x)
        yb, _ = as_bits(y)
        length = check_same_length(xb, yb)
        return mux_add(x, y, self.select_bits(length))

    def packed(self, x: np.ndarray, y: np.ndarray, n_bits: int) -> np.ndarray:
        select = pack_bits(self.select_bits(n_bits))
        return packed_mux_add(x, y, select)

    def __repr__(self) -> str:
        if self.toggle_select:
            return "MuxAdder(toggle_select=True)"
        return f"MuxAdder(select_source={self.select_source!r})"


def _level_group(adders: List[StochasticAdder]):
    """Classify one level's node group for single-kernel vectorized application.

    Returns ``("tff", initial_state)`` when every node is a plain
    :class:`TffAdder` sharing one initial state, ``("or", None)`` for plain
    :class:`OrAdder` nodes, ``("mux", None)`` for plain :class:`MuxAdder`
    nodes (per-node select streams are stacked on the node axis), and
    ``None`` for anything else -- mixed levels or subclasses fall back to the
    per-node loop, which preserves arbitrary adder semantics.
    """
    first = adders[0]
    if type(first) is TffAdder and all(
        type(a) is TffAdder and a.initial_state == first.initial_state
        for a in adders
    ):
        return ("tff", first.initial_state)
    if all(type(a) is OrAdder for a in adders):
        return ("or", None)
    if all(type(a) is MuxAdder for a in adders):
        return ("mux", None)
    return None


def _mux_select_matrix(adders: List[StochasticAdder], length: int) -> np.ndarray:
    """Stack the per-node select streams of a MUX level: ``(nodes, length)``."""
    return np.stack([a.select_bits(length) for a in adders])


class TreePlan:
    """Pre-instantiated adder nodes for one or more identical reduction trees.

    A plan fixes the tree structure for ``count`` inputs and ``lanes``
    side-by-side trees, instantiates every node adder through the factory
    *once* (lane-major: lane 0's whole tree level by level left to right,
    then lane 1's, ... -- the exact enumeration a sequence of independent
    per-lane reductions would produce), and is then applied to any number of
    input arrays.  Because per-node select streams are generated once and
    cached, applying one plan to successive input tiles is bit-identical to
    reducing the concatenated tiles in a single pass -- the contract the
    tile-streamed stochastic convolution relies on.
    """

    def __init__(self, adder_factory, count: int, lanes: int = 1) -> None:
        if count < 1:
            raise ValueError("need at least one input")
        if lanes < 1:
            raise ValueError("need at least one lane")
        self.count = int(count)
        self.lanes = int(lanes)
        sizes: List[int] = []
        k = self.count
        while k > 1:
            k += k & 1
            sizes.append(k // 2)
            k //= 2
        self.level_sizes = sizes
        per_lane = [
            [[adder_factory() for _ in range(m)] for m in sizes]
            for _ in range(self.lanes)
        ]
        # Regrouped level-major for application; within a level the flat node
        # list is lane-major, matching the C-order flattening of the
        # ``(lanes, nodes)`` axes during the vectorized level pass.
        self.levels: List[List[StochasticAdder]] = [
            [per_lane[lane][li][j] for lane in range(self.lanes) for j in range(m)]
            for li, m in enumerate(sizes)
        ]
        self._groups = [_level_group(nodes) for nodes in self.levels]
        self._select_cache: dict = {}
        self._mask_cache: dict = {}
        # Input width of every level before its odd-width zero pad (leaves
        # first); the mask derivation needs it to drop pad columns.
        widths: List[int] = []
        k = self.count
        for m in sizes:
            widths.append(k)
            k = m
        self._level_input_widths = widths

    @property
    def depth(self) -> int:
        """Number of adder levels."""
        return len(self.level_sizes)

    @property
    def tree_scale(self) -> int:
        """The counter scale factor ``2**depth`` of each lane's tree."""
        return 1 << self.depth

    def _selects(self, li: int, length: int, packed: bool) -> np.ndarray:
        """Per-node select streams of a MUX level, cached per stream length."""
        key = (li, length, packed)
        cached = self._select_cache.get(key)
        if cached is None:
            matrix = _mux_select_matrix(self.levels[li], length)
            cached = pack_bits(matrix) if packed else matrix
            self._select_cache[key] = cached
        return cached

    def _check_input(self, arr: np.ndarray, what: str) -> np.ndarray:
        if self.lanes == 1:
            if arr.ndim < 2:
                raise ValueError(f"expected (..., k, {what}) input, got {arr.shape}")
            arr = arr[..., np.newaxis, :, :]
        if arr.ndim < 3 or arr.shape[-2] != self.count or arr.shape[-3] != self.lanes:
            raise ValueError(
                f"expected (..., {self.lanes} lanes, {self.count} streams, "
                f"{what}) input, got shape {arr.shape}"
            )
        return arr

    def _reduce(self, arr: np.ndarray, length: int, packed: bool) -> np.ndarray:
        """Shared level loop; ``arr`` is ``(..., lanes, k, W-or-N)``."""
        level = arr
        for li, nodes in enumerate(self.levels):
            if level.shape[-2] % 2:
                pad = np.zeros(
                    level.shape[:-2] + (1, level.shape[-1]), dtype=level.dtype
                )
                level = np.concatenate([level, pad], axis=-2)
            x = level[..., 0::2, :]
            y = level[..., 1::2, :]
            m = x.shape[-2]
            flat_shape = x.shape[:-3] + (self.lanes * m, x.shape[-1])
            xf = x.reshape(flat_shape)
            yf = y.reshape(flat_shape)
            group = self._groups[li]
            if group is not None and group[0] == "tff":
                if packed:
                    out = packed_tff_add(xf, yf, length, initial_state=group[1])
                else:
                    disagree = (xf ^ yf).astype(np.uint8)
                    state = toggle_states(disagree, group[1])
                    out = np.where(disagree == 1, state, xf).astype(np.uint8)
            elif group is not None and group[0] == "or":
                out = xf | yf
            elif group is not None and group[0] == "mux":
                sel = self._selects(li, length, packed)
                if packed:
                    out = packed_mux(sel, xf, yf)
                else:
                    out = np.where(sel == 1, yf, xf).astype(np.uint8)
            else:
                columns = []
                for j, adder in enumerate(nodes):
                    if packed:
                        columns.append(adder.packed(xf[..., j, :], yf[..., j, :], length))
                    else:
                        columns.append(as_bits(adder(xf[..., j, :], yf[..., j, :]))[0])
                out = np.stack(columns, axis=-2)
            level = out.reshape(x.shape[:-3] + (self.lanes, m, x.shape[-1]))
        out = level[..., 0, :]
        return out[..., 0, :] if self.lanes == 1 else out

    @property
    def supports_count_reduction(self) -> bool:
        """True when the root ones-count follows from leaf counts alone.

        A plain :class:`TffAdder`'s output ones-count is *exactly*
        ``floor((ones_x + ones_y) / 2)`` (``initial_state=0``; ``ceil`` for
        1) whatever the bit positions: equal bits pass straight through
        (contributing ``both``) and the flip-flop state emitted at the ``d``
        disagreements alternates, releasing exactly ``floor(d / 2)`` (or
        ``ceil``) ones -- and ``both + floor((cx + cy - 2 * both) / 2)``
        collapses to ``floor((cx + cy) / 2)``.  So a tree whose every level
        is plain TFF nodes admits :meth:`reduce_counts`, the count-domain
        shortcut behind the filter-parallel convolution's speedup.  MUX and
        OR levels are position-dependent and must reduce actual streams.
        """
        return all(group is not None and group[0] == "tff" for group in self._groups)

    def reduce_counts(self, leaf_counts: np.ndarray) -> np.ndarray:
        """Exact count-domain tree reduction for all-TFF plans.

        ``leaf_counts`` holds the ones-counts of the leaf streams, shape
        ``(..., lanes, k)`` (lane axis only when ``lanes > 1``); returns the
        root streams' ones-counts, shape ``(..., lanes)``, guaranteed
        bit-identical to popcounting the streams produced by
        :meth:`reduce_bits` / :meth:`reduce_packed` -- see
        :attr:`supports_count_reduction` for why this is exact (zero-padded
        odd levels contribute count 0, exactly like the padded streams).
        Raises ``ValueError`` when a level is not plain TFF.
        """
        if not self.supports_count_reduction:
            raise ValueError(
                "count-domain reduction is exact only for plain TffAdder "
                "trees; reduce the streams instead"
            )
        arr = np.asarray(leaf_counts)
        if self.lanes == 1:
            arr = arr[..., np.newaxis, :]
        if arr.ndim < 2 or arr.shape[-1] != self.count or arr.shape[-2] != self.lanes:
            raise ValueError(
                f"expected (..., {self.lanes} lanes, {self.count}) leaf "
                f"counts, got shape {arr.shape}"
            )
        level = arr.astype(np.int64, copy=False)
        # Zero-count leaves padded up to the full 2**depth once are exactly
        # the per-level zero-stream pads of the stream reduction: real nodes
        # stay left-aligned at every level and zero nodes stay zero under
        # both rounding directions.
        full = 1 << self.depth
        if self.count != full:
            padded = np.zeros(level.shape[:-1] + (full,), dtype=np.int64)
            padded[..., : self.count] = level
            level = padded
        for group in self._groups:
            total = level[..., 0::2] + level[..., 1::2]
            if group[1]:
                # initial_state selects the rounding: floor for 0, ceil for 1.
                total += 1
            total >>= 1
            level = total
        out = level[..., 0]
        return out[..., 0] if self.lanes == 1 else out

    @property
    def supports_masked_reduction(self) -> bool:
        """True when the root count follows from select-masked leaf streams.

        A plain :class:`MuxAdder` node forwards exactly one of its two input
        bits per cycle, chosen by its (cached, data-independent) select
        stream.  Composing those choices from the root down assigns every
        clock cycle to exactly one leaf -- or to a zero pad column, which
        contributes nothing -- so the root stream is the OR of
        ``leaf & mask`` over the disjoint per-leaf ownership masks of
        :meth:`leaf_masks`, and its ones-count is one masked popcount.  Only
        trees whose every level is plain MUX nodes qualify; TFF levels have
        their own exact shortcut (:attr:`supports_count_reduction`) and OR
        levels have none.
        """
        return all(group is not None and group[0] == "mux" for group in self._groups)

    def leaf_masks(self, length: int, packed: bool) -> np.ndarray:
        """Per-leaf ownership masks of an all-MUX tree: ``(lanes, count, .)``.

        Bit ``t`` of mask ``(lane, i)`` is 1 iff the select bits of lane
        ``lane``'s tree route leaf ``i``'s bit to the root at cycle ``t``.
        Masks of one lane are mutually disjoint; cycles routed to a zero pad
        column belong to no mask.  Cached per ``(length, packed)`` like the
        select streams themselves, so tiled evaluation reuses one
        derivation.
        """
        if not self.supports_masked_reduction:
            raise ValueError(
                "leaf ownership masks exist only for plain MuxAdder trees"
            )
        key = (length, packed)
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        if packed:
            width = words_for(length)
            root = mask_tail(
                np.full((self.lanes, 1, width), _ALL_WORD, dtype=np.uint64), length
            )
        else:
            root = np.ones((self.lanes, 1, length), dtype=np.uint8)
        masks = root
        # Walk the tree top-down: a node's mask splits into its two children
        # by its select stream (y / right child where select is 1), exactly
        # undoing one _reduce level; odd-width levels drop the trailing pad
        # column whose cycles are forwarded as hard zeros.
        for li in range(self.depth - 1, -1, -1):
            m = self.level_sizes[li]
            sel = self._selects(li, length, packed).reshape(
                self.lanes, m, masks.shape[-1]
            )
            inv = ~sel if packed else sel ^ 1
            children = np.empty(
                (self.lanes, 2 * m, masks.shape[-1]), dtype=masks.dtype
            )
            children[:, 0::2] = masks & inv
            children[:, 1::2] = masks & sel
            masks = children[:, : self._level_input_widths[li]]
        self._mask_cache[key] = masks
        return masks

    def _masked_root(self, leaves: np.ndarray, length: int, packed: bool) -> np.ndarray:
        """OR of ``leaf & mask`` over the leaf axis: the root stream itself."""
        arr = self._check_input(leaves, "W" if packed else "N")
        masks = self.leaf_masks(length, packed)
        return np.bitwise_or.reduce(arr & masks, axis=-2)

    def masked_counts_bits(self, bits: np.ndarray) -> np.ndarray:
        """Root ones-counts of an all-MUX tree from unpacked leaf streams.

        ``bits`` has shape ``(..., lanes, k, N)`` (lane axis only when
        ``lanes > 1``); returns int64 counts ``(..., lanes)`` (scalar lane
        axis dropped), guaranteed bit-identical to popcounting
        :meth:`reduce_bits` output -- no tree stream is ever built.
        """
        arr = np.asarray(bits)
        if arr.dtype != np.uint8:
            arr = arr.astype(np.uint8)
        counts = self._masked_root(arr, arr.shape[-1], packed=False).sum(
            axis=-1, dtype=np.int64
        )
        return counts[..., 0] if self.lanes == 1 else counts

    def masked_counts_packed(self, words: np.ndarray, n_bits: int) -> np.ndarray:
        """Packed-word counterpart of :meth:`masked_counts_bits`."""
        counts = packed_popcount(
            self._masked_root(np.asarray(words), n_bits, packed=True)
        )
        return counts[..., 0] if self.lanes == 1 else counts

    def reduce_bits(self, bits: np.ndarray) -> np.ndarray:
        """Reduce unpacked bit arrays ``(..., lanes, k, N)`` (lane axis only
        when ``lanes > 1``) to ``(..., lanes, N)`` output streams."""
        arr = np.asarray(bits)
        if arr.dtype != np.uint8:
            arr = arr.astype(np.uint8)
        arr = self._check_input(arr, "N")
        return self._reduce(arr, arr.shape[-1], packed=False)

    def reduce_packed(self, words: np.ndarray, n_bits: int) -> np.ndarray:
        """Reduce packed word arrays ``(..., lanes, k, W)`` (lane axis only
        when ``lanes > 1``) to ``(..., lanes, W)`` output streams."""
        arr = self._check_input(np.asarray(words), "W")
        return self._reduce(arr, n_bits, packed=True)

    def __repr__(self) -> str:
        return (
            f"TreePlan(count={self.count}, lanes={self.lanes}, depth={self.depth})"
        )


class AdderTree:
    """A balanced binary tree of two-input scaled adders.

    Summing ``k`` streams through a depth-``ceil(log2 k)`` tree produces the
    scaled sum ``sum(p_i) / 2**depth``.  For the TFF adder the result is exact
    up to one LSB *per adder*, so the tree error stays bounded by
    ``depth / N`` instead of compounding statistically as it does for MUX
    adders.  Missing leaves (when ``k`` is not a power of two) are filled with
    all-zero streams, exactly like the padded hardware tree.

    Reduction is applied level by level with one vectorized kernel per level
    (see the module docstring); node adders are still instantiated through
    ``adder_factory`` in the historical per-node order, so results are
    bit-identical to the old per-node loop for every adder type.

    Parameters
    ----------
    adder_factory:
        Callable returning a fresh two-input adder for each tree node
        (a fresh node per position keeps MUX select sources independent and
        lets TFF initial states alternate if desired).
    """

    def __init__(self, adder_factory=TffAdder) -> None:
        self.adder_factory = adder_factory

    def depth(self, count: int) -> int:
        """Number of adder levels needed for ``count`` inputs."""
        if count < 1:
            raise ValueError("need at least one input")
        depth = 0
        while (1 << depth) < count:
            depth += 1
        return depth

    def scale_factor(self, count: int) -> float:
        """The overall scaling ``2**-depth`` applied to the sum."""
        return 0.5 ** self.depth(count)

    def plan(self, count: int, lanes: int = 1) -> TreePlan:
        """Instantiate a reusable :class:`TreePlan` for ``count`` inputs.

        ``lanes > 1`` lays that many identical trees side by side on axis
        ``-3`` (adders created lane-major, exactly like sequential per-lane
        reductions); the returned plan can be applied to any number of input
        tiles with bit-identical results.
        """
        return TreePlan(self.adder_factory, count, lanes=lanes)

    def reduce(self, streams: Sequence[StreamLike] | np.ndarray) -> StreamLike:
        """Reduce a list of streams (or an array stacked on axis -2) to one stream."""
        if isinstance(streams, np.ndarray):
            if streams.ndim < 2 or streams.shape[-2] == 0:
                raise ValueError("stacked input must have shape (..., k, N) with k >= 1")
            stacked = streams
            template: StreamLike = streams[..., 0, :]
        else:
            if len(streams) == 0:
                raise ValueError("need at least one input stream")
            stream_list = [as_bits(s)[0] for s in streams]
            check_same_length(*stream_list)
            shape = np.broadcast_shapes(*(s.shape for s in stream_list))
            stacked = np.stack(
                [np.broadcast_to(s, shape) for s in stream_list], axis=-2
            )
            template = streams[0]
        result = TreePlan(self.adder_factory, stacked.shape[-2]).reduce_bits(stacked)
        return wrap_like(result, template)

    def reduce_packed(self, words: np.ndarray, n_bits: int) -> np.ndarray:
        """Word-level :meth:`reduce` over packed streams stacked on axis -2.

        ``words`` has shape ``(..., k, W)`` with ``W = ceil(n_bits / 64)``
        uint64 words per stream.  Nodes are instantiated in exactly the same
        order as in :meth:`reduce` (level by level, left to right, zero-padded
        odd levels), so stateful factories -- e.g. per-node MUX select seeds --
        produce bit-identical trees in both representations.
        """
        arr = np.asarray(words)
        if arr.ndim < 2 or arr.shape[-2] == 0:
            raise ValueError("stacked input must have shape (..., k, W) with k >= 1")
        return TreePlan(self.adder_factory, arr.shape[-2]).reduce_packed(arr, n_bits)

    def expected(self, values: Sequence[float]) -> float:
        """Ideal output of the tree for unipolar input values."""
        return float(np.sum(values)) * self.scale_factor(len(values))

    def __repr__(self) -> str:
        return f"AdderTree(adder_factory={self.adder_factory!r})"
