"""Sequential building blocks: the toggle flip-flop and the TFF halver.

The toggle flip-flop (TFF) is the key hardware ingredient of the paper's new
adder (Section III).  A TFF flips its stored bit whenever its input is 1;
crucially, the output stream it produces

* always has ones-density (very close to) 1/2, and
* is *uncorrelated with its own input by construction* -- the output at
  cycle ``t`` depends only on the parity of the input ones seen so far, so no
  extra random number source is needed and auto-correlated inputs (such as
  ramp-converted sensor data) are handled exactly.

:func:`tff_halver` implements the circuit of Fig. 2a, which computes
``p_C = p_A / 2`` by ANDing the input with the TFF output.
"""

from __future__ import annotations

import numpy as np

from .util import StreamLike, as_bits, wrap_like

__all__ = ["toggle_states", "tff_output", "tff_halver", "ToggleFlipFlop"]


def toggle_states(trigger: np.ndarray, initial_state: int = 0) -> np.ndarray:
    """Return the TFF state *seen at* each cycle for a trigger bit array.

    ``trigger`` has shape ``(..., N)``; the returned array has the same shape
    and contains, for every cycle ``t``, the flip-flop state before any toggle
    caused by ``trigger[t]`` is applied (i.e. the value a downstream gate
    observes during cycle ``t``).
    """
    trigger = np.asarray(trigger, dtype=np.uint8)
    if initial_state not in (0, 1):
        raise ValueError(f"initial_state must be 0 or 1, got {initial_state}")
    # Parity of trigger ones strictly before t, computed as an exclusive scan.
    cumulative = np.cumsum(trigger, axis=-1, dtype=np.int64)
    before = cumulative - trigger
    return ((before & 1) ^ initial_state).astype(np.uint8)


def tff_output(trigger: StreamLike, initial_state: int = 0) -> StreamLike:
    """The bit-stream produced at the Q output of a TFF fed by ``trigger``."""
    bits, _ = as_bits(trigger)
    return wrap_like(toggle_states(bits, initial_state), trigger)


def tff_halver(x: StreamLike, initial_state: int = 1) -> StreamLike:
    """The Fig. 2a circuit: ``p_out = p_x / 2`` with no extra random source.

    Every *other* 1 of the input is passed to the output; with
    ``initial_state=1`` the first input 1 is passed (output ones-count is
    ``ceil(ones / 2)``), with 0 it is suppressed (``floor(ones / 2)``).
    """
    bits, _ = as_bits(x)
    # The TFF is triggered by the input itself; the AND gate passes the input
    # bit only when the flip-flop currently stores a 1.
    state = toggle_states(bits, initial_state)
    return wrap_like((bits & state).astype(np.uint8), x)


class ToggleFlipFlop:
    """A stateful TFF for cycle-by-cycle use (gate-level simulation, examples).

    The vectorized helpers above are preferred for bulk simulation; this class
    exists for step-wise circuit walk-throughs and for the netlist substrate.
    """

    def __init__(self, initial_state: int = 0) -> None:
        if initial_state not in (0, 1):
            raise ValueError("initial_state must be 0 or 1")
        self._initial_state = int(initial_state)
        self._state = int(initial_state)

    @property
    def state(self) -> int:
        """The currently stored bit."""
        return self._state

    def reset(self) -> None:
        """Restore the initial state."""
        self._state = self._initial_state

    def step(self, trigger: int) -> int:
        """Observe the current state, then toggle if ``trigger`` is 1.

        Returns the state *before* the toggle, matching the semantics the
        adder relies on (the multiplexer reads Q during the same cycle the
        toggle pulse is applied).
        """
        current = self._state
        if trigger:
            self._state ^= 1
        return current

    def run(self, trigger: StreamLike) -> np.ndarray:
        """Apply a whole trigger stream and return the observed states."""
        bits, _ = as_bits(trigger)
        if bits.ndim != 1:
            raise ValueError(
                "ToggleFlipFlop.run expects a single one-dimensional stream; "
                "use toggle_states() for batched simulation"
            )
        out = np.empty_like(bits)
        for i, bit in enumerate(bits):
            out[i] = self.step(int(bit))
        return out
