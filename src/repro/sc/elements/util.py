"""Shared helpers for stochastic arithmetic elements.

All arithmetic elements in :mod:`repro.sc.elements` operate on the *last*
axis of uint8 arrays, so the same code path serves three use cases:

* single :class:`~repro.bitstream.Bitstream` objects (unit tests, examples);
* batches of streams, e.g. ``(windows, taps, N)`` arrays produced by the
  hybrid first layer (fast vectorized simulation);
* exhaustive input sweeps for the Table 1 / Table 2 MSE experiments.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ...bitstream import Bitstream

__all__ = ["StreamLike", "as_bits", "wrap_like", "check_same_length"]

StreamLike = Union[Bitstream, np.ndarray]


def as_bits(stream: StreamLike) -> Tuple[np.ndarray, bool]:
    """Return ``(uint8 array, was_bitstream)`` for any accepted stream type."""
    if isinstance(stream, Bitstream):
        return stream.bits, True
    arr = np.asarray(stream)
    if arr.dtype != np.uint8:
        arr = arr.astype(np.uint8)
    return arr, False


def wrap_like(bits: np.ndarray, template: StreamLike) -> StreamLike:
    """Wrap ``bits`` back into a :class:`Bitstream` if ``template`` was one."""
    if isinstance(template, Bitstream):
        return Bitstream(bits, encoding=template.encoding)
    return bits


def check_same_length(*arrays: np.ndarray) -> int:
    """Verify all arrays share the same stream length (last axis) and return it."""
    lengths = {int(a.shape[-1]) for a in arrays}
    if len(lengths) != 1:
        raise ValueError(f"stream length mismatch: {sorted(lengths)}")
    return lengths.pop()
