"""Stochastic arithmetic elements: multipliers, adders, flip-flops, converters."""

from .adders import (
    AdderTree,
    TreePlan,
    MuxAdder,
    OrAdder,
    StochasticAdder,
    TffAdder,
    mux_add,
    or_add,
    tff_add,
)
from .converters import (
    AsynchronousCounter,
    BinaryCounter,
    SynchronousCounter,
    count_ones,
    sign_from_counts,
    stochastic_to_binary,
)
from .flipflops import ToggleFlipFlop, tff_halver, tff_output, toggle_states
from .multipliers import AndMultiplier, XnorMultiplier, and_multiply, xnor_multiply

__all__ = [
    "AndMultiplier",
    "XnorMultiplier",
    "and_multiply",
    "xnor_multiply",
    "StochasticAdder",
    "TffAdder",
    "MuxAdder",
    "OrAdder",
    "AdderTree",
    "TreePlan",
    "tff_add",
    "mux_add",
    "or_add",
    "ToggleFlipFlop",
    "toggle_states",
    "tff_output",
    "tff_halver",
    "BinaryCounter",
    "AsynchronousCounter",
    "SynchronousCounter",
    "count_ones",
    "stochastic_to_binary",
    "sign_from_counts",
]
