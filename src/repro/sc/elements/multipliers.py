"""Stochastic multipliers.

Multiplication is the celebrated cheap operation of stochastic computing:

* in the **unipolar** encoding a single AND gate multiplies two independent
  streams, because ``P(x AND y) = P(x) * P(y)`` (Fig. 1a of the paper);
* in the **bipolar** encoding the same role is played by an XNOR gate.

Both elements are exact *in expectation*; the error of a finite-length
multiplication is entirely determined by how the input streams were
generated, which is what Table 1 measures and what
:func:`repro.eval.table1.run_table1` reproduces.
"""

from __future__ import annotations

import numpy as np

from .util import StreamLike, as_bits, check_same_length, wrap_like

__all__ = ["AndMultiplier", "XnorMultiplier", "and_multiply", "xnor_multiply"]


def and_multiply(x: StreamLike, y: StreamLike) -> StreamLike:
    """Unipolar stochastic multiplication: bitwise AND of the two streams."""
    xb, _ = as_bits(x)
    yb, _ = as_bits(y)
    check_same_length(xb, yb)
    return wrap_like((xb & yb).astype(np.uint8), x)


def xnor_multiply(x: StreamLike, y: StreamLike) -> StreamLike:
    """Bipolar stochastic multiplication: bitwise XNOR of the two streams."""
    xb, _ = as_bits(x)
    yb, _ = as_bits(y)
    check_same_length(xb, yb)
    return wrap_like((1 - (xb ^ yb)).astype(np.uint8), x)


class AndMultiplier:
    """The single-AND-gate unipolar multiplier (Fig. 1a).

    The class form exists so multipliers and adders share a uniform
    ``element(x, y)`` interface in sweeps and in the gate-level circuit
    generators; it has no state.
    """

    #: Number of two-input gate equivalents, used by the hardware cost model.
    gate_count = 1

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        return and_multiply(x, y)

    def expected(self, px: float, py: float) -> float:
        """The ideal (infinite-length) output value for unipolar inputs."""
        return float(px) * float(py)

    def __repr__(self) -> str:
        return "AndMultiplier()"


class XnorMultiplier:
    """The single-XNOR-gate bipolar multiplier."""

    gate_count = 1

    def __call__(self, x: StreamLike, y: StreamLike) -> StreamLike:
        return xnor_multiply(x, y)

    def expected(self, x: float, y: float) -> float:
        """The ideal output value for bipolar inputs."""
        return float(x) * float(y)

    def __repr__(self) -> str:
        return "XnorMultiplier()"
