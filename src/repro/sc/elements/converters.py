"""Stochastic-to-binary converters (counters) and the sign-activation comparator.

Leaving the stochastic domain is done by counting ones (Fig. 1d of the
paper): after ``N`` cycles the counter holds the integer numerator of the
stream's value.  The paper distinguishes two hardware flavours:

* **synchronous counters** -- conventional counters whose whole register must
  settle between clock edges; their long carry chain limits the clock rate of
  the stochastic core feeding them.
* **asynchronous (ripple) counters** -- each stage is clocked by the previous
  stage's output, so a new input pulse can be accepted before earlier pulses
  have rippled through; this lets the stochastic core run at full speed.

Functionally both produce the same count; the distinction matters only to the
hardware timing/energy model, so both classes expose identical behavioural
interfaces plus the metadata the :mod:`repro.hw` model consumes.
"""

from __future__ import annotations

import numpy as np

from .util import StreamLike, as_bits

__all__ = [
    "count_ones",
    "stochastic_to_binary",
    "BinaryCounter",
    "AsynchronousCounter",
    "SynchronousCounter",
    "sign_from_counts",
]


def count_ones(stream: StreamLike) -> np.ndarray:
    """Count the ones of each stream along the last axis (vectorized)."""
    bits, _ = as_bits(stream)
    return bits.sum(axis=-1, dtype=np.int64)


def stochastic_to_binary(stream: StreamLike, encoding: str = "unipolar") -> np.ndarray:
    """Convert stream(s) to the binary value they encode.

    Returns floats: ``ones / N`` for unipolar and ``2 * ones / N - 1`` for
    bipolar streams.
    """
    bits, _ = as_bits(stream)
    n = bits.shape[-1]
    p = count_ones(bits) / float(n)
    if encoding == "unipolar":
        return p
    if encoding == "bipolar":
        return 2.0 * p - 1.0
    raise ValueError(f"unknown encoding {encoding!r}")


class BinaryCounter:
    """Behavioural model of an up-counter used as stochastic-to-binary converter.

    Parameters
    ----------
    bits:
        Register width; the count saturates at ``2**bits - 1`` (a real counter
        would wrap, but in the paper's datapath the stream length never
        exceeds the counter range, so saturation only guards misuse).
    """

    #: Identifier used by the hardware model ("sync" or "async").
    style = "generic"

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError("counter needs at least 1 bit")
        self.bits = int(bits)
        self.max_count = (1 << self.bits) - 1
        self._count = 0

    @property
    def count(self) -> int:
        """Current register value."""
        return self._count

    def reset(self) -> None:
        """Clear the counter."""
        self._count = 0

    def step(self, bit: int) -> int:
        """Apply one stream bit and return the updated count."""
        if bit:
            self._count = min(self._count + 1, self.max_count)
        return self._count

    def run(self, stream: StreamLike) -> int:
        """Count the ones of a single stream (resets first)."""
        bits, _ = as_bits(stream)
        if bits.ndim != 1:
            raise ValueError(
                "BinaryCounter.run expects a single stream; "
                "use count_ones() for batched conversion"
            )
        self.reset()
        total = int(bits.sum())
        self._count = min(total, self.max_count)
        return self._count


class AsynchronousCounter(BinaryCounter):
    """Ripple counter: stages clock each other, so the SC core can run fast.

    The behavioural count is identical to :class:`BinaryCounter`; the class
    carries the timing metadata used by :mod:`repro.hw` (the maximum input
    rate is set by a single flip-flop delay rather than the full carry chain).
    """

    style = "async"

    #: Critical path seen by the stochastic core, in flip-flop delays.
    input_stage_delay_ff = 1


class SynchronousCounter(BinaryCounter):
    """Synchronous counter: the whole register must settle every cycle.

    Its carry chain of ``bits`` stages throttles the stochastic core clock,
    which is why the paper chooses asynchronous counters (Section II-A).
    """

    style = "sync"

    @property
    def input_stage_delay_ff(self) -> int:
        """Critical path in flip-flop-delay equivalents (grows with width)."""
        return self.bits


def sign_from_counts(
    positive_count: np.ndarray, negative_count: np.ndarray
) -> np.ndarray:
    """The binary sign-activation comparator of the hybrid first layer.

    The stochastic dot-product engine produces two unipolar results -- one for
    the positive-weight products and one for the negative-weight products --
    each converted to a count.  The activation g(x, w) = sign(x . w) is then a
    plain binary comparison of the two counts:

    * +1 when the positive count exceeds the negative count,
    * -1 when it is smaller,
    *  0 on a tie.
    """
    pos = np.asarray(positive_count, dtype=np.int64)
    neg = np.asarray(negative_count, dtype=np.int64)
    return np.sign(pos - neg).astype(np.int8)
