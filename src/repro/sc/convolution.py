"""The stochastic convolution layer (784 parallel dot-product engines, Fig. 3).

The hybrid first layer of the paper is a convolutional layer evaluated
entirely in the stochastic domain: every output position has a dedicated
stochastic dot-product engine, the 32 kernels are applied sequentially, and
each engine's output is the sign activation computed from two counters.

:class:`StochasticConv2D` drives a :class:`~repro.sc.dotproduct.StochasticDotProductEngine`
over a batch of images.  Inputs are pixel values in ``[0, 1]`` (as produced by
the simulated sensor front end) and kernels are signed weights in ``[-1, 1]``
(after weight scaling).  Outputs follow the ``(batch, filters, H, W)`` layout
of the binary :class:`repro.nn.layers.Conv2D` so the two can be swapped
freely inside a network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..utils.windows import conv_output_size, extract_patches, patches_to_map
from .dotproduct import StochasticDotProductEngine, new_sc_engine

__all__ = ["StochasticConvResult", "StochasticConv2D"]


@dataclass
class StochasticConvResult:
    """All outputs of one stochastic convolution pass."""

    #: Sign activations, shape ``(batch, filters, out_h, out_w)``, values -1/0/+1.
    sign: np.ndarray
    #: Reconstructed dot-product values (same shape) -- used for analysis and
    #: for validating the fast emulation mode; a real sensor node would not
    #: compute these.
    value: np.ndarray
    #: Positive- and negative-path counter outputs (same shape).
    positive_count: np.ndarray
    negative_count: np.ndarray


class StochasticConv2D:
    """Convolution evaluated with stochastic dot-product engines.

    Parameters
    ----------
    kernels:
        Signed kernel weights of shape ``(filters, kh, kw)`` with values in
        ``[-1, 1]``.
    engine:
        The dot-product engine configuration; defaults to the paper's
        proposed design at 8-bit precision.
    padding / stride:
        Convolution geometry.  The paper's Fig. 3 uses "same" padding so that
        a 28x28 image produces 784 output positions; pass
        ``padding=kernel//2`` for that arrangement.
    soft_threshold:
        If non-zero, dot products whose magnitude (in counter LSBs) is below
        ``soft_threshold * N`` are forced to zero before the sign activation.
        This is the error-mitigation trick of Kim et al. adopted in
        Section V-B for near-zero values.
    """

    def __init__(
        self,
        kernels: np.ndarray,
        engine: Optional[StochasticDotProductEngine] = None,
        padding: int = 0,
        stride: int = 1,
        soft_threshold: float = 0.0,
    ) -> None:
        kernels = np.asarray(kernels, dtype=np.float64)
        if kernels.ndim != 3:
            raise ValueError(
                f"kernels must have shape (filters, kh, kw), got {kernels.shape}"
            )
        if np.any(np.abs(kernels) > 1.0 + 1e-9):
            raise ValueError("kernel weights must lie in [-1, 1]")
        if soft_threshold < 0:
            raise ValueError("soft_threshold must be non-negative")
        self.kernels = kernels
        self.engine = engine if engine is not None else new_sc_engine(precision=8)
        self.padding = int(padding)
        self.stride = int(stride)
        self.soft_threshold = float(soft_threshold)

    @property
    def filters(self) -> int:
        """Number of convolution kernels."""
        return self.kernels.shape[0]

    @property
    def kernel_size(self) -> tuple[int, int]:
        """Spatial kernel size ``(kh, kw)``."""
        return self.kernels.shape[1], self.kernels.shape[2]

    def output_shape(self, image_shape: tuple[int, int]) -> tuple[int, int]:
        """Spatial output shape for a given input image shape."""
        kh, kw = self.kernel_size
        return (
            conv_output_size(image_shape[0], kh, self.stride, self.padding),
            conv_output_size(image_shape[1], kw, self.stride, self.padding),
        )

    def forward(self, images: np.ndarray) -> StochasticConvResult:
        """Run the stochastic convolution over a batch of images.

        Parameters
        ----------
        images:
            Array of shape ``(batch, H, W)`` with pixel values in ``[0, 1]``.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 3:
            raise ValueError(f"expected (batch, H, W) images, got {images.shape}")
        if images.min() < -1e-9 or images.max() > 1.0 + 1e-9:
            raise ValueError("pixel values must lie in [0, 1]")

        kh, kw = self.kernel_size
        out_h, out_w = self.output_shape(images.shape[1:])
        patches = extract_patches(images, (kh, kw), self.stride, self.padding)
        batch, n_patches, taps = patches.shape

        # Generate the input bit-streams once (packed words or uint8 bits,
        # depending on the engine backend); they are shared by all kernels,
        # exactly as the sensor-side converters are shared in hardware.
        x_streams = self.engine.prepare_inputs(patches)

        pos = np.empty((batch, n_patches, self.filters), dtype=np.int64)
        neg = np.empty_like(pos)
        flat_kernels = self.kernels.reshape(self.filters, taps)
        for f in range(self.filters):
            result = self.engine.dot_prepared(x_streams, flat_kernels[f])
            pos[:, :, f] = result.positive_count
            neg[:, :, f] = result.negative_count

        length = self.engine.length
        tree_scale = result.tree_scale
        value = (pos - neg).astype(np.float64) / length * tree_scale
        sign = np.sign(pos - neg).astype(np.int8)
        if self.soft_threshold > 0.0:
            below = np.abs(pos - neg) < self.soft_threshold * length
            sign = np.where(below, 0, sign).astype(np.int8)
            value = np.where(below, 0.0, value)

        return StochasticConvResult(
            sign=patches_to_map(sign.astype(np.float64), (out_h, out_w)).astype(np.int8),
            value=patches_to_map(value, (out_h, out_w)),
            positive_count=patches_to_map(pos.astype(np.float64), (out_h, out_w)).astype(
                np.int64
            ),
            negative_count=patches_to_map(neg.astype(np.float64), (out_h, out_w)).astype(
                np.int64
            ),
        )

    def __repr__(self) -> str:
        return (
            f"StochasticConv2D(filters={self.filters}, kernel={self.kernel_size}, "
            f"padding={self.padding}, stride={self.stride}, engine={self.engine!r})"
        )
