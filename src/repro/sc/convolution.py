"""The stochastic convolution layer (784 parallel dot-product engines, Fig. 3).

The hybrid first layer of the paper is a convolutional layer evaluated
entirely in the stochastic domain: every output position has a dedicated
stochastic dot-product engine, the 32 kernels are applied sequentially, and
each engine's output is the sign activation computed from two counters.

:class:`StochasticConv2D` drives a :class:`~repro.sc.dotproduct.StochasticDotProductEngine`
over a batch of images.  Inputs are pixel values in ``[0, 1]`` (as produced by
the simulated sensor front end) and kernels are signed weights in ``[-1, 1]``
(after weight scaling).  Outputs follow the ``(batch, filters, H, W)`` layout
of the binary :class:`repro.nn.layers.Conv2D` so the two can be swapped
freely inside a network.

Filter axis and tiling contract
-------------------------------
The layer is *filter-parallel*: the engine's
:meth:`~repro.sc.dotproduct.StochasticDotProductEngine.prepare_weights`
builds one weight-stream bank with a leading filter axis (``(filters, 2,
taps, words)``) and one lane-per-``(filter, sign)`` adder-tree plan, so a
single vectorized reduction replaces the historical loop of per-filter
``dot_prepared`` calls -- with bit-identical counter values for every adder
and generator configuration, because adder nodes are instantiated in the
same filter-major order the loop used.

Execution is *tile-streamed*: ``tile_patches`` (or the
``REPRO_TILE_PATCHES`` environment variable) bounds how many image patches
are in flight at once.  Input bit-streams are generated per tile and counts
accumulated incrementally, so peak memory is ``O(tile_patches * filters *
taps * words)`` regardless of batch size -- this is what lets
``REPRO_BITEXACT=1`` runs cover the full MNIST test set.  Stream generation
is stateless and the weight bank (select streams included) is built once and
reused, so any tiling -- including tile sizes that do not divide the patch
count -- produces counts bit-identical to one untiled pass.

Evaluation mode
---------------
The layer inherits the engine's evaluation mode (:mod:`repro.sc.mode`):
under ``mode="counts"`` (the ``"auto"`` default for TFF and MUX adder
trees) the per-tile reduction never materializes adder-tree stream tensors
-- TFF trees reduce integer counts per level and MUX trees apply cached
select-ownership masks -- while ``mode="streams"`` forces the reference
stream reduction.  Both produce bit-identical counters, so the mode is
purely a speed/memory knob for Table 3-scale runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..utils.windows import conv_output_size, extract_patches, patches_to_map
from .dotproduct import StochasticDotProductEngine, new_sc_engine

__all__ = [
    "StochasticConvResult",
    "StochasticConv2D",
    "resolve_tile_patches",
]


def resolve_tile_patches(tile_patches: Optional[int] = None) -> Optional[int]:
    """Resolve the patch-tile size: explicit value, else ``REPRO_TILE_PATCHES``.

    Returns ``None`` (process all patches in one pass) when neither is set.
    An explicit argument always wins over the environment.
    """
    if tile_patches is None:
        env = os.environ.get("REPRO_TILE_PATCHES")
        if env is None or env == "":
            return None
        try:
            tile_patches = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_TILE_PATCHES must be a positive integer, got {env!r}"
            ) from None
    tile_patches = int(tile_patches)
    if tile_patches < 1:
        raise ValueError(f"tile_patches must be positive, got {tile_patches}")
    return tile_patches


@dataclass
class StochasticConvResult:
    """All outputs of one stochastic convolution pass."""

    #: Sign activations, shape ``(batch, filters, out_h, out_w)``, values -1/0/+1.
    sign: np.ndarray
    #: Reconstructed dot-product values (same shape) -- used for analysis and
    #: for validating the fast emulation mode; a real sensor node would not
    #: compute these.
    value: np.ndarray
    #: Positive- and negative-path counter outputs (same shape).
    positive_count: np.ndarray
    negative_count: np.ndarray


class StochasticConv2D:
    """Convolution evaluated with stochastic dot-product engines.

    Parameters
    ----------
    kernels:
        Signed kernel weights of shape ``(filters, kh, kw)`` with values in
        ``[-1, 1]``; at least one filter is required.
    engine:
        The dot-product engine configuration; defaults to the paper's
        proposed design at 8-bit precision.
    padding / stride:
        Convolution geometry.  The paper's Fig. 3 uses "same" padding so that
        a 28x28 image produces 784 output positions; pass
        ``padding=kernel//2`` for that arrangement.
    soft_threshold:
        If non-zero, dot products whose magnitude (in counter LSBs) is below
        ``soft_threshold * N`` are forced to zero before the sign activation.
        This is the error-mitigation trick of Kim et al. adopted in
        Section V-B for near-zero values.
    tile_patches:
        Upper bound on the number of image patches simulated at once (the
        tiling contract in the module docstring); ``None`` defers to the
        ``REPRO_TILE_PATCHES`` environment variable, falling back to a
        single untiled pass.  Any tile size yields bit-identical counts.
    """

    def __init__(
        self,
        kernels: np.ndarray,
        engine: Optional[StochasticDotProductEngine] = None,
        padding: int = 0,
        stride: int = 1,
        soft_threshold: float = 0.0,
        tile_patches: Optional[int] = None,
    ) -> None:
        kernels = np.asarray(kernels, dtype=np.float64)
        if kernels.ndim != 3:
            raise ValueError(
                f"kernels must have shape (filters, kh, kw), got {kernels.shape}"
            )
        if kernels.shape[0] == 0:
            raise ValueError(
                "kernels must contain at least one filter "
                f"(got shape {kernels.shape})"
            )
        if np.any(np.abs(kernels) > 1.0 + 1e-9):
            raise ValueError("kernel weights must lie in [-1, 1]")
        if soft_threshold < 0:
            raise ValueError("soft_threshold must be non-negative")
        self.kernels = kernels
        self.engine = engine if engine is not None else new_sc_engine(precision=8)
        self.padding = int(padding)
        self.stride = int(stride)
        self.soft_threshold = float(soft_threshold)
        self.tile_patches = resolve_tile_patches(tile_patches)

    @property
    def filters(self) -> int:
        """Number of convolution kernels."""
        return self.kernels.shape[0]

    @property
    def kernel_size(self) -> tuple[int, int]:
        """Spatial kernel size ``(kh, kw)``."""
        return self.kernels.shape[1], self.kernels.shape[2]

    def output_shape(self, image_shape: tuple[int, int]) -> tuple[int, int]:
        """Spatial output shape for a given input image shape."""
        kh, kw = self.kernel_size
        return (
            conv_output_size(image_shape[0], kh, self.stride, self.padding),
            conv_output_size(image_shape[1], kw, self.stride, self.padding),
        )

    def forward(self, images: np.ndarray) -> StochasticConvResult:
        """Run the stochastic convolution over a batch of images.

        Parameters
        ----------
        images:
            Array of shape ``(batch, H, W)`` with pixel values in ``[0, 1]``.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 3:
            raise ValueError(f"expected (batch, H, W) images, got {images.shape}")
        # Guard the range check behind ``size``: an empty batch has no pixels
        # to validate and ``min()``/``max()`` would raise on it.  Geometry is
        # still validated (via ``output_shape``) so only ``batch == 0`` with a
        # legal spatial shape reaches the empty fast path below.
        if images.size and (images.min() < -1e-9 or images.max() > 1.0 + 1e-9):
            raise ValueError("pixel values must lie in [0, 1]")

        kh, kw = self.kernel_size
        out_h, out_w = self.output_shape(images.shape[1:])
        patches = extract_patches(images, (kh, kw), self.stride, self.padding)
        batch, n_patches, taps = patches.shape

        # One weight-stream bank for all kernels (leading filter axis, fused
        # positive/negative trees), built once and shared by every tile --
        # exactly as the weight-side converters are shared in hardware.
        bank = self.engine.prepare_weights(self.kernels.reshape(self.filters, taps))

        flat = patches.reshape(batch * n_patches, taps)
        total = flat.shape[0]
        # ``max(total, 1)`` keeps the tile step positive for an empty batch,
        # where the loop body never runs and the empty count arrays pass
        # straight through to correctly-shaped ``(0, F, out_h, out_w)`` maps.
        tile = self.tile_patches if self.tile_patches is not None else max(total, 1)
        pos = np.empty((total, self.filters), dtype=np.int64)
        neg = np.empty_like(pos)
        for start in range(0, total, tile):
            stop = min(start + tile, total)
            # Input bit-streams are generated per tile (stateless conversion,
            # shared by all kernels) so peak memory stays bounded by the tile.
            # Fault masks are keyed on the *global* patch index (offset =
            # tile start), so any tile_patches value corrupts identically.
            x_streams = self.engine.apply_faults(
                self.engine.prepare_inputs(flat[start:stop]), offset=start
            )
            pos[start:stop], neg[start:stop] = bank.counts(x_streams)
        pos = pos.reshape(batch, n_patches, self.filters)
        neg = neg.reshape(batch, n_patches, self.filters)

        length = self.engine.length
        tree_scale = bank.tree_scale
        value = (pos - neg).astype(np.float64) / length * tree_scale
        sign = np.sign(pos - neg).astype(np.int8)
        if self.soft_threshold > 0.0:
            below = np.abs(pos - neg) < self.soft_threshold * length
            sign = np.where(below, 0, sign).astype(np.int8)
            value = np.where(below, 0.0, value)

        # ``patches_to_map`` is a pure reshape/transpose, so counts stay int64
        # end to end -- no float64 round trip that would silently corrupt
        # counter values beyond 2**53.
        return StochasticConvResult(
            sign=patches_to_map(sign, (out_h, out_w)),
            value=patches_to_map(value, (out_h, out_w)),
            positive_count=patches_to_map(pos, (out_h, out_w)),
            negative_count=patches_to_map(neg, (out_h, out_w)),
        )

    def __repr__(self) -> str:
        return (
            f"StochasticConv2D(filters={self.filters}, kernel={self.kernel_size}, "
            f"padding={self.padding}, stride={self.stride}, "
            f"tile_patches={self.tile_patches}, engine={self.engine!r})"
        )
