"""Cycle-accurate simulation of gate-level netlists with activity capture.

This is the reproduction's stand-in for gate-level power simulation with
PrimeTime: the netlist is evaluated cycle by cycle against input waveforms
(MNIST-trace-driven in the Table 3 experiments), and the simulator records
per-net toggle counts.  Toggle counts multiplied by per-cell switching energy
give the activity-based dynamic power estimate of
:mod:`repro.netlist.power`.

The simulation model is the standard zero-delay cycle model:

* at the start of every cycle, primary inputs take their new values and
  sequential cells present their stored state on their outputs;
* at the end of the cycle, sequential cells capture their next state.

Backend selection
-----------------
Two execution backends produce that model's results (selected by the same
``backend="packed"|"unpacked"`` / ``REPRO_BACKEND`` convention as the
stochastic dot-product engines, see
:func:`repro.bitstream.backend.resolve_backend`):

* ``"unpacked"`` -- the reference interpreter: combinational cells are
  evaluated in topological order, one Python call per cell per cycle;
* ``"packed"`` -- the word-parallel fast path: every net's full waveform is
  stored 64 cycles per ``uint64`` word and each combinational cell is
  evaluated once on whole word arrays (its :attr:`~repro.netlist.cells.Cell`
  ``word_logic``).  Sequential cells are resolved in closed form -- a DFF is
  a one-cycle packed delay, a TFF a word-parallel prefix-parity scan -- in
  topological order of the *register* dependency graph.  Toggle counts come
  from the ``popcount(w ^ (w >> 1))`` word kernel
  (:func:`repro.bitstream.packed.packed_transition_count`).

Netlists whose registers form a combinational feedback cycle (e.g. an LFSR,
or the accumulator loop of a binary MAC) have no per-register closed form.
The packed backend resolves them without abandoning word parallelism: the
stalled instances are grouped into strongly connected components of the
register dependency graph, and only that narrow feedback *core* is iterated
cycle by cycle over its state vector.  Autonomous cores (all external inputs
constant, the LFSR case) additionally stop at the first repeated register
state and wrap the periodic waveform out to the full run length
(:func:`repro.bitstream.packed.extend_periodic`), so an ``n``-bit LFSR costs
``min(cycles, period)`` scalar steps regardless of the simulation length.
The packed core waveforms then feed the ordinary word-parallel evaluation of
everything downstream (comparators, trees, counters), so results stay
bit-identical to ``"unpacked"`` on every netlist.  The only remaining
cycle-loop fallback is a cell without a ``word_logic`` implementation, which
no library cell triggers.

Batched multi-trace simulation
------------------------------
:func:`simulate_batch` evaluates one netlist against ``K`` stimulus sets in
a single packed run: per-net stimulus arrays carry the traces on a leading
axis (shape ``(K, cycles)``; 1-D arrays are shared by every trace, e.g.
weight streams), every word kernel broadcasts over that axis, and the result
(:class:`BatchSimulationResult`) holds ``(K, cycles)`` waveforms and
``(K,)`` toggle vectors per net.  Batched results plug directly into
:func:`repro.netlist.power.estimate_power`, which then uses the mean
activity across traces -- this is how one packed run covers an entire MNIST
trace set in the Table 3 activity path.  Shared-input feedback cores are
resolved once and broadcast; cores fed by per-trace waveforms are iterated
cycle by cycle with the *trace axis* packed 64-per-word (combinational core
cells through their positionwise ``word_logic``, register transitions
through ``Cell.word_step``), so even non-autonomous feedback circuits cost
one Python pass over the cycles for the whole batch.  Cells without a
``word_step`` fall back to one per-trace core iteration per stimulus set.

Strict elaboration
------------------
Both entry points accept ``strict=True`` to run the error-severity rules of
the static analyzer (:mod:`repro.netlist.lint`) before execution.  Plain
``validate()`` only proves that instance inputs have drivers; strict mode
additionally rejects undriven primary outputs, duplicate instance names
(which would silently share one sequential-state entry in the cycle loop),
combinational cycles (reported as their actual SCC member list), and
out-of-range ``initial_state`` values (which diverge between the packed and
unpacked backends).  Use it when simulating netlists from new or generated
builders; the cost is one linear graph pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

import numpy as np

from ..bitstream.backend import resolve_backend
from ..bitstream.packed import (
    extend_periodic,
    mask_tail,
    pack_bits,
    packed_transition_count,
    unpack_bits,
    words_for,
)
from ..faults.spec import NetlistFaults
from .graph import strongly_connected_instances
from .netlist import Instance, Netlist

__all__ = [
    "SimulationResult",
    "BatchSimulationResult",
    "simulate",
    "simulate_batch",
]


@dataclass
class SimulationResult:
    """Waveforms and switching activity from one simulation run."""

    #: Number of simulated cycles.
    cycles: int
    #: Recorded waveforms: net name -> uint8 array of length ``cycles``.
    waveforms: Dict[str, np.ndarray]
    #: Toggle counts per net (number of value changes between consecutive cycles).
    toggles: Dict[str, int]

    def waveform(self, net: str) -> np.ndarray:
        """Return the recorded waveform of one net."""
        return self.waveforms[net]

    def activity(self, net: str) -> float:
        """Average toggle rate of a net (toggles per cycle)."""
        if self.cycles <= 1:
            return 0.0
        return self.toggles[net] / (self.cycles - 1)

    def total_toggles(self) -> int:
        """Sum of toggle counts over all nets."""
        return int(sum(self.toggles.values()))

    def average_activity(self) -> float:
        """Mean toggle rate across all recorded nets."""
        if not self.toggles or self.cycles <= 1:
            return 0.0
        return self.total_toggles() / (len(self.toggles) * (self.cycles - 1))


@dataclass
class BatchSimulationResult:
    """Waveforms and switching activity for a whole batch of stimulus traces.

    The batched counterpart of :class:`SimulationResult`: waveforms gain a
    leading trace axis and toggle counts become per-trace vectors.  The
    scalar accessors (:meth:`activity`, :meth:`average_activity`,
    :meth:`total_toggles`) aggregate over the batch so a batched result can
    be passed to :func:`repro.netlist.power.estimate_power` unchanged.
    """

    #: Number of simulated cycles per trace.
    cycles: int
    #: Number of stimulus traces in the batch.
    batch: int
    #: Recorded waveforms: net name -> uint8 array of shape ``(batch, cycles)``.
    waveforms: Dict[str, np.ndarray]
    #: Toggle counts per net: int64 array of shape ``(batch,)``.
    toggles: Dict[str, np.ndarray]

    def waveform(self, net: str) -> np.ndarray:
        """Recorded waveforms of one net, shape ``(batch, cycles)``."""
        return self.waveforms[net]

    def trace(self, k: int) -> SimulationResult:
        """The ``k``-th trace as a standalone :class:`SimulationResult`."""
        return SimulationResult(
            cycles=self.cycles,
            waveforms={net: wave[k] for net, wave in self.waveforms.items()},
            toggles={net: int(counts[k]) for net, counts in self.toggles.items()},
        )

    def activity(self, net: str) -> float:
        """Mean toggle rate of a net across the batch (toggles per cycle)."""
        if self.cycles <= 1:
            return 0.0
        return float(np.mean(self.toggles[net])) / (self.cycles - 1)

    def activity_per_trace(self, net: str) -> np.ndarray:
        """Per-trace toggle rates of a net, shape ``(batch,)``."""
        if self.cycles <= 1:
            return np.zeros(self.batch, dtype=np.float64)
        return self.toggles[net] / (self.cycles - 1)

    def total_toggles(self) -> int:
        """Sum of toggle counts over all nets and traces."""
        return int(sum(int(counts.sum()) for counts in self.toggles.values()))

    def average_activity(self) -> float:
        """Mean toggle rate across all nets and traces."""
        if not self.toggles or self.cycles <= 1:
            return 0.0
        return self.total_toggles() / (
            len(self.toggles) * self.batch * (self.cycles - 1)
        )

    def average_activity_per_trace(self) -> np.ndarray:
        """Mean toggle rate across nets for each trace, shape ``(batch,)``."""
        if not self.toggles or self.cycles <= 1:
            return np.zeros(self.batch, dtype=np.float64)
        total = np.zeros(self.batch, dtype=np.int64)
        for counts in self.toggles.values():
            total = total + counts
        return total / (len(self.toggles) * (self.cycles - 1))


# --------------------------------------------------------------------------- #
# shared stimulus / record validation
# --------------------------------------------------------------------------- #
def _strict_elaborate(netlist: Netlist) -> None:
    """Run error-level static analysis before execution (``strict=True``)."""
    # Imported here, not at module top: lint is pure graph analysis and
    # drags no simulation state, but keeping the import local makes the
    # layering explicit (lint never imports the simulator back).
    from .lint import enforce

    enforce(netlist, severity="error")


def _driven_nets(netlist: Netlist) -> List[str]:
    """All driven nets in deterministic order: inputs, then instance outputs."""
    nets: List[str] = list(netlist.primary_inputs)
    for inst in netlist.instances:
        nets.extend(inst.outputs)
    return nets


def _validate_record(
    netlist: Netlist, record: Optional[Sequence[str]], nets: List[str]
) -> List[str]:
    record = list(record) if record is not None else list(netlist.primary_outputs)
    known = set(nets) | set(netlist.CONSTANT_NETS)
    unknown = [net for net in record if net not in known]
    if unknown:
        raise ValueError(
            f"cannot record nets that do not exist in netlist "
            f"{netlist.name!r}: {unknown}"
        )
    return record


def _validate_faults(
    netlist: Netlist,
    faults: Optional[NetlistFaults | Mapping[str, int]],
    nets: List[str],
) -> Dict[str, int]:
    """Coerce and lint-validate stuck-at faults against the netlist's nets.

    Mirrors :func:`_validate_record`: every faulted net must be a driven net
    of the netlist (a primary input or an instance output), so a typo cannot
    silently simulate a fault-free circuit.  Constant nets cannot be forced.
    """
    coerced = NetlistFaults.coerce(faults)
    if coerced is None or not coerced:
        return {}
    known = set(nets)
    unknown = sorted(net for net in coerced.stuck_at if net not in known)
    if unknown:
        raise ValueError(
            f"cannot force stuck-at faults on nets that do not exist in "
            f"netlist {netlist.name!r} (or are constants): {unknown}"
        )
    return dict(coerced.stuck_at)


def simulate(
    netlist: Netlist,
    stimulus: Mapping[str, Sequence[int] | np.ndarray],
    cycles: Optional[int] = None,
    record: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    strict: bool = False,
    faults: Optional[NetlistFaults | Mapping[str, int]] = None,
) -> SimulationResult:
    """Simulate a netlist against input waveforms.

    Parameters
    ----------
    netlist:
        The circuit to simulate.
    stimulus:
        Mapping from primary-input net name to its per-cycle bit values.
        Every primary input must be covered.
    cycles:
        Number of cycles; defaults to the length of the shortest stimulus.
    record:
        Net names whose waveforms should be returned.  Defaults to the primary
        outputs.  Every name must exist in the netlist (``ValueError``
        otherwise).  Toggle counts are always collected for *all* nets.
    backend:
        ``"packed"`` evaluates each cell on whole 64-cycles-per-word uint64
        waveform words, resolving register feedback cores (LFSRs, accumulator
        loops) by narrow per-cycle state iteration with periodic wrapping;
        ``"unpacked"`` runs the per-cycle cell loop.  Both produce
        bit-identical results on every netlist.  ``None`` defers to
        ``REPRO_BACKEND``, then ``"packed"``.
    strict:
        Strict elaboration mode: run the error-severity rules of
        :mod:`repro.netlist.lint` before execution and raise
        :class:`~repro.netlist.lint.LintError` on any hit.  This catches
        structural corruption :meth:`~repro.netlist.netlist.Netlist.validate`
        cannot see -- duplicate instance names silently sharing sequential
        state, out-of-range initial states diverging between backends,
        undriven primary outputs -- instead of producing wrong waveforms.
    faults:
        Optional :class:`~repro.faults.NetlistFaults` (or a plain
        ``{net: 0-or-1}`` mapping) of stuck-at faults: each listed net is
        forced to its constant at the driver for the whole run, so all
        fan-out, register captures, recorded waveforms and toggle counts see
        the defect.  Unknown net names raise ``ValueError`` (the same
        lint-style validation as ``record``).  Both backends force
        identically.

    Returns
    -------
    SimulationResult
    """
    backend = resolve_backend(backend)
    if strict:
        _strict_elaborate(netlist)
    netlist.validate()

    missing = [net for net in netlist.primary_inputs if net not in stimulus]
    if missing:
        raise ValueError(f"missing stimulus for primary inputs: {missing}")

    # Normalize to strict 0/1 up front (any nonzero value counts as logic 1)
    # so both backends see identical bits.
    waves = {
        net: (np.asarray(stimulus[net]) != 0).astype(np.uint8)
        for net in netlist.primary_inputs
    }
    for net, wave in waves.items():
        if wave.ndim != 1:
            raise ValueError(
                f"stimulus for {net!r} must be one-dimensional, got shape "
                f"{wave.shape}; use simulate_batch() for stacked trace sets"
            )
    if cycles is None:
        if not waves:
            raise ValueError("cycle count required for a netlist with no inputs")
        cycles = min(len(w) for w in waves.values())
    for net, wave in waves.items():
        if len(wave) < cycles:
            raise ValueError(
                f"stimulus for {net!r} has {len(wave)} cycles, need {cycles}"
            )

    nets = _driven_nets(netlist)
    record = _validate_record(netlist, record, nets)
    forced = _validate_faults(netlist, faults, nets)

    if backend == "packed":
        result = _simulate_packed(
            netlist, waves, int(cycles), record, nets, forced=forced
        )
        if result is not None:
            return result
    return _simulate_cycle_loop(
        netlist, waves, int(cycles), record, nets, forced=forced
    )


def simulate_batch(
    netlist: Netlist,
    stimulus: Mapping[str, Sequence[Sequence[int]] | np.ndarray],
    cycles: Optional[int] = None,
    record: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    batch: Optional[int] = None,
    strict: bool = False,
    faults: Optional[NetlistFaults | Mapping[str, int]] = None,
) -> BatchSimulationResult:
    """Simulate a netlist against a whole batch of stimulus traces at once.

    Semantically identical to calling :func:`simulate` once per trace and
    stacking the results (that is literally what ``backend="unpacked"``
    does); the packed backend evaluates all traces in one word-parallel run,
    which is how a full MNIST trace set is covered by a single simulation.

    Parameters
    ----------
    netlist:
        The circuit to simulate.
    stimulus:
        Mapping from primary-input net name to per-cycle bit values.  2-D
        arrays of shape ``(batch, cycles)`` carry one waveform per trace;
        1-D arrays of shape ``(cycles,)`` are shared by every trace (e.g.
        weight or select streams that do not change between images).
    cycles:
        Number of cycles per trace; defaults to the shortest stimulus.
    record:
        Net names whose waveforms should be returned (defaults to the
        primary outputs); toggle counts cover all nets, per trace.
    backend:
        Same convention as :func:`simulate`.
    batch:
        Explicit batch size; only needed when no stimulus entry is 2-D
        (e.g. an input-less netlist or all-shared stimulus).
    strict:
        Same strict elaboration mode as :func:`simulate`: error-severity
        lint rules run once before the batch and raise
        :class:`~repro.netlist.lint.LintError` on any hit.
    faults:
        Same stuck-at fault model as :func:`simulate`; the forced constants
        are shared by every trace in the batch.

    Returns
    -------
    BatchSimulationResult
    """
    backend = resolve_backend(backend)
    if strict:
        _strict_elaborate(netlist)
    netlist.validate()

    missing = [net for net in netlist.primary_inputs if net not in stimulus]
    if missing:
        raise ValueError(f"missing stimulus for primary inputs: {missing}")

    waves: Dict[str, np.ndarray] = {}
    inferred: Optional[int] = None
    for net in netlist.primary_inputs:
        arr = (np.asarray(stimulus[net]) != 0).astype(np.uint8)
        if arr.ndim == 2:
            if inferred is None:
                inferred = arr.shape[0]
            elif arr.shape[0] != inferred:
                raise ValueError(
                    f"inconsistent batch sizes in stimulus: {inferred} vs "
                    f"{arr.shape[0]} for {net!r}"
                )
        elif arr.ndim != 1:
            raise ValueError(
                f"stimulus for {net!r} must be 1-D (shared) or 2-D "
                f"(batch, cycles), got shape {arr.shape}"
            )
        waves[net] = arr
    if batch is not None:
        batch = int(batch)
        if batch < 1:
            raise ValueError(f"batch must be positive, got {batch}")
        if inferred is not None and inferred != batch:
            raise ValueError(
                f"explicit batch={batch} contradicts 2-D stimulus with "
                f"{inferred} traces"
            )
    elif inferred is not None:
        if inferred < 1:
            raise ValueError(
                "batched simulation needs at least one trace; got 2-D "
                "stimulus with a leading axis of 0"
            )
        batch = inferred
    else:
        raise ValueError(
            "cannot infer the batch size: pass at least one 2-D stimulus "
            "array of shape (batch, cycles) or an explicit batch="
        )

    if cycles is None:
        if not waves:
            raise ValueError("cycle count required for a netlist with no inputs")
        cycles = min(w.shape[-1] for w in waves.values())
    for net, wave in waves.items():
        if wave.shape[-1] < cycles:
            raise ValueError(
                f"stimulus for {net!r} has {wave.shape[-1]} cycles, need {cycles}"
            )

    nets = _driven_nets(netlist)
    record = _validate_record(netlist, record, nets)
    forced = _validate_faults(netlist, faults, nets)
    cycles = int(cycles)

    if backend == "packed":
        result = _simulate_packed(
            netlist, waves, cycles, record, nets, batch=batch, forced=forced
        )
        if result is not None:
            return result

    # Reference semantics: one independent cycle-loop run per trace.
    per_trace = [
        _simulate_cycle_loop(
            netlist,
            {net: (w if w.ndim == 1 else w[k]) for net, w in waves.items()},
            cycles,
            record,
            nets,
            forced=forced,
        )
        for k in range(batch)
    ]
    return BatchSimulationResult(
        cycles=cycles,
        batch=batch,
        waveforms={
            net: np.stack([r.waveforms[net] for r in per_trace]) for net in record
        },
        toggles={
            net: np.array([r.toggles[net] for r in per_trace], dtype=np.int64)
            for net in nets
        },
    )


# --------------------------------------------------------------------------- #
# reference backend: the per-cycle cell loop
# --------------------------------------------------------------------------- #
def _simulate_cycle_loop(
    netlist: Netlist,
    waves: Dict[str, np.ndarray],
    cycles: int,
    record: List[str],
    nets: List[str],
    forced: Optional[Dict[str, int]] = None,
) -> SimulationResult:
    order = netlist.topological_order()
    sequential = netlist.sequential_instances()
    forced = forced or {}

    values: Dict[str, int] = {"0": 0, "1": 1}
    state: Dict[str, int] = {inst.name: inst.initial_state for inst in sequential}
    previous: Dict[str, int] = {}
    toggles: Dict[str, int] = {net: 0 for net in nets}
    recorded = {net: np.zeros(cycles, dtype=np.uint8) for net in record}

    for t in range(cycles):
        # Stuck-at forcing happens at every driver write: a faulted net is
        # pinned to its constant before any reader (topologically later
        # cells, register captures, waveform recording) can observe it.
        for net in netlist.primary_inputs:
            values[net] = forced[net] if net in forced else int(waves[net][t])
        # Sequential outputs present their stored state for this cycle
        # (inputs are irrelevant for the Q value, so zeros are passed).
        for inst in sequential:
            _, outs = inst.cell.logic(state[inst.name], tuple(0 for _ in inst.inputs))
            for net, bit in zip(inst.outputs, outs):
                values[net] = forced[net] if net in forced else int(bit)

        for inst in order:
            in_bits = tuple(values[n] for n in inst.inputs)
            out_bits = inst.cell.logic(in_bits)
            for net, bit in zip(inst.outputs, out_bits):
                values[net] = forced[net] if net in forced else int(bit)

        # Capture next state using the settled input values.
        for inst in sequential:
            in_bits = tuple(values[n] for n in inst.inputs)
            new_state, _ = inst.cell.logic(state[inst.name], in_bits)
            state[inst.name] = int(new_state)

        for net in recorded:
            recorded[net][t] = values[net]
        for net in nets:
            value = values[net]
            if t > 0 and previous[net] != value:
                toggles[net] += 1
            previous[net] = value

    return SimulationResult(cycles=cycles, waveforms=recorded, toggles=toggles)


# --------------------------------------------------------------------------- #
# packed backend: whole-waveform word kernels
# --------------------------------------------------------------------------- #
def _simulate_packed(
    netlist: Netlist,
    waves: Dict[str, np.ndarray],
    cycles: int,
    record: List[str],
    nets: List[str],
    batch: Optional[int] = None,
    forced: Optional[Dict[str, int]] = None,
):
    """Word-parallel simulation of one trace (``batch=None``) or a batch.

    Combinational cells are evaluated once on packed full-run waveforms;
    sequential cells are resolved in closed form (their ``word_logic``) as
    soon as their input waveforms are known.  The interleaved worklist below
    stalls exactly when the register dependency graph has a cycle
    (LFSR-style feedback); the stalled strongly connected components are
    then resolved by :func:`_resolve_register_cores` -- a narrow per-cycle
    iteration of just the feedback core -- and the worklist resumes.
    Returns ``None`` only when a cell lacks a ``word_logic`` implementation
    (never the case for the built-in library), in which case the caller
    falls back to the cycle loop.
    """
    if any(inst.cell.word_logic is None for inst in netlist.instances):
        return None

    width = words_for(cycles)
    ones = mask_tail(np.full(width, np.uint64(0xFFFFFFFFFFFFFFFF)), cycles)
    forced = forced or {}
    # Stuck-at forcing in the word domain: a faulted net's full-run waveform
    # is the all-ones (tail-masked) or all-zeros word array, substituted at
    # every driver write so downstream word kernels only ever see the
    # constant -- bit-identical to the cycle loop's per-write forcing.
    forced_words: Dict[str, np.ndarray] = {
        net: (ones if value else np.zeros(width, dtype=np.uint64))
        for net, value in forced.items()
    }
    values: Dict[str, np.ndarray] = {
        "0": np.zeros(width, dtype=np.uint64),
        "1": ones,
    }
    for net in netlist.primary_inputs:
        values[net] = forced_words.get(net, pack_bits(waves[net][..., :cycles]))

    comb_order = netlist.topological_order()
    pending_comb = list(comb_order)
    pending_seq = netlist.sequential_instances()
    while pending_comb or pending_seq:
        progress = False
        still_comb = []
        for inst in pending_comb:
            if all(net in values for net in inst.inputs):
                outs = inst.cell.word_logic(
                    tuple(values[net] for net in inst.inputs), ones
                )
                for net, wave in zip(inst.outputs, outs):
                    values[net] = forced_words.get(net, wave)
                progress = True
            else:
                still_comb.append(inst)
        pending_comb = still_comb
        still_seq = []
        for inst in pending_seq:
            if all(net in values for net in inst.inputs):
                outs = inst.cell.word_logic(
                    tuple(values[net] for net in inst.inputs),
                    cycles,
                    inst.initial_state,
                )
                for net, wave in zip(inst.outputs, outs):
                    values[net] = forced_words.get(net, wave)
                progress = True
            else:
                still_seq.append(inst)
        pending_seq = still_seq
        if not progress:
            # Register feedback: resolve the ready strongly connected
            # components of the stuck dependency graph, then keep going
            # word-parallel on everything they unblock.
            resolved = _resolve_register_cores(
                pending_comb + pending_seq, comb_order, values, cycles, batch, forced
            )
            pending_comb = [i for i in pending_comb if id(i) not in resolved]
            pending_seq = [i for i in pending_seq if id(i) not in resolved]

    if batch is None:
        recorded = {net: unpack_bits(values[net], cycles) for net in record}
        toggles = {
            net: int(packed_transition_count(values[net], cycles)) for net in nets
        }
        return SimulationResult(cycles=cycles, waveforms=recorded, toggles=toggles)

    # Nets driven only by shared (1-D) stimulus keep 1-D waveforms that are
    # identical for every trace: compute their waveform / toggle count once
    # and broadcast the *result*, instead of running the kernels over batch
    # copies of the same words.
    recorded = {}
    for net in record:
        words = values[net]
        if words.ndim == 1:
            # tile, not broadcast_to: callers get independent writable rows,
            # exactly like the unpacked backend returns.
            recorded[net] = np.tile(unpack_bits(words, cycles), (batch, 1))
        else:
            recorded[net] = unpack_bits(words, cycles)
    toggle_counts = {}
    for net in nets:
        words = values[net]
        if words.ndim == 1:
            toggle_counts[net] = np.full(
                batch, int(packed_transition_count(words, cycles)), dtype=np.int64
            )
        else:
            toggle_counts[net] = np.asarray(
                packed_transition_count(words, cycles), dtype=np.int64
            )
    return BatchSimulationResult(
        cycles=cycles, batch=batch, waveforms=recorded, toggles=toggle_counts
    )


# --------------------------------------------------------------------------- #
# register feedback cores: narrow per-cycle resolution inside the packed run
# --------------------------------------------------------------------------- #
# Tarjan's algorithm moved to repro.netlist.graph so the static analyzer can
# report combinational cycles with the same machinery; the alias keeps the
# simulator's historical private name importable.
_strongly_connected = strongly_connected_instances


def _resolve_register_cores(
    stuck: List[Instance],
    comb_order: List[Instance],
    values: Dict[str, np.ndarray],
    cycles: int,
    batch: Optional[int],
    forced: Optional[Dict[str, int]] = None,
) -> Set[int]:
    """Resolve every *ready* feedback core among the stuck instances.

    A net is unresolved exactly when it is the output of a stuck instance,
    so the stuck instances form a dependency graph with no source nodes --
    its condensation's source components are the feedback cores whose
    external inputs are all resolved.  Each ready core is iterated per cycle
    over its narrow state vector and its output waveforms are packed into
    ``values``.  Returns the ``id()`` set of the resolved instances.
    """
    produced: Dict[str, Instance] = {}
    for inst in stuck:
        for net in inst.outputs:
            produced[net] = inst
    succs: Dict[int, List[Instance]] = {id(inst): [] for inst in stuck}
    self_loops: Set[int] = set()
    for inst in stuck:
        for net in dict.fromkeys(inst.inputs):
            source = produced.get(net)
            if source is not None:
                succs[id(source)].append(inst)
                if source is inst:
                    self_loops.add(id(inst))

    resolved: Set[int] = set()
    for component in _strongly_connected(stuck, succs):
        member_ids = {id(inst) for inst in component}
        ready = all(
            produced.get(net) is None or id(produced[net]) in member_ids
            for inst in component
            for net in inst.inputs
        )
        if not ready:
            continue
        if len(component) == 1 and id(component[0]) not in self_loops:
            # A trivial ready node cannot exist at a stall (it would have
            # been evaluated word-parallel); skip defensively.
            continue  # pragma: no cover
        _resolve_core(component, comb_order, values, cycles, batch, forced)
        resolved |= member_ids
    if not resolved:  # pragma: no cover - stalls always expose a ready core
        raise RuntimeError(
            "packed simulation stalled without a resolvable register core"
        )
    return resolved


def _resolve_core(
    core: List[Instance],
    comb_order: List[Instance],
    values: Dict[str, np.ndarray],
    cycles: int,
    batch: Optional[int],
    forced: Optional[Dict[str, int]] = None,
) -> None:
    """Per-cycle resolution of one feedback core; packs waveforms into ``values``."""
    forced = forced or {}
    core_ids = {id(inst) for inst in core}
    core_seq = [inst for inst in core if inst.cell.sequential]
    core_comb = [inst for inst in comb_order if id(inst) in core_ids]
    out_nets = [net for inst in core_seq + core_comb for net in inst.outputs]
    external = sorted(
        {net for inst in core for net in inst.inputs}
        - set(out_nets)
        - set(Netlist.CONSTANT_NETS)
    )
    # All external inputs constant in time: the core is autonomous and its
    # state trajectory (hence every core waveform) is eventually periodic.
    autonomous = not external
    shared = all(values[net].ndim == 1 for net in external)

    core_forced = {net: forced[net] for net in out_nets if net in forced}

    if batch is None or shared:
        ext_bits = {net: unpack_bits(values[net], cycles) for net in external}
        rec = _iterate_core(
            core_seq,
            core_comb,
            out_nets,
            ext_bits,
            cycles,
            detect_period=autonomous,
            forced=core_forced,
        )
        values.update({net: pack_bits(wave) for net, wave in rec.items()})
        return

    # Per-trace external waveforms: iterate the core cycle by cycle with the
    # *trace* axis packed 64-per-word, so one pass over the cycles covers the
    # whole batch (the word-parallel evaluation of everything outside the
    # core is unaffected).  Requires every core cell to have a positionwise
    # word kernel (comb ``word_logic`` / sequential ``word_step``), which all
    # library cells do; anything else falls back to one run per trace.
    ext_full = {net: unpack_bits(values[net], cycles) for net in external}
    if all(inst.cell.word_step is not None for inst in core_seq):
        values.update(
            _iterate_core_tracewords(
                core_seq, core_comb, out_nets, ext_full, cycles, batch, core_forced
            )
        )
        return

    stacked = {net: np.empty((batch, cycles), dtype=np.uint8) for net in out_nets}
    for k in range(batch):
        ext_bits = {
            net: (wave if wave.ndim == 1 else wave[k])
            for net, wave in ext_full.items()
        }
        rec = _iterate_core(
            core_seq,
            core_comb,
            out_nets,
            ext_bits,
            cycles,
            detect_period=False,
            forced=core_forced,
        )
        for net, wave in rec.items():
            stacked[net][k] = wave
    values.update({net: pack_bits(wave) for net, wave in stacked.items()})


def _iterate_core(
    core_seq: List[Instance],
    core_comb: List[Instance],
    out_nets: Iterable[str],
    ext_bits: Dict[str, np.ndarray],
    cycles: int,
    detect_period: bool,
    forced: Optional[Dict[str, int]] = None,
) -> Dict[str, np.ndarray]:
    """Cycle-by-cycle evaluation of a feedback core's narrow state vector.

    Follows the reference cycle-loop semantics exactly (present state,
    settle combinational logic, capture next state).  With ``detect_period``
    (autonomous cores only) the iteration stops at the first repeated
    register state and the recorded prefix is wrapped periodically out to
    ``cycles``, which is what keeps LFSR-heavy netlists fast at stream
    lengths far beyond the register period.  ``forced`` pins stuck-at nets
    driven inside the core at every write, so the fault feeds back into the
    state evolution exactly like the reference cycle loop.
    """
    out_nets = list(out_nets)
    forced = forced or {}
    state = {inst.name: inst.initial_state for inst in core_seq}
    rec = {net: np.empty(cycles, dtype=np.uint8) for net in out_nets}
    seen: Optional[Dict[tuple, int]] = {} if detect_period else None
    wrap = None
    vals: Dict[str, int] = {"0": 0, "1": 1}

    t = 0
    while t < cycles:
        if seen is not None:
            key = tuple(state[inst.name] for inst in core_seq)
            first = seen.get(key)
            if first is not None:
                wrap = (first, t)
                break
            seen[key] = t
        for net, wave in ext_bits.items():
            vals[net] = int(wave[t])
        for inst in core_seq:
            _, outs = inst.cell.logic(state[inst.name], tuple(0 for _ in inst.inputs))
            for net, bit in zip(inst.outputs, outs):
                vals[net] = forced[net] if net in forced else int(bit)
        for inst in core_comb:
            out_bits = inst.cell.logic(tuple(vals[n] for n in inst.inputs))
            for net, bit in zip(inst.outputs, out_bits):
                vals[net] = forced[net] if net in forced else int(bit)
        for inst in core_seq:
            new_state, _ = inst.cell.logic(
                state[inst.name], tuple(vals[n] for n in inst.inputs)
            )
            state[inst.name] = int(new_state)
        for net in out_nets:
            rec[net][t] = vals[net]
        t += 1

    if wrap is not None:
        transient, repeat = wrap
        period = repeat - transient
        rec = {
            net: extend_periodic(wave[:repeat], cycles, transient, period)
            for net, wave in rec.items()
        }
    return rec


def _iterate_core_tracewords(
    core_seq: List[Instance],
    core_comb: List[Instance],
    out_nets: Iterable[str],
    ext_full: Dict[str, np.ndarray],
    cycles: int,
    batch: int,
    forced: Optional[Dict[str, int]] = None,
) -> Dict[str, np.ndarray]:
    """Batched per-cycle core iteration with the trace axis packed into words.

    Semantically identical to running :func:`_iterate_core` once per trace:
    at every cycle each net carries one bit *per trace*, stored 64 traces per
    uint64 word.  Combinational core cells are evaluated through their
    (positionwise) ``word_logic`` and register transitions through
    ``word_step``, so the Python per-cycle loop runs once for the whole
    batch instead of once per trace.  Returns the packed ``(batch, words)``
    full-run waveform for every core output net, ready to merge into the
    packed simulation's ``values``.
    """
    out_nets = list(out_nets)
    forced = forced or {}
    width = words_for(batch)
    ones = mask_tail(np.full(width, np.uint64(0xFFFFFFFFFFFFFFFF)), batch)
    zeros = np.zeros(width, dtype=np.uint64)
    # Stuck-at nets in the trace-word domain: the same constant for every
    # trace (all-ones trace-words are tail-masked like every other net).
    forced_words = {net: (ones if value else zeros) for net, value in forced.items()}

    # Per-cycle trace-words of the external inputs: transpose each (batch,
    # cycles) waveform to cycle-major and pack the trace axis once up front.
    ext_columns = {}
    for net, wave in ext_full.items():
        if wave.ndim == 1:
            wave = np.broadcast_to(wave, (batch, cycles))
        ext_columns[net] = pack_bits(np.ascontiguousarray(wave.T))  # (cycles, width)

    state = {
        inst.name: (ones.copy() if inst.initial_state else zeros.copy())
        for inst in core_seq
    }
    rec = {net: np.empty((cycles, width), dtype=np.uint64) for net in out_nets}
    vals: Dict[str, np.ndarray] = {"0": zeros, "1": ones}

    for t in range(cycles):
        for net, columns in ext_columns.items():
            vals[net] = columns[t]
        # Present stored state on the register outputs (inputs irrelevant
        # for Q, zeros passed), mirroring the scalar cycle loop.
        for inst in core_seq:
            _, outs = inst.cell.word_step(
                state[inst.name], tuple(zeros for _ in inst.inputs)
            )
            for net, word in zip(inst.outputs, outs):
                vals[net] = forced_words.get(net, word)
        for inst in core_comb:
            outs = inst.cell.word_logic(tuple(vals[n] for n in inst.inputs), ones)
            for net, word in zip(inst.outputs, outs):
                vals[net] = forced_words.get(net, word)
        for inst in core_seq:
            new_state, _ = inst.cell.word_step(
                state[inst.name], tuple(vals[n] for n in inst.inputs)
            )
            state[inst.name] = new_state
        for net in out_nets:
            rec[net][t] = vals[net]

    # (cycles, trace-words) -> per-trace bit matrix -> packed time waveforms.
    packed = {}
    for net, words in rec.items():
        bits = unpack_bits(words, batch).T  # (batch, cycles)
        packed[net] = pack_bits(np.ascontiguousarray(bits))
    return packed
