"""Cycle-accurate simulation of gate-level netlists with activity capture.

This is the reproduction's stand-in for gate-level power simulation with
PrimeTime: the netlist is evaluated cycle by cycle against input waveforms
(MNIST-trace-driven in the Table 3 experiments), and the simulator records
per-net toggle counts.  Toggle counts multiplied by per-cell switching energy
give the activity-based dynamic power estimate of
:mod:`repro.netlist.power`.

The simulation model is the standard zero-delay cycle model:

* at the start of every cycle, primary inputs take their new values and
  sequential cells present their stored state on their outputs;
* at the end of the cycle, sequential cells capture their next state.

Two execution backends produce that model's results (selected by the same
``backend="packed"|"unpacked"`` / ``REPRO_BACKEND`` convention as the
stochastic dot-product engines, see
:func:`repro.bitstream.backend.resolve_backend`):

* ``"unpacked"`` -- the reference interpreter: combinational cells are
  evaluated in topological order, one Python call per cell per cycle;
* ``"packed"`` -- the word-parallel fast path: every net's full waveform is
  stored 64 cycles per ``uint64`` word and each combinational cell is
  evaluated once on whole word arrays (its :attr:`~repro.netlist.cells.Cell`
  ``word_logic``).  Sequential cells are resolved in closed form -- a DFF is
  a one-cycle packed delay, a TFF a word-parallel prefix-parity scan -- in
  topological order of the *register* dependency graph.  Toggle counts come
  from the ``popcount(w ^ (w >> 1))`` word kernel
  (:func:`repro.bitstream.packed.packed_transition_count`).  Netlists whose
  registers form a combinational feedback cycle (e.g. an LFSR) have no such
  closed form; those fall back to the cycle loop automatically, so results
  are always bit-identical to ``"unpacked"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..bitstream.backend import resolve_backend
from ..bitstream.packed import (
    mask_tail,
    pack_bits,
    packed_transition_count,
    unpack_bits,
    words_for,
)
from .netlist import Netlist

__all__ = ["SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """Waveforms and switching activity from one simulation run."""

    #: Number of simulated cycles.
    cycles: int
    #: Recorded waveforms: net name -> uint8 array of length ``cycles``.
    waveforms: Dict[str, np.ndarray]
    #: Toggle counts per net (number of value changes between consecutive cycles).
    toggles: Dict[str, int]

    def waveform(self, net: str) -> np.ndarray:
        """Return the recorded waveform of one net."""
        return self.waveforms[net]

    def activity(self, net: str) -> float:
        """Average toggle rate of a net (toggles per cycle)."""
        if self.cycles <= 1:
            return 0.0
        return self.toggles[net] / (self.cycles - 1)

    def total_toggles(self) -> int:
        """Sum of toggle counts over all nets."""
        return int(sum(self.toggles.values()))

    def average_activity(self) -> float:
        """Mean toggle rate across all recorded nets."""
        if not self.toggles or self.cycles <= 1:
            return 0.0
        return self.total_toggles() / (len(self.toggles) * (self.cycles - 1))


def simulate(
    netlist: Netlist,
    stimulus: Mapping[str, Sequence[int] | np.ndarray],
    cycles: Optional[int] = None,
    record: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Simulate a netlist against input waveforms.

    Parameters
    ----------
    netlist:
        The circuit to simulate.
    stimulus:
        Mapping from primary-input net name to its per-cycle bit values.
        Every primary input must be covered.
    cycles:
        Number of cycles; defaults to the length of the shortest stimulus.
    record:
        Net names whose waveforms should be returned.  Defaults to the primary
        outputs.  Every name must exist in the netlist (``ValueError``
        otherwise).  Toggle counts are always collected for *all* nets.
    backend:
        ``"packed"`` evaluates each cell on whole 64-cycles-per-word uint64
        waveform words; ``"unpacked"`` runs the per-cycle cell loop.  Both
        produce bit-identical results (packed falls back to the cycle loop
        for register feedback cycles).  ``None`` defers to ``REPRO_BACKEND``,
        then ``"packed"``.

    Returns
    -------
    SimulationResult
    """
    backend = resolve_backend(backend)
    netlist.validate()

    missing = [net for net in netlist.primary_inputs if net not in stimulus]
    if missing:
        raise ValueError(f"missing stimulus for primary inputs: {missing}")

    # Normalize to strict 0/1 up front (any nonzero value counts as logic 1)
    # so both backends see identical bits.
    waves = {
        net: (np.asarray(stimulus[net]) != 0).astype(np.uint8)
        for net in netlist.primary_inputs
    }
    if cycles is None:
        if not waves:
            raise ValueError("cycle count required for a netlist with no inputs")
        cycles = min(len(w) for w in waves.values())
    for net, wave in waves.items():
        if len(wave) < cycles:
            raise ValueError(
                f"stimulus for {net!r} has {len(wave)} cycles, need {cycles}"
            )

    # All driven nets, in a deterministic order: primary inputs first, then
    # every instance output.  These are the nets whose toggles are counted.
    nets: List[str] = list(netlist.primary_inputs)
    for inst in netlist.instances:
        nets.extend(inst.outputs)

    record = list(record) if record is not None else list(netlist.primary_outputs)
    known = set(nets) | set(netlist.CONSTANT_NETS)
    unknown = [net for net in record if net not in known]
    if unknown:
        raise ValueError(
            f"cannot record nets that do not exist in netlist "
            f"{netlist.name!r}: {unknown}"
        )

    if backend == "packed":
        result = _simulate_packed(netlist, waves, int(cycles), record, nets)
        if result is not None:
            return result
    return _simulate_cycle_loop(netlist, waves, int(cycles), record, nets)


# --------------------------------------------------------------------------- #
# reference backend: the per-cycle cell loop
# --------------------------------------------------------------------------- #
def _simulate_cycle_loop(
    netlist: Netlist,
    waves: Dict[str, np.ndarray],
    cycles: int,
    record: List[str],
    nets: List[str],
) -> SimulationResult:
    order = netlist.topological_order()
    sequential = netlist.sequential_instances()

    values: Dict[str, int] = {"0": 0, "1": 1}
    state: Dict[str, int] = {inst.name: inst.initial_state for inst in sequential}
    previous: Dict[str, int] = {}
    toggles: Dict[str, int] = {net: 0 for net in nets}
    recorded = {net: np.zeros(cycles, dtype=np.uint8) for net in record}

    for t in range(cycles):
        for net in netlist.primary_inputs:
            values[net] = int(waves[net][t])
        # Sequential outputs present their stored state for this cycle
        # (inputs are irrelevant for the Q value, so zeros are passed).
        for inst in sequential:
            _, outs = inst.cell.logic(state[inst.name], tuple(0 for _ in inst.inputs))
            for net, bit in zip(inst.outputs, outs):
                values[net] = int(bit)

        for inst in order:
            in_bits = tuple(values[n] for n in inst.inputs)
            out_bits = inst.cell.logic(in_bits)
            for net, bit in zip(inst.outputs, out_bits):
                values[net] = int(bit)

        # Capture next state using the settled input values.
        for inst in sequential:
            in_bits = tuple(values[n] for n in inst.inputs)
            new_state, _ = inst.cell.logic(state[inst.name], in_bits)
            state[inst.name] = int(new_state)

        for net in recorded:
            recorded[net][t] = values[net]
        for net in nets:
            value = values[net]
            if t > 0 and previous[net] != value:
                toggles[net] += 1
            previous[net] = value

    return SimulationResult(cycles=cycles, waveforms=recorded, toggles=toggles)


# --------------------------------------------------------------------------- #
# packed backend: whole-waveform word kernels
# --------------------------------------------------------------------------- #
def _simulate_packed(
    netlist: Netlist,
    waves: Dict[str, np.ndarray],
    cycles: int,
    record: List[str],
    nets: List[str],
) -> Optional[SimulationResult]:
    """Word-parallel simulation; ``None`` when the netlist needs the cycle loop.

    Combinational cells are evaluated once on packed full-run waveforms;
    sequential cells are resolved in closed form (their ``word_logic``) as
    soon as their input waveforms are known.  The interleaved worklist below
    terminates exactly when the register dependency graph is acyclic -- any
    combinational feedback through registers (LFSR-style) stalls it, and the
    caller falls back to the cycle loop.
    """
    if any(inst.cell.word_logic is None for inst in netlist.instances):
        return None

    width = words_for(cycles)
    ones = mask_tail(np.full(width, np.uint64(0xFFFFFFFFFFFFFFFF)), cycles)
    values: Dict[str, np.ndarray] = {
        "0": np.zeros(width, dtype=np.uint64),
        "1": ones,
    }
    for net in netlist.primary_inputs:
        values[net] = pack_bits(waves[net][:cycles])

    pending_comb = netlist.topological_order()
    pending_seq = netlist.sequential_instances()
    while pending_comb or pending_seq:
        progress = False
        still_comb = []
        for inst in pending_comb:
            if all(net in values for net in inst.inputs):
                outs = inst.cell.word_logic(
                    tuple(values[net] for net in inst.inputs), ones
                )
                for net, wave in zip(inst.outputs, outs):
                    values[net] = wave
                progress = True
            else:
                still_comb.append(inst)
        pending_comb = still_comb
        still_seq = []
        for inst in pending_seq:
            if all(net in values for net in inst.inputs):
                outs = inst.cell.word_logic(
                    tuple(values[net] for net in inst.inputs),
                    cycles,
                    inst.initial_state,
                )
                for net, wave in zip(inst.outputs, outs):
                    values[net] = wave
                progress = True
            else:
                still_seq.append(inst)
        pending_seq = still_seq
        if not progress:
            return None  # register feedback cycle: no closed form

    recorded = {net: unpack_bits(values[net], cycles) for net in record}
    toggles = {
        net: int(packed_transition_count(values[net], cycles)) for net in nets
    }
    return SimulationResult(cycles=cycles, waveforms=recorded, toggles=toggles)
