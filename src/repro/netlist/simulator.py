"""Cycle-accurate simulation of gate-level netlists with activity capture.

This is the reproduction's stand-in for gate-level power simulation with
PrimeTime: the netlist is evaluated cycle by cycle against input waveforms
(MNIST-trace-driven in the Table 3 experiments), and the simulator records
per-net toggle counts.  Toggle counts multiplied by per-cell switching energy
give the activity-based dynamic power estimate of
:mod:`repro.netlist.power`.

The simulation model is the standard zero-delay cycle model:

* at the start of every cycle, primary inputs take their new values and
  sequential cells present their stored state on their outputs;
* combinational cells are then evaluated in topological order;
* at the end of the cycle, sequential cells capture their next state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from .netlist import Netlist

__all__ = ["SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """Waveforms and switching activity from one simulation run."""

    #: Number of simulated cycles.
    cycles: int
    #: Recorded waveforms: net name -> uint8 array of length ``cycles``.
    waveforms: Dict[str, np.ndarray]
    #: Toggle counts per net (number of value changes between consecutive cycles).
    toggles: Dict[str, int]

    def waveform(self, net: str) -> np.ndarray:
        """Return the recorded waveform of one net."""
        return self.waveforms[net]

    def activity(self, net: str) -> float:
        """Average toggle rate of a net (toggles per cycle)."""
        if self.cycles <= 1:
            return 0.0
        return self.toggles[net] / (self.cycles - 1)

    def total_toggles(self) -> int:
        """Sum of toggle counts over all nets."""
        return int(sum(self.toggles.values()))

    def average_activity(self) -> float:
        """Mean toggle rate across all recorded nets."""
        if not self.toggles or self.cycles <= 1:
            return 0.0
        return self.total_toggles() / (len(self.toggles) * (self.cycles - 1))


def simulate(
    netlist: Netlist,
    stimulus: Mapping[str, Sequence[int] | np.ndarray],
    cycles: Optional[int] = None,
    record: Optional[Sequence[str]] = None,
) -> SimulationResult:
    """Simulate a netlist against input waveforms.

    Parameters
    ----------
    netlist:
        The circuit to simulate.
    stimulus:
        Mapping from primary-input net name to its per-cycle bit values.
        Every primary input must be covered.
    cycles:
        Number of cycles; defaults to the length of the shortest stimulus.
    record:
        Net names whose waveforms should be returned.  Defaults to the primary
        outputs.  Toggle counts are always collected for *all* nets.

    Returns
    -------
    SimulationResult
    """
    netlist.validate()
    order = netlist.topological_order()
    sequential = netlist.sequential_instances()

    missing = [net for net in netlist.primary_inputs if net not in stimulus]
    if missing:
        raise ValueError(f"missing stimulus for primary inputs: {missing}")

    waves = {net: np.asarray(stimulus[net], dtype=np.uint8) for net in netlist.primary_inputs}
    if cycles is None:
        if not waves:
            raise ValueError("cycle count required for a netlist with no inputs")
        cycles = min(len(w) for w in waves.values())
    for net, wave in waves.items():
        if len(wave) < cycles:
            raise ValueError(
                f"stimulus for {net!r} has {len(wave)} cycles, need {cycles}"
            )

    record = list(record) if record is not None else list(netlist.primary_outputs)

    values: Dict[str, int] = {"0": 0, "1": 1}
    state: Dict[str, int] = {inst.name: inst.initial_state for inst in sequential}
    previous: Dict[str, int] = {}
    toggles: Dict[str, int] = {}
    recorded = {net: np.zeros(cycles, dtype=np.uint8) for net in record}

    for t in range(cycles):
        for net in netlist.primary_inputs:
            values[net] = int(waves[net][t])
        # Sequential outputs present their stored state for this cycle
        # (inputs are irrelevant for the Q value, so zeros are passed).
        for inst in sequential:
            _, outs = inst.cell.logic(state[inst.name], tuple(0 for _ in inst.inputs))
            for net, bit in zip(inst.outputs, outs):
                values[net] = int(bit)

        for inst in order:
            in_bits = tuple(values[n] for n in inst.inputs)
            out_bits = inst.cell.logic(in_bits)
            for net, bit in zip(inst.outputs, out_bits):
                values[net] = int(bit)

        # Capture next state using the settled input values.
        for inst in sequential:
            in_bits = tuple(values[n] for n in inst.inputs)
            new_state, _ = inst.cell.logic(state[inst.name], in_bits)
            state[inst.name] = int(new_state)

        for net in recorded:
            recorded[net][t] = values.get(net, 0)
        for net, value in values.items():
            if net in ("0", "1"):
                continue
            if t > 0 and previous.get(net) != value:
                toggles[net] = toggles.get(net, 0) + 1
            elif net not in toggles:
                toggles[net] = toggles.get(net, 0)
            previous[net] = value

    return SimulationResult(cycles=cycles, waveforms=recorded, toggles=toggles)
