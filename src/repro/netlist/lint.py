"""Rule-based static analysis of gate-level netlists.

:func:`repro.netlist.netlist.Netlist.validate` answers exactly one question
-- "does every instance input have a driver?" -- and
:meth:`~repro.netlist.netlist.Netlist.topological_order` can only say "cycle
or undriven net *somewhere near here*".  As the circuit generators grow from
engine-sized netlists to whole conv layers, that is not enough evidence that
a netlist is well-formed, so this module proves structural properties
without simulating:

* **drivers** -- undriven instance inputs and undriven primary outputs;
* **observability** -- dangling nets (driven but never read) and whole cells
  that cannot affect any primary output, found by a backward
  cone-of-influence traversal from the outputs (unobservable cells inflate
  every area/power roll-up, so :mod:`repro.netlist.power` warns about them);
* **cycles** -- combinational loops reported as the actual strongly
  connected component member list (the same Tarjan machinery the packed
  simulator uses for register feedback cores, :mod:`repro.netlist.graph`);
* **constants** -- cells with constant-tied inputs and constant-propagated
  dead logic (every output provably independent of every non-constant
  input, via exhaustive evaluation over the unknown inputs);
* **naming** -- duplicate instance names (which would silently share
  sequential state in the cycle simulator) and user-named nets that sit in
  the namespace :meth:`~repro.netlist.netlist.Netlist.new_net` generates;
* **state** -- sequential cells whose ``initial_state`` is outside ``{0,1}``
  (unreachable in the two-level signal convention, and a silent
  packed/unpacked divergence in the simulator);
* **structure** -- a fanout histogram and per-primary-output logic depth /
  critical path length for every lint run (:class:`NetlistStats`).

Rules live in a registry (:data:`LINT_RULES`); each has a stable id, a
severity (``error`` / ``warning`` / ``info``) and a checker that yields
:class:`LintFinding` records into a :class:`LintReport`.  Entry points:

* :func:`lint` -- run the rules, return the report;
* :func:`enforce` -- raise :class:`LintError` when a netlist has findings at
  or above a severity (``simulate(strict=True)`` elaboration mode);
* :func:`unobservable_instances` -- the cone-of-influence helper shared with
  the power model;
* ``python -m repro lint`` -- the CLI gate over every builder circuit.

Example::

    from repro.netlist import build_sc_dot_product, lint

    report = lint(build_sc_dot_product(25, 9))
    assert not report.has_errors
    print(report.format(verbose=True))
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import product as _cartesian_product
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .cells import CELL_LIBRARY
from .graph import instance_successors, strongly_connected_instances
from .netlist import Instance, Netlist

__all__ = [
    "SEVERITIES",
    "LintFinding",
    "LintRule",
    "LintError",
    "LintReport",
    "NetlistStats",
    "LINT_RULES",
    "register_rule",
    "lint",
    "enforce",
    "unobservable_instances",
    "UnobservableAreaWarning",
]


#: Recognized severities, most severe first.
SEVERITIES = ("error", "warning", "info")


class UnobservableAreaWarning(UserWarning):
    """A netlist being costed contains cells no primary output can observe."""


@dataclass(frozen=True)
class LintFinding:
    """One rule violation (or observation) anchored to a net or instance."""

    #: Stable rule identifier, e.g. ``"undriven-input"``.
    rule: str
    #: ``"error"``, ``"warning"`` or ``"info"``.
    severity: str
    #: Human-readable description of the specific violation.
    message: str
    #: Instance name the finding is anchored to, when applicable.
    instance: Optional[str] = None
    #: Net name the finding is anchored to, when applicable.
    net: Optional[str] = None
    #: Suggested fix, when one is obvious.
    hint: Optional[str] = None

    def format(self) -> str:
        """One- or two-line rendering used by :meth:`LintReport.format`."""
        tag = {"error": "E", "warning": "W", "info": "I"}[self.severity]
        where = ""
        if self.instance is not None:
            where += f" @ instance {self.instance!r}"
        if self.net is not None:
            where += f" @ net {self.net!r}"
        text = f"[{tag}] {self.rule}{where}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass(frozen=True)
class LintRule:
    """A registered rule: id, severity, description and checker."""

    id: str
    severity: str
    description: str
    check: Callable[["_Analysis"], Iterator[LintFinding]] = field(
        repr=False, compare=False, default=None
    )


@dataclass
class NetlistStats:
    """Structural statistics collected on every lint run.

    ``logic_depth`` maps each primary output to the number of combinational
    cells on its longest input-to-output path (sequential outputs and
    primary inputs count as depth 0).  Depths are ``None`` when the netlist
    contains a combinational cycle (reported separately) or the output is
    undriven.  ``critical_path`` lists the instance names along the deepest
    combinational path, source to sink.
    """

    #: Net fanout histogram: reader count -> number of nets with that fanout.
    fanout_histogram: Dict[int, int]
    #: Highest-fanout nets: net -> reader count, for the report.
    max_fanout: int
    #: Per-primary-output combinational logic depth (see class docstring).
    logic_depth: Dict[str, Optional[int]]
    #: Longest combinational path length over all nets, or ``None``.
    critical_path_length: Optional[int]
    #: Instance names along one deepest path, source first.
    critical_path: List[str]


@dataclass
class LintReport:
    """Findings plus structural statistics from one :func:`lint` run."""

    #: Name of the analyzed netlist.
    netlist: str
    #: Number of cell instances analyzed.
    cells: int
    #: All findings, ordered error -> warning -> info, then by rule id.
    findings: List[LintFinding]
    #: Structural statistics (always collected, never findings).
    stats: NetlistStats

    @property
    def errors(self) -> List[LintFinding]:
        """Findings with severity ``error``."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[LintFinding]:
        """Findings with severity ``warning``."""
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def infos(self) -> List[LintFinding]:
        """Findings with severity ``info``."""
        return [f for f in self.findings if f.severity == "info"]

    @property
    def has_errors(self) -> bool:
        """True when at least one error-severity finding is present."""
        return any(f.severity == "error" for f in self.findings)

    def by_rule(self, rule_id: str) -> List[LintFinding]:
        """All findings of one rule."""
        return [f for f in self.findings if f.rule == rule_id]

    def counts(self) -> Dict[str, int]:
        """Finding counts per severity (always includes all three keys)."""
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def format(self, verbose: bool = False) -> str:
        """Render the report; ``verbose`` adds info findings and statistics."""
        counts = self.counts()
        lines = [
            f"netlist {self.netlist!r}: {self.cells} cells, "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        ]
        shown = self.findings if verbose else self.errors + self.warnings
        lines.extend("  " + finding.format() for finding in shown)
        if verbose:
            depth = self.stats.critical_path_length
            depth_text = "n/a (cyclic or undriven)" if depth is None else str(depth)
            lines.append(
                f"  stats: max fanout {self.stats.max_fanout}, "
                f"critical path {depth_text} combinational level(s)"
            )
            if self.stats.critical_path:
                lines.append(
                    "  critical path: " + " -> ".join(self.stats.critical_path)
                )
            histogram = ", ".join(
                f"{fanout}:{count}"
                for fanout, count in sorted(self.stats.fanout_histogram.items())
            )
            lines.append(f"  fanout histogram (fanout:nets): {histogram}")
        return "\n".join(lines)


class LintError(ValueError):
    """Raised by :func:`enforce` / ``simulate(strict=True)`` on findings."""

    def __init__(self, report: LintReport, severity: str) -> None:
        self.report = report
        self.severity = severity
        rank = SEVERITIES.index(severity)
        triggering = [
            f for f in report.findings if SEVERITIES.index(f.severity) <= rank
        ]
        summary = "; ".join(f.format().replace("\n    ", " ") for f in triggering[:8])
        if len(triggering) > 8:
            summary += f"; ... {len(triggering) - 8} more"
        super().__init__(
            f"netlist {report.netlist!r} failed {severity}-level lint "
            f"({len(triggering)} finding(s)): {summary}"
        )


# --------------------------------------------------------------------------- #
# shared per-netlist analysis (computed once, consumed by every rule)
# --------------------------------------------------------------------------- #
class _Analysis:
    """Derived graph facts shared by the rules: drivers, readers, cones."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.constants: Set[str] = set(Netlist.CONSTANT_NETS)
        self.driven: Set[str] = set(netlist._drivers) | self.constants

        #: net -> (instance name, pin name) pairs reading it.
        self.readers: Dict[str, List[Tuple[str, str]]] = {}
        #: net -> driving Instance (cell outputs only, not primary inputs).
        self.producer: Dict[str, Instance] = {}
        for inst in netlist.instances:
            for pin, net in zip(inst.cell.inputs, inst.inputs):
                self.readers.setdefault(net, []).append((inst.name, pin))
            for net in inst.outputs:
                self.producer[net] = inst

        self.comb = netlist.combinational_instances()
        self.seq = netlist.sequential_instances()
        self.cyclic_sccs = self._combinational_cycles()
        in_cycle = {id(inst) for scc in self.cyclic_sccs for inst in scc}
        self.comb_order, self.comb_unordered = self._combinational_order(in_cycle)
        self.observable = self._cone_of_influence()
        self.constant_nets = self._propagate_constants()
        self.depth, self.depth_pred = self._logic_depths()

    # -- cycles ---------------------------------------------------------- #
    def _combinational_cycles(self) -> List[List[Instance]]:
        succs = instance_successors(self.comb)
        self_loops = {
            id(inst)
            for inst in self.comb
            if any(net in inst.outputs for net in inst.inputs)
        }
        return [
            scc
            for scc in strongly_connected_instances(self.comb, succs)
            if len(scc) > 1 or id(scc[0]) in self_loops
        ]

    # -- evaluation order (never raises, unlike topological_order) ------- #
    def _combinational_order(
        self, in_cycle: Set[int]
    ) -> Tuple[List[Instance], List[Instance]]:
        """Topological order of the acyclic combinational subgraph.

        Returns ``(ordered, unordered)`` where ``unordered`` holds cycle
        members and everything downstream of a cycle.  Nets without drivers
        are treated as (unknown-valued) sources so a single missing wire
        does not hide the rest of the analysis.
        """
        ready = set(self.netlist.primary_inputs) | self.constants
        for inst in self.seq:
            ready.update(inst.outputs)
        for inst in self.netlist.instances:
            ready.update(net for net in inst.inputs if net not in self.driven)

        remaining = [inst for inst in self.comb if id(inst) not in in_cycle]
        ordered: List[Instance] = []
        while remaining:
            progress = False
            waiting = []
            for inst in remaining:
                if all(net in ready for net in inst.inputs):
                    ordered.append(inst)
                    ready.update(inst.outputs)
                    progress = True
                else:
                    waiting.append(inst)
            if not progress:
                break
            remaining = waiting
        unordered = remaining + [
            inst for inst in self.comb if id(inst) in in_cycle
        ]
        return ordered, unordered

    # -- observability --------------------------------------------------- #
    def _cone_of_influence(self) -> Set[int]:
        """``id()`` set of instances in the backward cone of any primary output."""
        unobservable = {id(inst) for inst in unobservable_instances(self.netlist)}
        return {
            id(inst)
            for inst in self.netlist.instances
            if id(inst) not in unobservable
        }

    # -- constant propagation -------------------------------------------- #
    def _propagate_constants(self) -> Dict[str, int]:
        """Nets with provably constant values (``{"0": 0, "1": 1}`` seeded).

        Combinational cells are evaluated in topological order; inputs that
        are not known constants are treated as free variables and the cell is
        evaluated exhaustively over them (at most ``2**n_unknown`` calls, and
        library cells have at most 3 inputs), so partially-tied cells like
        ``AND2(x, "0")`` are recognized as constant too.  Sequential cells
        never propagate: their output depends on the state trajectory.
        """
        known: Dict[str, int] = {"0": 0, "1": 1}
        for inst in self.comb_order:
            unknown = [net for net in inst.inputs if net not in known]
            if len(unknown) > 6:  # safety valve for exotic future cells
                continue
            outputs: Optional[Tuple[int, ...]] = None
            constant = True
            for assignment in _cartesian_product((0, 1), repeat=len(unknown)):
                values = dict(zip(unknown, assignment))
                bits = tuple(
                    values[net] if net in values else known[net]
                    for net in inst.inputs
                )
                result = tuple(int(b) & 1 for b in inst.cell.logic(bits))
                if outputs is None:
                    outputs = result
                elif result != outputs:
                    constant = False
                    break
            if constant and outputs is not None:
                for net, bit in zip(inst.outputs, outputs):
                    known[net] = bit
        for name in ("0", "1"):
            del known[name]
        return known

    # -- logic depth ------------------------------------------------------ #
    def _logic_depths(
        self,
    ) -> Tuple[Dict[str, Optional[int]], Dict[str, Optional[str]]]:
        """Per-net combinational depth and deepest-predecessor instance names."""
        depth: Dict[str, Optional[int]] = {net: 0 for net in self.constants}
        pred: Dict[str, Optional[str]] = {}
        for net in self.netlist.primary_inputs:
            depth[net] = 0
        for inst in self.seq:
            for net in inst.outputs:
                depth[net] = 0
        for inst in self.netlist.instances:
            for net in inst.inputs:
                if net not in self.driven:
                    depth[net] = 0
        for inst in self.comb_order:
            input_depths = [depth.get(net) for net in inst.inputs]
            if any(d is None for d in input_depths):
                level: Optional[int] = None
                deepest = None
            else:
                level = 1 + max(input_depths, default=0)
                deepest = None
                if input_depths:
                    deepest = inst.inputs[input_depths.index(max(input_depths))]
            for net in inst.outputs:
                depth[net] = level
                pred[net] = deepest
        for inst in self.comb_unordered:
            for net in inst.outputs:
                depth[net] = None
        return depth, pred

    def critical_path(self) -> Tuple[Optional[int], List[str]]:
        """Longest combinational path: length and instance names along it."""
        best_net: Optional[str] = None
        best = 0
        for net, level in self.depth.items():
            if level is not None and level > best:
                best, best_net = level, net
        if best_net is None:
            cyclic = any(d is None for d in self.depth.values())
            return (None, []) if cyclic else (0, [])
        path: List[str] = []
        net: Optional[str] = best_net
        while net is not None and net in self.producer:
            inst = self.producer[net]
            if inst.cell.sequential:
                break
            path.append(inst.name)
            net = self.depth_pred.get(net)
        path.reverse()
        return best, path

    def fanout(self, net: str) -> int:
        """Number of instance input pins reading a net."""
        return len(self.readers.get(net, ()))


# --------------------------------------------------------------------------- #
# rule registry
# --------------------------------------------------------------------------- #
#: All registered rules, keyed by rule id.
LINT_RULES: Dict[str, LintRule] = {}


def register_rule(
    rule_id: str, severity: str, description: str
) -> Callable[[Callable], Callable]:
    """Decorator registering a checker under ``rule_id`` in :data:`LINT_RULES`.

    The checker receives the shared analysis context and yields
    :class:`LintFinding` records.  Registering an existing id replaces the
    rule (useful for project-specific overrides in downstream code).
    """
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}, got {severity!r}")

    def decorator(fn: Callable) -> Callable:
        LINT_RULES[rule_id] = LintRule(rule_id, severity, description, fn)
        return fn

    return decorator


@register_rule(
    "undriven-input",
    "error",
    "every instance input pin must be connected to a driven net",
)
def _check_undriven_inputs(ctx: _Analysis) -> Iterator[LintFinding]:
    for inst in ctx.netlist.instances:
        for pin, net in zip(inst.cell.inputs, inst.inputs):
            if net not in ctx.driven:
                yield LintFinding(
                    rule="undriven-input",
                    severity="error",
                    message=f"input pin {pin} reads net {net!r}, which has no driver",
                    instance=inst.name,
                    net=net,
                    hint="add a driving cell or declare the net as a primary input",
                )


@register_rule(
    "undriven-output",
    "error",
    "every primary output must be a driven net",
)
def _check_undriven_outputs(ctx: _Analysis) -> Iterator[LintFinding]:
    for net in ctx.netlist.primary_outputs:
        if net not in ctx.driven:
            yield LintFinding(
                rule="undriven-output",
                severity="error",
                message=f"primary output {net!r} has no driver",
                net=net,
                hint="drive the net before (or after) calling add_output(); "
                "add_output() only marks the name",
            )


@register_rule(
    "duplicate-instance",
    "error",
    "instance names must be unique (the simulator keys sequential state by name)",
)
def _check_duplicate_instances(ctx: _Analysis) -> Iterator[LintFinding]:
    counts = Counter(inst.name for inst in ctx.netlist.instances)
    for name, count in sorted(counts.items()):
        if count > 1:
            yield LintFinding(
                rule="duplicate-instance",
                severity="error",
                message=f"instance name used {count} times; sequential cells "
                "with this name would silently share one state entry",
                instance=name,
                hint="pass a unique instance_name= to add_cell()",
            )


@register_rule(
    "combinational-cycle",
    "error",
    "combinational logic must be acyclic (reported as the actual SCC members)",
)
def _check_combinational_cycles(ctx: _Analysis) -> Iterator[LintFinding]:
    for scc in ctx.cyclic_sccs:
        members = sorted(inst.name for inst in scc)
        preview = ", ".join(members[:12])
        if len(members) > 12:
            preview += f", ... {len(members) - 12} more"
        yield LintFinding(
            rule="combinational-cycle",
            severity="error",
            message=f"combinational cycle through {len(members)} instance(s): "
            f"[{preview}]",
            instance=members[0],
            hint="break the loop with a sequential cell (DFF/TFF) or rewire "
            "the feedback path",
        )


@register_rule(
    "bad-initial-state",
    "error",
    "sequential initial_state must be 0 or 1 (anything else is unreachable "
    "in the two-level convention and diverges between simulator backends)",
)
def _check_initial_state(ctx: _Analysis) -> Iterator[LintFinding]:
    for inst in ctx.seq:
        if inst.initial_state not in (0, 1):
            yield LintFinding(
                rule="bad-initial-state",
                severity="error",
                message=f"initial_state={inst.initial_state} on a "
                f"{inst.cell.name}; only 0 and 1 are reachable states",
                instance=inst.name,
                hint="pass initial_state=0 or 1 to add_cell()",
            )


@register_rule(
    "dangling-net",
    "warning",
    "a cell output that is never read and is not a primary output",
)
def _check_dangling_nets(ctx: _Analysis) -> Iterator[LintFinding]:
    outputs = set(ctx.netlist.primary_outputs)
    for inst in ctx.netlist.instances:
        for net in inst.outputs:
            if net not in outputs and ctx.fanout(net) == 0:
                yield LintFinding(
                    rule="dangling-net",
                    severity="warning",
                    message=f"output net {net!r} is never read and is not a "
                    "primary output",
                    instance=inst.name,
                    net=net,
                    hint="read the net, mark it with add_output(), or drop "
                    "the cell",
                )


@register_rule(
    "unobservable-logic",
    "warning",
    "cells outside the cone of influence of every primary output "
    "(counted in area/power but unable to affect any result)",
)
def _check_unobservable(ctx: _Analysis) -> Iterator[LintFinding]:
    for inst in ctx.netlist.instances:
        if id(inst) not in ctx.observable:
            yield LintFinding(
                rule="unobservable-logic",
                severity="warning",
                message=f"{inst.cell.name} cannot affect any primary output",
                instance=inst.name,
                hint="export a net it feeds with add_output(), or remove it "
                "before costing area/power",
            )


@register_rule(
    "unused-input",
    "warning",
    "a primary input no instance reads",
)
def _check_unused_inputs(ctx: _Analysis) -> Iterator[LintFinding]:
    outputs = set(ctx.netlist.primary_outputs)
    for net in ctx.netlist.primary_inputs:
        if ctx.fanout(net) == 0 and net not in outputs:
            yield LintFinding(
                rule="unused-input",
                severity="warning",
                message=f"primary input {net!r} is never read",
                net=net,
                hint="connect it or drop the add_input() call",
            )


@register_rule(
    "constant-cell",
    "warning",
    "constant-propagated dead logic: every output is provably constant",
)
def _check_constant_cells(ctx: _Analysis) -> Iterator[LintFinding]:
    for inst in ctx.comb_order:
        if all(net in ctx.constant_nets for net in inst.outputs):
            values = ", ".join(
                f"{net}={ctx.constant_nets[net]}" for net in inst.outputs
            )
            yield LintFinding(
                rule="constant-cell",
                severity="warning",
                message=f"{inst.cell.name} output is constant ({values}) for "
                "every input assignment",
                instance=inst.name,
                net=inst.outputs[0],
                hint="tie the fanout to the constant net and drop the cell",
            )


@register_rule(
    "constant-input",
    "info",
    "an input pin tied to a constant (or provably constant) net",
)
def _check_constant_inputs(ctx: _Analysis) -> Iterator[LintFinding]:
    for inst in ctx.netlist.instances:
        for pin, net in zip(inst.cell.inputs, inst.inputs):
            if net in ctx.constants:
                yield LintFinding(
                    rule="constant-input",
                    severity="info",
                    message=f"input pin {pin} is tied to constant {net}",
                    instance=inst.name,
                    net=net,
                )
            elif net in ctx.constant_nets:
                yield LintFinding(
                    rule="constant-input",
                    severity="info",
                    message=f"input pin {pin} reads {net!r}, which is "
                    f"provably constant {ctx.constant_nets[net]}",
                    instance=inst.name,
                    net=net,
                )


@register_rule(
    "net-name-collision",
    "warning",
    "a user-named net inside the namespace new_net() generates",
)
def _check_net_name_collisions(ctx: _Analysis) -> Iterator[LintFinding]:
    hints = {"n"}
    for cell_type in CELL_LIBRARY.values():
        for pin in cell_type.outputs:
            hints.add(f"{cell_type.name.lower()}_{pin.lower()}")
    counter = ctx.netlist._counter
    for net in ctx.netlist.nets:
        base, sep, suffix = net.rpartition("_")
        if not sep or base not in hints or not suffix.isdigit():
            continue
        if int(suffix) > counter:
            yield LintFinding(
                rule="net-name-collision",
                severity="warning",
                message=f"net name {net!r} sits in the auto-generated "
                f"new_net({base!r}) namespace ahead of its counter "
                f"(currently {counter}); later anonymous cells will have "
                "to skip it",
                net=net,
                hint="rename the net outside the '<cell>_<pin>_<n>' pattern",
            )


@register_rule(
    "fanout-hotspot",
    "info",
    "a net with unusually high fanout (buffer-tree candidate)",
)
def _check_fanout_hotspots(ctx: _Analysis) -> Iterator[LintFinding]:
    for net in ctx.netlist.nets:
        fanout = ctx.fanout(net)
        if fanout >= _FANOUT_HOTSPOT_THRESHOLD:
            yield LintFinding(
                rule="fanout-hotspot",
                severity="info",
                message=f"net drives {fanout} input pins "
                f"(threshold {_FANOUT_HOTSPOT_THRESHOLD})",
                net=net,
                hint="a real flow would insert a buffer tree here",
            )


@register_rule(
    "ignored-initial-state",
    "info",
    "initial_state set on a combinational cell (silently ignored)",
)
def _check_ignored_initial_state(ctx: _Analysis) -> Iterator[LintFinding]:
    for inst in ctx.comb:
        if inst.initial_state != 0:
            yield LintFinding(
                rule="ignored-initial-state",
                severity="info",
                message=f"initial_state={inst.initial_state} on combinational "
                f"{inst.cell.name} has no effect",
                instance=inst.name,
                hint="drop the initial_state= argument",
            )


#: Fanout at which :data:`fanout-hotspot` starts reporting.
_FANOUT_HOTSPOT_THRESHOLD = 64


# --------------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------------- #
def lint(
    netlist: Netlist,
    rules: Optional[Iterable[str]] = None,
    ignore: Iterable[str] = (),
) -> LintReport:
    """Run the registered rules over a netlist and return the report.

    Parameters
    ----------
    netlist:
        The circuit to analyze.  Never modified, never simulated.
    rules:
        Rule ids to run; default is every rule in :data:`LINT_RULES`.
    ignore:
        Rule ids to skip (applied after ``rules``).
    """
    selected = list(LINT_RULES) if rules is None else list(rules)
    unknown = [r for r in selected if r not in LINT_RULES] + [
        r for r in ignore if r not in LINT_RULES
    ]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {sorted(set(unknown))}; "
            f"available: {sorted(LINT_RULES)}"
        )
    skipped = set(ignore)

    ctx = _Analysis(netlist)
    findings: List[LintFinding] = []
    for rule_id in selected:
        if rule_id in skipped:
            continue
        findings.extend(LINT_RULES[rule_id].check(ctx))
    findings.sort(key=lambda f: (SEVERITIES.index(f.severity), f.rule))

    fanouts = [ctx.fanout(net) for net in netlist.nets]
    critical_length, critical_path = ctx.critical_path()
    stats = NetlistStats(
        fanout_histogram=dict(sorted(Counter(fanouts).items())),
        max_fanout=max(fanouts, default=0),
        logic_depth={
            net: ctx.depth.get(net) for net in netlist.primary_outputs
        },
        critical_path_length=critical_length,
        critical_path=critical_path,
    )
    return LintReport(
        netlist=netlist.name,
        cells=len(netlist.instances),
        findings=findings,
        stats=stats,
    )


def enforce(netlist: Netlist, severity: str = "error") -> LintReport:
    """Lint and raise :class:`LintError` on findings at/above ``severity``.

    This is the ``strict=`` elaboration mode of
    :func:`repro.netlist.simulator.simulate`: an error-clean report is
    returned, anything else raises with the offending findings listed.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}, got {severity!r}")
    report = lint(netlist)
    rank = SEVERITIES.index(severity)
    if any(SEVERITIES.index(f.severity) <= rank for f in report.findings):
        raise LintError(report, severity)
    return report


def unobservable_instances(netlist: Netlist) -> List[Instance]:
    """Instances outside the cone of influence of every primary output.

    The cone-of-influence helper shared with :mod:`repro.netlist.power`:
    cells returned here contribute area, leakage and (potentially) switching
    energy to the roll-ups without being able to change any output, so the
    power model warns when it counts them.  Netlists with no primary outputs
    return every instance.
    """
    producer: Dict[str, Instance] = {}
    for inst in netlist.instances:
        for net in inst.outputs:
            producer[net] = inst
    observable: Set[int] = set()
    frontier = list(dict.fromkeys(netlist.primary_outputs))
    seen: Set[str] = set(frontier)
    while frontier:
        net = frontier.pop()
        inst = producer.get(net)
        if inst is None or id(inst) in observable:
            continue
        observable.add(id(inst))
        for source in inst.inputs:
            if source not in seen:
                seen.add(source)
                frontier.append(source)
    return [inst for inst in netlist.instances if id(inst) not in observable]
