"""The gate-level netlist graph.

A :class:`Netlist` is a named collection of cell *instances* connected by
*nets* (wires).  It plays the role of the post-synthesis gate-level netlist
in the paper's evaluation flow: circuit generators build netlists for the
stochastic and binary convolution engines, the cycle simulator
(:mod:`repro.netlist.simulator`) executes them against image traces to obtain
switching activity, and the area/power models roll the results up into the
Table 3 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cells import Cell, cell

__all__ = ["Instance", "Netlist"]


@dataclass
class Instance:
    """One placed cell instance."""

    name: str
    cell: Cell
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    #: Initial state for sequential cells (ignored for combinational ones).
    initial_state: int = 0


class Netlist:
    """A flat gate-level netlist.

    Nets are identified by strings.  The constant nets ``"0"`` and ``"1"``
    are always available and driven by the corresponding logic levels.
    """

    CONSTANT_NETS = ("0", "1")

    def __init__(self, name: str) -> None:
        self.name = name
        self.instances: List[Instance] = []
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._drivers: Dict[str, str] = {}
        self._counter = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._drivers:
            raise ValueError(f"net {net!r} already has a driver")
        if net in self.primary_inputs:
            raise ValueError(f"primary input {net!r} already declared")
        self.primary_inputs.append(net)
        self._drivers[net] = "<input>"
        return net

    def add_inputs(self, prefix: str, count: int) -> List[str]:
        """Declare ``count`` primary inputs named ``prefix0 .. prefix{count-1}``."""
        return [self.add_input(f"{prefix}{i}") for i in range(count)]

    def add_output(self, net: str) -> str:
        """Mark a net as a primary output.

        The net does not need to exist yet (builders may export a net before
        instantiating its driver), but :meth:`validate` checks that every
        primary output ends up driven.
        """
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)
        return net

    def new_net(self, hint: str = "n") -> str:
        """Return a fresh internal net name.

        Names already taken by user-named nets or primary outputs are
        skipped, so a builder that mixes explicit names with anonymous cells
        can never collide with the generated ``{hint}_{n}`` namespace
        (:mod:`repro.netlist.lint` still warns about nets squatting in it).
        """
        self._counter += 1
        name = f"{hint}_{self._counter}"
        while name in self._drivers or name in self.primary_outputs:
            self._counter += 1
            name = f"{hint}_{self._counter}"
        return name

    def add_cell(
        self,
        cell_name: str,
        inputs: Sequence[str],
        outputs: Optional[Sequence[str]] = None,
        instance_name: Optional[str] = None,
        initial_state: int = 0,
    ) -> Tuple[str, ...]:
        """Instantiate a cell and return its output net name(s).

        Parameters
        ----------
        cell_name:
            A name from :data:`repro.netlist.cells.CELL_LIBRARY`.
        inputs:
            Net names connected to the cell's input pins, in pin order.
        outputs:
            Optional explicit output net names; fresh nets are created when
            omitted.
        instance_name:
            Optional explicit instance name.
        initial_state:
            Power-on state for sequential cells.
        """
        ctype = cell(cell_name)
        if len(inputs) != len(ctype.inputs):
            raise ValueError(
                f"{cell_name} expects {len(ctype.inputs)} inputs "
                f"({ctype.inputs}), got {len(inputs)}"
            )
        if outputs is None:
            outputs = [self.new_net(f"{cell_name.lower()}_{pin.lower()}") for pin in ctype.outputs]
        if len(outputs) != len(ctype.outputs):
            raise ValueError(
                f"{cell_name} produces {len(ctype.outputs)} outputs, "
                f"got {len(outputs)} names"
            )
        name = instance_name or f"u{len(self.instances)}_{cell_name.lower()}"
        for net in outputs:
            if net in self._drivers:
                raise ValueError(f"net {net!r} already has a driver")
            self._drivers[net] = name
        self.instances.append(
            Instance(
                name=name,
                cell=ctype,
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                initial_state=int(initial_state),
            )
        )
        return tuple(outputs)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def nets(self) -> List[str]:
        """All driven nets (excluding constants)."""
        return list(self._drivers)

    def driver_of(self, net: str) -> Optional[str]:
        """Instance name driving ``net`` (``"<input>"`` for primary inputs)."""
        return self._drivers.get(net)

    def validate(self) -> None:
        """Check that every instance input and primary output is driven.

        Builders may instantiate cells in any order (e.g. a flip-flop whose
        input comes from logic added later), so the driver check is deferred
        to this method, which the simulator calls before running.  Deeper
        structural checks (observability, cycles as SCC member lists,
        constant-propagated dead logic, ...) live in
        :mod:`repro.netlist.lint`.
        """
        driven = set(self._drivers) | set(self.CONSTANT_NETS)
        for inst in self.instances:
            for net in inst.inputs:
                if net not in driven:
                    raise ValueError(
                        f"net {net!r} used by instance {inst.name!r} has no driver"
                    )
        for net in self.primary_outputs:
            if net not in driven:
                raise ValueError(f"primary output {net!r} has no driver")

    def cell_counts(self) -> Dict[str, int]:
        """Histogram of cell types used."""
        counts: Dict[str, int] = {}
        for inst in self.instances:
            counts[inst.cell.name] = counts.get(inst.cell.name, 0) + 1
        return counts

    def combinational_instances(self) -> List[Instance]:
        """All combinational instances."""
        return [inst for inst in self.instances if not inst.cell.sequential]

    def sequential_instances(self) -> List[Instance]:
        """All sequential (state-holding) instances."""
        return [inst for inst in self.instances if inst.cell.sequential]

    def topological_order(self) -> List[Instance]:
        """Combinational instances ordered so every input is driven before use.

        Sequential cell outputs and primary inputs are treated as sources.
        Raises ``ValueError`` if the combinational logic contains a cycle.
        """
        ready = set(self.primary_inputs) | set(self.CONSTANT_NETS)
        for inst in self.sequential_instances():
            ready.update(inst.outputs)

        remaining = list(self.combinational_instances())
        ordered: List[Instance] = []
        while remaining:
            progress = False
            still_waiting = []
            for inst in remaining:
                if all(net in ready for net in inst.inputs):
                    ordered.append(inst)
                    ready.update(inst.outputs)
                    progress = True
                else:
                    still_waiting.append(inst)
            if not progress:
                blocked = [inst.name for inst in still_waiting[:5]]
                raise ValueError(
                    f"combinational cycle or undriven net detected near {blocked}"
                )
            remaining = still_waiting
        return ordered

    def total_area_um2(self) -> float:
        """Sum of all placed cell areas (used by :mod:`repro.netlist.power`)."""
        return float(sum(inst.cell.area_um2 for inst in self.instances))

    def merge(self, other: "Netlist", prefix: str) -> Dict[str, str]:
        """Copy another netlist into this one with renamed nets.

        Returns the mapping from the other netlist's net names to the new
        names; the other netlist's primary inputs become fresh primary inputs
        here unless a net of the mapped name already exists (the intended
        connect-by-name stitching mechanism).  Prefixed *internal* nets must
        not collide with pre-existing nets: that would silently rewire the
        merged logic, so collisions are detected up front and reported with
        both netlist names instead of surfacing later as an opaque
        "already has a driver" error from :meth:`add_cell`.
        """
        collisions = sorted(
            f"{prefix}_{net}"
            for inst in other.instances
            for net in inst.outputs
            if f"{prefix}_{net}" in self._drivers
        )
        if collisions:
            preview = ", ".join(repr(net) for net in collisions[:5])
            if len(collisions) > 5:
                preview += f", ... {len(collisions) - 5} more"
            raise ValueError(
                f"cannot merge netlist {other.name!r} into {self.name!r} with "
                f"prefix {prefix!r}: {len(collisions)} prefixed net(s) "
                f"collide with nets that already exist in {self.name!r} "
                f"({preview}); pick a different prefix"
            )
        mapping: Dict[str, str] = {c: c for c in self.CONSTANT_NETS}
        for net in other.primary_inputs:
            new_name = f"{prefix}_{net}"
            if new_name not in self._drivers:
                self.add_input(new_name)
            mapping[net] = new_name
        for inst in other.instances:
            new_outputs = [f"{prefix}_{net}" for net in inst.outputs]
            mapping.update(dict(zip(inst.outputs, new_outputs)))
        for inst in other.instances:
            self.add_cell(
                inst.cell.name,
                [mapping[n] for n in inst.inputs],
                outputs=[mapping[n] for n in inst.outputs],
                instance_name=f"{prefix}_{inst.name}",
                initial_state=inst.initial_state,
            )
        for net in other.primary_outputs:
            self.add_output(mapping[net])
        return mapping

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, cells={len(self.instances)}, "
            f"inputs={len(self.primary_inputs)}, outputs={len(self.primary_outputs)})"
        )
