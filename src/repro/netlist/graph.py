"""Graph algorithms shared by the netlist simulator and the static analyzer.

The cycle simulator and :mod:`repro.netlist.lint` both need strongly
connected components over instance dependency graphs: the packed simulator
uses them to isolate register feedback cores (LFSR loops, accumulator
feedback), the lint pass to report combinational cycles as their actual
member lists instead of a guess.  The implementation lives here so neither
module has to import the other.

Instances are keyed by identity (``id()``) rather than name because a broken
netlist may legally contain duplicate instance names -- that is one of the
conditions lint exists to report.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from .netlist import Instance

__all__ = ["strongly_connected_instances", "instance_successors"]


def instance_successors(
    instances: Sequence[Instance],
) -> Dict[int, List[Instance]]:
    """Dependency edges between instances: driver -> reader.

    Returns the successor map keyed by ``id(instance)``, considering only
    nets driven and read *within* the given instance set.
    """
    produced: Dict[str, Instance] = {}
    for inst in instances:
        for net in inst.outputs:
            produced[net] = inst
    succs: Dict[int, List[Instance]] = {id(inst): [] for inst in instances}
    for inst in instances:
        for net in dict.fromkeys(inst.inputs):
            source = produced.get(net)
            if source is not None:
                succs[id(source)].append(inst)
    return succs


def strongly_connected_instances(
    nodes: Sequence[Instance], succs: Dict[int, List[Instance]]
) -> List[List[Instance]]:
    """Tarjan's algorithm (iterative) over instances keyed by identity.

    Returns the strongly connected components in reverse topological order
    of the condensation (callees before callers), as Tarjan produces them.
    """
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[Instance] = []
    sccs: List[List[Instance]] = []
    counter = 0

    for root in nodes:
        if id(root) in index:
            continue
        work = [(root, 0)]
        while work:
            node, next_child = work[-1]
            if next_child == 0:
                index[id(node)] = low[id(node)] = counter
                counter += 1
                stack.append(node)
                on_stack.add(id(node))
            descended = False
            children = succs[id(node)]
            for i in range(next_child, len(children)):
                child = children[i]
                if id(child) not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    descended = True
                    break
                if id(child) in on_stack:
                    low[id(node)] = min(low[id(node)], index[id(child)])
            if descended:
                continue
            if low[id(node)] == index[id(node)]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(id(member))
                    component.append(member)
                    if member is node:
                        break
                sccs.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                low[id(parent)] = min(low[id(parent)], low[id(node)])
    return sccs
