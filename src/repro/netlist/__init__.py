"""Gate-level netlist substrate: cells, netlists, simulation, analysis, power.

Besides construction (:class:`Netlist`, the circuit builders) and execution
(:func:`simulate` / :func:`simulate_batch`), the package carries a static
analyzer (:mod:`repro.netlist.lint`): a rule registry over the netlist IR
that proves structural properties -- drivers, observability cones,
combinational cycles as SCC member lists, constant-propagated dead logic,
naming collisions -- without simulating.  ``python -m repro lint`` gates
every builder circuit on it in CI, and ``simulate(..., strict=True)`` runs
the error-severity rules as an elaboration step before execution.
"""

from .cells import CELL_LIBRARY, Cell, cell, nand2_equivalents
from .circuits import (
    BUILDER_CATALOG,
    build_adder_tree,
    build_and_multiplier,
    build_array_multiplier,
    build_binary_mac,
    build_comparator,
    build_counter,
    build_lfsr,
    build_mux_adder,
    build_ripple_adder,
    build_sc_dot_product,
    build_sng,
    build_tff_adder,
)
from .lint import (
    LINT_RULES,
    LintError,
    LintFinding,
    LintReport,
    LintRule,
    NetlistStats,
    UnobservableAreaWarning,
    enforce,
    lint,
    register_rule,
    unobservable_instances,
)
from .netlist import Instance, Netlist
from .power import (
    PowerReport,
    energy_per_frame_nj,
    estimate_area_mm2,
    estimate_power,
)
from .simulator import (
    BatchSimulationResult,
    SimulationResult,
    simulate,
    simulate_batch,
)

__all__ = [
    "Cell",
    "CELL_LIBRARY",
    "cell",
    "nand2_equivalents",
    "Instance",
    "Netlist",
    "SimulationResult",
    "BatchSimulationResult",
    "simulate",
    "simulate_batch",
    "PowerReport",
    "estimate_power",
    "estimate_area_mm2",
    "energy_per_frame_nj",
    "LINT_RULES",
    "LintError",
    "LintFinding",
    "LintReport",
    "LintRule",
    "NetlistStats",
    "UnobservableAreaWarning",
    "enforce",
    "lint",
    "register_rule",
    "unobservable_instances",
    "build_and_multiplier",
    "build_mux_adder",
    "build_tff_adder",
    "build_adder_tree",
    "build_counter",
    "build_comparator",
    "build_lfsr",
    "build_sng",
    "build_sc_dot_product",
    "build_ripple_adder",
    "build_array_multiplier",
    "build_binary_mac",
    "BUILDER_CATALOG",
]
