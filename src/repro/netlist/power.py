"""Area, power and energy roll-up for gate-level netlists.

This module converts a netlist (plus optional switching activity from the
cycle simulator) into the three quantities reported in Table 3:

* **area** -- the sum of placed cell areas, reported in mm^2;
* **power** -- dynamic power (activity x energy-per-toggle x frequency) plus
  leakage, reported in mW;
* **energy per frame** -- power multiplied by the time needed to process one
  frame at the design's cycle count and clock frequency, reported in nJ.

When no simulation trace is available, a default activity factor is used --
the same abstraction synthesis tools apply before switching-annotated power
analysis.

Both roll-ups cross-check the netlist against the static analyzer's
cone-of-influence: cells no primary output can observe still contribute
area, leakage and (assumed) switching energy, which silently inflates every
Table 3 hardware number derived from the netlist.  When such cells exist,
:func:`estimate_area_mm2` and :func:`estimate_power` emit an
:class:`~repro.netlist.lint.UnobservableAreaWarning` naming the netlist and
the cell count; run ``python -m repro lint`` for the per-instance list.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Union

from .lint import UnobservableAreaWarning, unobservable_instances
from .netlist import Netlist
from .simulator import BatchSimulationResult, SimulationResult

__all__ = ["PowerReport", "estimate_area_mm2", "estimate_power", "energy_per_frame_nj"]


#: Default switching activity (toggles per cycle per net) used when no
#: simulation trace is supplied.  0.15 is a conventional datapath assumption.
DEFAULT_ACTIVITY = 0.15


def _warn_unobservable(netlist: Netlist, quantity: str) -> None:
    """Warn when a costed netlist contains cells no output can observe."""
    unobservable = unobservable_instances(netlist)
    if not unobservable:
        return
    preview = ", ".join(inst.name for inst in unobservable[:5])
    if len(unobservable) > 5:
        preview += f", ... {len(unobservable) - 5} more"
    warnings.warn(
        f"netlist {netlist.name!r}: {len(unobservable)} of "
        f"{len(netlist.instances)} cells cannot affect any primary output "
        f"but are counted in {quantity} ({preview}); run `python -m repro "
        f"lint` for details",
        UnobservableAreaWarning,
        stacklevel=3,
    )


@dataclass
class PowerReport:
    """Breakdown of a power estimate."""

    #: Dynamic (switching) power in mW at the given frequency.
    dynamic_mw: float
    #: Leakage power in mW.
    leakage_mw: float
    #: Clock frequency used, in MHz.
    frequency_mhz: float
    #: Effective average activity used for the estimate.
    activity: float

    @property
    def total_mw(self) -> float:
        """Total power in mW."""
        return self.dynamic_mw + self.leakage_mw


def estimate_area_mm2(netlist: Netlist, utilization: float = 0.8) -> float:
    """Post-place-and-route area estimate in mm^2.

    ``utilization`` models the placement density achieved by IC Compiler
    (cell area / core area); 80 % is a typical figure for datapath blocks.
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError("utilization must lie in (0, 1]")
    _warn_unobservable(netlist, "area")
    cell_area_um2 = netlist.total_area_um2()
    return cell_area_um2 / utilization / 1e6


def estimate_power(
    netlist: Netlist,
    frequency_mhz: float,
    activity: Optional[float] = None,
    simulation: Optional[Union[SimulationResult, BatchSimulationResult]] = None,
) -> PowerReport:
    """Estimate dynamic + leakage power of a netlist.

    Parameters
    ----------
    netlist:
        The circuit.
    frequency_mhz:
        Clock frequency in MHz.
    activity:
        Average toggles per cycle per cell output.  Ignored when a
        ``simulation`` result is supplied.
    simulation:
        A :class:`SimulationResult` whose per-net toggle counts provide
        switching-annotated activity (the PrimeTime-style estimate), or a
        :class:`BatchSimulationResult` from a multi-trace run
        (:func:`repro.netlist.simulator.simulate_batch`), in which case each
        net's activity is its mean toggle rate across the whole trace set.
    """
    if frequency_mhz <= 0:
        raise ValueError("frequency must be positive")
    _warn_unobservable(netlist, "power")

    if simulation is not None:
        effective_activity = simulation.average_activity()
    elif activity is not None:
        if activity < 0:
            raise ValueError("activity must be non-negative")
        effective_activity = float(activity)
    else:
        effective_activity = DEFAULT_ACTIVITY

    toggle_energy_fj = 0.0
    leakage_nw = 0.0
    if simulation is not None and simulation.cycles > 1:
        # Per-instance activity: use the toggle count of its first output net.
        for inst in netlist.instances:
            leakage_nw += inst.cell.leakage_nw
            for net in inst.outputs:
                net_activity = simulation.activity(net) if net in simulation.toggles else effective_activity
                toggle_energy_fj += net_activity * inst.cell.toggle_energy_fj
    else:
        for inst in netlist.instances:
            leakage_nw += inst.cell.leakage_nw
            toggle_energy_fj += effective_activity * inst.cell.toggle_energy_fj * len(
                inst.outputs
            )

    # energy per cycle [fJ] * cycles per second = power.
    # fJ * MHz = 1e-15 J * 1e6 1/s = 1e-9 W; convert to mW (1e-3 W).
    dynamic_mw = toggle_energy_fj * frequency_mhz * 1e-6
    leakage_mw = leakage_nw * 1e-6
    return PowerReport(
        dynamic_mw=dynamic_mw,
        leakage_mw=leakage_mw,
        frequency_mhz=frequency_mhz,
        activity=effective_activity,
    )


def energy_per_frame_nj(report: PowerReport, cycles_per_frame: float) -> float:
    """Energy needed to process one frame, in nJ.

    ``cycles_per_frame`` is the number of clock cycles the design needs per
    frame at the report's frequency.
    """
    if cycles_per_frame < 0:
        raise ValueError("cycles_per_frame must be non-negative")
    seconds_per_frame = cycles_per_frame / (report.frequency_mhz * 1e6)
    # mW * s = mJ; convert to nJ.
    return report.total_mw * seconds_per_frame * 1e6
