"""Gate-level circuit generators for the paper's datapaths.

These builders produce :class:`~repro.netlist.netlist.Netlist` objects for
the circuits evaluated in Section VI:

**Stochastic datapath** (the proposed design)

* :func:`build_and_multiplier` -- the Fig. 1a multiplier.
* :func:`build_mux_adder` / :func:`build_tff_adder` -- the Fig. 1b and
  Fig. 2b adders.
* :func:`build_adder_tree` -- a balanced tree of either adder.
* :func:`build_counter` -- the stochastic-to-binary output counter.
* :func:`build_sng` -- LFSR + comparator stochastic number generator.
* :func:`build_sc_dot_product` -- one complete convolution engine: AND
  multipliers, two adder trees (positive and negative weights), two counters
  and the output sign comparator.

**Binary baseline**

* :func:`build_ripple_adder` / :func:`build_array_multiplier` -- conventional
  binary arithmetic.
* :func:`build_binary_mac` -- the multiply-accumulate unit at the heart of
  the sliding-window convolution engine baseline.

All builders return self-contained netlists that can be simulated with
:func:`repro.netlist.simulator.simulate` (functional correctness is checked
in the test suite) and costed with :mod:`repro.netlist.power`.  Every
builder must also pass the static analyzer with zero errors
(:mod:`repro.netlist.lint`): the differential test suite asserts it, and
``python -m repro lint`` gates it in CI over the representative
parameterizations of :data:`BUILDER_CATALOG`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .netlist import Netlist

__all__ = [
    "build_and_multiplier",
    "build_mux_adder",
    "build_tff_adder",
    "build_adder_tree",
    "build_counter",
    "build_comparator",
    "build_lfsr",
    "build_sng",
    "build_sc_dot_product",
    "build_ripple_adder",
    "build_array_multiplier",
    "build_binary_mac",
    "BUILDER_CATALOG",
]


# --------------------------------------------------------------------------- #
# stochastic elements
# --------------------------------------------------------------------------- #
def build_and_multiplier() -> Netlist:
    """Single AND-gate stochastic multiplier (Fig. 1a)."""
    net = Netlist("sc_multiplier")
    x = net.add_input("x")
    y = net.add_input("y")
    (z,) = net.add_cell("AND2", [x, y], outputs=["z"])
    net.add_output(z)
    return net


def build_mux_adder() -> Netlist:
    """Conventional MUX-based scaled adder (Fig. 1b); select is an input."""
    net = Netlist("sc_mux_adder")
    x = net.add_input("x")
    y = net.add_input("y")
    s = net.add_input("sel")
    (z,) = net.add_cell("MUX2", [x, y, s], outputs=["z"])
    net.add_output(z)
    return net


def build_tff_adder(initial_state: int = 0) -> Netlist:
    """The paper's TFF-based adder (Fig. 2b).

    Structure: an XOR detects disagreement between the inputs, the TFF toggles
    on disagreement, and a MUX selects the input value (agreement) or the TFF
    state (disagreement).
    """
    net = Netlist("sc_tff_adder")
    x = net.add_input("x")
    y = net.add_input("y")
    (disagree,) = net.add_cell("XOR2", [x, y], outputs=["disagree"])
    (q,) = net.add_cell(
        "TFF", [disagree], outputs=["tff_q"], initial_state=initial_state
    )
    (z,) = net.add_cell("MUX2", [x, q, disagree], outputs=["z"])
    net.add_output(z)
    return net


def _add_tff_adder_stage(
    net: Netlist, x: str, y: str, tag: str, initial_state: int = 0
) -> str:
    """Instantiate one TFF adder inside an existing netlist; returns the sum net."""
    (disagree,) = net.add_cell("XOR2", [x, y], outputs=[f"{tag}_dis"])
    (q,) = net.add_cell(
        "TFF", [disagree], outputs=[f"{tag}_q"], initial_state=initial_state
    )
    (z,) = net.add_cell("MUX2", [x, q, disagree], outputs=[f"{tag}_sum"])
    return z


def _add_mux_adder_stage(net: Netlist, x: str, y: str, sel: str, tag: str) -> str:
    """Instantiate one MUX adder inside an existing netlist; returns the sum net."""
    (z,) = net.add_cell("MUX2", [x, y, sel], outputs=[f"{tag}_sum"])
    return z


def build_adder_tree(leaves: int, adder: str = "tff") -> Netlist:
    """A balanced tree of two-input scaled adders over ``leaves`` inputs.

    Inputs are named ``in0 .. in{leaves-1}``; the output net is ``sum``.
    MUX-adder trees additionally expose one select input per tree node,
    named ``sel0, sel1, ...`` (driven by independent 0.5-valued sources in
    the real design).
    """
    if leaves < 2:
        raise ValueError("adder tree needs at least 2 leaves")
    if adder not in ("tff", "mux"):
        raise ValueError(f"unknown adder {adder!r}")
    net = Netlist(f"sc_adder_tree_{adder}_{leaves}")
    level = net.add_inputs("in", leaves)
    sel_count = 0
    stage = 0
    while len(level) > 1:
        if len(level) % 2 == 1:
            level = level + ["0"]
        next_level: List[str] = []
        for i in range(0, len(level), 2):
            tag = f"s{stage}_{i // 2}"
            if adder == "tff":
                next_level.append(
                    _add_tff_adder_stage(net, level[i], level[i + 1], tag)
                )
            else:
                sel = net.add_input(f"sel{sel_count}")
                sel_count += 1
                next_level.append(
                    _add_mux_adder_stage(net, level[i], level[i + 1], sel, tag)
                )
        level = next_level
        stage += 1
    (out,) = net.add_cell("BUF", [level[0]], outputs=["sum"])
    net.add_output(out)
    return net


def build_counter(bits: int, enable_input: str = "enable") -> Netlist:
    """A ``bits``-wide ones-counter (stochastic-to-binary converter, Fig. 1d).

    Functionally a synchronous counter built from toggle flip-flops with an
    AND carry chain: stage ``i`` toggles when the enable input and all lower
    stages are 1.  An asynchronous ripple counter has the same cell count
    minus the carry chain; the hardware model accounts for that difference
    via :class:`repro.sc.elements.converters.AsynchronousCounter` metadata.
    Outputs are ``count0`` (LSB) .. ``count{bits-1}``.
    """
    if bits < 1:
        raise ValueError("counter needs at least one bit")
    net = Netlist(f"counter_{bits}")
    enable = net.add_input(enable_input)
    carry = enable
    for i in range(bits):
        (q,) = net.add_cell("TFF", [carry], outputs=[f"count{i}"])
        net.add_output(q)
        if i + 1 < bits:
            (carry,) = net.add_cell("AND2", [carry, q], outputs=[f"carry{i}"])
    return net


def build_comparator(bits: int) -> Netlist:
    """A ``bits``-wide magnitude comparator (``a > b``) built from CMP1 slices.

    Inputs ``a0.. / b0..`` are LSB-first; the output net is ``gt``.
    """
    if bits < 1:
        raise ValueError("comparator needs at least one bit")
    net = Netlist(f"comparator_{bits}")
    a = net.add_inputs("a", bits)
    b = net.add_inputs("b", bits)
    greater = "0"
    for i in range(bits):  # LSB to MSB so the MSB decision dominates
        (greater,) = net.add_cell("CMP1", [a[i], b[i], greater], outputs=[f"gt{i}"])
    (out,) = net.add_cell("BUF", [greater], outputs=["gt"])
    net.add_output(out)
    return net


def build_lfsr(bits: int, taps: Sequence[int]) -> Netlist:
    """A Galois LFSR: ``bits`` DFFs plus one XOR per feedback tap.

    The netlist is structural only (used for area/power accounting of the
    number generators); its cycle behaviour matches
    :class:`repro.rng.lfsr.LFSR` when seeded identically.
    Outputs are ``state0`` (LSB) .. ``state{bits-1}``.
    """
    if bits < 2:
        raise ValueError("LFSR needs at least 2 bits")
    net = Netlist(f"lfsr_{bits}")
    state = [f"state{i}" for i in range(bits)]
    feedback = state[0]  # Galois: the shifted-out LSB
    next_state: List[str] = []
    for i in range(bits):
        source = state[i + 1] if i + 1 < bits else "0"
        if (i + 1) in taps:
            (mixed,) = net.add_cell("XOR2", [source, feedback], outputs=[f"fb{i}"])
            source = mixed
        next_state.append(source)
    for i in range(bits):
        net.add_cell("DFF", [next_state[i]], outputs=[state[i]], initial_state=1 if i == 0 else 0)
        net.add_output(state[i])
    return net


def build_sng(bits: int, taps: Sequence[int]) -> Netlist:
    """A comparator-based SNG (Fig. 1c): LFSR + magnitude comparator.

    The binary value to convert arrives on inputs ``value0..``; the output
    bit-stream appears on net ``stream``.
    """
    net = Netlist(f"sng_{bits}")
    value = net.add_inputs("value", bits)

    lfsr = build_lfsr(bits, taps)
    mapping = net.merge(lfsr, prefix="rng")
    rng_state = [mapping[f"state{i}"] for i in range(bits)]

    greater = "0"
    for i in range(bits):
        (greater,) = net.add_cell(
            "CMP1", [value[i], rng_state[i], greater], outputs=[f"sng_gt{i}"]
        )
    (stream,) = net.add_cell("BUF", [greater], outputs=["stream"])
    net.add_output(stream)
    return net


def build_sc_dot_product(
    taps: int, counter_bits: int, adder: str = "tff"
) -> Netlist:
    """One full stochastic convolution engine (Fig. 3 microarchitecture).

    Inputs per tap: the input bit-stream ``x{i}`` and the positive / negative
    weight bit-streams ``wp{i}`` / ``wn{i}``.  The engine contains

    * ``2 * taps`` AND multipliers,
    * two ``taps``-leaf adder trees (positive and negative paths),
    * two ``counter_bits``-wide output counters, and
    * a final magnitude comparator producing the sign-activation bit ``sign``.

    MUX-adder variants additionally expose the per-node select inputs of both
    trees (``pos_sel*`` and ``neg_sel*``).
    """
    if taps < 2:
        raise ValueError("dot product needs at least 2 taps")
    net = Netlist(f"sc_dot_product_{adder}_{taps}")
    x = net.add_inputs("x", taps)
    wp = net.add_inputs("wp", taps)
    wn = net.add_inputs("wn", taps)

    tree = build_adder_tree(taps, adder=adder)

    for path, weights in (("pos", wp), ("neg", wn)):
        products = []
        for i in range(taps):
            (p,) = net.add_cell(
                "AND2", [x[i], weights[i]], outputs=[f"{path}_prod{i}"]
            )
            products.append(p)
        mapping = net.merge(tree, prefix=f"{path}_tree")
        # Drive the merged tree's inputs from the product nets.
        for i, product in enumerate(products):
            net.add_cell("BUF", [product], outputs=[f"{path}_tree_feed{i}"])
        # The merge turned tree inputs into primary inputs named
        # {path}_tree_in{i}; replace them by aliasing through buffers is not
        # possible post-hoc, so instead remove them from the primary inputs
        # and re-drive them.
        for i in range(taps):
            tree_in = mapping[f"in{i}"]
            net.primary_inputs.remove(tree_in)
            net._drivers.pop(tree_in)
            net.add_cell("BUF", [f"{path}_tree_feed{i}"], outputs=[tree_in])
        counter = build_counter(counter_bits)
        counter_map = net.merge(counter, prefix=f"{path}_cnt")
        cnt_enable = counter_map["enable"]
        net.primary_inputs.remove(cnt_enable)
        net._drivers.pop(cnt_enable)
        net.add_cell("BUF", [mapping["sum"]], outputs=[cnt_enable])

    # Sign activation: positive count > negative count.
    greater = "0"
    for i in range(counter_bits):
        (greater,) = net.add_cell(
            "CMP1",
            [f"pos_cnt_count{i}", f"neg_cnt_count{i}", greater],
            outputs=[f"sign_gt{i}"],
        )
    (sign,) = net.add_cell("BUF", [greater], outputs=["sign"])
    net.add_output(sign)

    # Re-export the select inputs of MUX trees under friendlier names is not
    # needed; they are already primary inputs named pos_tree_sel*/neg_tree_sel*.
    return net


# --------------------------------------------------------------------------- #
# binary baseline elements
# --------------------------------------------------------------------------- #
def build_ripple_adder(bits: int) -> Netlist:
    """A ``bits``-wide ripple-carry adder; inputs ``a*``/``b*``, outputs ``s*`` and ``cout``."""
    if bits < 1:
        raise ValueError("adder needs at least one bit")
    net = Netlist(f"ripple_adder_{bits}")
    a = net.add_inputs("a", bits)
    b = net.add_inputs("b", bits)
    carry = "0"
    for i in range(bits):
        s, carry = net.add_cell("FA", [a[i], b[i], carry], outputs=[f"s{i}", f"c{i}"])
        net.add_output(s)
    (cout,) = net.add_cell("BUF", [carry], outputs=["cout"])
    net.add_output(cout)
    return net


def build_array_multiplier(bits: int) -> Netlist:
    """A ``bits x bits`` unsigned array multiplier.

    Inputs ``a*`` and ``b*`` (LSB first); outputs ``p0 .. p{2*bits-1}``.
    Uses the classic carry-save array: an AND gate per partial-product bit and
    a full-adder per reduction cell.
    """
    if bits < 1:
        raise ValueError("multiplier needs at least one bit")
    net = Netlist(f"array_multiplier_{bits}")
    a = net.add_inputs("a", bits)
    b = net.add_inputs("b", bits)

    # Partial products pp[i][j] = a[j] & b[i].
    pp: List[List[str]] = []
    for i in range(bits):
        row = []
        for j in range(bits):
            (p,) = net.add_cell("AND2", [a[j], b[i]], outputs=[f"pp{i}_{j}"])
            row.append(p)
        pp.append(row)

    # Column-wise accumulation with full adders (simple carry-save reduction).
    columns: List[List[str]] = [[] for _ in range(2 * bits)]
    for i in range(bits):
        for j in range(bits):
            columns[i + j].append(pp[i][j])

    outputs: List[str] = []
    carry_over: List[str] = []
    for col in range(2 * bits):
        stack = columns[col] + carry_over
        carry_over = []
        counter = 0
        while len(stack) > 2:
            s, c = net.add_cell(
                "FA", [stack.pop(), stack.pop(), stack.pop()],
                outputs=[f"red{col}_{counter}_s", f"red{col}_{counter}_c"],
            )
            stack.append(s)
            carry_over.append(c)
            counter += 1
        if len(stack) == 2:
            s, c = net.add_cell(
                "HA", [stack.pop(), stack.pop()],
                outputs=[f"fin{col}_s", f"fin{col}_c"],
            )
            stack.append(s)
            carry_over.append(c)
        bit_net = stack[0] if stack else "0"
        (p,) = net.add_cell("BUF", [bit_net], outputs=[f"p{col}"])
        net.add_output(p)
        outputs.append(p)
    return net


def build_binary_mac(bits: int, accumulator_bits: int) -> Netlist:
    """A binary multiply-accumulate unit (the core of the sliding-window engine).

    ``bits x bits`` multiplier followed by an ``accumulator_bits``-wide adder
    and an accumulator register.  Inputs ``a*`` / ``b*``; outputs ``acc*``
    plus the adder's carry out on ``overflow`` (exported so the top-level
    carry is observable -- a dropped carry is exactly the kind of silent
    wiring loss the lint pass flags as a dangling net).
    """
    if accumulator_bits < 2 * bits:
        raise ValueError("accumulator must be at least as wide as the product")
    net = Netlist(f"binary_mac_{bits}")

    multiplier = build_array_multiplier(bits)
    mul_map = net.merge(multiplier, prefix="mul")
    # The multiplier's operands are exposed as the mul_a*/mul_b* inputs.
    product = [mul_map[f"p{i}"] for i in range(2 * bits)]

    # Accumulator register.
    acc = [f"acc{i}" for i in range(accumulator_bits)]

    # Adder: acc + product (product zero-extended).
    carry = "0"
    next_acc: List[str] = []
    for i in range(accumulator_bits):
        addend = product[i] if i < len(product) else "0"
        s, carry = net.add_cell(
            "FA", [acc[i], addend, carry], outputs=[f"sum{i}", f"carry{i}"]
        )
        next_acc.append(s)
    (overflow,) = net.add_cell("BUF", [carry], outputs=["overflow"])
    net.add_output(overflow)
    for i in range(accumulator_bits):
        net.add_cell("DFF", [next_acc[i]], outputs=[acc[i]])
        net.add_output(acc[i])
    return net


def _build_catalog_lfsr() -> Netlist:
    from ..rng.lfsr import MAXIMAL_TAPS

    return build_lfsr(8, MAXIMAL_TAPS[8])


def _build_catalog_sng() -> Netlist:
    from ..rng.lfsr import MAXIMAL_TAPS

    return build_sng(8, MAXIMAL_TAPS[8])


#: Representative parameterization of every public builder: one entry per
#: builder, at (or near) the geometry the Table 3 hardware models use, so
#: the ``python -m repro lint`` CI gate and the lint-clean differential
#: tests exercise the same netlists the paper's numbers are derived from.
#: (The LFSR-based entries defer their tap-table import so this module does
#: not depend on :mod:`repro.rng` at import time.)
BUILDER_CATALOG: Dict[str, Callable[[], Netlist]] = {
    "and_multiplier": build_and_multiplier,
    "mux_adder": build_mux_adder,
    "tff_adder": build_tff_adder,
    "adder_tree_tff": lambda: build_adder_tree(25, adder="tff"),
    "adder_tree_mux": lambda: build_adder_tree(25, adder="mux"),
    "counter": lambda: build_counter(9),
    "comparator": lambda: build_comparator(9),
    "lfsr": _build_catalog_lfsr,
    "sng": _build_catalog_sng,
    "sc_dot_product_tff": lambda: build_sc_dot_product(25, 9, adder="tff"),
    "sc_dot_product_mux": lambda: build_sc_dot_product(25, 9, adder="mux"),
    "ripple_adder": lambda: build_ripple_adder(8),
    "array_multiplier": lambda: build_array_multiplier(8),
    "binary_mac": lambda: build_binary_mac(8, 21),
}
