"""A 65 nm-like standard-cell library.

The paper synthesizes its designs with Synopsys Design Compiler / IC Compiler
against a 65 nm TSMC library and measures power with PrimeTime.  That flow is
proprietary, so this module provides the substitution documented in
DESIGN.md: a small standard-cell library whose per-cell area, switching
energy and leakage are representative of a commercial 65 nm process
(normalized to a NAND2-equivalent area of 1.44 um^2 and a switching energy of
a few femtojoules per output toggle at nominal voltage).

Absolute numbers from this library are *calibrated, not signed off*; what the
reproduction relies on is that relative costs between cells (a full adder is
~5x a NAND2, a flip-flop ~3.5x, ...) are realistic, because Table 3's trends
are driven by gate counts, cycle counts and activity, not by the exact
technology constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from ..bitstream.packed import packed_delay, packed_toggle_states

__all__ = ["Cell", "CELL_LIBRARY", "cell", "nand2_equivalents"]


#: Area of a NAND2 gate in this 65 nm-like library, in square micrometres.
NAND2_AREA_UM2 = 1.44

#: Dynamic energy per output toggle of a NAND2 driving a typical load, in fJ.
NAND2_TOGGLE_ENERGY_FJ = 1.2

#: Leakage power of a NAND2, in nW.
NAND2_LEAKAGE_NW = 1.5


@dataclass(frozen=True)
class Cell:
    """One standard-cell type.

    Parameters
    ----------
    name:
        Library name, e.g. ``"NAND2"``.
    inputs:
        Ordered input pin names.
    outputs:
        Ordered output pin names (flip-flops expose ``Q``).
    area_um2:
        Placed cell area in um^2.
    toggle_energy_fj:
        Dynamic energy per *output* toggle (internal + load), femtojoules.
    leakage_nw:
        Static leakage power, nanowatts.
    sequential:
        True for state-holding cells (evaluated at the clock edge).
    logic:
        For combinational cells: a function mapping input bit tuple to the
        output bit tuple.  For sequential cells: a function mapping
        ``(state, inputs)`` to ``(new_state, outputs)``.
    word_logic:
        The word-parallel counterpart used by the packed simulator backend.
        For combinational cells: ``word_logic(inputs, ones)`` maps a tuple of
        packed uint64 waveform arrays (the whole simulation, 64 cycles per
        word) to the output waveform tuple; ``ones`` is the all-ones waveform
        (tail-masked) so inverting gates can complement without leaking bits
        past the stream length.  Combinational ``word_logic`` must be
        *positionwise* (pure bitwise logic, no shifts across positions) --
        zero-delay combinational cells have no time dependence, and the
        batched simulator reuses the same functions with the *trace* axis
        packed into the word positions.  For sequential cells:
        ``word_logic(inputs, n_bits, initial_state)`` returns the full Q
        waveform(s) in closed form (DFF: one-cycle delay, TFF: prefix-parity
        scan).  Implementations must keep words on the *last* axis and
        broadcast over any leading axes: batched multi-trace simulation
        (:func:`repro.netlist.simulator.simulate_batch`) passes waveform
        arrays of shape ``(traces, words)`` mixed with shared ``(words,)``
        arrays through the very same functions.  ``None`` means the cell has
        no packed fast path and forces the cycle-loop backend.
    word_step:
        Sequential cells only: the word-parallel *single-cycle* transition
        ``word_step(state, inputs) -> (new_state, outputs)``, where ``state``
        and each input are uint64 word arrays holding one bit per packed
        lane.  This is the kernel the batched simulator uses to iterate a
        register feedback core over all stimulus traces at once (the trace
        axis packed 64-per-word); it must mirror ``logic`` exactly,
        positionwise.  ``None`` makes batched feedback-core resolution fall
        back to one per-trace iteration per stimulus set.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    area_um2: float
    toggle_energy_fj: float
    leakage_nw: float
    sequential: bool = False
    logic: Callable = field(default=None, repr=False, compare=False)
    word_logic: Callable = field(default=None, repr=False, compare=False)
    word_step: Callable = field(default=None, repr=False, compare=False)

    @property
    def gate_equivalents(self) -> float:
        """Cell complexity in NAND2-area equivalents."""
        return self.area_um2 / NAND2_AREA_UM2


def _comb(fn: Callable[..., int]) -> Callable:
    """Wrap a scalar boolean function into the tuple-based logic interface."""

    def logic(inputs: Tuple[int, ...]) -> Tuple[int, ...]:
        return (fn(*inputs) & 1,)

    return logic


def _full_adder(a: int, b: int, cin: int) -> Tuple[int, int]:
    total = a + b + cin
    return total & 1, (total >> 1) & 1


def _fa_logic(inputs: Tuple[int, ...]) -> Tuple[int, ...]:
    s, c = _full_adder(*inputs)
    return (s, c)


def _ha_logic(inputs: Tuple[int, ...]) -> Tuple[int, ...]:
    a, b = inputs
    return (a ^ b, a & b)


def _dff_logic(state: int, inputs: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
    (d,) = inputs
    return d & 1, (state & 1,)


def _tff_logic(state: int, inputs: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
    (t,) = inputs
    new_state = state ^ (t & 1)
    return new_state, (state & 1,)


# --------------------------------------------------------------------------- #
# word-parallel logic (packed simulator backend)
# --------------------------------------------------------------------------- #
def _wcomb(fn):
    """Wrap a word function ``fn(*inputs, ones)`` into the tuple interface."""

    def word_logic(inputs, ones):
        return (fn(*inputs, ones),)

    return word_logic


def _w_fa(inputs, ones):
    a, b, cin = inputs
    half = a ^ b
    return (half ^ cin, (a & b) | (cin & half))


def _w_ha(inputs, ones):
    a, b = inputs
    return (a ^ b, a & b)


def _w_cmp1(a, b, gin, ones):
    # a > b this bit, or equal here and greater below.
    return (a & (b ^ ones)) | ((a ^ b ^ ones) & gin)


def _w_dff(inputs, n_bits, initial_state):
    (d,) = inputs
    return (packed_delay(d, n_bits, fill=initial_state),)


def _w_tff(inputs, n_bits, initial_state):
    (t,) = inputs
    return (packed_toggle_states(t, n_bits, initial_state),)


def _s_dff(state, inputs):
    (d,) = inputs
    return d, (state,)


def _s_tff(state, inputs):
    (t,) = inputs
    return state ^ t, (state,)


#: The cell library.  Areas and energies are scaled from the NAND2 reference
#: using typical relative sizes of a 65 nm commercial library.
CELL_LIBRARY: Dict[str, Cell] = {
    "INV": Cell(
        "INV", ("A",), ("Y",), 0.72, 0.6, 0.8,
        logic=_comb(lambda a: 1 - a),
        word_logic=_wcomb(lambda a, ones: a ^ ones),
    ),
    "BUF": Cell(
        "BUF", ("A",), ("Y",), 1.08, 0.9, 1.0,
        logic=_comb(lambda a: a),
        word_logic=_wcomb(lambda a, ones: a),
    ),
    "NAND2": Cell(
        "NAND2",
        ("A", "B"),
        ("Y",),
        NAND2_AREA_UM2,
        NAND2_TOGGLE_ENERGY_FJ,
        NAND2_LEAKAGE_NW,
        logic=_comb(lambda a, b: 1 - (a & b)),
        word_logic=_wcomb(lambda a, b, ones: (a & b) ^ ones),
    ),
    "NOR2": Cell(
        "NOR2", ("A", "B"), ("Y",), 1.44, 1.2, 1.5,
        logic=_comb(lambda a, b: 1 - (a | b)),
        word_logic=_wcomb(lambda a, b, ones: (a | b) ^ ones),
    ),
    "AND2": Cell(
        "AND2", ("A", "B"), ("Y",), 1.80, 1.5, 1.8,
        logic=_comb(lambda a, b: a & b),
        word_logic=_wcomb(lambda a, b, ones: a & b),
    ),
    "OR2": Cell(
        "OR2", ("A", "B"), ("Y",), 1.80, 1.5, 1.8,
        logic=_comb(lambda a, b: a | b),
        word_logic=_wcomb(lambda a, b, ones: a | b),
    ),
    "XOR2": Cell(
        "XOR2", ("A", "B"), ("Y",), 2.88, 2.4, 2.6,
        logic=_comb(lambda a, b: a ^ b),
        word_logic=_wcomb(lambda a, b, ones: a ^ b),
    ),
    "XNOR2": Cell(
        "XNOR2",
        ("A", "B"),
        ("Y",),
        2.88,
        2.4,
        2.6,
        logic=_comb(lambda a, b: 1 - (a ^ b)),
        word_logic=_wcomb(lambda a, b, ones: a ^ b ^ ones),
    ),
    "MUX2": Cell(
        "MUX2",
        ("A", "B", "S"),
        ("Y",),
        2.88,
        2.2,
        2.5,
        logic=_comb(lambda a, b, s: b if s else a),
        word_logic=_wcomb(lambda a, b, s, ones: (b & s) | (a & (s ^ ones))),
    ),
    "HA": Cell(
        "HA", ("A", "B"), ("S", "C"), 3.60, 3.0, 3.2,
        logic=_ha_logic, word_logic=_w_ha,
    ),
    "FA": Cell(
        "FA", ("A", "B", "CIN"), ("S", "C"), 7.20, 5.5, 5.5,
        logic=_fa_logic, word_logic=_w_fa,
    ),
    "CMP1": Cell(
        # one bit-slice of a magnitude comparator (roughly an XOR + AOI)
        "CMP1",
        ("A", "B", "GIN"),
        ("GOUT",),
        4.32,
        3.2,
        3.5,
        logic=_comb(lambda a, b, gin: 1 if a > b else (gin if a == b else 0)),
        word_logic=_wcomb(_w_cmp1),
    ),
    "DFF": Cell(
        "DFF", ("D",), ("Q",), 5.04, 4.0, 4.5, sequential=True,
        logic=_dff_logic, word_logic=_w_dff, word_step=_s_dff,
    ),
    "TFF": Cell(
        "TFF", ("T",), ("Q",), 5.76, 4.5, 5.0, sequential=True,
        logic=_tff_logic, word_logic=_w_tff, word_step=_s_tff,
    ),
}


def cell(name: str) -> Cell:
    """Look up a cell type by name."""
    try:
        return CELL_LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; available: {sorted(CELL_LIBRARY)}"
        ) from None


def nand2_equivalents(area_um2: float) -> float:
    """Convert an area in um^2 into NAND2-gate equivalents."""
    return area_um2 / NAND2_AREA_UM2
