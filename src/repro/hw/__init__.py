"""Hardware cost models for the Table 3 power / energy / area evaluation."""

from .binary_engine import BinaryEngineModel, BinaryEngineReport
from .comparison import (
    PAPER_TABLE3_REFERENCE,
    HardwareComparison,
    HardwareComparisonRow,
)
from .stochastic_engine import StochasticEngineModel, StochasticEngineReport
from .technology import (
    DEFAULT_GEOMETRY,
    DEFAULT_TECH,
    SystemGeometry,
    TechnologyParameters,
)

__all__ = [
    "SystemGeometry",
    "TechnologyParameters",
    "DEFAULT_GEOMETRY",
    "DEFAULT_TECH",
    "StochasticEngineModel",
    "StochasticEngineReport",
    "BinaryEngineModel",
    "BinaryEngineReport",
    "HardwareComparison",
    "HardwareComparisonRow",
    "PAPER_TABLE3_REFERENCE",
]
