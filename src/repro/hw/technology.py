"""Technology and system-level constants for the hardware evaluation.

The paper synthesizes both convolution engines in a 65 nm TSMC process and
reports *throughput-normalized* power: the binary design is charged the
power it would draw when clocked fast enough to match the stochastic
design's frame rate (Section VI).  The constants here define that comparison
fixture:

* the geometry of the first LeNet-5 layer (Fig. 3): 784 output positions,
  5x5 kernels, 32 kernels;
* the parallelism of the two engines: the stochastic array instantiates one
  dot-product engine per output position and iterates over kernels, the
  binary baseline instantiates one MAC per kernel and slides over windows;
* the stochastic core clock (asynchronous output counters let it run fast);
* the placement utilization and net-wiring overhead applied when converting
  summed cell area to die area.

Absolute calibration is inherited from the 65 nm-like standard-cell library
(:mod:`repro.netlist.cells`); DESIGN.md describes why the Table 3 *trends*
do not depend on these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemGeometry", "TechnologyParameters", "DEFAULT_GEOMETRY", "DEFAULT_TECH"]


@dataclass(frozen=True)
class SystemGeometry:
    """First-layer geometry shared by both engine models."""

    #: Number of convolution output positions per image (28x28, "same" padding).
    windows: int = 784
    #: Taps per kernel (5x5).
    taps: int = 25
    #: Number of first-layer kernels.
    kernels: int = 32
    #: Image pixel count (28x28).
    pixels: int = 784

    @property
    def macs_per_frame(self) -> int:
        """Multiply-accumulate operations needed per frame."""
        return self.windows * self.taps * self.kernels


@dataclass(frozen=True)
class TechnologyParameters:
    """Clocking, activity and physical-design assumptions."""

    #: Stochastic core clock in MHz (fast thanks to the tiny logic depth and
    #: asynchronous counters).  500 MHz reproduces the paper's 8-bit frame
    #: time of ~16 us (543 nJ at 33 mW), so the energy anchor is consistent
    #: with the power anchor.
    sc_clock_mhz: float = 500.0
    #: Reference binary clock in MHz (only used for non-normalized reporting).
    binary_clock_mhz: float = 500.0
    #: Average switching activity of the stochastic datapath (bit-streams have
    #: densities spread over [0, 1], so nets toggle often).
    sc_activity: float = 0.25
    #: Average switching activity of the binary datapath.
    binary_activity: float = 0.18
    #: Placement utilization (cell area / core area).
    utilization: float = 0.75
    #: Multiplier covering clock tree, wiring capacitance and glue logic that
    #: a gate-count model cannot see.
    wiring_overhead: float = 1.25

    def __post_init__(self) -> None:
        if self.sc_clock_mhz <= 0 or self.binary_clock_mhz <= 0:
            raise ValueError("clock frequencies must be positive")
        if not 0 < self.utilization <= 1:
            raise ValueError("utilization must lie in (0, 1]")
        if self.wiring_overhead < 1.0:
            raise ValueError("wiring_overhead must be >= 1")
        if not 0 <= self.sc_activity <= 1 or not 0 <= self.binary_activity <= 1:
            raise ValueError("activities must lie in [0, 1]")


#: Default geometry matching the paper's Fig. 3.
DEFAULT_GEOMETRY = SystemGeometry()

#: Default technology assumptions.
DEFAULT_TECH = TechnologyParameters()
