"""Throughput-normalized comparison of the two convolution engines (Table 3).

For every precision point the comparison

1. builds the stochastic engine model and takes its frame rate as the target
   throughput;
2. clocks the binary engine model fast enough to match that throughput
   (the paper's throughput normalization);
3. reports power, energy per frame and area for both designs.

Because this reproduction replaces the Synopsys sign-off flow with a
gate-count cost model (see DESIGN.md), the absolute scale of each engine can
optionally be *anchored* to the paper's published 8-bit synthesis results via
``calibrate=True``: a single multiplicative factor per engine is chosen so
the 8-bit power matches Table 3, and every other precision then follows from
the structural model.  Uncalibrated (raw model) numbers are always available
with ``calibrate=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from .binary_engine import BinaryEngineModel
from .stochastic_engine import StochasticEngineModel
from .technology import DEFAULT_GEOMETRY, DEFAULT_TECH, SystemGeometry, TechnologyParameters

__all__ = [
    "PAPER_TABLE3_REFERENCE",
    "HardwareComparisonRow",
    "HardwareComparison",
]


#: The paper's published Table 3 hardware rows (power in mW, energy in
#: nJ/frame, area in mm^2), used for anchoring and for the EXPERIMENTS.md
#: paper-vs-measured comparison.
PAPER_TABLE3_REFERENCE: Dict[str, Dict[int, float]] = {
    "binary_power_mw": {8: 40.95, 7: 72.80, 6: 121.52, 5: 204.96, 4: 325.36, 3: 501.76, 2: 683.20},
    "sc_power_mw": {8: 33.17, 7: 33.55, 6: 33.26, 5: 33.01, 4: 33.20, 3: 29.96, 2: 28.35},
    "binary_energy_nj": {8: 670.92, 7: 596.38, 6: 497.74, 5: 419.76, 4: 333.17, 3: 256.90, 2: 174.90},
    "sc_energy_nj": {8: 543.42, 7: 274.82, 6: 136.22, 5: 67.60, 4: 34.00, 3: 15.34, 2: 7.26},
    "binary_area_mm2": {8: 1.313, 7: 1.094, 6: 0.891, 5: 0.710, 4: 0.543, 3: 0.391, 2: 0.255},
    "sc_area_mm2": {8: 1.321, 7: 1.282, 6: 1.240, 5: 1.200, 4: 1.166, 3: 1.110, 2: 1.057},
}


@dataclass
class HardwareComparisonRow:
    """One precision column of the Table 3 hardware section."""

    precision: int
    binary_power_mw: float
    sc_power_mw: float
    binary_energy_nj: float
    sc_energy_nj: float
    binary_area_mm2: float
    sc_area_mm2: float
    matched_binary_clock_mhz: float
    sc_throughput_fps: float

    @property
    def energy_efficiency_ratio(self) -> float:
        """How many times less energy per frame the stochastic design uses."""
        return self.binary_energy_nj / self.sc_energy_nj

    @property
    def power_ratio(self) -> float:
        """Throughput-normalized power advantage of the stochastic design."""
        return self.binary_power_mw / self.sc_power_mw

    @property
    def area_ratio(self) -> float:
        """Area of the stochastic design relative to the binary design."""
        return self.sc_area_mm2 / self.binary_area_mm2


class HardwareComparison:
    """Builds the hardware half of Table 3 for a set of precisions."""

    #: Precision at which calibration factors are anchored.
    ANCHOR_PRECISION = 8

    def __init__(
        self,
        geometry: SystemGeometry = DEFAULT_GEOMETRY,
        tech: TechnologyParameters = DEFAULT_TECH,
        calibrate: bool = True,
        sc_activity: Union[float, Mapping[int, float], None] = None,
    ) -> None:
        self.geometry = geometry
        self.tech = tech
        self.calibrate = bool(calibrate)
        #: Switching activity of the stochastic engine (toggles/cycle/net).
        #: ``None`` uses the technology default; the Table 3 harness can pass
        #: a value measured by batched trace-driven netlist simulation --
        #: either one float applied to every row, or a ``{precision:
        #: activity}`` mapping so each precision column uses the activity
        #: measured at its own stream length (precisions missing from the
        #: mapping fall back to the technology default).  The calibration
        #: anchor is always computed with the technology default (the paper's
        #: synthesis flow knew nothing of our measurement), so a measured
        #: activity genuinely shifts the calibrated rows instead of dividing
        #: back out of the anchoring factors.
        self.sc_activity = sc_activity
        self._factors = self._calibration_factors() if calibrate else {
            "binary_power": 1.0,
            "sc_power": 1.0,
            "binary_area": 1.0,
            "sc_area": 1.0,
        }

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def _raw_row(
        self, precision: int, sc_activity: Optional[float] = None
    ) -> HardwareComparisonRow:
        sc = StochasticEngineModel(precision, self.geometry, self.tech)
        binary = BinaryEngineModel(precision, self.geometry, self.tech)
        target_fps = sc.throughput_fps()
        matched_clock = binary.matched_frequency_mhz(target_fps)
        return HardwareComparisonRow(
            precision=precision,
            binary_power_mw=binary.power_mw(matched_clock),
            sc_power_mw=sc.power_mw(sc_activity),
            binary_energy_nj=binary.energy_per_frame_nj(matched_clock),
            sc_energy_nj=sc.energy_per_frame_nj(sc_activity),
            binary_area_mm2=binary.area_mm2(),
            sc_area_mm2=sc.area_mm2(),
            matched_binary_clock_mhz=matched_clock,
            sc_throughput_fps=target_fps,
        )

    def _calibration_factors(self) -> Dict[str, float]:
        anchor = self._raw_row(self.ANCHOR_PRECISION)
        reference = PAPER_TABLE3_REFERENCE
        p = self.ANCHOR_PRECISION
        return {
            "binary_power": reference["binary_power_mw"][p] / anchor.binary_power_mw,
            "sc_power": reference["sc_power_mw"][p] / anchor.sc_power_mw,
            "binary_area": reference["binary_area_mm2"][p] / anchor.binary_area_mm2,
            "sc_area": reference["sc_area_mm2"][p] / anchor.sc_area_mm2,
        }

    @property
    def calibration_factors(self) -> Dict[str, float]:
        """The multiplicative anchoring factors currently in effect."""
        return dict(self._factors)

    # ------------------------------------------------------------------ #
    # table generation
    # ------------------------------------------------------------------ #
    def sc_activity_at(self, precision: int) -> Optional[float]:
        """The stochastic-engine activity used for one precision column."""
        if isinstance(self.sc_activity, Mapping):
            return self.sc_activity.get(precision)
        return self.sc_activity

    def row(self, precision: int) -> HardwareComparisonRow:
        """One calibrated (or raw) comparison row."""
        raw = self._raw_row(precision, self.sc_activity_at(precision))
        f = self._factors
        return HardwareComparisonRow(
            precision=precision,
            binary_power_mw=raw.binary_power_mw * f["binary_power"],
            sc_power_mw=raw.sc_power_mw * f["sc_power"],
            binary_energy_nj=raw.binary_energy_nj * f["binary_power"],
            sc_energy_nj=raw.sc_energy_nj * f["sc_power"],
            binary_area_mm2=raw.binary_area_mm2 * f["binary_area"],
            sc_area_mm2=raw.sc_area_mm2 * f["sc_area"],
            matched_binary_clock_mhz=raw.matched_binary_clock_mhz,
            sc_throughput_fps=raw.sc_throughput_fps,
        )

    def rows(self, precisions: Sequence[int] = (8, 7, 6, 5, 4, 3, 2)) -> List[HardwareComparisonRow]:
        """Comparison rows for every requested precision."""
        return [self.row(p) for p in precisions]

    def break_even_precision(self, precisions: Sequence[int] = (8, 7, 6, 5, 4, 3, 2)) -> int:
        """Highest precision at which the stochastic design is at least as energy efficient."""
        efficient = [
            row.precision
            for row in self.rows(precisions)
            if row.energy_efficiency_ratio >= 1.0
        ]
        if not efficient:
            raise ValueError("stochastic design never breaks even in the given range")
        return max(efficient)
