"""Cost model of the stochastic convolution engine array (Table 3, "This Work").

The stochastic design instantiates one dot-product engine per output
position (784 of them), shares a bank of weight SNGs across all engines, and
iterates over the 32 kernels; each kernel evaluation takes one bit-stream
length (``2**precision`` cycles).  Precision therefore changes the *run
time* exponentially while leaving the logic almost untouched -- exactly the
behaviour the paper reports (near-constant power and area, exponentially
shrinking energy per frame).

Area, power and energy are derived from the gate-level netlists of
:mod:`repro.netlist.circuits` using the 65 nm-like cell library.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from ..netlist import (
    Netlist,
    build_sc_dot_product,
    build_sng,
    estimate_power,
)
from ..rng.lfsr import MAXIMAL_TAPS
from .technology import DEFAULT_GEOMETRY, DEFAULT_TECH, SystemGeometry, TechnologyParameters

__all__ = ["StochasticEngineReport", "StochasticEngineModel"]


@dataclass
class StochasticEngineReport:
    """Roll-up of one precision point of the stochastic engine."""

    precision: int
    area_mm2: float
    power_mw: float
    cycles_per_frame: int
    frame_time_us: float
    energy_per_frame_nj: float
    throughput_fps: float


class StochasticEngineModel:
    """Area / power / energy model of the full stochastic convolution array."""

    def __init__(
        self,
        precision: int,
        geometry: SystemGeometry = DEFAULT_GEOMETRY,
        tech: TechnologyParameters = DEFAULT_TECH,
        adder: str = "tff",
    ) -> None:
        if precision < 2:
            raise ValueError("precision must be at least 2 bits")
        self.precision = int(precision)
        self.geometry = geometry
        self.tech = tech
        self.adder = adder
        # Counter width: enough for the tree output over one stream length.
        self.counter_bits = self.precision + 1

    # ------------------------------------------------------------------ #
    # netlists
    # ------------------------------------------------------------------ #
    @lru_cache(maxsize=None)
    def unit_netlist(self) -> Netlist:
        """Netlist of one stochastic dot-product engine."""
        return build_sc_dot_product(
            self.geometry.taps, self.counter_bits, adder=self.adder
        )

    @lru_cache(maxsize=None)
    def sng_bank_netlist(self) -> Netlist:
        """Netlist of one weight SNG (the bank holds two per tap, shared by all units)."""
        taps = MAXIMAL_TAPS.get(self.precision, MAXIMAL_TAPS[8])
        return build_sng(self.precision, taps)

    @property
    def sng_count(self) -> int:
        """Weight SNGs in the shared bank: positive and negative stream per tap."""
        return 2 * self.geometry.taps

    # ------------------------------------------------------------------ #
    # roll-ups
    # ------------------------------------------------------------------ #
    def area_mm2(self) -> float:
        """Die area of the array plus the shared SNG bank, in mm^2."""
        unit_area = self.unit_netlist().total_area_um2()
        sng_area = self.sng_bank_netlist().total_area_um2() * self.sng_count
        total_um2 = (
            unit_area * self.geometry.windows + sng_area
        ) * self.tech.wiring_overhead
        return total_um2 / self.tech.utilization / 1e6

    def power_mw(self, activity: Optional[float] = None) -> float:
        """Total power of the array at the stochastic core clock, in mW."""
        activity = activity if activity is not None else self.tech.sc_activity
        unit_report = estimate_power(
            self.unit_netlist(), self.tech.sc_clock_mhz, activity=activity
        )
        sng_report = estimate_power(
            self.sng_bank_netlist(), self.tech.sc_clock_mhz, activity=activity
        )
        total = (
            unit_report.total_mw * self.geometry.windows
            + sng_report.total_mw * self.sng_count
        )
        return total * self.tech.wiring_overhead

    def cycles_per_frame(self) -> int:
        """Clock cycles needed per frame: one stream length per kernel."""
        return self.geometry.kernels * (1 << self.precision)

    def frame_time_us(self) -> float:
        """Time to process one frame, in microseconds."""
        return self.cycles_per_frame() / self.tech.sc_clock_mhz

    def throughput_fps(self) -> float:
        """Frames per second at the stochastic core clock."""
        return 1e6 / self.frame_time_us()

    def energy_per_frame_nj(self, activity: Optional[float] = None) -> float:
        """Energy per frame in nJ (power x frame time)."""
        return self.power_mw(activity) * self.frame_time_us() * 1e-3 * 1e3

    def report(self) -> StochasticEngineReport:
        """Full roll-up at this precision."""
        return StochasticEngineReport(
            precision=self.precision,
            area_mm2=self.area_mm2(),
            power_mw=self.power_mw(),
            cycles_per_frame=self.cycles_per_frame(),
            frame_time_us=self.frame_time_us(),
            energy_per_frame_nj=self.energy_per_frame_nj(),
            throughput_fps=self.throughput_fps(),
        )
