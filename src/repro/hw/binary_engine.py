"""Cost model of the binary sliding-window convolution engine (Table 3, "Binary").

The baseline design follows the paper's reference [23]: a conventional
sliding-window convolution engine with one multiply-accumulate (MAC) unit per
kernel, a per-unit window/weight register file, and a ``precision``-bit
datapath.  Unlike the stochastic engine, lowering the precision *narrows the
datapath* (linear-to-quadratic area and energy savings) but does not change
the cycle count, so the binary engine must be clocked exponentially faster to
match the stochastic engine's frame rate -- the root of the
throughput-normalized power blow-up in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from ..netlist import Netlist, build_binary_mac, estimate_power
from .technology import DEFAULT_GEOMETRY, DEFAULT_TECH, SystemGeometry, TechnologyParameters

__all__ = ["BinaryEngineReport", "BinaryEngineModel"]


@dataclass
class BinaryEngineReport:
    """Roll-up of one precision point of the binary engine."""

    precision: int
    area_mm2: float
    power_mw: float
    frequency_mhz: float
    cycles_per_frame: int
    frame_time_us: float
    energy_per_frame_nj: float
    throughput_fps: float


class BinaryEngineModel:
    """Area / power / energy model of the binary sliding-window engine."""

    def __init__(
        self,
        precision: int,
        geometry: SystemGeometry = DEFAULT_GEOMETRY,
        tech: TechnologyParameters = DEFAULT_TECH,
    ) -> None:
        if precision < 2:
            raise ValueError("precision must be at least 2 bits")
        self.precision = int(precision)
        self.geometry = geometry
        self.tech = tech
        # Accumulator: product width plus headroom for 25-tap accumulation.
        self.accumulator_bits = 2 * self.precision + 5

    # ------------------------------------------------------------------ #
    # netlists
    # ------------------------------------------------------------------ #
    @lru_cache(maxsize=None)
    def mac_netlist(self) -> Netlist:
        """Netlist of one MAC unit (multiplier + accumulator)."""
        return build_binary_mac(self.precision, self.accumulator_bits)

    @lru_cache(maxsize=None)
    def register_file_netlist(self) -> Netlist:
        """Window and weight registers of one unit (two values per tap)."""
        net = Netlist(f"window_registers_{self.precision}")
        total_bits = 2 * self.geometry.taps * self.precision
        d = net.add_input("d")
        previous = d
        for i in range(total_bits):
            (previous,) = net.add_cell("DFF", [previous], outputs=[f"q{i}"])
        net.add_output(previous)
        return net

    @property
    def unit_count(self) -> int:
        """Parallel MAC units: one per kernel."""
        return self.geometry.kernels

    # ------------------------------------------------------------------ #
    # roll-ups
    # ------------------------------------------------------------------ #
    def area_mm2(self) -> float:
        """Die area of the engine, in mm^2."""
        unit_area = (
            self.mac_netlist().total_area_um2()
            + self.register_file_netlist().total_area_um2()
        )
        total_um2 = unit_area * self.unit_count * self.tech.wiring_overhead
        return total_um2 / self.tech.utilization / 1e6

    def cycles_per_frame(self) -> int:
        """Cycles per frame: one MAC per tap per window (kernels run in parallel)."""
        return self.geometry.windows * self.geometry.taps

    def power_mw(
        self, frequency_mhz: Optional[float] = None, activity: Optional[float] = None
    ) -> float:
        """Total power at the given clock (defaults to the reference binary clock)."""
        frequency_mhz = (
            frequency_mhz if frequency_mhz is not None else self.tech.binary_clock_mhz
        )
        activity = activity if activity is not None else self.tech.binary_activity
        mac = estimate_power(self.mac_netlist(), frequency_mhz, activity=activity)
        # The window registers shift one new pixel per cycle, so only a small
        # fraction of their bits toggle: use a quarter of the datapath activity.
        regs = estimate_power(
            self.register_file_netlist(), frequency_mhz, activity=activity * 0.25
        )
        total = (mac.total_mw + regs.total_mw) * self.unit_count
        return total * self.tech.wiring_overhead

    def matched_frequency_mhz(self, target_fps: float) -> float:
        """Clock needed to sustain ``target_fps`` frames per second."""
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        return self.cycles_per_frame() * target_fps / 1e6

    def frame_time_us(self, frequency_mhz: Optional[float] = None) -> float:
        """Frame processing time at the given clock, in microseconds."""
        frequency_mhz = (
            frequency_mhz if frequency_mhz is not None else self.tech.binary_clock_mhz
        )
        return self.cycles_per_frame() / frequency_mhz

    def energy_per_frame_nj(
        self, frequency_mhz: Optional[float] = None, activity: Optional[float] = None
    ) -> float:
        """Energy per frame in nJ.

        Dynamic energy per frame is frequency-independent (same number of
        toggles per frame); only the leakage contribution depends on how long
        the frame takes, which is why the value barely changes with the clock.
        """
        frequency_mhz = (
            frequency_mhz if frequency_mhz is not None else self.tech.binary_clock_mhz
        )
        power = self.power_mw(frequency_mhz, activity)
        return power * self.frame_time_us(frequency_mhz)

    def report(
        self, target_fps: Optional[float] = None
    ) -> BinaryEngineReport:
        """Full roll-up; ``target_fps`` selects throughput-normalized clocking."""
        if target_fps is not None:
            frequency = self.matched_frequency_mhz(target_fps)
        else:
            frequency = self.tech.binary_clock_mhz
        frame_time = self.frame_time_us(frequency)
        return BinaryEngineReport(
            precision=self.precision,
            area_mm2=self.area_mm2(),
            power_mw=self.power_mw(frequency),
            frequency_mhz=frequency,
            cycles_per_frame=self.cycles_per_frame(),
            frame_time_us=frame_time,
            energy_per_frame_nj=self.energy_per_frame_nj(frequency),
            throughput_fps=1e6 / frame_time,
        )
