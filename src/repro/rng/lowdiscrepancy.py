"""Low-discrepancy number sources.

Alaghi & Hayes ("Fast and accurate computation using stochastic circuits",
DATE 2014 -- reference [4] of the paper) showed that replacing the LFSR of an
SNG with a *low-discrepancy* sequence turns stochastic fluctuation error from
``O(1/sqrt(N))`` into ``O(1/N)``: the ones of the generated stream are spread
as evenly as possible, so every prefix of the stream is a good estimate of
the encoded value.

Two classical constructions are provided:

* :class:`VanDerCorputSource` -- the base-2 van der Corput sequence, i.e. the
  bit-reversed counter.  This is the sequence normally used in hardware
  because bit-reversal of a counter is free (just wire permutation).
* :class:`SobolSource` -- the first dimensions of a Sobol sequence built from
  direction numbers; dimension 0 coincides with van der Corput.  Different
  dimensions provide the mutually uncorrelated sources needed when several
  independent streams must be generated at once (e.g. 25 kernel weights).
* :class:`HaltonSource` -- van der Corput in an arbitrary (prime) base, used
  in ablations.
"""

from __future__ import annotations

import numpy as np

from .sources import NumberSource

__all__ = [
    "bit_reverse",
    "van_der_corput",
    "VanDerCorputSource",
    "SobolSource",
    "HaltonSource",
]


def bit_reverse(values: np.ndarray, bits: int) -> np.ndarray:
    """Reverse the ``bits`` low-order bits of each integer in ``values``."""
    values = np.asarray(values, dtype=np.int64)
    out = np.zeros_like(values)
    for i in range(bits):
        out |= ((values >> i) & 1) << (bits - 1 - i)
    return out


def van_der_corput(length: int, bits: int) -> np.ndarray:
    """First ``length`` points of the base-2 van der Corput sequence.

    Point ``k`` is the bit-reversal of ``k`` (mod ``2**bits``) divided by
    ``2**bits``, giving values in ``[0, 1)`` that fill the unit interval as
    evenly as possible.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    n = 1 << bits
    k = np.arange(length, dtype=np.int64) % n
    return bit_reverse(k, bits).astype(np.float64) / n


class VanDerCorputSource(NumberSource):
    """Base-2 van der Corput (bit-reversed counter) number source.

    ``phase`` offsets the counter start, which is the cheap hardware trick for
    deriving several "different" low-discrepancy sources from one counter.
    """

    def __init__(self, bits: int, phase: int = 0) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.resolution_bits = int(bits)
        self._phase = int(phase) % (1 << bits)

    def sequence(self, length: int) -> np.ndarray:
        n = 1 << self.resolution_bits
        k = (np.arange(length, dtype=np.int64) + self._phase) % n
        return bit_reverse(k, self.resolution_bits).astype(np.float64) / n

    def __repr__(self) -> str:
        return f"VanDerCorputSource(bits={self.resolution_bits}, phase={self._phase})"


# Primitive polynomials (degree, coefficient bits) and initial direction
# numbers for the first 8 Sobol dimensions, from Joe & Kuo's tables.  Entry i
# is (degree s, polynomial coefficients a, initial m values).
_SOBOL_PARAMS = [
    (1, 0, (1,)),
    (2, 1, (1, 3)),
    (3, 1, (1, 3, 1)),
    (3, 2, (1, 1, 1)),
    (4, 1, (1, 1, 3, 3)),
    (4, 4, (1, 3, 5, 13)),
    (5, 2, (1, 1, 5, 5, 17)),
    (5, 4, (1, 1, 5, 5, 5)),
]


def _sobol_direction_numbers(dimension: int, bits: int) -> np.ndarray:
    """Direction numbers ``v_j`` (as integers scaled by 2**bits) for one dimension."""
    if dimension == 0:
        # First Sobol dimension: v_j = 1 / 2**(j+1)  (van der Corput).
        return np.array([1 << (bits - 1 - j) for j in range(bits)], dtype=np.int64)
    s, a, m_init = _SOBOL_PARAMS[dimension]
    m = list(m_init)
    for j in range(s, bits):
        new = m[j - s] ^ (m[j - s] << s)
        for k in range(1, s):
            if (a >> (s - 1 - k)) & 1:
                new ^= m[j - k] << k
        m.append(new)
    return np.array(
        [m[j] << (bits - 1 - j) for j in range(bits)], dtype=np.int64
    )


class SobolSource(NumberSource):
    """One dimension of a Sobol low-discrepancy sequence.

    Dimension 0 equals the van der Corput sequence; higher dimensions provide
    additional sequences that are jointly well distributed, which is what a
    bank of weight SNGs needs.  Up to 8 dimensions are supported, which is
    ample for the paper's circuits (the 25 weight streams of a 5x5 kernel are
    generated from phase-shifted copies, see :mod:`repro.hybrid`).
    """

    def __init__(self, bits: int, dimension: int = 0) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if not 0 <= dimension < len(_SOBOL_PARAMS):
            raise ValueError(
                f"dimension must be in [0, {len(_SOBOL_PARAMS) - 1}], got {dimension}"
            )
        self.resolution_bits = int(bits)
        self.dimension = int(dimension)
        self._directions = _sobol_direction_numbers(dimension, bits)

    def sequence(self, length: int) -> np.ndarray:
        n = 1 << self.resolution_bits
        out = np.empty(length, dtype=np.float64)
        x = 0
        for i in range(length):
            out[i] = x / n
            # Gray-code construction: flip the direction of the lowest zero bit of i.
            c = 0
            value = i
            while value & 1:
                value >>= 1
                c += 1
            if c < self.resolution_bits:
                x ^= int(self._directions[c])
            else:  # sequence wrapped past its native resolution; restart
                x = 0
        return out

    def __repr__(self) -> str:
        return f"SobolSource(bits={self.resolution_bits}, dimension={self.dimension})"


class HaltonSource(NumberSource):
    """Van der Corput sequence in an arbitrary base (Halton's construction)."""

    def __init__(self, bits: int, base: int = 2) -> None:
        if base < 2:
            raise ValueError("base must be >= 2")
        self.resolution_bits = int(bits)
        self.base = int(base)

    def sequence(self, length: int) -> np.ndarray:
        out = np.empty(length, dtype=np.float64)
        for i in range(length):
            f = 1.0
            r = 0.0
            k = i
            while k > 0:
                f /= self.base
                r += f * (k % self.base)
                k //= self.base
            out[i] = r
        return out

    def __repr__(self) -> str:
        return f"HaltonSource(bits={self.resolution_bits}, base={self.base})"
