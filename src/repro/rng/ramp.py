"""Ramp sources and the ramp-compare analog-to-stochastic converter.

The paper's signal-acquisition front end (Section IV-A) reuses the comparator
and ramp generator of a ramp-compare ADC: the analog pixel value is compared
against a rising ramp, and the comparator output *is* the stochastic
bit-stream.  The resulting stream is

* exact -- the ones-count equals the quantized pixel value, with no
  stochastic fluctuation at all (which is why the "ramp-compare + [4]" row of
  Table 1 has the lowest MSE); and
* heavily auto-correlated -- all the ones appear as one contiguous run.
  Conventional sequential SC circuits break under such auto-correlation, but
  the paper's TFF adder is insensitive to it, which is precisely what makes
  the hybrid design possible.

Because this repository has no physical sensor, the converter operates on
digital pixel values normalized to ``[0, 1]``; the *structure* of the emitted
bit-stream (exact counts, maximal auto-correlation) is identical to what the
analog front end would produce, which is all the downstream computation sees.
"""

from __future__ import annotations

import numpy as np

from ..bitstream.packed import pack_comparator_output
from .sources import NumberSource

__all__ = [
    "RampSource",
    "ramp_compare_stream",
    "ramp_compare_batch",
    "ramp_compare_packed",
]


class RampSource(NumberSource):
    """A monotonically rising ramp ``0/N, 1/N, ..., (N-1)/N`` repeated cyclically.

    Used as the comparator reference of the ramp-compare converter and as the
    "ramp-compare" number source of Table 1.  ``descending=True`` yields the
    falling-ramp variant (identical statistics, reversed run placement).
    """

    def __init__(self, bits: int, descending: bool = False) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.resolution_bits = int(bits)
        self.descending = bool(descending)

    def sequence(self, length: int) -> np.ndarray:
        n = 1 << self.resolution_bits
        k = np.arange(length, dtype=np.int64) % n
        if self.descending:
            k = n - 1 - k
        return k.astype(np.float64) / n

    def __repr__(self) -> str:
        return (
            f"RampSource(bits={self.resolution_bits}, descending={self.descending})"
        )


def ramp_compare_stream(
    value: float, length: int, descending: bool = False
) -> np.ndarray:
    """Convert one normalized analog sample to a stochastic bit-stream.

    The comparator emits ``1`` while the ramp is below ``value``; over one
    ramp period of ``length`` steps this produces exactly
    ``floor(value * length)`` ones (clipped to ``[0, length]``), arranged as a
    single run -- the signature auto-correlated pattern of ramp conversion.

    Parameters
    ----------
    value:
        The sample, expected in ``[0, 1]`` (values outside are clipped).
    length:
        Bit-stream length; one full ramp period.
    descending:
        Use a falling ramp, which places the run of ones at the end.
    """
    ramp = RampSource(_bits_for_length(length), descending=descending).sequence(length)
    v = float(np.clip(value, 0.0, 1.0))
    return (ramp < v).astype(np.uint8)


def _clipped_values_and_ramp(values, length: int, descending: bool):
    """The shared comparator operands: clipped samples and the ramp sequence.

    Single definition keeps the packed and unpacked converters bit-identical
    by construction.
    """
    values = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
    ramp = RampSource(_bits_for_length(length), descending=descending).sequence(length)
    return values, ramp


def ramp_compare_batch(
    values: np.ndarray, length: int, descending: bool = False
) -> np.ndarray:
    """Vectorized :func:`ramp_compare_stream` over an array of samples.

    Returns an array of shape ``values.shape + (length,)`` with dtype uint8.
    This is the fast path used by the hybrid first layer, where every pixel of
    a 28x28 image is converted in parallel.
    """
    values, ramp = _clipped_values_and_ramp(values, length, descending)
    return (ramp[np.newaxis, ...] < values[..., np.newaxis]).astype(np.uint8)


def ramp_compare_packed(
    values: np.ndarray, length: int, descending: bool = False
) -> np.ndarray:
    """:func:`ramp_compare_batch` emitting packed uint64 words directly.

    Returns words of shape ``values.shape + (ceil(length / 64),)`` holding the
    same bits as the unpacked variant; the comparator output is packed in
    chunks so the transient byte array stays small for large pixel batches.
    """
    values, ramp = _clipped_values_and_ramp(values, length, descending)
    return pack_comparator_output(ramp, values)


def _bits_for_length(length: int) -> int:
    if length < 2 or (length & (length - 1)) != 0:
        raise ValueError(f"stream length must be a power of two >= 2, got {length}")
    return int(length).bit_length() - 1
