"""Number sources and stochastic number generators (SNGs)."""

from .lfsr import (
    ALTERNATE_TAPS,
    LFSR,
    LFSRSource,
    MAXIMAL_TAPS,
    RotatedLFSRSource,
    ShiftedLFSRSource,
)
from .lowdiscrepancy import (
    HaltonSource,
    SobolSource,
    VanDerCorputSource,
    bit_reverse,
    van_der_corput,
)
from .ramp import (
    RampSource,
    ramp_compare_batch,
    ramp_compare_packed,
    ramp_compare_stream,
)
from .sng import TABLE1_SCHEMES, ComparatorSNG, RampCompareSNG, sng_pair
from .sources import ConstantSource, CounterSource, NumberSource, PseudoRandomSource

__all__ = [
    "NumberSource",
    "PseudoRandomSource",
    "CounterSource",
    "ConstantSource",
    "LFSR",
    "LFSRSource",
    "ShiftedLFSRSource",
    "RotatedLFSRSource",
    "MAXIMAL_TAPS",
    "ALTERNATE_TAPS",
    "VanDerCorputSource",
    "SobolSource",
    "HaltonSource",
    "bit_reverse",
    "van_der_corput",
    "RampSource",
    "ramp_compare_stream",
    "ramp_compare_batch",
    "ramp_compare_packed",
    "ComparatorSNG",
    "RampCompareSNG",
    "sng_pair",
    "TABLE1_SCHEMES",
]
