"""Number-source abstractions for stochastic number generation.

A comparator-based stochastic number generator (SNG, Fig. 1c of the paper)
pairs a *number source* with a comparator: at every clock cycle the source
emits a value ``r`` in ``[0, 1)`` and the SNG outputs ``1`` when ``r`` is
below the target probability.  The quality of the resulting bit-stream --
and therefore the accuracy of the whole stochastic circuit -- is determined
almost entirely by the number source (Table 1 of the paper).

This module defines the :class:`NumberSource` interface plus the simplest
implementations; the LFSR, low-discrepancy and ramp sources used in the
paper's comparison live in sibling modules.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = [
    "NumberSource",
    "PseudoRandomSource",
    "CounterSource",
    "ConstantSource",
]


class NumberSource(abc.ABC):
    """A sequence of numbers in ``[0, 1)`` driving an SNG comparator.

    Sources are deterministic state machines: :meth:`sequence` must return
    the same values for the same ``length`` every time unless :meth:`reset`
    changes the internal seed/state.  This determinism is what lets the
    library reproduce the paper's exhaustive MSE sweeps exactly.
    """

    #: Number of resolution bits of the source (``None`` for real-valued sources).
    resolution_bits: Optional[int] = None

    @abc.abstractmethod
    def sequence(self, length: int) -> np.ndarray:
        """Return the first ``length`` source values as floats in ``[0, 1)``."""

    def reset(self) -> None:
        """Restore the source to its initial state (default: stateless no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PseudoRandomSource(NumberSource):
    """An idealized random source backed by numpy's PCG64 generator.

    This models the "random bit-stream" rows of Table 2: a source with good
    statistical behaviour but no low-discrepancy structure, so its SNG output
    exhibits the usual ``O(1/sqrt(N))`` stochastic fluctuation.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    def sequence(self, length: int) -> np.ndarray:
        rng = np.random.default_rng(self._seed)
        return rng.random(length)

    def reset(self) -> None:
        # the sequence is regenerated from the stored seed on every call,
        # so there is no mutable state to restore
        return None

    def __repr__(self) -> str:
        return f"PseudoRandomSource(seed={self._seed})"


class CounterSource(NumberSource):
    """A simple up-counter source producing ``k / 2**bits`` for ``k = 0, 1, ...``.

    Counter-driven SNGs produce perfectly uniform but strongly auto-correlated
    streams (all the ones bunched together once compared against a constant),
    the same structural property as the ramp-compare converter.  It is used as
    a cheap deterministic weight generator in several ablations.
    """

    def __init__(self, bits: int, phase: int = 0) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.resolution_bits = int(bits)
        self._phase = int(phase) % (1 << bits)

    def sequence(self, length: int) -> np.ndarray:
        n = 1 << self.resolution_bits
        k = (np.arange(length, dtype=np.int64) + self._phase) % n
        return k.astype(np.float64) / n

    def __repr__(self) -> str:
        return f"CounterSource(bits={self.resolution_bits}, phase={self._phase})"


class ConstantSource(NumberSource):
    """A source that always emits the same value; useful for testing SNG logic."""

    def __init__(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError(f"value must lie in [0, 1), got {value}")
        self._value = float(value)

    def sequence(self, length: int) -> np.ndarray:
        return np.full(length, self._value, dtype=np.float64)

    def __repr__(self) -> str:
        return f"ConstantSource(value={self._value})"
