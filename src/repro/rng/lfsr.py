"""Linear-feedback shift registers (LFSRs).

LFSRs are the conventional pseudo-random number source of stochastic number
generators: an ``n``-bit maximal-length LFSR cycles through all ``2**n - 1``
non-zero states, providing a cheap, deterministic, uniformly distributed
number sequence.  Table 1 of the paper compares SNGs built from

* a single LFSR shared by both multiplier inputs (one copy plus a shifted
  version of the same register) -- the cheapest but most correlated option;
* two independent LFSRs with different seeds/polynomials;

against low-discrepancy and ramp-compare sources.

The implementation below is a Galois-configuration LFSR using the standard
maximal-length (primitive-polynomial) tap tables for register widths 2..24,
which covers every precision used anywhere in the paper (2 to 8 bits) with a
wide margin.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .sources import NumberSource

__all__ = [
    "MAXIMAL_TAPS",
    "ALTERNATE_TAPS",
    "LFSR",
    "LFSRSource",
    "ShiftedLFSRSource",
    "RotatedLFSRSource",
]


#: Maximal-length feedback tap positions (exponents of the primitive feedback
#: polynomial, 1-indexed) from the standard Xilinx/XAPP052 table.  A register
#: of width ``n`` using ``MAXIMAL_TAPS[n]`` cycles through all ``2**n - 1``
#: non-zero states.
MAXIMAL_TAPS = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
}

#: A second, different primitive polynomial per register width, used when two
#: genuinely independent LFSRs are needed (the "Two LFSRs" scheme of Table 1).
#: Width 2 has only one primitive polynomial, so it falls back to a different
#: seed of the same polynomial.
ALTERNATE_TAPS = {
    3: (3, 1),
    4: (4, 1),
    5: (5, 2),
    6: (6, 1),
    7: (7, 1),
    8: (8, 4, 3, 2),
    9: (9, 4),
    10: (10, 3),
}


class LFSR:
    """A Galois-configuration linear-feedback shift register.

    Parameters
    ----------
    bits:
        Register width.  Must have an entry in :data:`MAXIMAL_TAPS` unless
        explicit ``taps`` are supplied.
    seed:
        Initial state; any non-zero value in ``[1, 2**bits - 1]``.
    taps:
        Optional explicit tap positions (polynomial exponents, 1-indexed).
        Defaults to the maximal-length taps.
    stuck_cells:
        Fault model: ``(bit_index, value)`` pairs of register cells whose
        outputs are stuck at 0 or 1 (0-indexed from the LSB).  The forcing
        is applied to the seed and after every shift, exactly like a
        hardware flip-flop whose output node is shorted; the register may
        then leave its maximal-length cycle (or even reach the all-zeros
        lock-up state), which is the defect being modelled.
    """

    def __init__(
        self,
        bits: int,
        seed: int = 1,
        taps: Sequence[int] | None = None,
        stuck_cells: Sequence[tuple[int, int]] = (),
    ):
        if bits < 2:
            raise ValueError("LFSR needs at least 2 bits")
        if taps is None:
            if bits not in MAXIMAL_TAPS:
                raise ValueError(
                    f"no maximal-length taps known for {bits}-bit LFSR; "
                    "pass explicit taps"
                )
            taps = MAXIMAL_TAPS[bits]
        if any(t < 1 or t > bits for t in taps):
            raise ValueError(f"tap positions must lie in [1, {bits}], got {taps}")
        seed = int(seed)
        mask = (1 << bits) - 1
        if seed & mask == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.bits = int(bits)
        self.taps = tuple(int(t) for t in taps)
        self._seed = seed & mask
        self._mask = mask
        # Galois feedback mask: one bit per polynomial exponent.
        self._feedback_mask = 0
        for tap in self.taps:
            self._feedback_mask |= 1 << (tap - 1)
        # Stuck-cell forcing masks: state is read as (state | or) & and.
        self.stuck_cells = tuple((int(i), int(v)) for i, v in stuck_cells)
        self._stuck_or = 0
        self._stuck_and = mask
        for index, value in self.stuck_cells:
            if not 0 <= index < self.bits:
                raise ValueError(
                    f"stuck cell index must lie in [0, {self.bits - 1}], "
                    f"got {index}"
                )
            if value not in (0, 1):
                raise ValueError(f"stuck cell value must be 0 or 1, got {value}")
            if value:
                self._stuck_or |= 1 << index
            else:
                self._stuck_and &= ~(1 << index)
        self._state = self._force(self._seed)

    def _force(self, state: int) -> int:
        """Apply the stuck-cell forcing masks to a register state."""
        return (state | self._stuck_or) & self._stuck_and

    @property
    def state(self) -> int:
        """Current register contents as an integer in ``[1, 2**bits - 1]``."""
        return self._state

    @property
    def period(self) -> int:
        """Sequence period for a maximal-length configuration (``2**bits - 1``)."""
        return (1 << self.bits) - 1

    def reset(self) -> None:
        """Restore the register to its seed value (stuck cells still forced)."""
        self._state = self._force(self._seed)

    def step(self) -> int:
        """Advance one clock cycle and return the new state."""
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= self._feedback_mask
        self._state = self._force(self._state)
        return self._state

    def states(self, length: int) -> np.ndarray:
        """Return the next ``length`` states (starting from the current one)."""
        out = np.empty(length, dtype=np.int64)
        state = self._state
        feedback_mask = self._feedback_mask
        stuck_or = self._stuck_or
        stuck_and = self._stuck_and
        for i in range(length):
            out[i] = state
            lsb = state & 1
            state >>= 1
            if lsb:
                state ^= feedback_mask
            state = (state | stuck_or) & stuck_and
        self._state = state
        return out

    def bit_sequence(self, length: int) -> np.ndarray:
        """Return the output-bit sequence (MSB of each state) of ``length`` steps."""
        states = self.states(length)
        return ((states >> (self.bits - 1)) & 1).astype(np.uint8)

    def cycle(self) -> List[int]:
        """Return the full state cycle starting from the seed (resets the LFSR)."""
        self.reset()
        seen = self.states(self.period)
        self.reset()
        return [int(s) for s in seen]


class LFSRSource(NumberSource):
    """A :class:`NumberSource` wrapping an LFSR.

    The register state is interpreted as the integer ``k`` and emitted as the
    value ``k / 2**bits``, the conventional comparator arrangement of Fig. 1c.
    Seeds are wrapped into the register's non-zero range so callers can pass
    any positive integer regardless of the register width.  ``stuck_cells``
    forwards the stuck register-cell fault model of :class:`LFSR`.
    """

    def __init__(
        self,
        bits: int,
        seed: int = 1,
        taps: Sequence[int] | None = None,
        stuck_cells: Sequence[tuple[int, int]] = (),
    ):
        if seed < 1:
            raise ValueError("seed must be a positive integer")
        period = (1 << int(bits)) - 1
        wrapped_seed = ((int(seed) - 1) % period) + 1
        self._lfsr = LFSR(bits, seed=wrapped_seed, taps=taps, stuck_cells=stuck_cells)
        self.resolution_bits = int(bits)

    @property
    def lfsr(self) -> LFSR:
        """The underlying register (exposed for tests and ablations)."""
        return self._lfsr

    def sequence(self, length: int) -> np.ndarray:
        self._lfsr.reset()
        states = self._lfsr.states(length)
        return states.astype(np.float64) / (1 << self.resolution_bits)

    def reset(self) -> None:
        self._lfsr.reset()

    def __repr__(self) -> str:
        return f"LFSRSource(bits={self.resolution_bits}, seed={self._lfsr._seed})"


class ShiftedLFSRSource(NumberSource):
    """A delayed copy of an existing LFSR sequence.

    Table 1's cheapest scheme drives both SNGs from *one* LFSR, using the
    register value for one input and a circularly shifted (delayed) version of
    the same sequence for the other.  Sharing the register keeps hardware cost
    to a minimum but leaves the two streams strongly correlated, which is why
    that scheme has the worst multiplier MSE.
    """

    def __init__(self, base: LFSRSource, shift: int = 1):
        if shift < 0:
            raise ValueError("shift must be non-negative")
        self._base = base
        self._shift = int(shift)
        self.resolution_bits = base.resolution_bits

    def sequence(self, length: int) -> np.ndarray:
        period = self._base.lfsr.period
        # Generate enough of the base sequence to apply the delay inside one
        # full period, then roll it: a delayed maximal-length sequence is the
        # same cycle starting at a different state.
        span = max(length, period)
        seq = self._base.sequence(span + self._shift)
        return seq[self._shift : self._shift + length]

    def reset(self) -> None:
        self._base.reset()

    def __repr__(self) -> str:
        return f"ShiftedLFSRSource(shift={self._shift}, base={self._base!r})"


class RotatedLFSRSource(NumberSource):
    """The same LFSR register read through circularly rotated wires.

    This is the paper's cheapest Table 1 scheme ("one LFSR + shifted
    version"): the second SNG comparator is fed the *same* register, but with
    its output bits rotated by ``rotation`` positions -- a pure wiring
    permutation with zero hardware cost.  The resulting number sequence is a
    bit-reshuffled copy of the original and remains strongly correlated with
    it, which is why the scheme has the worst multiplier MSE.
    """

    def __init__(self, base: LFSRSource, rotation: int = 1):
        bits = base.resolution_bits
        if not 0 < rotation < bits:
            raise ValueError(f"rotation must lie in [1, {bits - 1}], got {rotation}")
        self._base = base
        self._rotation = int(rotation)
        self.resolution_bits = bits

    def sequence(self, length: int) -> np.ndarray:
        bits = self.resolution_bits
        rotation = self._rotation
        mask = (1 << bits) - 1
        self._base.reset()
        states = self._base.lfsr.states(length)
        self._base.reset()
        rotated = ((states >> rotation) | ((states & ((1 << rotation) - 1)) << (bits - rotation))) & mask
        return rotated.astype(np.float64) / (1 << bits)

    def reset(self) -> None:
        self._base.reset()

    def __repr__(self) -> str:
        return f"RotatedLFSRSource(rotation={self._rotation}, base={self._base!r})"
