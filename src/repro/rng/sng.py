"""Stochastic number generators (SNGs).

An SNG converts a binary (or analog) value into a stochastic bit-stream by
comparing it against a number source every clock cycle (Fig. 1c of the
paper).  The accuracy of stochastic arithmetic is dominated by which sources
drive the SNGs and how those sources relate to each other -- that is exactly
what Table 1 of the paper quantifies.  This module provides:

* :class:`ComparatorSNG` -- the generic comparator-based SNG over any
  :class:`~repro.rng.sources.NumberSource`;
* :class:`RampCompareSNG` -- the analog-to-stochastic converter variant used
  for the sensor input;
* :func:`sng_pair` -- a factory for the four input-pair generation schemes
  compared in Table 1, by name.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..bitstream import Bitstream, to_probability
from ..bitstream.packed import pack_comparator_output
from .lfsr import ALTERNATE_TAPS, LFSRSource, RotatedLFSRSource
from .lowdiscrepancy import SobolSource, VanDerCorputSource
from .ramp import RampSource
from .sources import NumberSource, PseudoRandomSource

__all__ = [
    "ComparatorSNG",
    "RampCompareSNG",
    "sng_pair",
    "TABLE1_SCHEMES",
]


class ComparatorSNG:
    """A comparator-based stochastic number generator.

    Parameters
    ----------
    source:
        The number source feeding the comparator's reference input.
    encoding:
        How input values are interpreted ("unipolar" or "bipolar").  Bipolar
        values are first mapped to their ones-probability.
    """

    def __init__(self, source: NumberSource, encoding: str = "unipolar") -> None:
        self.source = source
        self.encoding = encoding

    def generate(self, value: float, length: int) -> Bitstream:
        """Generate a ``length``-bit stream encoding ``value``."""
        bits = self.generate_bits(np.asarray([value]), length)[0]
        return Bitstream(bits, encoding=self.encoding)

    def generate_bits(self, values: np.ndarray, length: int) -> np.ndarray:
        """Vectorized generation: returns shape ``values.shape + (length,)`` uint8.

        Every value is compared against the *same* source sequence, which
        models a bank of SNGs sharing one number source -- the arrangement
        used for the weight generators in the paper's convolution engine
        (the source cost is amortized across all units).
        """
        p = to_probability(np.asarray(values, dtype=np.float64), self.encoding)
        ref = self.source.sequence(length)
        return (ref < p[..., np.newaxis]).astype(np.uint8)

    def generate_packed(self, values: np.ndarray, length: int) -> np.ndarray:
        """Vectorized generation straight into packed words.

        Returns uint64 words of shape ``values.shape + (ceil(length / 64),)``
        holding exactly the bits :meth:`generate_bits` would produce, packed
        64-per-word (see :mod:`repro.bitstream.packed`).  The comparator
        output is packed chunk by chunk so the transient unpacked bits never
        exceed a few MiB regardless of batch size.
        """
        p = to_probability(np.asarray(values, dtype=np.float64), self.encoding)
        return pack_comparator_output(self.source.sequence(length), p)

    def __repr__(self) -> str:
        return f"ComparatorSNG(source={self.source!r}, encoding={self.encoding!r})"


class RampCompareSNG(ComparatorSNG):
    """The ramp-compare analog-to-stochastic converter (paper Section IV-A).

    Functionally an SNG whose reference input is a ramp rather than a random
    number; the generated stream has exact ones-counts but maximal
    auto-correlation.  ``descending`` selects the falling-ramp variant.
    """

    def __init__(
        self, bits: int, descending: bool = False, encoding: str = "unipolar"
    ) -> None:
        super().__init__(RampSource(bits, descending=descending), encoding=encoding)


#: Names of the four number-generation schemes evaluated in Table 1, mapped to
#: a short description.  Use with :func:`sng_pair`.
TABLE1_SCHEMES = {
    "shared_lfsr": "One LFSR + shifted version",
    "two_lfsrs": "Two LFSRs",
    "low_discrepancy": "Low-discrepancy sequences [4]",
    "ramp_low_discrepancy": "Ramp-compare [13] + [4]",
}


def sng_pair(
    scheme: str, precision: int, seed: int = 1
) -> Tuple[ComparatorSNG, ComparatorSNG]:
    """Return the pair of SNGs implementing one Table 1 scheme.

    Parameters
    ----------
    scheme:
        One of the keys of :data:`TABLE1_SCHEMES`.
    precision:
        Binary precision in bits; the generated streams have length
        ``2**precision``.
    seed:
        Seed for the LFSR-based schemes (any non-zero register value).

    Returns
    -------
    (sng_x, sng_y):
        The generators for the first and second multiplier input.
    """
    if scheme == "shared_lfsr":
        base = LFSRSource(precision, seed=seed)
        # The "shifted version" is the same register read through rotated
        # wires: zero extra hardware, but the two streams stay correlated.
        return ComparatorSNG(base), ComparatorSNG(RotatedLFSRSource(base, rotation=1))
    if scheme == "two_lfsrs":
        first = LFSRSource(precision, seed=seed)
        period = (1 << precision) - 1
        second_seed = (4 * seed) % period or 1
        taps = ALTERNATE_TAPS.get(precision)
        second = LFSRSource(precision, seed=second_seed, taps=taps)
        return ComparatorSNG(first), ComparatorSNG(second)
    if scheme == "low_discrepancy":
        return (
            ComparatorSNG(VanDerCorputSource(precision)),
            ComparatorSNG(SobolSource(precision, dimension=1)),
        )
    if scheme == "ramp_low_discrepancy":
        return (
            RampCompareSNG(precision),
            ComparatorSNG(SobolSource(precision, dimension=1)),
        )
    if scheme == "random":
        # Not part of Table 1 but used by Table 2's "Random + ..." adder rows.
        return (
            ComparatorSNG(PseudoRandomSource(seed=seed)),
            ComparatorSNG(PseudoRandomSource(seed=seed + 1)),
        )
    raise ValueError(
        f"unknown scheme {scheme!r}; expected one of {sorted(TABLE1_SCHEMES)} or 'random'"
    )
