"""Datasets: synthetic MNIST-like digits plus a real-MNIST IDX loader."""

from .mnist import DEFAULT_MNIST_DIR, load_dataset, load_mnist, read_idx
from .synthetic import (
    DIGIT_SEGMENTS,
    SEGMENTS,
    SyntheticDigits,
    generate_digits,
    render_digit,
)

__all__ = [
    "SEGMENTS",
    "DIGIT_SEGMENTS",
    "render_digit",
    "generate_digits",
    "SyntheticDigits",
    "read_idx",
    "load_mnist",
    "load_dataset",
    "DEFAULT_MNIST_DIR",
]
