"""Procedural MNIST-like digit dataset.

The paper evaluates on MNIST (70,000 handwritten 28x28 8-bit grayscale
digits).  The reproduction environment has no network access, so this module
generates a *synthetic* digit dataset with the same tensor format and the
same 10-class structure: digits are rendered from seven-segment-style stroke
skeletons with randomized geometry (translation, rotation, scale, shear,
stroke width), smoothed, and corrupted with sensor-like noise.

The substitution is documented in DESIGN.md: every experiment in the paper
measures *relative* behaviour between first-layer implementations (binary,
old SC, proposed SC) and the effect of retraining, so any separable 28x28
grayscale 10-class problem exercises the identical code paths.  Absolute
misclassification rates differ from the paper's MNIST numbers; orderings and
trends are what the benchmarks check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["SEGMENTS", "DIGIT_SEGMENTS", "render_digit", "generate_digits", "SyntheticDigits"]


#: Canonical endpoints of the seven display segments in a unit box
#: (x grows right, y grows down).  Format: (x0, y0, x1, y1).
SEGMENTS: Dict[str, Tuple[float, float, float, float]] = {
    "A": (0.25, 0.15, 0.75, 0.15),  # top
    "B": (0.75, 0.15, 0.75, 0.50),  # top right
    "C": (0.75, 0.50, 0.75, 0.85),  # bottom right
    "D": (0.25, 0.85, 0.75, 0.85),  # bottom
    "E": (0.25, 0.50, 0.25, 0.85),  # bottom left
    "F": (0.25, 0.15, 0.25, 0.50),  # top left
    "G": (0.25, 0.50, 0.75, 0.50),  # middle
}

#: Which segments are lit for each digit (classic seven-segment encoding).
DIGIT_SEGMENTS: Dict[int, str] = {
    0: "ABCDEF",
    1: "BC",
    2: "ABGED",
    3: "ABGCD",
    4: "FGBC",
    5: "AFGCD",
    6: "AFGECD",
    7: "ABC",
    8: "ABCDEFG",
    9: "ABCDFG",
}


def _segment_distance(
    px: np.ndarray, py: np.ndarray, seg: Tuple[float, float, float, float]
) -> np.ndarray:
    """Distance from every pixel centre to a line segment."""
    x0, y0, x1, y1 = seg
    dx, dy = x1 - x0, y1 - y0
    length_sq = dx * dx + dy * dy
    if length_sq == 0:
        return np.hypot(px - x0, py - y0)
    t = np.clip(((px - x0) * dx + (py - y0) * dy) / length_sq, 0.0, 1.0)
    nearest_x = x0 + t * dx
    nearest_y = y0 + t * dy
    return np.hypot(px - nearest_x, py - nearest_y)


def render_digit(
    digit: int,
    rng: np.random.Generator,
    size: int = 28,
    stroke_width: float | None = None,
    jitter: float = 0.02,
    noise: float = 0.05,
) -> np.ndarray:
    """Render one randomized digit image with pixel values in ``[0, 1]``.

    Parameters
    ----------
    digit:
        Class label 0-9.
    rng:
        Random generator controlling all geometric and noise randomness.
    size:
        Image side length (28 matches MNIST).
    stroke_width:
        Stroke half-width in unit-box coordinates; randomized when ``None``.
    jitter:
        Standard deviation of per-endpoint positional jitter.
    noise:
        Standard deviation of additive pixel noise.
    """
    if digit not in DIGIT_SEGMENTS:
        raise ValueError(f"digit must be 0-9, got {digit}")

    if stroke_width is None:
        stroke_width = rng.uniform(0.045, 0.085)

    # Random affine placement of the unit box.
    angle = rng.uniform(-0.25, 0.25)  # radians, ~±14 degrees
    scale = rng.uniform(0.75, 1.05)
    shear = rng.uniform(-0.15, 0.15)
    shift_x = rng.uniform(-0.08, 0.08)
    shift_y = rng.uniform(-0.08, 0.08)
    cos_a, sin_a = np.cos(angle), np.sin(angle)

    # Pixel grid in unit coordinates, pulled back through the inverse affine
    # transform so we can evaluate segment distances in canonical space.
    coords = (np.arange(size) + 0.5) / size
    px, py = np.meshgrid(coords, coords)
    cx = px - 0.5 - shift_x
    cy = py - 0.5 - shift_y
    inv_x = (cos_a * cx + sin_a * cy) / scale
    inv_y = (-sin_a * cx + cos_a * cy) / scale
    inv_x = inv_x - shear * inv_y
    ux = inv_x + 0.5
    uy = inv_y + 0.5

    image = np.zeros((size, size), dtype=np.float64)
    for name in DIGIT_SEGMENTS[digit]:
        x0, y0, x1, y1 = SEGMENTS[name]
        seg = (
            x0 + rng.normal(0, jitter),
            y0 + rng.normal(0, jitter),
            x1 + rng.normal(0, jitter),
            y1 + rng.normal(0, jitter),
        )
        distance = _segment_distance(ux, uy, seg)
        # Soft-edged stroke: intensity falls off linearly over half a stroke width.
        contribution = np.clip(1.5 - distance / stroke_width, 0.0, 1.0)
        image = np.maximum(image, contribution)

    if noise > 0:
        image = image + rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def generate_digits(
    count: int,
    rng: np.random.Generator | int | None = None,
    size: int = 28,
    noise: float = 0.05,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``count`` labelled digit images.

    Returns ``(images, labels)`` with ``images`` of shape ``(count, size, size)``
    in ``[0, 1]`` and integer ``labels`` in ``0..9``.  Classes are balanced
    (round-robin) and then shuffled.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    labels = np.arange(count, dtype=np.int64) % 10
    rng.shuffle(labels)
    images = np.empty((count, size, size), dtype=np.float64)
    for i, digit in enumerate(labels):
        images[i] = render_digit(int(digit), rng, size=size, noise=noise)
    return images, labels


@dataclass
class SyntheticDigits:
    """A train/test split of the synthetic digit dataset."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @classmethod
    def generate(
        cls,
        train_size: int = 8000,
        test_size: int = 2000,
        seed: int = 0,
        size: int = 28,
        noise: float = 0.05,
    ) -> "SyntheticDigits":
        """Generate a reproducible train/test split."""
        rng = np.random.default_rng(seed)
        x_train, y_train = generate_digits(train_size, rng, size=size, noise=noise)
        x_test, y_test = generate_digits(test_size, rng, size=size, noise=noise)
        return cls(x_train, y_train, x_test, y_test)

    def as_quantized_pixels(self, bits: int = 8) -> "SyntheticDigits":
        """Quantize pixel values to ``bits``-bit levels (sensor ADC emulation)."""
        levels = (1 << bits) - 1
        return SyntheticDigits(
            np.round(self.x_train * levels) / levels,
            self.y_train,
            np.round(self.x_test * levels) / levels,
            self.y_test,
        )
