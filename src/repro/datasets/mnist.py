"""MNIST IDX loader and the dataset dispatcher.

If the user has the original MNIST IDX files (``train-images-idx3-ubyte`` and
friends, optionally gzipped) they can be dropped into a directory and loaded
with :func:`load_mnist`, in which case every experiment runs on the real
benchmark.  In the offline default configuration :func:`load_dataset` falls
back to the synthetic digit generator (see
:mod:`repro.datasets.synthetic` and DESIGN.md for the substitution
rationale).
"""

from __future__ import annotations

import gzip
import os
import struct
from pathlib import Path
from typing import Optional

import numpy as np

from .synthetic import SyntheticDigits

__all__ = ["read_idx", "load_mnist", "load_dataset", "DEFAULT_MNIST_DIR"]


#: Directory searched for MNIST IDX files (override with the REPRO_MNIST_DIR
#: environment variable).
DEFAULT_MNIST_DIR = Path("data/mnist")

_FILES = {
    "train_images": "train-images-idx3-ubyte",
    "train_labels": "train-labels-idx1-ubyte",
    "test_images": "t10k-images-idx3-ubyte",
    "test_labels": "t10k-labels-idx1-ubyte",
}


def read_idx(path: Path) -> np.ndarray:
    """Read one IDX-format file (plain or ``.gz``)."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rb") as handle:
        magic = handle.read(4)
        if len(magic) != 4 or magic[0] != 0 or magic[1] != 0:
            raise ValueError(f"{path} is not an IDX file")
        dtype_code, ndim = magic[2], magic[3]
        if dtype_code != 0x08:
            raise ValueError(f"unsupported IDX data type 0x{dtype_code:02x}")
        shape = struct.unpack(f">{ndim}I", handle.read(4 * ndim))
        data = np.frombuffer(handle.read(), dtype=np.uint8)
    return data.reshape(shape)


def _find_file(directory: Path, stem: str) -> Optional[Path]:
    for candidate in (directory / stem, directory / f"{stem}.gz"):
        if candidate.exists():
            return candidate
    return None


def load_mnist(directory: Optional[Path] = None) -> SyntheticDigits:
    """Load the real MNIST dataset from IDX files.

    Raises ``FileNotFoundError`` if any of the four files is missing.  The
    return type reuses :class:`SyntheticDigits` as a plain train/test
    container (images normalized to ``[0, 1]``).
    """
    directory = Path(
        directory
        if directory is not None
        else os.environ.get("REPRO_MNIST_DIR", DEFAULT_MNIST_DIR)
    )
    paths = {}
    for key, stem in _FILES.items():
        found = _find_file(directory, stem)
        if found is None:
            raise FileNotFoundError(
                f"MNIST file {stem}(.gz) not found in {directory}"
            )
        paths[key] = found
    x_train = read_idx(paths["train_images"]).astype(np.float64) / 255.0
    y_train = read_idx(paths["train_labels"]).astype(np.int64)
    x_test = read_idx(paths["test_images"]).astype(np.float64) / 255.0
    y_test = read_idx(paths["test_labels"]).astype(np.int64)
    return SyntheticDigits(x_train, y_train, x_test, y_test)


def load_dataset(
    train_size: Optional[int] = None,
    test_size: Optional[int] = None,
    seed: int = 0,
    prefer_mnist: bool = True,
    mnist_dir: Optional[Path] = None,
) -> SyntheticDigits:
    """Load the evaluation dataset: real MNIST if available, synthetic otherwise.

    ``train_size`` / ``test_size`` subsample (or, for the synthetic fallback,
    generate) the requested number of examples; defaults come from the
    ``REPRO_TRAIN_SIZE`` / ``REPRO_TEST_SIZE`` environment variables or
    8000 / 2000.
    """
    if train_size is None:
        train_size = int(os.environ.get("REPRO_TRAIN_SIZE", 8000))
    if test_size is None:
        test_size = int(os.environ.get("REPRO_TEST_SIZE", 2000))
    if train_size < 1 or test_size < 1:
        raise ValueError("train_size and test_size must be positive")

    if prefer_mnist:
        try:
            full = load_mnist(mnist_dir)
        except (FileNotFoundError, ValueError):
            full = None
        if full is not None:
            rng = np.random.default_rng(seed)
            train_idx = rng.permutation(full.x_train.shape[0])[:train_size]
            test_idx = rng.permutation(full.x_test.shape[0])[:test_size]
            return SyntheticDigits(
                full.x_train[train_idx],
                full.y_train[train_idx],
                full.x_test[test_idx],
                full.y_test[test_idx],
            )

    return SyntheticDigits.generate(
        train_size=train_size, test_size=test_size, seed=seed
    )
