"""Experiment E3 -- Table 3 (top): misclassification rate vs. first-layer precision.

For every precision the harness produces three rows, mirroring the paper:

* **Binary**    -- first layer quantized to ``b`` bits with a sign activation,
                   evaluated in the binary domain, remaining layers retrained;
* **Old SC**    -- the same retrained network, but the first layer evaluated
                   with the conventional stochastic design (MUX adders, LFSR
                   SNGs);
* **This Work** -- the first layer evaluated with the proposed stochastic
                   design (TFF adders, ramp-compare inputs, low-discrepancy
                   weights).

The experiment is CPU-budget-aware: dataset sizes, training epochs and the
number of bit-exact evaluation images are configurable (environment variables
``REPRO_TRAIN_SIZE``, ``REPRO_TEST_SIZE``, ``REPRO_EVAL_IMAGES``,
``REPRO_BITEXACT``, ``REPRO_TILE_PATCHES``, ``REPRO_MODE``), and the
stochastic rows default
to the calibrated fast emulator validated against bit-exact simulation (see
DESIGN.md).  With ``REPRO_BITEXACT=1`` the filter-parallel, tile-streamed
convolution path (see :mod:`repro.sc.convolution`) lets the stochastic rows
cover the full test set in bounded memory: set ``REPRO_TILE_PATCHES`` (or
``tile_patches``) to cap how many image patches are in flight at once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..datasets import load_dataset
from ..hybrid import HybridStochasticBinaryNetwork
from ..nn import Adam, Sequential, build_lenet5_small, quantize_and_freeze, retrain
from ..sc import (
    new_sc_engine,
    old_sc_engine,
    resolve_backend,
    resolve_mode,
    resolve_tile_patches,
)

__all__ = ["AccuracyConfig", "Table3AccuracyResult", "run_table3_accuracy"]


@dataclass
class AccuracyConfig:
    """Knobs of the Table 3 accuracy experiment."""

    precisions: Sequence[int] = (8, 7, 6, 5, 4, 3, 2)
    train_size: Optional[int] = None
    test_size: Optional[int] = None
    baseline_epochs: int = 4
    retrain_epochs: int = 3
    batch_size: int = 64
    learning_rate: float = 1e-3
    #: First-layer evaluation mode for the stochastic rows: "emulate" or "bitexact"
    #: ("bitexact" is selected automatically when REPRO_BITEXACT=1).
    sc_mode: str = "emulate"
    #: Precisions below this many bits are always evaluated bit-exactly even in
    #: "emulate" mode: the calibrated emulator is validated for stream lengths
    #: of 8 and above, and bit-exact simulation is cheap for short streams.
    bitexact_below_bits: int = 4
    #: Number of test images evaluated by the stochastic rows (None = all).
    sc_eval_images: Optional[int] = None
    #: Patch-tile bound for the bit-exact stochastic path (and emulator
    #: calibration): at most this many image patches are simulated at once,
    #: keeping full-test-set ``REPRO_BITEXACT=1`` runs within bounded memory.
    #: ``None`` defers to ``REPRO_TILE_PATCHES`` (then untiled); any tile
    #: size is bit-identical to an untiled pass.
    tile_patches: Optional[int] = None
    #: Soft-threshold level for the stochastic sign activation (fraction of range).
    soft_threshold: float = 0.02
    #: Bit-level simulation backend for the stochastic engines: "packed"
    #: (64 bits per word) or "unpacked" (byte per bit).  Both are bit-order
    #: exact, so the reported rates are identical.  None (the default)
    #: resolves to the REPRO_BACKEND environment variable, falling back to
    #: "packed"; an explicitly passed value always wins over the environment.
    backend: Optional[str] = None
    #: Adder-tree evaluation mode for the stochastic engines: "counts" (exact
    #: count-domain shortcut, no adder-tree stream tensors), "streams" (the
    #: reference stream reduction) or "auto" (counts whenever exact -- TFF and
    #: MUX trees; see :mod:`repro.sc.mode`).  Bit-identical counters either
    #: way, so reported rates do not depend on it.  None resolves to the
    #: REPRO_MODE environment variable, falling back to "auto"; an explicitly
    #: passed value always wins over the environment.
    mode: Optional[str] = None
    #: Retrain the binary remainder against a first layer that emulates the
    #: stochastic engine's resolution (input quantization + counter LSBs) for
    #: the stochastic rows, per the paper's "compensate for precision losses
    #: introduced by shorter stochastic bit-streams".  The Binary row always
    #: uses plain binary-domain retraining.
    sc_aware_retraining: bool = True
    #: Evaluate a no-retraining ablation row as well.
    include_no_retrain: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sc_mode not in ("emulate", "bitexact"):
            raise ValueError("sc_mode must be 'emulate' or 'bitexact'")
        if os.environ.get("REPRO_BITEXACT") == "1":
            self.sc_mode = "bitexact"
        self.backend = resolve_backend(self.backend)
        self.mode = resolve_mode(self.mode)
        self.tile_patches = resolve_tile_patches(self.tile_patches)
        if self.sc_eval_images is None:
            env = os.environ.get("REPRO_EVAL_IMAGES")
            if env is not None:
                self.sc_eval_images = int(env)
            elif self.sc_mode == "bitexact":
                self.sc_eval_images = 100


@dataclass
class Table3AccuracyResult:
    """Misclassification rates per design and precision, plus metadata."""

    #: ``rates[design][precision]`` with designs "binary", "old_sc", "this_work"
    #: (and optionally "binary_no_retrain").
    rates: Dict[str, Dict[int, float]]
    baseline_misclassification: float
    config: AccuracyConfig
    train_size: int
    test_size: int

    def gap_to_binary(self, design: str, precision: int) -> float:
        """Misclassification gap (positive = worse than binary) at a precision."""
        return self.rates[design][precision] - self.rates["binary"][precision]

    def improvement_over_old_sc(self, precision: int) -> float:
        """How much lower (better) the proposed design's error is vs. old SC."""
        return self.rates["old_sc"][precision] - self.rates["this_work"][precision]


def _train_baseline(
    x_train: np.ndarray,
    y_train: np.ndarray,
    config: AccuracyConfig,
) -> Sequential:
    model = build_lenet5_small(seed=config.seed)
    model.fit(
        x_train,
        y_train,
        epochs=config.baseline_epochs,
        batch_size=config.batch_size,
        optimizer=Adam(config.learning_rate),
        rng=np.random.default_rng(config.seed),
    )
    return model


def run_table3_accuracy(config: Optional[AccuracyConfig] = None) -> Table3AccuracyResult:
    """Run the full accuracy experiment and return every table row."""
    config = config if config is not None else AccuracyConfig()
    data = load_dataset(
        train_size=config.train_size, test_size=config.test_size, seed=config.seed
    )
    x_train = data.x_train[:, np.newaxis, :, :]
    x_test = data.x_test[:, np.newaxis, :, :]
    y_train, y_test = data.y_train, data.y_test

    baseline = _train_baseline(x_train, y_train, config)
    baseline_rate = baseline.misclassification_rate(x_test, y_test)

    rates: Dict[str, Dict[int, float]] = {"binary": {}, "old_sc": {}, "this_work": {}}
    if config.include_no_retrain:
        rates["binary_no_retrain"] = {}

    sc_limit = config.sc_eval_images
    for precision in config.precisions:
        # --- Binary row: quantized weights + sign activation, retrained. ---
        frozen = quantize_and_freeze(baseline, precision=precision)
        if config.include_no_retrain:
            rates["binary_no_retrain"][precision] = frozen.misclassification_rate(
                x_test, y_test
            )
        retrain(
            frozen,
            x_train,
            y_train,
            epochs=config.retrain_epochs,
            batch_size=config.batch_size,
            optimizer=Adam(config.learning_rate),
            rng=np.random.default_rng(config.seed + precision),
        )
        rates["binary"][precision] = frozen.misclassification_rate(x_test, y_test)

        # --- Stochastic rows: optionally retrain against the SC resolution. ---
        if config.sc_aware_retraining:
            sc_model = quantize_and_freeze(
                baseline,
                precision=precision,
                sc_resolution=True,
                soft_threshold=config.soft_threshold,
            )
            retrain(
                sc_model,
                x_train,
                y_train,
                epochs=config.retrain_epochs,
                batch_size=config.batch_size,
                optimizer=Adam(config.learning_rate),
                rng=np.random.default_rng(config.seed + 100 + precision),
            )
        else:
            sc_model = frozen

        mode = config.sc_mode
        if mode == "emulate" and precision < config.bitexact_below_bits:
            mode = "bitexact"
        for design, engine_factory in (
            ("this_work", new_sc_engine),
            ("old_sc", old_sc_engine),
        ):
            hybrid = HybridStochasticBinaryNetwork(
                sc_model,
                engine=engine_factory(
                    precision,
                    seed=config.seed + 1,
                    backend=config.backend,
                    mode=config.mode,
                ),
                soft_threshold=config.soft_threshold,
                seed=config.seed,
                tile_patches=config.tile_patches,
            )
            rates[design][precision] = hybrid.misclassification_rate(
                data.x_test,
                y_test,
                mode=mode,
                limit=sc_limit,
            )

    return Table3AccuracyResult(
        rates=rates,
        baseline_misclassification=baseline_rate,
        config=config,
        train_size=x_train.shape[0],
        test_size=x_test.shape[0],
    )
