"""Experiment E1 -- Table 1: stochastic multiplier MSE vs. number-generation scheme.

The paper compares four ways of generating the two input bit-streams of an
AND-gate multiplier and reports the mean squared error of the product,
computed by *exhaustively* testing every representable input pair at 4-bit
and 8-bit precision.  This module reproduces that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..bitstream import stream_length
from ..bitstream.packed import packed_popcount
from ..rng.sng import TABLE1_SCHEMES, sng_pair
from ..sc.dotproduct import resolve_backend, resolve_mode

__all__ = ["Table1Result", "multiplier_mse", "run_table1"]


@dataclass
class Table1Result:
    """MSE of the stochastic multiplier for every scheme and precision."""

    #: ``mse[scheme][precision]`` in the same units as the paper (squared value error).
    mse: Dict[str, Dict[int, float]]
    precisions: Sequence[int]

    def ordering_at(self, precision: int) -> list:
        """Schemes sorted from worst (highest MSE) to best."""
        return sorted(self.mse, key=lambda s: -self.mse[s][precision])

    def best_scheme(self, precision: int) -> str:
        """The most accurate scheme at a precision."""
        return self.ordering_at(precision)[-1]


def multiplier_mse(
    scheme: str,
    precision: int,
    seed: int = 1,
    backend: str | None = None,
    mode: str | None = None,
) -> float:
    """Exhaustive MSE of the AND multiplier under one number-generation scheme.

    Every representable value pair ``(k/N, m/N)`` for ``k, m`` in ``0..N`` is
    multiplied with streams of length ``N = 2**precision`` and compared with
    the exact product.  Both backends evaluate the same comparator bits, so
    the MSE is identical; ``"packed"`` runs the AND/popcount sweep on 64-bit
    words instead of bytes.  ``None`` defers to REPRO_BACKEND, then "packed".

    ``mode`` is accepted (and validated, see :mod:`repro.sc.mode`) for
    interface symmetry with the other table evaluators, but the multiplier
    sweep involves no adder tree: its estimate is already one popcount of the
    AND product, so ``"counts"`` and ``"streams"`` run the identical code.
    """
    backend = resolve_backend(backend)
    resolve_mode(mode)
    n = stream_length(precision)
    values = np.arange(n + 1, dtype=np.float64) / n
    sng_x, sng_y = sng_pair(scheme, precision, seed=seed)
    if backend == "packed":
        x_words = sng_x.generate_packed(values, n)  # (n+1, W)
        y_words = sng_y.generate_packed(values, n)
        products = x_words[:, np.newaxis, :] & y_words[np.newaxis, :, :]
        estimates = packed_popcount(products) / n
    else:
        x_bits = sng_x.generate_bits(values, n)  # (n+1, n)
        y_bits = sng_y.generate_bits(values, n)
        products = x_bits[:, np.newaxis, :] & y_bits[np.newaxis, :, :]
        estimates = products.sum(axis=-1, dtype=np.int64) / n
    exact = np.outer(values, values)
    return float(np.mean((estimates - exact) ** 2))


def run_table1(
    precisions: Sequence[int] = (8, 4),
    schemes: Sequence[str] | None = None,
    seed: int = 1,
    backend: str | None = None,
    mode: str | None = None,
) -> Table1Result:
    """Reproduce Table 1 for the requested precisions and schemes."""
    schemes = list(schemes) if schemes is not None else list(TABLE1_SCHEMES)
    mse: Dict[str, Dict[int, float]] = {}
    for scheme in schemes:
        mse[scheme] = {
            precision: multiplier_mse(
                scheme, precision, seed=seed, backend=backend, mode=mode
            )
            for precision in precisions
        }
    return Table1Result(mse=mse, precisions=tuple(precisions))
