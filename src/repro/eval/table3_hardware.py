"""Experiments E4-E6 -- Table 3 (bottom): power, energy and area vs. precision.

Thin wrapper around :class:`repro.hw.comparison.HardwareComparison` that
returns the rows in the same layout as the paper's table and exposes the
headline-figure helpers used by the summary experiment (E8).

By default the stochastic engine's switching activity comes from the
technology assumption; ``activity_traces > 0`` instead *measures* it the way
PrimeTime would -- the engine netlist is simulated against a whole batch of
randomly drawn input windows in one word-parallel run
(:meth:`repro.hybrid.emulation.CalibratedSCEmulator.measure_activity`).  The
measurement is taken *per precision column*: every requested precision gets
its own batched simulation at its own stream length (``2**precision``
cycles), and each row's power model is driven by the activity measured at
that precision, rather than one highest-precision number shared by all rows.

The netlists costed here are gated by the static analyzer: the area/power
roll-ups (:mod:`repro.netlist.power`) emit an
:class:`~repro.netlist.lint.UnobservableAreaWarning` whenever a costed
netlist contains cells that no primary output can observe, since such cells
would silently inflate every number in this table.  The builder circuits
behind the comparison are kept lint-clean (``python -m repro lint``), so a
warning surfacing through this module indicates a construction bug upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hw import HardwareComparison, HardwareComparisonRow
from ..hw.technology import DEFAULT_GEOMETRY

__all__ = ["Table3HardwareResult", "run_table3_hardware", "measure_sc_activity"]


@dataclass
class Table3HardwareResult:
    """Hardware comparison rows plus convenience accessors."""

    rows: List[HardwareComparisonRow]
    calibrated: bool
    #: Trace-measured switching activity of the stochastic engine at the
    #: highest requested precision (toggles/cycle/net), or ``None`` when the
    #: technology default was used.
    measured_activity: Optional[float] = None
    #: Per-precision trace-measured activities driving each row's power
    #: model, or ``None`` when the technology default was used.
    measured_activity_by_precision: Optional[Dict[int, float]] = None

    def by_precision(self) -> Dict[int, HardwareComparisonRow]:
        """Rows indexed by precision."""
        return {row.precision: row for row in self.rows}

    def energy_efficiency_at(self, precision: int) -> float:
        """Binary-to-stochastic energy-per-frame ratio at a precision."""
        return self.by_precision()[precision].energy_efficiency_ratio

    def break_even_precision(self) -> int:
        """Highest precision at which the stochastic design is at least as efficient."""
        efficient = [
            row.precision for row in self.rows if row.energy_efficiency_ratio >= 1.0
        ]
        if not efficient:
            raise ValueError("stochastic design never breaks even")
        return max(efficient)

    def area_ratio_at(self, precision: int) -> float:
        """Stochastic-to-binary area ratio at a precision."""
        return self.by_precision()[precision].area_ratio


def measure_sc_activity(
    precision: int,
    traces: int,
    taps: int = DEFAULT_GEOMETRY.taps,
    seed: int = 0,
) -> float:
    """Mean switching activity of the SC engine over a random trace batch.

    Draws ``traces`` random input windows and one random kernel, runs one
    batched packed simulation of the engine netlist at the given precision,
    and returns the mean toggle rate (toggles per cycle per net) across the
    whole trace set.
    """
    import numpy as np

    from ..hybrid.emulation import CalibratedSCEmulator
    from ..sc import new_sc_engine

    if traces < 1:
        raise ValueError(f"traces must be positive, got {traces}")
    rng = np.random.default_rng(seed)
    windows = rng.random((traces, taps))
    weights = rng.uniform(-1.0, 1.0, taps)
    emulator = CalibratedSCEmulator(new_sc_engine(precision), seed=seed)
    simulation = emulator.measure_activity(windows, weights)
    return simulation.average_activity()


def run_table3_hardware(
    precisions: Sequence[int] = (8, 7, 6, 5, 4, 3, 2),
    calibrate: bool = True,
    activity_traces: int = 0,
    activity_seed: int = 0,
) -> Table3HardwareResult:
    """Build the hardware half of Table 3.

    Parameters
    ----------
    precisions:
        Precision columns to evaluate.
    calibrate:
        Anchor the absolute scale to the paper's 8-bit synthesis results.
    activity_traces:
        When positive, replace the assumed stochastic-engine activity factor
        by one measured from a batched netlist simulation over this many
        random input traces -- measured independently at *every* requested
        precision (each column's simulation runs for its own ``2**precision``
        cycles), so the per-row power model reflects precision-dependent
        switching behaviour instead of a single shared estimate.
    activity_seed:
        RNG seed for the measurement traces.
    """
    measured: Optional[Dict[int, float]] = None
    if activity_traces:
        measured = {
            precision: measure_sc_activity(
                precision, activity_traces, seed=activity_seed
            )
            for precision in dict.fromkeys(precisions)
        }
    comparison = HardwareComparison(calibrate=calibrate, sc_activity=measured)
    return Table3HardwareResult(
        rows=comparison.rows(precisions),
        calibrated=calibrate,
        measured_activity=measured[max(measured)] if measured else None,
        measured_activity_by_precision=dict(measured) if measured else None,
    )
