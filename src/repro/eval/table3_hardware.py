"""Experiments E4-E6 -- Table 3 (bottom): power, energy and area vs. precision.

Thin wrapper around :class:`repro.hw.comparison.HardwareComparison` that
returns the rows in the same layout as the paper's table and exposes the
headline-figure helpers used by the summary experiment (E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..hw import HardwareComparison, HardwareComparisonRow

__all__ = ["Table3HardwareResult", "run_table3_hardware"]


@dataclass
class Table3HardwareResult:
    """Hardware comparison rows plus convenience accessors."""

    rows: List[HardwareComparisonRow]
    calibrated: bool

    def by_precision(self) -> Dict[int, HardwareComparisonRow]:
        """Rows indexed by precision."""
        return {row.precision: row for row in self.rows}

    def energy_efficiency_at(self, precision: int) -> float:
        """Binary-to-stochastic energy-per-frame ratio at a precision."""
        return self.by_precision()[precision].energy_efficiency_ratio

    def break_even_precision(self) -> int:
        """Highest precision at which the stochastic design is at least as efficient."""
        efficient = [
            row.precision for row in self.rows if row.energy_efficiency_ratio >= 1.0
        ]
        if not efficient:
            raise ValueError("stochastic design never breaks even")
        return max(efficient)

    def area_ratio_at(self, precision: int) -> float:
        """Stochastic-to-binary area ratio at a precision."""
        return self.by_precision()[precision].area_ratio


def run_table3_hardware(
    precisions: Sequence[int] = (8, 7, 6, 5, 4, 3, 2),
    calibrate: bool = True,
) -> Table3HardwareResult:
    """Build the hardware half of Table 3."""
    comparison = HardwareComparison(calibrate=calibrate)
    return Table3HardwareResult(rows=comparison.rows(precisions), calibrated=calibrate)
