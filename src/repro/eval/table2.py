"""Experiment E2 -- Table 2: stochastic adder MSE for different implementations.

The paper compares the conventional MUX adder under three select/data
generation schemes against the proposed TFF adder, again by exhaustively
sweeping every representable input pair at 4-bit and 8-bit precision:

* ``old_random_lfsr``  -- random data bit-streams, LFSR-driven select;
* ``old_random_tff``   -- random data bit-streams, free-running-TFF select
                          (a deterministic 0101... stream);
* ``old_lfsr_tff``     -- LFSR-generated data, free-running-TFF select;
* ``new_tff``          -- the proposed TFF adder (Fig. 2b); data streams come
                          from low-discrepancy SNGs so the measurement
                          isolates the adder's own error.

The expected output in every case is the scaled sum ``(x + y) / 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..bitstream import stream_length
from ..bitstream.packed import (
    pack_bits,
    packed_mux_add,
    packed_popcount,
    packed_tff_add,
)
from ..rng import ComparatorSNG, LFSRSource, PseudoRandomSource, SobolSource, VanDerCorputSource
from ..sc.dotproduct import resolve_backend, resolve_mode
from ..sc.elements.adders import mux_add, tff_add

__all__ = ["ADDER_CONFIGS", "Table2Result", "adder_mse", "run_table2"]


#: Human-readable labels matching the paper's Table 2 rows.
ADDER_CONFIGS: Dict[str, str] = {
    "old_random_lfsr": "Old adder: Random + LFSR",
    "old_random_tff": "Old adder: Random + TFF",
    "old_lfsr_tff": "Old adder: LFSR + TFF",
    "new_tff": "New adder (Fig. 2b)",
}


@dataclass
class Table2Result:
    """MSE of stochastic addition for every configuration and precision."""

    mse: Dict[str, Dict[int, float]]
    precisions: Sequence[int]

    def improvement_factor(self, precision: int) -> float:
        """How much lower the new adder's MSE is than the best old configuration."""
        old = min(
            value[precision] for key, value in self.mse.items() if key != "new_tff"
        )
        new = self.mse["new_tff"][precision]
        if new == 0:
            return float("inf")
        return old / new


def _data_generators(config: str, precision: int, seed: int):
    if config.startswith("old_random") :
        return (
            ComparatorSNG(PseudoRandomSource(seed=seed)),
            ComparatorSNG(PseudoRandomSource(seed=seed + 1)),
        )
    if config == "old_lfsr_tff":
        return (
            ComparatorSNG(LFSRSource(precision, seed=seed)),
            ComparatorSNG(LFSRSource(precision, seed=seed * 2 + 1)),
        )
    # new_tff: low-discrepancy data so only the adder's own error remains.
    return (
        ComparatorSNG(VanDerCorputSource(precision)),
        ComparatorSNG(SobolSource(precision, dimension=1)),
    )


def _select_bits(config: str, precision: int, length: int, seed: int) -> np.ndarray:
    if config == "old_random_lfsr":
        reference = LFSRSource(precision, seed=seed + 7).sequence(length)
        return (reference < 0.5).astype(np.uint8)
    # Both "+ TFF" configurations use the free-running toggle select.
    return (np.arange(length, dtype=np.int64) & 1).astype(np.uint8)


def adder_mse(
    config: str,
    precision: int,
    seed: int = 1,
    backend: str | None = None,
    mode: str | None = None,
) -> float:
    """Exhaustive MSE of one adder configuration at one precision.

    Both backends evaluate the same generated bits (the packed TFF/MUX word
    kernels are bit-identical to the byte-level ones), so the MSE does not
    depend on ``backend`` -- only the sweep's speed and memory footprint do.
    ``None`` defers to REPRO_BACKEND, then "packed".

    Under ``mode="counts"`` (the ``"auto"`` default, see
    :mod:`repro.sc.mode`) the sweep never materializes the ``(N+1, N+1)``
    grid of sum streams: a single TFF adder's output count is exactly
    ``floor((ones_x + ones_y) / 2)`` and a single MUX adder's is exactly
    ``popcount(x & ~sel) + popcount(y & sel)``, so the full grid of counts is
    one outer sum of two length-``N+1`` count vectors -- bit-identical
    estimates, O(N) instead of O(N^2) stream memory.  ``mode="streams"``
    forces the reference kernel sweep.
    """
    if config not in ADDER_CONFIGS:
        raise ValueError(f"unknown adder config {config!r}; expected {sorted(ADDER_CONFIGS)}")
    backend = resolve_backend(backend)
    mode = resolve_mode(mode)
    n = stream_length(precision)
    values = np.arange(n + 1, dtype=np.float64) / n
    sng_x, sng_y = _data_generators(config, precision, seed)

    if mode != "streams":
        if backend == "packed":
            x_words = sng_x.generate_packed(values, n)  # (n+1, W)
            y_words = sng_y.generate_packed(values, n)
            if config == "new_tff":
                # TffAdder with initial_state=0: count = floor((cx + cy) / 2).
                counts = (
                    packed_popcount(x_words)[:, np.newaxis]
                    + packed_popcount(y_words)[np.newaxis, :]
                ) >> 1
            else:
                select = pack_bits(_select_bits(config, precision, n, seed))
                counts = (
                    packed_popcount(x_words & ~select)[:, np.newaxis]
                    + packed_popcount(y_words & select)[np.newaxis, :]
                )
        else:
            x_bits = sng_x.generate_bits(values, n)
            y_bits = sng_y.generate_bits(values, n)
            if config == "new_tff":
                counts = (
                    x_bits.sum(axis=-1, dtype=np.int64)[:, np.newaxis]
                    + y_bits.sum(axis=-1, dtype=np.int64)[np.newaxis, :]
                ) >> 1
            else:
                select = _select_bits(config, precision, n, seed)
                counts = (
                    (x_bits & (select ^ 1)).sum(axis=-1, dtype=np.int64)[:, np.newaxis]
                    + (y_bits & select).sum(axis=-1, dtype=np.int64)[np.newaxis, :]
                )
        estimates = counts / n
    elif backend == "packed":
        x_words = sng_x.generate_packed(values, n)  # (n+1, W)
        y_words = sng_y.generate_packed(values, n)
        x_all = np.broadcast_to(
            x_words[:, np.newaxis, :], (n + 1, n + 1, x_words.shape[-1])
        )
        y_all = np.broadcast_to(
            y_words[np.newaxis, :, :], (n + 1, n + 1, y_words.shape[-1])
        )
        if config == "new_tff":
            sums_words = packed_tff_add(x_all, y_all, n)
        else:
            select = pack_bits(_select_bits(config, precision, n, seed))
            sums_words = packed_mux_add(x_all, y_all, select)
        estimates = packed_popcount(sums_words) / n
    else:
        x_bits = sng_x.generate_bits(values, n)
        y_bits = sng_y.generate_bits(values, n)
        x_all = np.broadcast_to(x_bits[:, np.newaxis, :], (n + 1, n + 1, n))
        y_all = np.broadcast_to(y_bits[np.newaxis, :, :], (n + 1, n + 1, n))
        if config == "new_tff":
            sums = tff_add(np.ascontiguousarray(x_all), np.ascontiguousarray(y_all))
        else:
            select = _select_bits(config, precision, n, seed)
            sums = mux_add(x_all, y_all, select)
        estimates = np.asarray(sums).sum(axis=-1, dtype=np.int64) / n
    exact = 0.5 * (values[:, np.newaxis] + values[np.newaxis, :])
    return float(np.mean((estimates - exact) ** 2))


def run_table2(
    precisions: Sequence[int] = (8, 4),
    configs: Sequence[str] | None = None,
    seed: int = 1,
    backend: str | None = None,
    mode: str | None = None,
) -> Table2Result:
    """Reproduce Table 2 for the requested precisions and adder configurations."""
    configs = list(configs) if configs is not None else list(ADDER_CONFIGS)
    mse: Dict[str, Dict[int, float]] = {}
    for config in configs:
        mse[config] = {
            precision: adder_mse(config, precision, seed=seed, backend=backend, mode=mode)
            for precision in precisions
        }
    return Table2Result(mse=mse, precisions=tuple(precisions))
