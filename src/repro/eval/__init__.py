"""Experiment harness: reproduce every table of the paper's evaluation."""

from .report import (
    format_headline_claims,
    format_table1,
    format_table2,
    format_table3_accuracy,
    format_table3_hardware,
)
from .summary import HeadlineClaims, summarize
from .table1 import Table1Result, multiplier_mse, run_table1
from .table2 import ADDER_CONFIGS, Table2Result, adder_mse, run_table2
from .table3_accuracy import AccuracyConfig, Table3AccuracyResult, run_table3_accuracy
from .table3_hardware import Table3HardwareResult, run_table3_hardware

__all__ = [
    "run_table1",
    "multiplier_mse",
    "Table1Result",
    "run_table2",
    "adder_mse",
    "Table2Result",
    "ADDER_CONFIGS",
    "run_table3_accuracy",
    "AccuracyConfig",
    "Table3AccuracyResult",
    "run_table3_hardware",
    "Table3HardwareResult",
    "summarize",
    "HeadlineClaims",
    "format_table1",
    "format_table2",
    "format_table3_accuracy",
    "format_table3_hardware",
    "format_headline_claims",
]
