"""Experiment E8 -- the paper's headline claims, derived from the other experiments.

The abstract and conclusion of the paper distil the evaluation into four
claims:

1. the hybrid design is ~9.8x more energy efficient than the all-binary
   design at 4-bit precision, and breaks even at 8-bit;
2. application-level accuracy is within 0.05 % (8-bit) / 0.25 % (4-bit) of
   the binary design;
3. the new adder/multiplier give up to 2.92 % better accuracy than prior SC
   designs;
4. retraining the binary layers compensates for the precision loss
   introduced by SC.

:func:`summarize` evaluates every claim from the reproduced tables and
returns a structured verdict used by the headline benchmark and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .table3_accuracy import Table3AccuracyResult
from .table3_hardware import Table3HardwareResult

__all__ = ["HeadlineClaims", "summarize"]


@dataclass
class HeadlineClaims:
    """Measured values behind each headline claim."""

    #: Energy-efficiency ratio (binary / stochastic energy per frame) at 4-bit.
    energy_ratio_4bit: float
    #: Highest precision where the stochastic design is at least as efficient.
    break_even_precision: int
    #: Accuracy gap (this work minus binary) at 8-bit, in percentage points.
    accuracy_gap_8bit_pct: Optional[float]
    #: Accuracy gap at 4-bit, in percentage points.
    accuracy_gap_4bit_pct: Optional[float]
    #: Largest accuracy improvement over the old SC design, percentage points.
    max_improvement_over_old_sc_pct: Optional[float]
    #: Stochastic-to-binary area ratio at 4-bit.
    area_ratio_4bit: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (used by the report writer)."""
        return {
            "energy_ratio_4bit": self.energy_ratio_4bit,
            "break_even_precision": self.break_even_precision,
            "accuracy_gap_8bit_pct": self.accuracy_gap_8bit_pct,
            "accuracy_gap_4bit_pct": self.accuracy_gap_4bit_pct,
            "max_improvement_over_old_sc_pct": self.max_improvement_over_old_sc_pct,
            "area_ratio_4bit": self.area_ratio_4bit,
        }


def summarize(
    hardware: Table3HardwareResult,
    accuracy: Optional[Table3AccuracyResult] = None,
) -> HeadlineClaims:
    """Derive the headline claims from the reproduced Table 3 results."""
    energy_ratio_4bit = hardware.energy_efficiency_at(4)
    break_even = hardware.break_even_precision()
    area_ratio_4bit = hardware.area_ratio_at(4)

    gap_8 = gap_4 = max_improvement = None
    if accuracy is not None:
        rates = accuracy.rates
        if 8 in rates["binary"] and 8 in rates["this_work"]:
            gap_8 = 100.0 * accuracy.gap_to_binary("this_work", 8)
        if 4 in rates["binary"] and 4 in rates["this_work"]:
            gap_4 = 100.0 * accuracy.gap_to_binary("this_work", 4)
        shared = [
            p for p in rates["old_sc"] if p in rates["this_work"]
        ]
        if shared:
            max_improvement = 100.0 * max(
                accuracy.improvement_over_old_sc(p) for p in shared
            )

    return HeadlineClaims(
        energy_ratio_4bit=energy_ratio_4bit,
        break_even_precision=break_even,
        accuracy_gap_8bit_pct=gap_8,
        accuracy_gap_4bit_pct=gap_4,
        max_improvement_over_old_sc_pct=max_improvement,
        area_ratio_4bit=area_ratio_4bit,
    )
