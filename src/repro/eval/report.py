"""Formatting helpers: render reproduced results as paper-style text tables.

Every benchmark prints its rows through these formatters so that the console
output can be compared side by side with the paper's tables, and
EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from typing import Iterable

from ..rng.sng import TABLE1_SCHEMES
from .summary import HeadlineClaims
from .table1 import Table1Result
from .table2 import ADDER_CONFIGS, Table2Result
from .table3_accuracy import Table3AccuracyResult
from .table3_hardware import Table3HardwareResult

__all__ = [
    "format_table1",
    "format_table2",
    "format_table3_accuracy",
    "format_table3_hardware",
    "format_headline_claims",
]

_DESIGN_LABELS = {
    "binary": "Binary",
    "old_sc": "Old SC",
    "this_work": "This Work",
    "binary_no_retrain": "Binary (no retraining)",
}


def _format_row(label: str, cells: Iterable[str], width: int = 12) -> str:
    return f"{label:<34}" + "".join(f"{cell:>{width}}" for cell in cells)


def format_table1(result: Table1Result) -> str:
    """Render the multiplier-MSE table (paper Table 1)."""
    lines = ["Table 1. MSE of stochastic multiplier for different RNG methods"]
    header = [f"{p}-Bit Prec." for p in result.precisions]
    lines.append(_format_row("Number generation scheme", header))
    for scheme, label in TABLE1_SCHEMES.items():
        if scheme not in result.mse:
            continue
        cells = [f"{result.mse[scheme][p]:.2e}" for p in result.precisions]
        lines.append(_format_row(label, cells))
    return "\n".join(lines)


def format_table2(result: Table2Result) -> str:
    """Render the adder-MSE table (paper Table 2)."""
    lines = ["Table 2. MSE of stochastic addition for different SNG methods"]
    header = [f"{p}-Bit Prec." for p in result.precisions]
    lines.append(_format_row("Implementation", header))
    for config, label in ADDER_CONFIGS.items():
        if config not in result.mse:
            continue
        cells = [f"{result.mse[config][p]:.2e}" for p in result.precisions]
        lines.append(_format_row(label, cells))
    return "\n".join(lines)


def format_table3_accuracy(result: Table3AccuracyResult) -> str:
    """Render the misclassification-rate section of Table 3."""
    precisions = sorted(
        {p for design in result.rates.values() for p in design}, reverse=True
    )
    lines = [
        "Table 3 (top). Misclassification rates (%) for full binary and "
        "hybrid stochastic-binary designs",
        _format_row("Design", [f"{p} Bits" for p in precisions]),
    ]
    for design, rates in result.rates.items():
        label = _DESIGN_LABELS.get(design, design)
        cells = [
            f"{100 * rates[p]:.2f}%" if p in rates else "-" for p in precisions
        ]
        lines.append(_format_row(label, cells))
    lines.append(
        f"(baseline full-precision misclassification: "
        f"{100 * result.baseline_misclassification:.2f}%, "
        f"train={result.train_size}, test={result.test_size}, "
        f"sc_mode={result.config.sc_mode})"
    )
    return "\n".join(lines)


def format_table3_hardware(result: Table3HardwareResult) -> str:
    """Render the power / energy / area section of Table 3."""
    rows = result.rows
    precisions = [row.precision for row in rows]
    lines = [
        "Table 3 (bottom). Throughput-normalized power, energy efficiency and area"
        + ("  [calibrated to the paper's 8-bit anchor]" if result.calibrated else "  [raw model]"),
        _format_row("Metric / Design", [f"{p} Bits" for p in precisions]),
        _format_row("Power (mW)      Binary", [f"{r.binary_power_mw:.2f}" for r in rows]),
        _format_row("                This Work", [f"{r.sc_power_mw:.2f}" for r in rows]),
        _format_row("Energy (nJ/frame) Binary", [f"{r.binary_energy_nj:.2f}" for r in rows]),
        _format_row("                This Work", [f"{r.sc_energy_nj:.2f}" for r in rows]),
        _format_row("Area (mm^2)     Binary", [f"{r.binary_area_mm2:.3f}" for r in rows]),
        _format_row("                This Work", [f"{r.sc_area_mm2:.3f}" for r in rows]),
        _format_row("Energy ratio (Binary/This Work)", [f"{r.energy_efficiency_ratio:.1f}x" for r in rows]),
    ]
    return "\n".join(lines)


def format_headline_claims(claims: HeadlineClaims) -> str:
    """Render the headline-claim summary (experiment E8)."""
    lines = ["Headline claims (paper vs. reproduction)"]
    lines.append(
        f"  energy efficiency at 4-bit:   paper 9.8x   measured {claims.energy_ratio_4bit:.1f}x"
    )
    lines.append(
        f"  energy break-even precision:  paper 8 bits measured {claims.break_even_precision} bits"
    )
    if claims.accuracy_gap_8bit_pct is not None:
        lines.append(
            f"  accuracy gap to binary @8b:   paper 0.05%  measured "
            f"{claims.accuracy_gap_8bit_pct:+.2f}%"
        )
    if claims.accuracy_gap_4bit_pct is not None:
        lines.append(
            f"  accuracy gap to binary @4b:   paper 0.25%  measured "
            f"{claims.accuracy_gap_4bit_pct:+.2f}%"
        )
    if claims.max_improvement_over_old_sc_pct is not None:
        lines.append(
            f"  max improvement over old SC:  paper 2.92%  measured "
            f"{claims.max_improvement_over_old_sc_pct:+.2f}%"
        )
    lines.append(
        f"  area ratio (SC / binary) @4b: paper ~2x    measured {claims.area_ratio_4bit:.1f}x"
    )
    return "\n".join(lines)
