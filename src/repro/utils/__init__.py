"""Shared utilities (sliding windows, reproducible configuration helpers)."""

from .windows import conv_output_size, extract_patches, pad_images, patches_to_map

__all__ = ["conv_output_size", "extract_patches", "pad_images", "patches_to_map"]
