"""Sliding-window (im2col) utilities shared by the binary and stochastic layers.

Both the numpy convolution layers of :mod:`repro.nn` and the stochastic
convolution engine of :mod:`repro.sc` operate on the same flattened window
view of the input image: every output position becomes one row of
``kernel_height * kernel_width * channels`` input samples.  Keeping this
transformation in one place guarantees that the binary baseline and the
stochastic design see *exactly* the same pixels for every output, which is a
precondition for a fair accuracy comparison.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["conv_output_size", "pad_images", "extract_patches", "patches_to_map"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_images(images: np.ndarray, padding: int, value: float = 0.0) -> np.ndarray:
    """Zero-pad the two trailing spatial axes of ``(..., H, W)`` image arrays."""
    if padding == 0:
        return images
    if padding < 0:
        raise ValueError("padding must be non-negative")
    pad_width = [(0, 0)] * (images.ndim - 2) + [(padding, padding), (padding, padding)]
    return np.pad(images, pad_width, mode="constant", constant_values=value)


def extract_patches(
    images: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Extract sliding windows from a batch of single-channel images.

    Parameters
    ----------
    images:
        Array of shape ``(batch, H, W)``.
    kernel_size:
        ``(kh, kw)`` window size.
    stride:
        Window stride (same in both dimensions).
    padding:
        Symmetric zero padding applied before extraction.

    Returns
    -------
    patches:
        Array of shape ``(batch, out_h * out_w, kh * kw)`` whose rows are the
        flattened windows in row-major output order.
    """
    images = np.asarray(images)
    if images.ndim != 3:
        raise ValueError(f"expected (batch, H, W) images, got shape {images.shape}")
    kh, kw = kernel_size
    padded = pad_images(images, padding)
    batch, height, width = padded.shape
    out_h = conv_output_size(images.shape[1], kh, stride, padding)
    out_w = conv_output_size(images.shape[2], kw, stride, padding)

    # Build a strided view (batch, out_h, out_w, kh, kw) without copying, then
    # flatten to patch rows.  numpy's as_strided is safe here because every
    # index stays inside the padded array.
    s0, s1, s2 = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, out_h, out_w, kh, kw),
        strides=(s0, s1 * stride, s2 * stride, s1, s2),
        writeable=False,
    )
    return view.reshape(batch, out_h * out_w, kh * kw).copy()


def patches_to_map(
    patch_values: np.ndarray, out_shape: Tuple[int, int]
) -> np.ndarray:
    """Reshape per-patch results ``(batch, P, F)`` back to ``(batch, F, out_h, out_w)``.

    This is a pure reshape/transpose: the dtype of ``patch_values`` is
    preserved exactly, so integer counter values pass through without any
    float round trip (callers must not reintroduce one -- float64 cannot
    represent every int64 above ``2**53``).
    """
    out_h, out_w = out_shape
    batch, patches, filters = patch_values.shape
    if patches != out_h * out_w:
        raise ValueError(
            f"patch count {patches} does not match output shape {out_shape}"
        )
    maps = patch_values.reshape(batch, out_h, out_w, filters)
    return np.transpose(maps, (0, 3, 1, 2))
