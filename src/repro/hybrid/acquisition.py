"""Simulated sensor front end: analog acquisition and ramp-compare conversion.

The paper's system (Fig. 3, Section IV-A) feeds the stochastic first layer
directly from the image sensor: each pixel's analog value is compared against
a shared ramp, and the comparator output *is* the stochastic bit-stream --
no ADC, no SNG, no random number generator on the input path.

There is no physical sensor in this reproduction, so the front end is
simulated (see DESIGN.md): pixels arrive as digital values in ``[0, 1]``,
optional sensor noise models photon/readout noise, and the ramp-compare
converter produces bit-streams with exactly the structure the analog circuit
would emit (exact ones-counts, maximal auto-correlation).  Conversion energy
is tracked as metadata but -- following the paper, which cites ~100 pJ per
conversion versus 100s of nJ per frame of compute -- excluded from the
energy-per-frame results.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..bitstream import stream_length
from ..rng import ramp_compare_batch

__all__ = ["SensorFrontEnd"]


@dataclass
class SensorFrontEnd:
    """Analog-to-stochastic signal acquisition model.

    Parameters
    ----------
    precision:
        Bit precision of the conversion; one ramp period equals
        ``2**precision`` clock cycles.
    noise_sigma:
        Standard deviation of additive Gaussian sensor noise applied to the
        normalized pixel values before conversion (0 disables noise).
    descending_ramp:
        Use a falling ramp (ones placed at the end of the stream).
    seed:
        Seed for the sensor-noise generator.
    conversion_energy_pj:
        Bookkeeping value for the per-pixel conversion energy; reported by
        :meth:`conversion_energy_nj` but never added to compute energy,
        matching the paper's accounting.
    """

    precision: int = 8
    noise_sigma: float = 0.0
    descending_ramp: bool = False
    seed: int = 0
    conversion_energy_pj: float = 100.0

    def __post_init__(self) -> None:
        if self.precision < 2:
            raise ValueError("precision must be at least 2 bits")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")

    @property
    def stream_length(self) -> int:
        """Bit-stream length produced per pixel."""
        return stream_length(self.precision)

    def acquire(self, images: np.ndarray) -> np.ndarray:
        """Apply sensor noise and clip to the valid pixel range ``[0, 1]``."""
        images = np.asarray(images, dtype=np.float64)
        if images.min() < -1e-9 or images.max() > 1.0 + 1e-9:
            raise ValueError("pixel values must lie in [0, 1]")
        if self.noise_sigma == 0.0:
            return np.clip(images, 0.0, 1.0)
        rng = np.random.default_rng(self.seed)
        noisy = images + rng.normal(0.0, self.noise_sigma, size=images.shape)
        return np.clip(noisy, 0.0, 1.0)

    def convert(self, images: np.ndarray) -> np.ndarray:
        """Convert acquired pixels to stochastic bit-streams.

        Returns an array of shape ``images.shape + (2**precision,)``.
        """
        acquired = self.acquire(images)
        return ramp_compare_batch(
            acquired, self.stream_length, descending=self.descending_ramp
        )

    def conversion_energy_nj(self, pixel_count: int) -> float:
        """Total conversion energy for ``pixel_count`` pixels, in nJ (metadata only)."""
        if pixel_count < 0:
            raise ValueError("pixel_count must be non-negative")
        return pixel_count * self.conversion_energy_pj * 1e-3
