"""Fast, calibrated emulation of the stochastic first layer.

Bit-exact simulation of the stochastic convolution (every window, every
kernel, every clock cycle) is the ground truth.  The filter-parallel,
tile-streamed engine path (see :mod:`repro.sc.convolution`) now makes it
feasible at full test-set scale, but it still costs orders of magnitude more
than a matrix multiplication; the emulator in this module provides the
matmul-speed path used by default for the full-test-set accuracy
experiments:

1. the *ideal* quantized dot products are computed with a single matrix
   multiplication (ramp conversion quantizes the inputs, the weight SNGs
   quantize the weights);
2. the residual error of the stochastic engine is modelled at the point that
   actually decides the activation -- the **difference between the positive
   and negative counter values**.  The positive and negative paths share the
   same input bit-streams, so their individual errors are strongly correlated
   and largely cancel in the difference; calibrating the difference (rather
   than each counter independently) captures that cancellation.  The error
   model is the *empirical residual distribution* measured against the
   bit-exact engine on a sample of real windows, resampled at inference time.

:meth:`CalibratedSCEmulator.calibrate` performs the calibration,
:meth:`CalibratedSCEmulator.forward` applies the model, and the test suite
checks the emulator's sign decisions against the bit-exact engine.
DESIGN.md documents this substitution; the ``REPRO_BITEXACT=1`` environment
variable switches the Table 3 harness to full bit-exact evaluation.

The emulator accepts either first-layer engine: the paper's split-weight
:class:`~repro.sc.dotproduct.StochasticDotProductEngine` (calibrating the
positive-minus-negative counter difference) or the rejected
:class:`~repro.sc.bipolar.BipolarDotProductEngine` (calibrating the single
counter's offset from the mid-scale decision point ``N/2``), so the Section
IV-B ablation can also run at full-test-set scale.  Calibration always runs
through the engine's active simulation ``backend`` -- packed words by
default, bit-identical counts either way -- and the engine's evaluation
``mode`` (:mod:`repro.sc.mode`): under the default ``"auto"`` the residual
samples come from the exact count-domain shortcut (TFF and MUX trees) with
no adder-tree stream tensors, so calibration speed scales with the count
path while the measured residuals stay bit-identical to ``mode="streams"``.

Validity range: the emulator is calibrated and validated for stream lengths
of 8 bits and above (precision >= 3).  At 2-bit precision (stream length 4)
the counter values are so coarse that the additive-residual model no longer
captures the engine's behaviour; the experiment harness evaluates such
precisions bit-exactly instead (cheap, because the cost scales with the
stream length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..bitstream import quantize_bipolar, quantize_unipolar
from ..netlist import build_sc_dot_product, simulate_batch
from ..netlist.simulator import BatchSimulationResult
from ..sc.bipolar import BipolarDotProductEngine
from ..sc.convolution import resolve_tile_patches
from ..sc.dotproduct import StochasticDotProductEngine, split_weights
from ..sc.elements.adders import AdderTree
from ..utils.windows import extract_patches, patches_to_map

__all__ = ["EmulationModel", "CalibratedSCEmulator"]


@dataclass
class EmulationModel:
    """Calibrated error statistics of one engine configuration.

    All quantities are expressed in counter LSBs of the *difference* between
    the positive and negative counters (the value the sign activation sees).
    """

    #: Mean of the difference error (bit-exact minus ideal).
    bias: float
    #: Standard deviation of the difference error.
    sigma: float
    #: Number of calibration samples (window, kernel) pairs.
    samples: int
    #: The raw residuals, resampled at inference time.
    residuals: np.ndarray = field(repr=False, default=None)


@dataclass
class CalibratedSCEmulator:
    """Emulates a :class:`StochasticDotProductEngine` at matmul speed.

    Parameters
    ----------
    engine:
        The engine configuration being emulated (its precision, adder type and
        number generators determine the calibrated error model).  Either the
        split-weight unipolar engine or the bipolar alternative.
    seed:
        Seed of the generator used to resample emulation residuals.
    tile_patches:
        Upper bound on how many calibration windows are simulated bit-exactly
        at once (the same tiling contract as
        :class:`~repro.sc.convolution.StochasticConv2D`); ``None`` defers to
        ``REPRO_TILE_PATCHES``, falling back to a single untiled pass.  Any
        tile size produces bit-identical residuals.
    """

    engine: Union[StochasticDotProductEngine, BipolarDotProductEngine]
    seed: int = 0
    model: Optional[EmulationModel] = field(default=None)
    tile_patches: Optional[int] = None

    @property
    def _bipolar(self) -> bool:
        return isinstance(self.engine, BipolarDotProductEngine)

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def calibrate(
        self,
        sample_inputs: np.ndarray,
        sample_weights: np.ndarray,
    ) -> EmulationModel:
        """Measure the engine's counter-difference error on real data.

        Parameters
        ----------
        sample_inputs:
            Unipolar input windows of shape ``(samples, taps)``.
        sample_weights:
            Signed kernel weights of shape ``(kernels, taps)``; every sample
            window is evaluated against every kernel.
        """
        sample_inputs = np.asarray(sample_inputs, dtype=np.float64)
        sample_weights = np.asarray(sample_weights, dtype=np.float64)
        if sample_inputs.ndim != 2 or sample_weights.ndim != 2:
            raise ValueError("calibration expects 2-D inputs and weights")
        if sample_inputs.shape[1] != sample_weights.shape[1]:
            raise ValueError("tap count mismatch between inputs and weights")

        # Bit-exact reference evaluation through the engine's active backend
        # (packed words by default; identical counts either way).  Input
        # streams are generated per tile (bounded memory at any sample
        # count); stream generation is stateless and weight streams / adder
        # nodes are shared across tiles, so tiling never changes a count.
        samples = sample_inputs.shape[0]
        tile = resolve_tile_patches(self.tile_patches)
        tile = tile if tile is not None else max(samples, 1)
        exact_diff = np.empty((samples, sample_weights.shape[0]), dtype=np.float64)
        if self._bipolar:
            # Single counter: the sign activation compares it to N/2.  Fault
            # masks (if any) are keyed on the global sample index, so the
            # residuals match the engine's faulted behaviour at any tiling.
            for start in range(0, samples, tile):
                stop = min(start + tile, samples)
                x_streams = self.engine.apply_faults(
                    self.engine.prepare_inputs(sample_inputs[start:stop]),
                    offset=start,
                )
                for k, kernel in enumerate(sample_weights):
                    result = self.engine.dot_prepared(x_streams, kernel)
                    exact_diff[start:stop, k] = result.count - self.engine.length // 2
        else:
            # Filter-parallel: one weight bank covers every kernel's fused
            # positive/negative dot products per tile.
            bank = self.engine.prepare_weights(sample_weights)
            for start in range(0, samples, tile):
                stop = min(start + tile, samples)
                x_streams = self.engine.apply_faults(
                    self.engine.prepare_inputs(sample_inputs[start:stop]),
                    offset=start,
                )
                pos, neg = bank.counts(x_streams)
                exact_diff[start:stop] = pos - neg
        ideal_diff = self._ideal_difference(sample_inputs, sample_weights)
        # Kernel-major raveling matches the historical per-kernel ordering.
        stacked = (exact_diff - ideal_diff).T.ravel()
        self.model = EmulationModel(
            bias=float(stacked.mean()),
            sigma=float(stacked.std()),
            samples=int(stacked.size),
            residuals=stacked.astype(np.float64),
        )
        return self.model

    def _ideal_difference(self, inputs: np.ndarray, kernels: np.ndarray) -> np.ndarray:
        """Counter-differences an error-free engine would produce (in LSBs).

        ``kernels`` has shape ``(kernels, taps)``; the result has shape
        ``(samples, kernels)``.  For the split-weight engine this is the
        positive-minus-negative counter difference; for the bipolar engine it
        is the single counter's offset from the mid-scale ``N/2``
        (``count - N/2``), which is the quantity its sign activation compares
        against zero.
        """
        n = self.engine.length
        taps = inputs.shape[-1]
        tree_scale = 1 << AdderTree().depth(taps)
        # One small matmul per kernel, not one (samples, kernels) matmul: the
        # per-column summation order keeps every float bit-identical to the
        # historical per-kernel calibration loop, so calibrated models (and
        # the noise they resample) are reproducible across versions.
        if self._bipolar:
            quantized = quantize_bipolar(inputs, self.engine.precision)
            w_q = quantize_bipolar(kernels, self.engine.precision)
            columns = [(quantized @ w) / tree_scale * (n / 2) for w in w_q]
        else:
            quantized = quantize_unipolar(inputs, self.engine.precision)
            w_pos, w_neg = split_weights(kernels)
            columns = [
                (quantized @ w) / tree_scale * n for w in (w_pos - w_neg)
            ]
        return np.stack(columns, axis=-1)

    # ------------------------------------------------------------------ #
    # trace-driven switching activity (batched netlist simulation)
    # ------------------------------------------------------------------ #
    def measure_activity(
        self,
        windows: np.ndarray,
        weights: np.ndarray,
        backend: Optional[str] = None,
    ) -> BatchSimulationResult:
        """Gate-level switching activity of the engine on a real trace set.

        Builds the engine's dot-product netlist
        (:func:`repro.netlist.circuits.build_sc_dot_product`), converts every
        calibration window into the engine's actual input bit-streams (one
        trace per window, stacked on the leading axis) plus the shared weight
        streams, and runs one batched word-parallel simulation
        (:func:`repro.netlist.simulator.simulate_batch`).  The returned
        :class:`~repro.netlist.simulator.BatchSimulationResult` plugs
        directly into :func:`repro.netlist.power.estimate_power`, giving the
        PrimeTime-style switching-annotated power of the Table 3 hardware
        rows from data-driven rather than assumed activity.

        Parameters
        ----------
        windows:
            Unipolar input windows of shape ``(traces, taps)``.
        weights:
            One signed kernel of shape ``(taps,)`` (shared by every trace).
        backend:
            Simulation backend override; defaults to the engine's backend.
        """
        if self._bipolar:
            raise ValueError(
                "measure_activity models the split-weight engine netlist; "
                "the bipolar engine has no gate-level builder"
            )
        if self.engine.adder not in ("tff", "mux"):
            raise ValueError(
                f"no netlist builder for adder {self.engine.adder!r}"
            )
        windows = np.asarray(windows, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if windows.ndim != 2:
            raise ValueError("windows must have shape (traces, taps)")
        if weights.shape != (windows.shape[1],):
            raise ValueError("weights must have shape (taps,)")

        taps = windows.shape[1]
        netlist = build_sc_dot_product(
            taps, self.engine.precision + 1, adder=self.engine.adder
        )
        x_bits = self.engine.input_streams(windows)  # (traces, taps, N)
        wp_bits, wn_bits = self.engine.weight_streams(weights)  # (taps, N) each

        stimulus = {}
        for i in range(taps):
            stimulus[f"x{i}"] = x_bits[:, i, :]
            stimulus[f"wp{i}"] = wp_bits[i]
            stimulus[f"wn{i}"] = wn_bits[i]
        # MUX trees expose per-node select inputs, driven by free-running
        # 0.5-density sources shared across the array (hence across traces).
        rng = np.random.default_rng(self.seed)
        for net in netlist.primary_inputs:
            if net not in stimulus:
                stimulus[net] = rng.integers(
                    0, 2, self.engine.length, dtype=np.int64
                ).astype(np.uint8)
        return simulate_batch(
            netlist,
            stimulus,
            backend=backend if backend is not None else self.engine.backend,
            strict=True,
        )

    # ------------------------------------------------------------------ #
    # fast forward pass
    # ------------------------------------------------------------------ #
    def forward_patches(
        self, patches: np.ndarray, kernels: np.ndarray, soft_threshold: float = 0.0
    ) -> np.ndarray:
        """Emulated sign activations for pre-extracted patches.

        ``patches`` has shape ``(batch, P, taps)`` and ``kernels`` shape
        ``(filters, taps)``; the result has shape ``(batch, P, filters)`` with
        values in ``{-1, 0, +1}``.
        """
        if self.model is None:
            raise RuntimeError("emulator must be calibrated before use")
        patches = np.asarray(patches, dtype=np.float64)
        kernels = np.asarray(kernels, dtype=np.float64)
        n = self.engine.length
        taps = patches.shape[-1]
        tree_scale = 1 << AdderTree().depth(taps)

        if self._bipolar:
            quantized = quantize_bipolar(patches, self.engine.precision)
            w_q = quantize_bipolar(kernels, self.engine.precision)
            ideal_diff = quantized @ w_q.T / tree_scale * (n / 2)
            diff_range = n / 2
        else:
            quantized = quantize_unipolar(patches, self.engine.precision)
            w_pos, w_neg = split_weights(kernels)
            ideal_diff = quantized @ (w_pos - w_neg).T / tree_scale * n
            diff_range = n

        rng = np.random.default_rng(self.seed)
        noise = rng.choice(self.model.residuals, size=ideal_diff.shape)
        diff = np.round(ideal_diff + noise)
        diff = np.clip(diff, -diff_range, diff_range)

        if self._bipolar:
            # The bipolar sign activation emits +-1 only; ties resolve to +1.
            sign = np.where(diff >= 0, 1.0, -1.0)
        else:
            sign = np.sign(diff)
        if soft_threshold > 0.0:
            sign = np.where(np.abs(diff) < soft_threshold * diff_range, 0.0, sign)
        return sign

    def forward(
        self,
        images: np.ndarray,
        kernels: np.ndarray,
        padding: int = 0,
        soft_threshold: float = 0.0,
    ) -> np.ndarray:
        """Emulated first-layer output maps, shape ``(batch, filters, H, W)``."""
        images = np.asarray(images, dtype=np.float64)
        kernels = np.asarray(kernels, dtype=np.float64)
        if kernels.ndim != 3:
            raise ValueError("kernels must have shape (filters, kh, kw)")
        kh, kw = kernels.shape[1:]
        patches = extract_patches(images, (kh, kw), padding=padding)
        flat_kernels = kernels.reshape(kernels.shape[0], -1)
        sign = self.forward_patches(patches, flat_kernels, soft_threshold=soft_threshold)
        out_h = images.shape[1] + 2 * padding - kh + 1
        out_w = images.shape[2] + 2 * padding - kw + 1
        return patches_to_map(sign, (out_h, out_w))
