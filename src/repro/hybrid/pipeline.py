"""The hybrid stochastic-binary network (paper Fig. 3, Sections IV-V).

:class:`HybridStochasticBinaryNetwork` glues together all the pieces:

* a :class:`~repro.hybrid.acquisition.SensorFrontEnd` converts pixels to
  stochastic bit-streams (simulated sensor);
* a :class:`~repro.sc.convolution.StochasticConv2D` engine evaluates the
  first LeNet-5 layer in the stochastic domain, using the *conditioned*
  (scaled, quantized) weights of a retrained binary model;
* the remaining layers of that retrained model run in the binary domain.

The class supports three evaluation modes for the first layer:

* ``"binary"``    -- the frozen quantized sign layer itself (the "Binary"
                     row of Table 3);
* ``"bitexact"``  -- full bit-level stochastic simulation (ground truth);
* ``"emulate"``   -- the calibrated fast emulator
                     (:mod:`repro.hybrid.emulation`).

Bit-level simulation runs on the engine's selected ``backend``: the default
packed backend stores 64 stream bits per machine word (an order of magnitude
faster, bit-identical counters), while ``backend="unpacked"`` keeps the
byte-per-bit reference arrays (see :mod:`repro.bitstream.packed`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..faults.spec import FaultSpec
from ..nn.activations import Sign
from ..nn.layers import Conv2D, StochasticResolutionConv2D
from ..nn.network import Sequential
from ..sc.convolution import StochasticConv2D, resolve_tile_patches
from ..sc.dotproduct import StochasticDotProductEngine, new_sc_engine
from .acquisition import SensorFrontEnd
from .emulation import CalibratedSCEmulator

__all__ = ["HybridStochasticBinaryNetwork"]


@dataclass
class _FirstLayerInfo:
    kernels: np.ndarray  # (filters, kh, kw)
    padding: int
    stride: int
    sign_threshold: float


class HybridStochasticBinaryNetwork:
    """A retrained LeNet-5 whose first layer executes in the stochastic domain.

    Parameters
    ----------
    model:
        A trained :class:`Sequential` whose first layer is a (frozen) conv
        layer with sign activation and conditioned weights -- typically the
        output of :func:`repro.nn.retraining.quantize_and_freeze` followed by
        :func:`repro.nn.retraining.retrain`.
    engine:
        Stochastic dot-product engine configuration; defaults to the paper's
        proposed design at the precision implied by the caller.
    front_end:
        Sensor front-end model; defaults to a noise-free front end at the
        engine's precision.
    soft_threshold:
        Soft-thresholding level applied to the stochastic sign activation
        (fraction of the counter range).
    calibration_samples:
        Number of input windows used to calibrate the fast emulator.
    tile_patches:
        Upper bound on the number of image patches simulated at once in the
        bit-exact first-layer path (and during emulator calibration);
        ``None`` defers to the ``REPRO_TILE_PATCHES`` environment variable.
        Tiling bounds peak memory at full-test-set scale and never changes a
        counter value.
    faults:
        Optional :class:`~repro.faults.FaultSpec` describing the fault
        environment of the stochastic first layer.  Stream-level faults are
        threaded into the engine (forcing its stream-domain evaluation, see
        :mod:`repro.faults`), and a non-zero ``sensor_noise_sigma`` is
        applied by the sensor front end during acquisition.  Overrides any
        fault spec already carried by ``engine``.  The binary layers are
        unaffected -- this models defects in the stochastic fabric only.
    """

    def __init__(
        self,
        model: Sequential,
        engine: Optional[StochasticDotProductEngine] = None,
        front_end: Optional[SensorFrontEnd] = None,
        soft_threshold: float = 0.0,
        calibration_samples: int = 512,
        seed: int = 0,
        tile_patches: Optional[int] = None,
        faults: Optional[FaultSpec] = None,
    ) -> None:
        self.model = model
        engine = engine if engine is not None else new_sc_engine(precision=8)
        if faults is not None:
            engine = dataclasses.replace(engine, faults=faults)
        self.faults = engine.faults
        self.engine = engine
        front_end = (
            front_end
            if front_end is not None
            else SensorFrontEnd(precision=engine.precision)
        )
        if faults is not None and faults.sensor_noise_sigma > 0.0:
            front_end = dataclasses.replace(
                front_end, noise_sigma=faults.sensor_noise_sigma
            )
        self.front_end = front_end
        if self.front_end.precision != self.engine.precision:
            raise ValueError(
                "front end and engine must use the same precision "
                f"({self.front_end.precision} vs {self.engine.precision})"
            )
        self.soft_threshold = float(soft_threshold)
        self.calibration_samples = int(calibration_samples)
        self.seed = int(seed)
        self.tile_patches = resolve_tile_patches(tile_patches)
        self._info = self._extract_first_layer(model)
        self._emulator: Optional[CalibratedSCEmulator] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _extract_first_layer(model: Sequential) -> _FirstLayerInfo:
        if not model.layers or not isinstance(model.layers[0], Conv2D):
            raise ValueError("model's first layer must be a Conv2D")
        first: Conv2D = model.layers[0]
        if first.in_channels != 1:
            raise ValueError("the stochastic first layer operates on 1-channel images")
        if isinstance(first, StochasticResolutionConv2D):
            sign_threshold = first.soft_threshold
        elif isinstance(first.activation, Sign):
            sign_threshold = first.activation.threshold
        else:
            raise ValueError(
                "model's first layer must use the sign activation or emulate the "
                "stochastic resolution (apply quantize_and_freeze first)"
            )
        weights = first.weights[:, 0, :, :].copy()
        if np.any(np.abs(weights) > 1.0 + 1e-9):
            raise ValueError("first-layer weights must be conditioned into [-1, 1]")
        return _FirstLayerInfo(
            kernels=weights,
            padding=first.padding,
            stride=first.stride,
            sign_threshold=sign_threshold,
        )

    @property
    def kernels(self) -> np.ndarray:
        """The conditioned first-layer kernels loaded into the SC engine."""
        return self._info.kernels

    @property
    def precision(self) -> int:
        """Bit precision of the stochastic first layer."""
        return self.engine.precision

    @property
    def backend(self) -> str:
        """Simulation backend of the stochastic engine ("packed" or "unpacked")."""
        return self.engine.backend

    # ------------------------------------------------------------------ #
    # first-layer evaluation modes
    # ------------------------------------------------------------------ #
    def first_layer_binary(self, images: np.ndarray) -> np.ndarray:
        """Evaluate the first layer in the binary domain (quantized + sign)."""
        x = np.asarray(images, dtype=np.float64)[:, np.newaxis, :, :]
        return self.model.layers[0].forward(x)

    def first_layer_bitexact(self, images: np.ndarray) -> np.ndarray:
        """Evaluate the first layer with full bit-level stochastic simulation."""
        acquired = self.front_end.acquire(np.asarray(images, dtype=np.float64))
        layer = StochasticConv2D(
            self._info.kernels,
            engine=self.engine,
            padding=self._info.padding,
            stride=self._info.stride,
            soft_threshold=self.soft_threshold,
            tile_patches=self.tile_patches,
        )
        return layer.forward(acquired).sign.astype(np.float64)

    def first_layer_emulated(self, images: np.ndarray) -> np.ndarray:
        """Evaluate the first layer with the calibrated fast emulator."""
        emulator = self._get_emulator(images)
        acquired = self.front_end.acquire(np.asarray(images, dtype=np.float64))
        return emulator.forward(
            acquired,
            self._info.kernels,
            padding=self._info.padding,
            soft_threshold=self.soft_threshold,
        )

    def _get_emulator(self, images: np.ndarray) -> CalibratedSCEmulator:
        if self._emulator is None:
            emulator = CalibratedSCEmulator(
                self.engine, seed=self.seed, tile_patches=self.tile_patches
            )
            rng = np.random.default_rng(self.seed)
            kh, kw = self._info.kernels.shape[1:]
            taps = kh * kw
            from ..utils.windows import extract_patches

            sample_images = np.asarray(images, dtype=np.float64)
            patches = extract_patches(
                sample_images[: min(8, sample_images.shape[0])],
                (kh, kw),
                padding=self._info.padding,
            ).reshape(-1, taps)
            count = min(self.calibration_samples, patches.shape[0])
            chosen = patches[rng.choice(patches.shape[0], size=count, replace=False)]
            flat_kernels = self._info.kernels.reshape(self._info.kernels.shape[0], -1)
            kernel_sample = flat_kernels[: min(8, flat_kernels.shape[0])]
            emulator.calibrate(chosen, kernel_sample)
            self._emulator = emulator
        return self._emulator

    # ------------------------------------------------------------------ #
    # full-network inference
    # ------------------------------------------------------------------ #
    def forward(self, images: np.ndarray, mode: str = "emulate") -> np.ndarray:
        """Run the full hybrid network and return the output logits.

        ``mode`` selects the first-layer evaluation: ``"binary"``,
        ``"bitexact"`` or ``"emulate"``.
        """
        if mode == "binary":
            first = self.first_layer_binary(images)
        elif mode == "bitexact":
            first = self.first_layer_bitexact(images)
        elif mode == "emulate":
            first = self.first_layer_emulated(images)
        else:
            raise ValueError(f"unknown mode {mode!r}")
        out = first
        for layer in self.model.layers[1:]:
            out = layer.forward(out, training=False)
        return out

    def predict_classes(
        self, images: np.ndarray, mode: str = "emulate", batch_size: int = 64
    ) -> np.ndarray:
        """Predicted class per image."""
        images = np.asarray(images, dtype=np.float64)
        predictions = []
        for start in range(0, images.shape[0], batch_size):
            logits = self.forward(images[start : start + batch_size], mode=mode)
            predictions.append(np.argmax(logits, axis=1))
        return np.concatenate(predictions)

    def misclassification_rate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        mode: str = "emulate",
        limit: Optional[int] = None,
        batch_size: int = 64,
    ) -> float:
        """The paper's metric: fraction of test images classified incorrectly."""
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels)
        if limit is not None:
            images = images[:limit]
            labels = labels[:limit]
        predictions = self.predict_classes(images, mode=mode, batch_size=batch_size)
        return float(np.mean(predictions != labels))

    def __repr__(self) -> str:
        return (
            f"HybridStochasticBinaryNetwork(precision={self.precision}, "
            f"adder={self.engine.adder!r}, filters={self.kernels.shape[0]})"
        )
