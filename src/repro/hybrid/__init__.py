"""The hybrid stochastic-binary network: acquisition, SC first layer, binary rest."""

from .acquisition import SensorFrontEnd
from .emulation import CalibratedSCEmulator, EmulationModel
from .pipeline import HybridStochasticBinaryNetwork

__all__ = [
    "SensorFrontEnd",
    "CalibratedSCEmulator",
    "EmulationModel",
    "HybridStochasticBinaryNetwork",
]
