"""repro -- reproduction of "Energy-Efficient Hybrid Stochastic-Binary Neural
Networks for Near-Sensor Computing" (Lee, Alaghi, Hayes, Sathe, Ceze --
DATE 2017).

The package is organized bottom-up, mirroring the paper's stack:

* :mod:`repro.bitstream` -- stochastic number encodings and the
  :class:`~repro.bitstream.Bitstream` container.
* :mod:`repro.rng` -- number sources (LFSR, low-discrepancy, ramp) and
  stochastic number generators.
* :mod:`repro.sc` -- stochastic arithmetic elements (including the paper's
  TFF adder) and the stochastic dot-product / convolution engines.
* :mod:`repro.netlist` -- a gate-level netlist substrate with a 65 nm-like
  cell library, cycle simulation, and area / power estimation (stands in for
  the Synopsys synthesis flow of Section VI).
* :mod:`repro.nn` -- a from-scratch numpy neural-network library (layers,
  backprop, training) standing in for TensorFlow/Keras, plus quantization and
  retraining utilities.
* :mod:`repro.hybrid` -- the hybrid stochastic-binary network: simulated
  sensor acquisition, the stochastic first layer, and the binary remainder.
* :mod:`repro.datasets` -- the MNIST-like digit dataset used for evaluation.
* :mod:`repro.hw` -- area / power / energy models of the stochastic and
  binary convolution engines (Table 3, bottom half).
* :mod:`repro.eval` -- the experiment harness that regenerates every table.
"""

from . import bitstream, datasets, eval, hw, hybrid, netlist, nn, rng, sc, utils
from .bitstream import Bitstream
from .hybrid import HybridStochasticBinaryNetwork, SensorFrontEnd
from .nn import Sequential, build_lenet5, build_lenet5_small, quantize_and_freeze, retrain
from .rng import ComparatorSNG, LFSRSource, RampCompareSNG, VanDerCorputSource
from .sc import (
    MuxAdder,
    OrAdder,
    StochasticConv2D,
    StochasticDotProductEngine,
    TffAdder,
    new_sc_engine,
    old_sc_engine,
)

__version__ = "0.1.0"

__all__ = [
    "Bitstream",
    "ComparatorSNG",
    "RampCompareSNG",
    "LFSRSource",
    "VanDerCorputSource",
    "TffAdder",
    "MuxAdder",
    "OrAdder",
    "StochasticDotProductEngine",
    "StochasticConv2D",
    "new_sc_engine",
    "old_sc_engine",
    "SensorFrontEnd",
    "HybridStochasticBinaryNetwork",
    "Sequential",
    "build_lenet5",
    "build_lenet5_small",
    "quantize_and_freeze",
    "retrain",
    "bitstream",
    "rng",
    "sc",
    "netlist",
    "nn",
    "hybrid",
    "datasets",
    "hw",
    "eval",
    "utils",
    "__version__",
]
