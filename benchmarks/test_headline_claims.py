"""Benchmark E8 -- the paper's headline claims (abstract / conclusion).

Claims checked against the reproduction:

1. "9.8x energy efficiency savings" at 4-bit precision, break-even at 8-bit;
2. "application-level accuracies within 0.05%" of the all-binary design
   (8-bit) -- relaxed here because the dataset and training budget are scaled
   down, see DESIGN.md;
3. "up to 2.92% better accuracy than previous SC designs";
4. retraining compensates for the precision loss introduced by SC.
"""

from repro.eval import format_headline_claims, run_table3_hardware, summarize


def test_headline_claims(benchmark, accuracy_result):
    hardware = benchmark.pedantic(
        run_table3_hardware,
        kwargs={"precisions": (8, 7, 6, 5, 4, 3, 2)},
        rounds=1,
        iterations=1,
    )
    claims = summarize(hardware, accuracy_result)
    print()
    print(format_headline_claims(claims))

    # Claim 1: order-of-magnitude energy advantage at 4 bits, break-even at 8.
    assert claims.energy_ratio_4bit > 5.0
    assert claims.break_even_precision == 8

    # Claim 2: the hybrid design tracks the binary design at 8- and 4-bit
    # precision.  The paper reports 0.05% / 0.25% gaps on MNIST with a fully
    # trained LeNet-5; the scaled-down reproduction allows a few percent.
    assert claims.accuracy_gap_8bit_pct is not None
    assert claims.accuracy_gap_8bit_pct < 10.0
    assert claims.accuracy_gap_4bit_pct is not None
    assert claims.accuracy_gap_4bit_pct < 10.0

    # Claim 3: the proposed design improves on the old SC design at at least
    # one precision point.
    assert claims.max_improvement_over_old_sc_pct is not None
    assert claims.max_improvement_over_old_sc_pct > 0.0

    # Claim 4: retraining recovers accuracy (no-retraining row is far worse).
    rates = accuracy_result.rates
    for precision in rates["binary"]:
        assert rates["binary"][precision] < rates["binary_no_retrain"][precision]

    # Bonus: area ratio at 4 bits close to the paper's ~2x.
    assert 1.3 < claims.area_ratio_4bit < 3.5
