"""Shared fixtures for the benchmark suite.

The expensive Table 3 accuracy experiment is executed once per benchmark
session (lazily, on first use) and shared between the accuracy benchmark,
the headline-claims benchmark and the retraining ablation.  Its size is
deliberately scaled down from the paper's full MNIST run so the whole
benchmark suite completes on a laptop-class CPU; see DESIGN.md ("Known
scale-downs") and EXPERIMENTS.md for the exact configuration and for how to
scale it back up (environment variables REPRO_TRAIN_SIZE, REPRO_TEST_SIZE,
REPRO_EVAL_IMAGES, REPRO_BITEXACT).
"""

from __future__ import annotations

import os

import pytest

from repro.eval import AccuracyConfig, run_table3_accuracy


def _benchmark_accuracy_config() -> AccuracyConfig:
    """The scaled-down configuration used by the benchmark suite."""
    return AccuracyConfig(
        precisions=(8, 6, 4, 3, 2),
        train_size=int(os.environ.get("REPRO_TRAIN_SIZE", 1500)),
        test_size=int(os.environ.get("REPRO_TEST_SIZE", 400)),
        baseline_epochs=4,
        retrain_epochs=3,
        sc_mode="emulate",
        include_no_retrain=True,
        soft_threshold=0.02,
        seed=0,
    )


@pytest.fixture(scope="session")
def accuracy_result():
    """The shared Table 3 accuracy run (computed once per benchmark session)."""
    return run_table3_accuracy(_benchmark_accuracy_config())


@pytest.fixture(scope="session")
def accuracy_config():
    """The configuration behind :func:`accuracy_result` (for reporting)."""
    return _benchmark_accuracy_config()
