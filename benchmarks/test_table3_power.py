"""Benchmark E4 -- regenerate Table 3 (power rows): throughput-normalized power.

Paper reference (mW, throughput-normalized to the stochastic design):

    Design     8 Bits  7 Bits  6 Bits  5 Bits  4 Bits  3 Bits  2 Bits
    Binary      40.95   72.80  121.52  204.96  325.36  501.76  683.20
    This Work   33.17   33.55   33.26   33.01   33.20   29.96   28.35

Checked shape: binary power grows steeply as precision drops (it must be
clocked exponentially faster to match the stochastic frame rate), while the
stochastic design's power stays nearly flat.
"""

import numpy as np

from repro.eval import format_table3_hardware, run_table3_hardware
from repro.hw import PAPER_TABLE3_REFERENCE


def test_table3_power(benchmark):
    result = benchmark.pedantic(
        run_table3_hardware,
        kwargs={"precisions": (8, 7, 6, 5, 4, 3, 2)},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table3_hardware(result))

    by_precision = result.by_precision()
    reference = PAPER_TABLE3_REFERENCE

    # Binary throughput-normalized power increases monotonically as precision drops.
    binary_power = [by_precision[p].binary_power_mw for p in (8, 7, 6, 5, 4, 3, 2)]
    assert all(b > a for a, b in zip(binary_power, binary_power[1:]))
    assert by_precision[2].binary_power_mw > 8 * by_precision[8].binary_power_mw

    # Stochastic power is nearly flat (within ~30% across the whole sweep).
    sc_power = [by_precision[p].sc_power_mw for p in (8, 7, 6, 5, 4, 3, 2)]
    assert max(sc_power) / min(sc_power) < 1.3

    # The calibrated 8-bit anchor matches the paper by construction, and each
    # measured column stays within a factor of ~2 of the paper's value.
    for precision, paper_value in reference["binary_power_mw"].items():
        measured = by_precision[precision].binary_power_mw
        assert 0.4 * paper_value < measured < 2.5 * paper_value, precision
    for precision, paper_value in reference["sc_power_mw"].items():
        measured = by_precision[precision].sc_power_mw
        assert 0.5 * paper_value < measured < 2.0 * paper_value, precision

    # Power advantage at 4 bits is roughly an order of magnitude (paper: 9.8x).
    assert by_precision[4].power_ratio > 5.0
    print(f"power ratio at 4 bits: {by_precision[4].power_ratio:.1f}x (paper 9.8x)")
    print(f"mean abs log-error vs paper (binary power): "
          f"{np.mean([abs(np.log(by_precision[p].binary_power_mw / v)) for p, v in reference['binary_power_mw'].items()]):.2f}")
