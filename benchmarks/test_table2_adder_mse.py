"""Benchmark E2 -- regenerate Table 2 (stochastic adder MSE per implementation).

Paper reference (Table 2, lower is better):

    Implementation                  8-Bit      4-Bit
    Old adder  Random + LFSR        3.24e-4    5.55e-3
    Old adder  Random + TFF         5.49e-4    5.49e-3
    Old adder  LFSR + TFF           1.06e-4    2.66e-3
    New adder (Fig. 2b)             1.91e-6    4.88e-4

The proposed TFF adder must beat every MUX-adder configuration by a wide
margin at both precisions, and its error must sit at the half-LSB rounding
level (its only error source).
"""

from repro.eval import format_table2, run_table2


def test_table2_adder_mse(benchmark):
    result = benchmark.pedantic(
        run_table2, kwargs={"precisions": (8, 4)}, rounds=1, iterations=1
    )
    print()
    print(format_table2(result))

    old_configs = ("old_random_lfsr", "old_random_tff", "old_lfsr_tff")
    # The paper's own margins: ~55x over the best old configuration at 8-bit,
    # ~5.5x at 4-bit.  Require at least 10x and 4x respectively.
    margins = {8: 10.0, 4: 4.0}
    for precision in (8, 4):
        new = result.mse["new_tff"][precision]
        for config in old_configs:
            assert result.mse[config][precision] > margins[precision] * new, (
                config,
                precision,
            )

    # The new adder's MSE is at the quantization floor: ~(1/2N)^2.
    assert result.mse["new_tff"][8] < (1.0 / 256) ** 2
    assert result.mse["new_tff"][4] < (1.0 / 16) ** 2
    # Improvement factor comparable to the paper's (about 55x at 8 bits).
    assert result.improvement_factor(8) > 20
