"""Ablation A3 / E7 -- adder behaviour vs. bit-stream length and fan-in.

Covers two paper claims that do not have their own table:

* Fig. 2c -- the TFF adder's result is exact whenever representable and its
  rounding direction is set by the flip-flop's initial state;
* Section III -- MUX-adder error compounds through an adder tree while the
  TFF adder tree's error stays bounded by its depth, across bit-stream
  lengths and fan-ins.
"""

import numpy as np

from repro.bitstream import Bitstream
from repro.sc import AdderTree, MuxAdder, TffAdder, tff_add


def _tree_error(adder_factory, fan_in, length, trials, rng):
    """RMS error of an adder tree against the exact scaled sum."""
    tree = AdderTree(adder_factory)
    errors = []
    for _ in range(trials):
        values = rng.random(fan_in)
        streams = [
            Bitstream.from_exact(v, length).permute(rng=int(rng.integers(1 << 30)))
            for v in values
        ]
        result = tree.reduce(streams)
        exact = sum(s.probability for s in streams) * tree.scale_factor(fan_in)
        errors.append((result.probability - exact) ** 2)
    return float(np.sqrt(np.mean(errors)))


def test_adder_sweep(benchmark):
    rng = np.random.default_rng(0)

    def sweep():
        results = {}
        for length in (16, 64, 256):
            for fan_in in (4, 16, 25):
                results[("tff", length, fan_in)] = _tree_error(
                    TffAdder, fan_in, length, trials=8, rng=rng
                )
                results[("mux", length, fan_in)] = _tree_error(
                    lambda: MuxAdder(seed=int(rng.integers(1 << 30))),
                    fan_in,
                    length,
                    trials=8,
                    rng=rng,
                )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  adder  length  fan-in   RMS error")
    for (adder, length, fan_in), error in sorted(results.items()):
        print(f"  {adder:4s}   {length:5d}  {fan_in:5d}    {error:.5f}")

    # The TFF tree beats the MUX tree in every configuration.
    for length in (16, 64, 256):
        for fan_in in (4, 16, 25):
            assert results[("tff", length, fan_in)] <= results[("mux", length, fan_in)], (
                length,
                fan_in,
            )

    # TFF tree error is bounded by depth/N (up to one LSB per level).
    for length in (16, 64, 256):
        for fan_in in (4, 16, 25):
            depth = AdderTree().depth(fan_in)
            assert results[("tff", length, fan_in)] <= depth / length + 1e-9

    # Fig. 2c: rounding direction follows the initial state.
    x = Bitstream("0100 1010")
    y = Bitstream("0010 0010")
    assert tff_add(x, y, initial_state=0) == Bitstream("0010 0010")
    assert tff_add(x, y, initial_state=1) == Bitstream("0100 1010")
