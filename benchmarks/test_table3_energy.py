"""Benchmark E5 -- regenerate Table 3 (energy rows): energy efficiency (nJ/frame).

Paper reference (nJ per frame):

    Design     8 Bits  7 Bits  6 Bits  5 Bits  4 Bits  3 Bits  2 Bits
    Binary     670.92  596.38  497.74  419.76  333.17  256.90  174.90
    This Work  543.42  274.82  136.22   67.60   34.00   15.34    7.26

Checked shape: the stochastic design's energy per frame halves with every
bit of precision removed (run time scales with 2^b at near-constant power),
while the binary design's energy decreases only gradually; the stochastic
design breaks even at 8 bits and is roughly an order of magnitude more
efficient at 4 bits.
"""

from repro.eval import run_table3_hardware
from repro.hw import PAPER_TABLE3_REFERENCE


def test_table3_energy(benchmark):
    result = benchmark.pedantic(
        run_table3_hardware,
        kwargs={"precisions": (8, 7, 6, 5, 4, 3, 2)},
        rounds=1,
        iterations=1,
    )
    by_precision = result.by_precision()
    reference = PAPER_TABLE3_REFERENCE

    print()
    print("precision   binary nJ (paper)    this-work nJ (paper)    ratio (paper)")
    for p in (8, 7, 6, 5, 4, 3, 2):
        row = by_precision[p]
        paper_ratio = reference["binary_energy_nj"][p] / reference["sc_energy_nj"][p]
        print(
            f"  {p}        {row.binary_energy_nj:8.1f} ({reference['binary_energy_nj'][p]:.1f})"
            f"      {row.sc_energy_nj:8.1f} ({reference['sc_energy_nj'][p]:.1f})"
            f"       {row.energy_efficiency_ratio:4.1f}x ({paper_ratio:.1f}x)"
        )

    # Stochastic energy decays near-exponentially with precision.
    for high, low in zip((8, 7, 6, 5, 4, 3), (7, 6, 5, 4, 3, 2)):
        ratio = by_precision[high].sc_energy_nj / by_precision[low].sc_energy_nj
        assert 1.5 < ratio < 2.6, (high, low, ratio)

    # Binary energy decreases far more slowly (narrower datapath only).
    assert by_precision[8].binary_energy_nj / by_precision[2].binary_energy_nj < 10

    # Break-even at 8 bits; roughly an order of magnitude advantage at 4 bits
    # (paper: 9.8x), at least 5x in the scaled-down model.
    assert result.break_even_precision() == 8
    assert result.energy_efficiency_at(4) > 5.0

    # Magnitudes stay within ~2.5x of the paper's columns.
    for precision, paper_value in reference["sc_energy_nj"].items():
        measured = by_precision[precision].sc_energy_nj
        assert 0.4 * paper_value < measured < 2.5 * paper_value, precision
