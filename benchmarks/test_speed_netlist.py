"""Benchmark: packed netlist simulator and bipolar engine vs. their references.

Times the paths the packed-word backend accelerates -- the
activity-capturing netlist simulation behind the Table 3 power numbers, the
Section IV-B bipolar dot-product engine, the LFSR/SNG netlists that used to
force the per-cycle fallback (now resolved word-parallel through narrow
feedback cores with periodic wrapping), and batched multi-trace simulation
-- asserts each meets its speedup floor, and writes a ``BENCH_netlist.json``
artifact so the speedup trajectory can be tracked across commits, alongside
``BENCH_packed.json``.

Timings use best-of-``REPEATS`` wall-clock so a single scheduler hiccup on a
loaded CI machine cannot fail the regression assertion.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.netlist import build_sc_dot_product, build_sng, simulate, simulate_batch
from repro.rng import MAXIMAL_TAPS
from repro.sc import BipolarDotProductEngine

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_netlist.json"
REPEATS = 3


def best_of(fn, repeats=REPEATS):
    """Best wall-clock of ``repeats`` runs, plus the last return value."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_packed_netlist_toggle_count_speedup():
    # The Table 3 activity circuit: one full stochastic dot-product engine
    # (25 taps, 9-bit counters) driven by a random bit-stream trace.
    taps, counter_bits, cycles = 25, 9, 1024
    netlist = build_sc_dot_product(taps, counter_bits, adder="tff")
    rng = np.random.default_rng(0)
    stimulus = {
        net: rng.integers(0, 2, cycles).astype(np.uint8)
        for net in netlist.primary_inputs
    }

    unpacked_s, unpacked = best_of(
        lambda: simulate(netlist, stimulus, backend="unpacked")
    )
    packed_s, packed = best_of(
        lambda: simulate(netlist, stimulus, backend="packed")
    )

    # Correctness first: the speedup claim is only meaningful bit-identically.
    assert packed.toggles == unpacked.toggles
    for net in unpacked.waveforms:
        np.testing.assert_array_equal(packed.waveforms[net], unpacked.waveforms[net])
    assert packed.average_activity() == unpacked.average_activity()

    speedup = unpacked_s / packed_s
    print(
        f"\nnetlist toggle count, {len(netlist.instances)} cells x {cycles} cycles: "
        f"cycle loop {unpacked_s * 1e3:.0f} ms, packed {packed_s * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 5.0, (
        f"packed netlist simulation only {speedup:.1f}x faster than the "
        f"cycle loop (floor is 5x at {cycles} cycles)"
    )

    _write_artifact(
        netlist_toggle_count={
            "circuit": netlist.name,
            "cells": len(netlist.instances),
            "cycles": cycles,
            "total_toggles": packed.total_toggles(),
            "unpacked_seconds": unpacked_s,
            "packed_seconds": packed_s,
            "speedup": speedup,
        }
    )


def test_packed_sng_speedup_at_4096():
    # The SNG netlist (8-bit LFSR + comparator) used to force the packed
    # backend onto the cycle-loop fallback; the feedback-core resolution
    # must now deliver an order-of-magnitude speedup at Table 3 stream
    # lengths (the acceptance floor of this change is 10x at 4096 cycles).
    bits, cycles = 8, 4096
    netlist = build_sng(bits, MAXIMAL_TAPS[bits])
    rng = np.random.default_rng(2)
    stimulus = {
        net: rng.integers(0, 2, cycles).astype(np.uint8)
        for net in netlist.primary_inputs
    }

    unpacked_s, unpacked = best_of(
        lambda: simulate(netlist, stimulus, backend="unpacked")
    )
    packed_s, packed = best_of(
        lambda: simulate(netlist, stimulus, backend="packed")
    )

    assert packed.toggles == unpacked.toggles
    for net in unpacked.waveforms:
        np.testing.assert_array_equal(packed.waveforms[net], unpacked.waveforms[net])

    speedup = unpacked_s / packed_s
    print(
        f"\nSNG netlist (LFSR feedback core), {len(netlist.instances)} cells x "
        f"{cycles} cycles: cycle loop {unpacked_s * 1e3:.0f} ms, "
        f"packed {packed_s * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 10.0, (
        f"packed SNG simulation only {speedup:.1f}x faster than the cycle "
        f"loop (floor is 10x at {cycles} cycles)"
    )

    _write_artifact(
        sng_toggle_count={
            "circuit": netlist.name,
            "cells": len(netlist.instances),
            "cycles": cycles,
            "lfsr_period": (1 << bits) - 1,
            "total_toggles": packed.total_toggles(),
            "unpacked_seconds": unpacked_s,
            "packed_seconds": packed_s,
            "speedup": speedup,
        }
    )


def test_batched_multi_trace_speedup():
    # One batched word-parallel run over a whole trace set vs. the same
    # traces simulated one by one on the (already fast) packed backend.
    taps, counter_bits, cycles, traces = 25, 9, 1024, 32
    netlist = build_sc_dot_product(taps, counter_bits, adder="tff")
    rng = np.random.default_rng(3)
    stimulus = {
        net: rng.integers(0, 2, (traces, cycles)).astype(np.uint8)
        for net in netlist.primary_inputs
    }

    def sequential():
        return [
            simulate(
                netlist,
                {net: wave[k] for net, wave in stimulus.items()},
                backend="packed",
            )
            for k in range(traces)
        ]

    sequential_s, singles = best_of(sequential)
    batched_s, batched = best_of(
        lambda: simulate_batch(netlist, stimulus, backend="packed")
    )

    for k in (0, traces // 2, traces - 1):
        assert batched.trace(k).toggles == singles[k].toggles
    assert batched.total_toggles() == sum(s.total_toggles() for s in singles)

    speedup = sequential_s / batched_s
    print(
        f"\nbatched netlist simulation, {len(netlist.instances)} cells x "
        f"{cycles} cycles x {traces} traces: sequential packed "
        f"{sequential_s * 1e3:.0f} ms, batched {batched_s * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 5.0, (
        f"batched simulation only {speedup:.1f}x faster than per-trace packed "
        f"runs (floor is 5x at {traces} traces)"
    )

    _write_artifact(
        batched_simulation={
            "circuit": netlist.name,
            "cells": len(netlist.instances),
            "cycles": cycles,
            "traces": traces,
            "total_toggles": batched.total_toggles(),
            "sequential_packed_seconds": sequential_s,
            "batched_seconds": batched_s,
            "speedup": speedup,
        }
    )


def test_packed_bipolar_dot_product_speedup_at_4096():
    """Packed vs. unpacked bipolar engine on the stream reduction path.

    Pinned to ``mode="streams"``: this row has always compared the two
    *backends* on the adder-tree stream reduction, and the count-domain mode
    (which skips that reduction entirely, shrinking the backend gap) has its
    own ``bipolar_count_dot`` row in BENCH_packed.json.
    """
    precision, taps, batch = 12, 25, 32  # stream length 4096
    rng = np.random.default_rng(1)
    x = rng.random((batch, taps))
    w = rng.uniform(-1.0, 1.0, taps)

    results, timings = {}, {}
    for backend in ("unpacked", "packed"):
        engine = BipolarDotProductEngine(
            precision=precision, backend=backend, mode="streams"
        )
        timings[backend], results[backend] = best_of(lambda: engine.dot(x, w))

    np.testing.assert_array_equal(
        results["packed"].count, results["unpacked"].count
    )
    np.testing.assert_array_equal(results["packed"].sign, results["unpacked"].sign)

    length = 1 << precision
    speedup = timings["unpacked"] / timings["packed"]
    print(
        f"\nbipolar dot product N={length}, taps={taps}, batch={batch}: "
        f"unpacked {timings['unpacked'] * 1e3:.1f} ms, "
        f"packed {timings['packed'] * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 5.0, (
        f"packed bipolar dot product only {speedup:.1f}x faster than unpacked "
        f"(floor is 5x at stream length {length})"
    )

    _write_artifact(
        bipolar_dot_product={
            "stream_length": length,
            "taps": taps,
            "batch": batch,
            "unpacked_seconds": timings["unpacked"],
            "packed_seconds": timings["packed"],
            "speedup": speedup,
        }
    )


def _write_artifact(**sections):
    """Merge benchmark sections into the BENCH_netlist.json artifact."""
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(sections)
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
