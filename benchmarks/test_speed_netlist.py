"""Benchmark: packed netlist simulator and bipolar engine vs. their references.

Times the two paths this change moved onto the packed-word backend -- the
activity-capturing netlist simulation behind the Table 3 power numbers and
the Section IV-B bipolar dot-product engine -- asserts each meets its >= 5x
speedup floor (the acceptance criterion of the packed follow-up change), and
writes a ``BENCH_netlist.json`` artifact so the speedup trajectory can be
tracked across commits, alongside ``BENCH_packed.json``.

Timings use best-of-``REPEATS`` wall-clock so a single scheduler hiccup on a
loaded CI machine cannot fail the regression assertion.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.netlist import build_sc_dot_product, simulate
from repro.sc import BipolarDotProductEngine

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_netlist.json"
REPEATS = 3


def best_of(fn, repeats=REPEATS):
    """Best wall-clock of ``repeats`` runs, plus the last return value."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_packed_netlist_toggle_count_speedup():
    # The Table 3 activity circuit: one full stochastic dot-product engine
    # (25 taps, 9-bit counters) driven by a random bit-stream trace.
    taps, counter_bits, cycles = 25, 9, 1024
    netlist = build_sc_dot_product(taps, counter_bits, adder="tff")
    rng = np.random.default_rng(0)
    stimulus = {
        net: rng.integers(0, 2, cycles).astype(np.uint8)
        for net in netlist.primary_inputs
    }

    unpacked_s, unpacked = best_of(
        lambda: simulate(netlist, stimulus, backend="unpacked")
    )
    packed_s, packed = best_of(
        lambda: simulate(netlist, stimulus, backend="packed")
    )

    # Correctness first: the speedup claim is only meaningful bit-identically.
    assert packed.toggles == unpacked.toggles
    for net in unpacked.waveforms:
        np.testing.assert_array_equal(packed.waveforms[net], unpacked.waveforms[net])
    assert packed.average_activity() == unpacked.average_activity()

    speedup = unpacked_s / packed_s
    print(
        f"\nnetlist toggle count, {len(netlist.instances)} cells x {cycles} cycles: "
        f"cycle loop {unpacked_s * 1e3:.0f} ms, packed {packed_s * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 5.0, (
        f"packed netlist simulation only {speedup:.1f}x faster than the "
        f"cycle loop (floor is 5x at {cycles} cycles)"
    )

    _write_artifact(
        netlist_toggle_count={
            "circuit": netlist.name,
            "cells": len(netlist.instances),
            "cycles": cycles,
            "total_toggles": packed.total_toggles(),
            "unpacked_seconds": unpacked_s,
            "packed_seconds": packed_s,
            "speedup": speedup,
        }
    )


def test_packed_bipolar_dot_product_speedup_at_4096():
    precision, taps, batch = 12, 25, 32  # stream length 4096
    rng = np.random.default_rng(1)
    x = rng.random((batch, taps))
    w = rng.uniform(-1.0, 1.0, taps)

    results, timings = {}, {}
    for backend in ("unpacked", "packed"):
        engine = BipolarDotProductEngine(precision=precision, backend=backend)
        timings[backend], results[backend] = best_of(lambda: engine.dot(x, w))

    np.testing.assert_array_equal(
        results["packed"].count, results["unpacked"].count
    )
    np.testing.assert_array_equal(results["packed"].sign, results["unpacked"].sign)

    length = 1 << precision
    speedup = timings["unpacked"] / timings["packed"]
    print(
        f"\nbipolar dot product N={length}, taps={taps}, batch={batch}: "
        f"unpacked {timings['unpacked'] * 1e3:.1f} ms, "
        f"packed {timings['packed'] * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 5.0, (
        f"packed bipolar dot product only {speedup:.1f}x faster than unpacked "
        f"(floor is 5x at stream length {length})"
    )

    _write_artifact(
        bipolar_dot_product={
            "stream_length": length,
            "taps": taps,
            "batch": batch,
            "unpacked_seconds": timings["unpacked"],
            "packed_seconds": timings["packed"],
            "speedup": speedup,
        }
    )


def _write_artifact(**sections):
    """Merge benchmark sections into the BENCH_netlist.json artifact."""
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(sections)
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
