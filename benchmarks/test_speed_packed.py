"""Benchmark: packed-word backend vs. the unpacked byte-per-bit reference.

Times the two hot kernels of the reproduction -- the stochastic dot product
and the stochastic convolution layer -- on both backends, asserts the packed
path meets its speedup floor (>= 5x on the dot-product kernel at stream
length 4096, the acceptance criterion of the packed-backend change), and
writes a ``BENCH_packed.json`` artifact so the speedup trajectory can be
tracked across commits.

Timings use best-of-``REPEATS`` wall-clock so a single scheduler hiccup on a
loaded CI machine cannot fail the regression assertion.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.bitstream import pack_bits
from repro.sc import (
    BipolarDotProductEngine,
    StochasticConv2D,
    StochasticDotProductEngine,
    TffAdder,
    new_sc_engine,
)
from repro.sc.dotproduct import stochastic_dot_product, stochastic_dot_product_packed
from repro.utils import extract_patches

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_packed.json"
REPEATS = 3


def best_of(fn, repeats=REPEATS):
    """Best wall-clock of ``repeats`` runs, plus the last return value."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_packed_dot_product_speedup_at_4096():
    rng = np.random.default_rng(0)
    length, taps, batch = 4096, 25, 32
    x_bits = rng.integers(0, 2, size=(batch, taps, length)).astype(np.uint8)
    w_bits = rng.integers(0, 2, size=(taps, length)).astype(np.uint8)
    x_words, w_words = pack_bits(x_bits), pack_bits(w_bits)

    unpacked_s, unpacked_counts = best_of(
        lambda: stochastic_dot_product(x_bits, w_bits, TffAdder)
    )
    packed_s, packed_counts = best_of(
        lambda: stochastic_dot_product_packed(x_words, w_words, length, TffAdder)
    )

    # Correctness first: the speedup claim is only meaningful bit-identically.
    np.testing.assert_array_equal(packed_counts, unpacked_counts)

    speedup = unpacked_s / packed_s
    print(
        f"\ndot product N={length}, taps={taps}, batch={batch}: "
        f"unpacked {unpacked_s * 1e3:.1f} ms, packed {packed_s * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 5.0, (
        f"packed dot product only {speedup:.1f}x faster than unpacked "
        f"(floor is 5x at stream length {length})"
    )

    memory_ratio = x_bits.nbytes / x_words.nbytes
    assert memory_ratio >= 7.9  # 8x minus the tail-word rounding

    _write_artifact(
        dot_product={
            "stream_length": length,
            "taps": taps,
            "batch": batch,
            "unpacked_seconds": unpacked_s,
            "packed_seconds": packed_s,
            "speedup": speedup,
            "memory_ratio": memory_ratio,
        }
    )


def test_packed_convolution_faster():
    rng = np.random.default_rng(1)
    images = rng.random((2, 12, 12))
    kernels = rng.uniform(-1.0, 1.0, (8, 5, 5))

    results, timings = {}, {}
    for backend in ("unpacked", "packed"):
        layer = StochasticConv2D(
            kernels, engine=new_sc_engine(8, seed=1, backend=backend), padding=2
        )
        timings[backend], results[backend] = best_of(lambda: layer.forward(images))

    np.testing.assert_array_equal(
        results["packed"].positive_count, results["unpacked"].positive_count
    )
    np.testing.assert_array_equal(results["packed"].sign, results["unpacked"].sign)

    speedup = timings["unpacked"] / timings["packed"]
    print(
        f"\nconvolution 12x12, 8 kernels, N=256: "
        f"unpacked {timings['unpacked'] * 1e3:.0f} ms, "
        f"packed {timings['packed'] * 1e3:.0f} ms ({speedup:.1f}x)"
    )
    assert speedup > 1.2, f"packed convolution not faster ({speedup:.2f}x)"

    _write_artifact(
        convolution={
            "image": [2, 12, 12],
            "kernels": [8, 5, 5],
            "stream_length": 256,
            "unpacked_seconds": timings["unpacked"],
            "packed_seconds": timings["packed"],
            "speedup": speedup,
        }
    )


def test_filter_parallel_conv_speedup():
    """Filter-parallel conv vs. the historical per-filter dot_prepared loop.

    Table 3 scale on the filter axis: 32 kernels at N=256, evaluated over one
    16x16 image's worth of patches.  The per-filter loop is the seed path the
    vectorized bank replaced (one ``dot_prepared`` call per kernel, weight
    streams regenerated each time); the filter-parallel path reduces every
    ``(filter, sign)`` tree lane in one vectorized pass per level and must be
    bit-identical while clearing the acceptance floor of 5x.

    The loop side is pinned to ``mode="streams"``: it stands in for the
    historical per-filter stream path, and under the ``"auto"`` default a
    single ``dot_prepared`` call now collapses its TFF tree to integer
    counts too, which would erase the contrast this row has tracked since
    the filter-parallel change.  The bank side keeps its historical default
    (the PR 4 count reduction for all-TFF trees).
    """
    rng = np.random.default_rng(2)
    images = rng.random((1, 16, 16))
    kernels = rng.uniform(-1.0, 1.0, (32, 5, 5))
    filters, taps = kernels.shape[0], 25
    flat_kernels = kernels.reshape(filters, taps)
    loop_engine = new_sc_engine(8, seed=1, backend="packed", mode="streams")
    bank_engine = new_sc_engine(8, seed=1, backend="packed")
    patches = extract_patches(images, (5, 5), padding=2).reshape(-1, taps)
    x_streams = loop_engine.prepare_inputs(patches)

    def per_filter_loop():
        pos = np.empty((patches.shape[0], filters), dtype=np.int64)
        neg = np.empty_like(pos)
        for f in range(filters):
            result = loop_engine.dot_prepared(x_streams, flat_kernels[f])
            pos[:, f] = result.positive_count
            neg[:, f] = result.negative_count
        return pos, neg

    def filter_parallel():
        result = bank_engine.dot_filters_prepared(x_streams, flat_kernels)
        return result.positive_count, result.negative_count

    loop_s, (loop_pos, loop_neg) = best_of(per_filter_loop)
    parallel_s, (par_pos, par_neg) = best_of(filter_parallel)

    # Correctness first: the counts must be bit-identical to the seed path.
    np.testing.assert_array_equal(par_pos, loop_pos)
    np.testing.assert_array_equal(par_neg, loop_neg)

    speedup = loop_s / parallel_s
    print(
        f"\nfilter-parallel conv, {filters} kernels, "
        f"{patches.shape[0]} patches, N=256: "
        f"per-filter loop {loop_s * 1e3:.1f} ms, "
        f"filter-parallel {parallel_s * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 5.0, (
        f"filter-parallel convolution only {speedup:.1f}x faster than the "
        f"per-filter loop (floor is 5x at {filters} filters)"
    )

    _write_artifact(
        filter_parallel_conv={
            "filters": filters,
            "taps": taps,
            "patches": int(patches.shape[0]),
            "stream_length": 256,
            "per_filter_seconds": loop_s,
            "filter_parallel_seconds": parallel_s,
            "speedup": speedup,
        }
    )


def test_mux_count_conv_speedup():
    """Count-domain MUX reduction vs. the stream path on the conv hot loop.

    Table 3 scale on the filter axis: 32 MUX-adder kernels at N=256 over one
    16x16 image's worth of patches, evaluated through the same prepared
    filter-parallel bank the convolution layer uses per tile.  The
    ``mode="counts"`` path folds the cached select streams into per-leaf
    ownership masks (one masked AND/OR accumulate plus a popcount) instead of
    reducing stream tensors level by level through ``packed_mux`` -- it must
    be bit-identical while clearing the acceptance floor of 3x.
    """
    rng = np.random.default_rng(3)
    images = rng.random((1, 16, 16))
    kernels = rng.uniform(-1.0, 1.0, (32, 5, 5))
    filters, taps = kernels.shape[0], 25
    flat_kernels = kernels.reshape(filters, taps)
    patches = extract_patches(images, (5, 5), padding=2).reshape(-1, taps)

    results, timings = {}, {}
    for mode in ("streams", "counts"):
        engine = StochasticDotProductEngine(
            precision=8, adder="mux", seed=1, backend="packed", mode=mode
        )
        x_streams = engine.prepare_inputs(patches)
        bank = engine.prepare_weights(flat_kernels)
        timings[mode], results[mode] = best_of(lambda: bank.counts(x_streams))

    # Correctness first: count mode must be bit-identical to the stream path.
    np.testing.assert_array_equal(results["counts"][0], results["streams"][0])
    np.testing.assert_array_equal(results["counts"][1], results["streams"][1])

    speedup = timings["streams"] / timings["counts"]
    print(
        f"\nmux count conv, {filters} kernels, {patches.shape[0]} patches, "
        f"N=256: streams {timings['streams'] * 1e3:.1f} ms, "
        f"counts {timings['counts'] * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 3.0, (
        f"MUX count-domain convolution only {speedup:.1f}x faster than the "
        f"stream path (floor is 3x at {filters} filters)"
    )

    _write_artifact(
        mux_count_conv={
            "filters": filters,
            "taps": taps,
            "patches": int(patches.shape[0]),
            "stream_length": 256,
            "streams_seconds": timings["streams"],
            "counts_seconds": timings["counts"],
            "speedup": speedup,
        }
    )


def test_bipolar_count_dot_speedup():
    """Bipolar TFF engine: count-domain halving vs. the stream reduction.

    128 windows x 25 taps at N=4096 (the long-stream regime where tree
    tensors hurt most).  The count path popcounts the packed XNOR products
    once and halves integer counts per level -- with the exact ``N/2``
    alternating-pad count for the odd tap axis -- so it must be bit-identical
    to the stream reduction while clearing a 1.3x end-to-end floor (stream
    generation itself, common to both modes, dominates the remainder).
    """
    rng = np.random.default_rng(4)
    x = rng.uniform(-1.0, 1.0, (128, 25))
    w = rng.uniform(-1.0, 1.0, 25)

    results, timings = {}, {}
    for mode in ("streams", "counts"):
        engine = BipolarDotProductEngine(
            precision=12, adder="tff", seed=1, backend="packed", mode=mode
        )
        timings[mode], results[mode] = best_of(lambda: engine.dot(x, w))

    np.testing.assert_array_equal(results["counts"].count, results["streams"].count)

    speedup = timings["streams"] / timings["counts"]
    print(
        f"\nbipolar count dot, 128 windows, 25 taps, N=4096: "
        f"streams {timings['streams'] * 1e3:.1f} ms, "
        f"counts {timings['counts'] * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 1.3, (
        f"bipolar count-domain dot only {speedup:.1f}x faster than the "
        f"stream path (floor is 1.3x at stream length 4096)"
    )

    _write_artifact(
        bipolar_count_dot={
            "windows": int(x.shape[0]),
            "taps": 25,
            "stream_length": 4096,
            "streams_seconds": timings["streams"],
            "counts_seconds": timings["counts"],
            "speedup": speedup,
        }
    )


def _write_artifact(**sections):
    """Merge benchmark sections into the BENCH_packed.json artifact."""
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(sections)
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
