"""Ablation A2 -- weight scaling and soft thresholding (paper Section V-B).

The paper adopts two error-mitigation techniques from Kim et al. for the
stochastic first layer: per-kernel weight scaling (use the full [-1, 1]
dynamic range) and soft thresholding (force near-zero results to zero).

Because the first layer's activation is a sign function, per-kernel scaling
does not change the *ideal* decision; what it changes is how much of the
kernel structure survives b-bit quantization and how many counter LSBs the
stochastic dot product spans.  This ablation therefore measures, for the
same raw kernels, how often the full stochastic engine reproduces the ideal
(floating-point) sign decision with and without weight scaling, and with
soft thresholding added on top.
"""

import numpy as np

from repro.datasets import SyntheticDigits
from repro.nn.quantization import prepare_first_layer_weights
from repro.sc import StochasticConv2D, new_sc_engine
from repro.utils import extract_patches


PRECISION = 6
KERNEL_COUNT = 6


def _ideal_reference(raw_kernels, images, padding):
    """Ideal floating-point dot products of every window with every kernel."""
    patches = extract_patches(images, raw_kernels.shape[1:], padding=padding)
    reference = patches @ raw_kernels.reshape(raw_kernels.shape[0], -1).T
    return reference.reshape(
        images.shape[0], images.shape[1], images.shape[2], raw_kernels.shape[0]
    ).transpose(0, 3, 1, 2)


def _sc_signs(kernels, images, soft_threshold):
    layer = StochasticConv2D(
        kernels,
        engine=new_sc_engine(precision=PRECISION),
        padding=2,
        soft_threshold=soft_threshold,
    )
    return layer.forward(images).sign


def test_ablation_weight_scaling_and_soft_threshold(benchmark):
    rng = np.random.default_rng(0)
    data = SyntheticDigits.generate(train_size=4, test_size=4, seed=5)
    images = data.x_test[:3]
    # Raw kernels as they come out of training: most mass well inside [-1, 1],
    # so naive quantization wastes most of the bipolar range.
    raw_kernels = rng.normal(scale=0.12, size=(KERNEL_COUNT, 5, 5))

    scaled = prepare_first_layer_weights(raw_kernels, precision=PRECISION, scale=True)
    unscaled = prepare_first_layer_weights(raw_kernels, precision=PRECISION, scale=False)
    reference = _ideal_reference(raw_kernels, images, padding=2)
    ideal_sign = np.sign(reference)
    confident = np.abs(reference) > 0.5 * np.std(reference)
    strongly_confident = np.abs(reference) > 1.5 * np.std(reference)

    def run_ablation():
        return {
            "scaled": _sc_signs(scaled, images, 0.0),
            "unscaled": _sc_signs(unscaled, images, 0.0),
            "scaled+soft": _sc_signs(scaled, images, 0.02),
        }

    signs = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    agreement = {
        name: float(np.mean(value[confident] == ideal_sign[confident]))
        for name, value in signs.items()
    }
    print()
    for name, value in agreement.items():
        print(f"  sign agreement vs ideal ({name}): {value:.3f}")

    # Weight scaling uses the full dynamic range of the stochastic encoding,
    # so both the quantized kernels and the counter outputs retain much more
    # information: agreement with the ideal decision must improve sharply.
    assert agreement["scaled"] > agreement["unscaled"] + 0.1
    assert agreement["scaled"] > 0.8

    # Soft thresholding abstains near zero (more zero outputs) ...
    assert np.sum(signs["scaled+soft"] == 0) >= np.sum(signs["scaled"] == 0)
    # ... while decisions on strongly confident outputs are preserved.
    strong_soft = float(
        np.mean(
            signs["scaled+soft"][strongly_confident]
            == ideal_sign[strongly_confident]
        )
    )
    strong_plain = float(
        np.mean(signs["scaled"][strongly_confident] == ideal_sign[strongly_confident])
    )
    print(f"  strong-confidence agreement: plain={strong_plain:.3f} soft={strong_soft:.3f}")
    assert strong_soft > strong_plain - 0.1
