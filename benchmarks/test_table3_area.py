"""Benchmark E6 -- regenerate Table 3 (area rows): design area in mm^2.

Paper reference (mm^2, 65 nm):

    Design     8 Bits  7 Bits  6 Bits  5 Bits  4 Bits  3 Bits  2 Bits
    Binary      1.313   1.094   0.891   0.710   0.543   0.391   0.255
    This Work   1.321   1.282   1.240   1.200   1.166   1.110   1.057

Checked shape: the binary datapath narrows with precision (roughly linear
area reduction) while the stochastic array's area is almost precision
independent, so the stochastic design goes from area parity at 8 bits to
roughly 2x the binary area at 4 bits and ~4x at 2 bits.
"""

from repro.eval import run_table3_hardware
from repro.hw import PAPER_TABLE3_REFERENCE


def test_table3_area(benchmark):
    result = benchmark.pedantic(
        run_table3_hardware,
        kwargs={"precisions": (8, 7, 6, 5, 4, 3, 2)},
        rounds=1,
        iterations=1,
    )
    by_precision = result.by_precision()
    reference = PAPER_TABLE3_REFERENCE

    print()
    print("precision   binary mm^2 (paper)    this-work mm^2 (paper)")
    for p in (8, 7, 6, 5, 4, 3, 2):
        row = by_precision[p]
        print(
            f"  {p}          {row.binary_area_mm2:.3f} ({reference['binary_area_mm2'][p]:.3f})"
            f"            {row.sc_area_mm2:.3f} ({reference['sc_area_mm2'][p]:.3f})"
        )

    # Binary area shrinks monotonically with precision.
    binary_area = [by_precision[p].binary_area_mm2 for p in (8, 7, 6, 5, 4, 3, 2)]
    assert all(b < a for a, b in zip(binary_area, binary_area[1:]))
    assert by_precision[8].binary_area_mm2 / by_precision[2].binary_area_mm2 > 3.0

    # Stochastic area is nearly flat (< 30% total variation).
    sc_area = [by_precision[p].sc_area_mm2 for p in (8, 7, 6, 5, 4, 3, 2)]
    assert max(sc_area) / min(sc_area) < 1.3

    # Area parity at 8 bits, roughly 2x at 4 bits (paper: 1.01x and 2.15x).
    assert 0.8 < by_precision[8].area_ratio < 1.3
    assert 1.5 < by_precision[4].area_ratio < 3.0

    # Magnitudes within ~60% of the paper's columns.
    for precision, paper_value in reference["sc_area_mm2"].items():
        assert abs(by_precision[precision].sc_area_mm2 - paper_value) / paper_value < 0.6
    for precision, paper_value in reference["binary_area_mm2"].items():
        assert abs(by_precision[precision].binary_area_mm2 - paper_value) / paper_value < 0.6
