"""Ablation A4 -- bipolar arithmetic vs. the paper's positive/negative split.

Section IV-B argues against running the first layer in the bipolar stochastic
encoding: the sign-activation decision point then sits at unipolar density
0.5, where stochastic fluctuation is maximal, so accuracy (and switching
activity) suffer.  The paper's design instead splits the weights into
positive and negative unipolar streams and compares two counters.

This ablation measures both designs' dot-product RMS error as a function of
how close the true result is to the decision point, confirming that the split
design is markedly more accurate exactly where the sign decision is made.

Both engines run on the simulation backend selected by ``REPRO_BACKEND``
(packed words by default; bit-identical counts either way).  The packed
bipolar backend also makes the longer-stream sweep affordable: the 10-bit
(N=1024) variant below was a ROADMAP follow-up blocked on the byte-per-bit
simulation cost.
"""

import numpy as np

from repro.sc import BipolarDotProductEngine, new_sc_engine, resolve_backend

BACKEND = resolve_backend()


def _rms_error(engine_factory, targets, rng, taps=25, trials=10):
    errors = {target: [] for target in targets}
    for target in targets:
        for trial in range(trials):
            x = rng.random(taps)
            w = rng.uniform(-1, 1, taps)
            # Shift the weights so the true dot product lands near the target.
            w = np.clip(w + (target - x @ w) / x.sum(), -1, 1)
            exact = float(x @ w)
            engine = engine_factory(trial)
            result = engine.dot(x, w)
            errors[target].append((float(result.value[()]) - exact) ** 2)
    return {target: float(np.sqrt(np.mean(err))) for target, err in errors.items()}


def _run_sweep(precision, targets, rng):
    split = _rms_error(
        lambda t: new_sc_engine(precision=precision, seed=t + 1, backend=BACKEND),
        targets,
        rng,
    )
    bipolar = _rms_error(
        lambda t: BipolarDotProductEngine(
            precision=precision, seed=t + 1, backend=BACKEND
        ),
        targets,
        rng,
    )
    return split, bipolar


def _print_sweep(split, bipolar, targets):
    print()
    print("  true dot product   split-unipolar RMS   bipolar RMS")
    for target in targets:
        print(f"  {target:14.1f}   {split[target]:16.3f}   {bipolar[target]:11.3f}")


def test_ablation_bipolar_vs_split(benchmark):
    rng = np.random.default_rng(0)
    targets = (0.0, 2.0, 6.0)

    split, bipolar = benchmark.pedantic(
        lambda: _run_sweep(6, targets, rng), rounds=1, iterations=1
    )
    _print_sweep(split, bipolar, targets)

    # Near the decision point (target 0) the paper's split design must be
    # clearly more accurate than the bipolar alternative.
    assert split[0.0] < bipolar[0.0]
    # And it should not be worse anywhere in the sweep by a large margin.
    for target in targets:
        assert split[target] < bipolar[target] * 1.5


def test_ablation_bipolar_vs_split_long_streams(benchmark):
    """The 10-bit (N=1024) sweep the packed bipolar backend unlocks."""
    rng = np.random.default_rng(1)
    targets = (0.0, 2.0)

    split, bipolar = benchmark.pedantic(
        lambda: _run_sweep(10, targets, rng), rounds=1, iterations=1
    )
    _print_sweep(split, bipolar, targets)

    # The Section IV-B gap persists at long stream lengths: fluctuation at
    # the bipolar decision point is a property of the encoding, not of N.
    assert split[0.0] < bipolar[0.0]
