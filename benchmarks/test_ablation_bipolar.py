"""Ablation A4 -- bipolar arithmetic vs. the paper's positive/negative split.

Section IV-B argues against running the first layer in the bipolar stochastic
encoding: the sign-activation decision point then sits at unipolar density
0.5, where stochastic fluctuation is maximal, so accuracy (and switching
activity) suffer.  The paper's design instead splits the weights into
positive and negative unipolar streams and compares two counters.

This ablation measures both designs' dot-product RMS error as a function of
how close the true result is to the decision point, confirming that the split
design is markedly more accurate exactly where the sign decision is made.
"""

import numpy as np

from repro.sc import BipolarDotProductEngine, new_sc_engine


def _rms_error(engine_factory, targets, rng, taps=25, trials=10):
    errors = {target: [] for target in targets}
    for target in targets:
        for trial in range(trials):
            x = rng.random(taps)
            w = rng.uniform(-1, 1, taps)
            # Shift the weights so the true dot product lands near the target.
            w = np.clip(w + (target - x @ w) / x.sum(), -1, 1)
            exact = float(x @ w)
            engine = engine_factory(trial)
            result = engine.dot(x, w)
            errors[target].append((float(result.value[()]) - exact) ** 2)
    return {target: float(np.sqrt(np.mean(err))) for target, err in errors.items()}


def test_ablation_bipolar_vs_split(benchmark):
    rng = np.random.default_rng(0)
    targets = (0.0, 2.0, 6.0)

    def run():
        split = _rms_error(
            lambda t: new_sc_engine(precision=6, seed=t + 1), targets, rng
        )
        bipolar = _rms_error(
            lambda t: BipolarDotProductEngine(precision=6, seed=t + 1), targets, rng
        )
        return split, bipolar

    split, bipolar = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  true dot product   split-unipolar RMS   bipolar RMS")
    for target in targets:
        print(f"  {target:14.1f}   {split[target]:16.3f}   {bipolar[target]:11.3f}")

    # Near the decision point (target 0) the paper's split design must be
    # clearly more accurate than the bipolar alternative.
    assert split[0.0] < bipolar[0.0]
    # And it should not be worse anywhere in the sweep by a large margin.
    for target in targets:
        assert split[target] < bipolar[target] * 1.5
