"""Benchmark E1 -- regenerate Table 1 (stochastic multiplier MSE per RNG scheme).

Paper reference (Table 1, lower is better):

    Number generation scheme        8-Bit      4-Bit
    One LFSR + shifted version      2.78e-3    2.99e-3
    Two LFSRs                       2.57e-4    1.60e-3
    Low-discrepancy sequences [4]   1.28e-5    1.01e-3
    Ramp-compare [13] + [4]         8.66e-6    7.21e-4

The reproduction checks the *ordering* and the rough magnitudes; exact values
depend on the specific LFSR polynomials and seeds, which the paper does not
publish.
"""

from repro.eval import format_table1, run_table1


def test_table1_multiplier_mse(benchmark):
    result = benchmark.pedantic(
        run_table1, kwargs={"precisions": (8, 4)}, rounds=1, iterations=1
    )
    print()
    print(format_table1(result))

    for precision in (8, 4):
        mse = {scheme: result.mse[scheme][precision] for scheme in result.mse}
        # Paper ordering: the shared LFSR is the least accurate scheme and the
        # ramp-compare + low-discrepancy pairing is the most accurate.
        assert result.ordering_at(precision)[0] == "shared_lfsr"
        assert result.best_scheme(precision) == "ramp_low_discrepancy"
        assert mse["shared_lfsr"] > mse["two_lfsrs"]
        assert mse["two_lfsrs"] > mse["ramp_low_discrepancy"]
        assert mse["low_discrepancy"] > mse["ramp_low_discrepancy"]

    # Magnitude checks against the paper's 8-bit column (same order of magnitude).
    assert 5e-4 < result.mse["shared_lfsr"][8] < 2e-2
    assert result.mse["ramp_low_discrepancy"][8] < 5e-5
