"""Ablation A1 -- effect of retraining the binary layers (paper Section V-B).

The paper reports that simply quantizing the first layer and swapping in the
sign activation costs several percentage points of accuracy (up to 6.85%
misclassification at 4-bit precision) and that retraining the remaining
layers recovers it to below 1%.  This ablation quantifies the same recovery
on the reproduction's dataset: for every precision the no-retraining and
retrained misclassification rates are compared.
"""

import numpy as np

from repro.nn import Adam, build_lenet5_small, quantize_and_freeze, retrain
from repro.datasets import SyntheticDigits


def test_ablation_retraining_recovery(benchmark, accuracy_result):
    """Recovery measured on the shared Table 3 accuracy run."""
    rates = accuracy_result.rates
    print()
    print("precision   no-retraining   retrained   recovered (pp)")
    recoveries = []
    for precision in sorted(rates["binary"], reverse=True):
        before = rates["binary_no_retrain"][precision]
        after = rates["binary"][precision]
        recoveries.append(before - after)
        print(f"  {precision}            {100*before:6.2f}%      {100*after:6.2f}%      {100*(before-after):6.2f}")

    # Retraining recovers a large fraction of the lost accuracy at every precision.
    assert all(r > 0.10 for r in recoveries)
    assert np.mean(recoveries) > 0.25

    # Time a single quantize-freeze-retrain cycle as the benchmark payload.
    data = SyntheticDigits.generate(train_size=400, test_size=100, seed=3)
    x_train = data.x_train[:, np.newaxis, :, :]
    model = build_lenet5_small(filters1=8, filters2=8, hidden_units=32, seed=3, dropout_rate=0.0)
    model.fit(x_train, data.y_train, epochs=2, batch_size=64, optimizer=Adam(2e-3))

    def freeze_and_retrain():
        frozen = quantize_and_freeze(model, precision=4)
        retrain(frozen, x_train, data.y_train, epochs=1, optimizer=Adam(2e-3))
        return frozen

    frozen = benchmark.pedantic(freeze_and_retrain, rounds=1, iterations=1)
    assert frozen.layers[0].trainable is False
