"""Benchmark E3 -- regenerate Table 3 (top): misclassification rate vs. precision.

Paper reference (misclassification rate, %):

    Design     8 Bits  7 Bits  6 Bits  5 Bits  4 Bits  3 Bits  2 Bits
    Binary      0.89    0.86    0.89    0.74    0.79    0.79    1.30
    Old SC      2.22    3.91    1.30    1.55    1.63    2.71    4.89
    This Work   0.94    0.99    1.04    1.12    1.04    2.20   43.82

Absolute rates differ from the paper because the dataset is the synthetic
MNIST substitute and the training budget is scaled down (see DESIGN.md);
the assertions check the paper's qualitative findings:

* retraining recovers most of the accuracy lost to quantization + sign
  activation (the no-retraining ablation row is far worse);
* the proposed stochastic design ("This Work") tracks the binary design
  closely at moderate precision and beats the old SC design on average;
* at 2-bit precision the stochastic first layer degrades sharply.
"""

import numpy as np

from repro.eval import AccuracyConfig, format_table3_accuracy, run_table3_accuracy


def test_table3_accuracy_scaling_run(benchmark):
    """Time a miniature accuracy run (the shared fixture holds the larger one)."""
    config = AccuracyConfig(
        precisions=(6, 4),
        train_size=400,
        test_size=150,
        baseline_epochs=2,
        retrain_epochs=1,
        sc_mode="emulate",
        seed=1,
    )
    result = benchmark.pedantic(
        run_table3_accuracy, args=(config,), rounds=1, iterations=1
    )
    assert set(result.rates) == {"binary", "old_sc", "this_work"}
    for design in result.rates.values():
        for rate in design.values():
            assert 0.0 <= rate <= 1.0


def test_table3_accuracy_paper_trends(benchmark, accuracy_result):
    """Check the paper's qualitative accuracy findings on the shared run.

    The heavy experiment itself runs once in the shared session fixture; the
    benchmarked payload here is the table formatting, so this test still
    executes (and prints the table) under ``--benchmark-only``.
    """
    print()
    print(benchmark.pedantic(format_table3_accuracy, args=(accuracy_result,), rounds=1, iterations=1))

    rates = accuracy_result.rates
    precisions = sorted(rates["binary"], reverse=True)
    moderate = [p for p in precisions if p >= 4]

    # Retraining recovers most of the loss introduced by quantization + sign
    # activation: the retrained binary row must be far better than the
    # no-retraining ablation at every precision.
    for p in precisions:
        assert rates["binary"][p] < rates["binary_no_retrain"][p] - 0.10, p

    # The binary row stays close to the full-precision baseline at >= 4 bits.
    for p in moderate:
        assert rates["binary"][p] < accuracy_result.baseline_misclassification + 0.15

    # "This Work" tracks the binary design closely at moderate precision ...
    for p in moderate:
        assert accuracy_result.gap_to_binary("this_work", p) < 0.10, p

    # ... and is no worse than the old SC design on average.
    new_mean = np.mean([rates["this_work"][p] for p in moderate])
    old_mean = np.mean([rates["old_sc"][p] for p in moderate])
    assert new_mean <= old_mean + 0.02

    # At 2 bits the stochastic first layer degrades sharply relative to its
    # own moderate-precision accuracy (the paper reports a collapse to 43.8%).
    if 2 in rates["this_work"]:
        assert rates["this_work"][2] > rates["this_work"][max(moderate)] + 0.05
