"""Benchmark -- graceful degradation under soft errors (Section I's claim).

The paper motivates stochastic computing with fault tolerance: a flipped
stream bit perturbs the encoded value by ``1/N``, while a flipped high-order
bit of a binary word is catastrophic.  This benchmark runs the
:mod:`repro.faults.sweep` degradation experiment at the committed artifact
geometry and asserts the claim quantitatively:

* at a per-bit per-cycle upset rate of 1e-3 (and 1e-2), the stochastic conv
  layer's sign-map accuracy drops *less* than the matched binary fixed-point
  baseline's;
* the stochastic value-domain error stays orders of magnitude below the
  binary one at every rate.

The sweep is fully deterministic (counter-hashed masks), so re-running this
benchmark regenerates ``BENCH_faults.json`` bit-for-bit -- CI diffs the file
against the committed copy to prove it.
"""

from pathlib import Path

from repro.faults.sweep import (
    FaultSweepConfig,
    format_fault_sweep,
    run_fault_sweep,
    write_artifact,
)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def test_sc_degrades_more_gracefully_than_binary():
    result = run_fault_sweep(FaultSweepConfig())
    print()
    print(format_fault_sweep(result))
    write_artifact(result, ARTIFACT)

    rows = {row["rate"]: row for row in result.rows}
    clean = rows[0.0]
    assert clean["sc_sign_agreement"] == 1.0
    assert clean["binary_sign_agreement"] == 1.0

    # The acceptance criterion: at 1e-3 (and one decade up), the SC layer's
    # accuracy drop is smaller than the binary baseline's.
    for rate in (1e-3, 1e-2):
        row = rows[rate]
        sc_drop = 1.0 - row["sc_sign_agreement"]
        binary_drop = 1.0 - row["binary_sign_agreement"]
        assert sc_drop < binary_drop, (
            f"rate {rate}: SC drop {sc_drop:.4f} not below "
            f"binary drop {binary_drop:.4f}"
        )

    # Value-domain graceful degradation: the SC RMSE stays far below the
    # binary RMSE (high-order bit flips swing values by thousands of LSBs).
    for rate in (1e-4, 1e-3, 1e-2):
        row = rows[rate]
        assert row["sc_value_rmse"] * 10.0 < row["binary_value_rmse"], row

    # Degradation is monotone in the rate on both sides (the curve shape the
    # paper's Fig. 1 argument predicts).
    ordered = sorted(rows)
    sc_curve = [rows[r]["sc_sign_agreement"] for r in ordered]
    bin_curve = [rows[r]["binary_sign_agreement"] for r in ordered]
    assert sc_curve == sorted(sc_curve, reverse=True)
    assert bin_curve == sorted(bin_curve, reverse=True)
