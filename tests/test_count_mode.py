"""Differential + property tests for the count-domain engine mode.

``mode="counts"`` must be *bit-identical* to the reference stream reduction
for every configuration that supports it: unipolar split-weight engines with
TFF or MUX adder trees (any generator, backend, tap count, tiling) and the
bipolar XNOR engine (including its odd-tap alternating-stream padding).
These tests pin that contract, the mode-resolution precedence rules, the
``TreePlan`` mask machinery behind the MUX shortcut, and the stream-path
edge-case fixes that rode along (empty batches, dtype-preserving count maps,
the sign-tie contract, bipolar input-range validation).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc import (
    BipolarDotProductEngine,
    BipolarDotProductResult,
    MODES,
    StochasticConv2D,
    StochasticDotProductEngine,
    TffAdder,
    MuxAdder,
    new_sc_engine,
    old_sc_engine,
    resolve_mode,
    validate_mode,
)
from repro.sc.elements.adders import TreePlan
from repro.bitstream.packed import pack_bits
from repro.utils.windows import patches_to_map


# --------------------------------------------------------------------- #
# mode resolution
# --------------------------------------------------------------------- #


def test_validate_mode_accepts_known_rejects_unknown():
    for mode in MODES:
        assert validate_mode(mode) == mode
    with pytest.raises(ValueError, match="unknown mode"):
        validate_mode("bitwise")
    with pytest.raises(ValueError, match="unknown mode"):
        validate_mode("")


def test_resolve_mode_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_MODE", raising=False)
    assert resolve_mode(None) == "auto"
    monkeypatch.setenv("REPRO_MODE", "streams")
    assert resolve_mode(None) == "streams"
    # An explicit argument beats the environment.
    assert resolve_mode("counts") == "counts"
    # An empty environment value falls back to the default.
    monkeypatch.setenv("REPRO_MODE", "")
    assert resolve_mode(None) == "auto"
    monkeypatch.setenv("REPRO_MODE", "bogus")
    with pytest.raises(ValueError, match="unknown mode"):
        resolve_mode(None)


def test_engine_honours_repro_mode_env(monkeypatch):
    monkeypatch.setenv("REPRO_MODE", "streams")
    assert StochasticDotProductEngine(precision=4).mode == "streams"
    assert BipolarDotProductEngine(precision=4).mode == "streams"
    monkeypatch.delenv("REPRO_MODE", raising=False)
    assert StochasticDotProductEngine(precision=4).mode == "auto"


def test_counts_mode_with_or_tree_raises():
    with pytest.raises(ValueError, match="counts"):
        StochasticDotProductEngine(precision=4, adder="or", mode="counts")
    # "auto" quietly falls back to streams for OR trees.
    engine = StochasticDotProductEngine(precision=4, adder="or", mode="auto")
    rng = np.random.default_rng(0)
    result = engine.dot(rng.random((3, 5)), rng.uniform(-1, 1, 5))
    assert result.positive_count.shape == (3,)


def test_engine_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown mode"):
        StochasticDotProductEngine(precision=4, mode="fast")
    with pytest.raises(ValueError, match="unknown mode"):
        BipolarDotProductEngine(precision=4, mode="fast")


# --------------------------------------------------------------------- #
# unipolar split-weight engine: counts == streams, bit for bit
# --------------------------------------------------------------------- #

UNIPOLAR_GENERATORS = [
    ("ramp", "lowdisc"),
    ("lfsr", "lfsr"),
    ("lowdisc", "lowdisc"),
]


@pytest.mark.parametrize("adder", ["tff", "mux"])
@pytest.mark.parametrize("backend", ["packed", "unpacked"])
@pytest.mark.parametrize("input_gen,weight_gen", UNIPOLAR_GENERATORS)
@pytest.mark.parametrize("taps", [1, 2, 3, 7, 25])
def test_unipolar_counts_bit_identical(adder, backend, input_gen, weight_gen, taps):
    rng = np.random.default_rng(taps)
    x = rng.random((5, taps))
    w = rng.uniform(-1.0, 1.0, taps)
    kwargs = dict(
        precision=6,
        adder=adder,
        input_generator=input_gen,
        weight_generator=weight_gen,
        seed=11,
        backend=backend,
    )
    counted = StochasticDotProductEngine(mode="counts", **kwargs).dot(x, w)
    streamed = StochasticDotProductEngine(mode="streams", **kwargs).dot(x, w)
    np.testing.assert_array_equal(counted.positive_count, streamed.positive_count)
    np.testing.assert_array_equal(counted.negative_count, streamed.negative_count)


@pytest.mark.parametrize("adder", ["tff", "mux"])
@pytest.mark.parametrize("backend", ["packed", "unpacked"])
def test_unipolar_filter_parallel_counts_bit_identical(adder, backend):
    rng = np.random.default_rng(3)
    x = rng.random((9, 25))
    kernels = rng.uniform(-1.0, 1.0, (6, 25))
    kwargs = dict(precision=6, adder=adder, seed=5, backend=backend)
    counted = StochasticDotProductEngine(mode="counts", **kwargs).dot_filters(x, kernels)
    streamed = StochasticDotProductEngine(mode="streams", **kwargs).dot_filters(
        x, kernels
    )
    np.testing.assert_array_equal(counted.positive_count, streamed.positive_count)
    np.testing.assert_array_equal(counted.negative_count, streamed.negative_count)


@pytest.mark.parametrize("factory", [new_sc_engine, old_sc_engine])
def test_paper_engines_accept_mode(factory):
    rng = np.random.default_rng(2)
    x = rng.random((4, 9))
    w = rng.uniform(-1.0, 1.0, 9)
    counted = factory(6, seed=1, mode="counts").dot(x, w)
    streamed = factory(6, seed=1, mode="streams").dot(x, w)
    np.testing.assert_array_equal(counted.positive_count, streamed.positive_count)
    np.testing.assert_array_equal(counted.negative_count, streamed.negative_count)


def test_mux_select_periodicity_across_repeated_calls():
    """Free-running MUX selects keep advancing across dot() calls in both modes.

    The engine deliberately lets every node's select source continue across
    sequential evaluations; the count path must consume *exactly* the same
    select windows as the stream path or the second call diverges.
    """
    rng = np.random.default_rng(8)
    x1, x2 = rng.random((4, 10)), rng.random((4, 10))
    w = rng.uniform(-1.0, 1.0, 10)
    engines = {
        mode: StochasticDotProductEngine(
            precision=5, adder="mux", seed=21, backend="packed", mode=mode
        )
        for mode in ("counts", "streams")
    }
    for x in (x1, x2, x1):
        counted = engines["counts"].dot(x, w)
        streamed = engines["streams"].dot(x, w)
        np.testing.assert_array_equal(counted.positive_count, streamed.positive_count)
        np.testing.assert_array_equal(counted.negative_count, streamed.negative_count)


@pytest.mark.parametrize("adder", ["tff", "mux"])
@pytest.mark.parametrize("tile_patches", [None, 1, 7, 64])
def test_conv_counts_mode_tiling_bit_identical(adder, tile_patches):
    rng = np.random.default_rng(1)
    images = rng.random((2, 8, 8))
    kernels = rng.uniform(-1.0, 1.0, (4, 3, 3))
    results = {}
    for mode in ("counts", "streams"):
        layer = StochasticConv2D(
            kernels,
            engine=StochasticDotProductEngine(
                precision=5, adder=adder, seed=4, backend="packed", mode=mode
            ),
            padding=1,
            tile_patches=tile_patches,
        )
        results[mode] = layer.forward(images)
    np.testing.assert_array_equal(
        results["counts"].positive_count, results["streams"].positive_count
    )
    np.testing.assert_array_equal(
        results["counts"].negative_count, results["streams"].negative_count
    )
    np.testing.assert_array_equal(results["counts"].sign, results["streams"].sign)


# --------------------------------------------------------------------- #
# bipolar XNOR engine: counts == streams, including padding
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("adder", ["tff", "mux"])
@pytest.mark.parametrize("backend", ["packed", "unpacked"])
@pytest.mark.parametrize("taps", [1, 2, 3, 5, 9, 25, 32])
def test_bipolar_counts_bit_identical(adder, backend, taps):
    """Covers power-of-two, odd and single tap counts (padding edge cases)."""
    rng = np.random.default_rng(taps + 100)
    x = rng.uniform(-1.0, 1.0, (6, taps))
    w = rng.uniform(-1.0, 1.0, taps)
    kwargs = dict(precision=6, adder=adder, seed=9, backend=backend)
    counted = BipolarDotProductEngine(mode="counts", **kwargs).dot(x, w)
    streamed = BipolarDotProductEngine(mode="streams", **kwargs).dot(x, w)
    np.testing.assert_array_equal(counted.count, streamed.count)
    np.testing.assert_array_equal(counted.sign, streamed.sign)
    np.testing.assert_array_equal(counted.value, streamed.value)
    assert counted.tree_scale == streamed.tree_scale


def test_bipolar_auto_mode_matches_explicit_counts():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1.0, 1.0, (4, 7))
    w = rng.uniform(-1.0, 1.0, 7)
    auto = BipolarDotProductEngine(precision=6, seed=2, mode="auto").dot(x, w)
    counts = BipolarDotProductEngine(precision=6, seed=2, mode="counts").dot(x, w)
    np.testing.assert_array_equal(auto.count, counts.count)


# --------------------------------------------------------------------- #
# property-based sweep
# --------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(
    taps=st.integers(min_value=1, max_value=12),
    precision=st.integers(min_value=3, max_value=7),
    adder=st.sampled_from(["tff", "mux"]),
    backend=st.sampled_from(["packed", "unpacked"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_unipolar_counts_property(taps, precision, adder, backend, seed):
    rng = np.random.default_rng(seed)
    x = rng.random((3, taps))
    w = rng.uniform(-1.0, 1.0, taps)
    kwargs = dict(precision=precision, adder=adder, seed=seed, backend=backend)
    counted = StochasticDotProductEngine(mode="counts", **kwargs).dot(x, w)
    streamed = StochasticDotProductEngine(mode="streams", **kwargs).dot(x, w)
    np.testing.assert_array_equal(counted.positive_count, streamed.positive_count)
    np.testing.assert_array_equal(counted.negative_count, streamed.negative_count)


@settings(max_examples=30, deadline=None)
@given(
    taps=st.integers(min_value=1, max_value=12),
    precision=st.integers(min_value=3, max_value=7),
    adder=st.sampled_from(["tff", "mux"]),
    backend=st.sampled_from(["packed", "unpacked"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_bipolar_counts_property(taps, precision, adder, backend, seed):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.0, 1.0, (3, taps))
    w = rng.uniform(-1.0, 1.0, taps)
    kwargs = dict(precision=precision, adder=adder, seed=seed, backend=backend)
    counted = BipolarDotProductEngine(mode="counts", **kwargs).dot(x, w)
    streamed = BipolarDotProductEngine(mode="streams", **kwargs).dot(x, w)
    np.testing.assert_array_equal(counted.count, streamed.count)


# --------------------------------------------------------------------- #
# TreePlan mask machinery (the MUX count-domain core)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("count", [1, 2, 3, 5, 7, 8, 25])
@pytest.mark.parametrize("lanes", [1, 3])
def test_leaf_masks_are_disjoint_and_exact(count, lanes):
    length = 96  # not a multiple of 64: exercises the packed tail word
    plan = TreePlan(lambda: MuxAdder(toggle_select=True), count, lanes=lanes)
    rng = np.random.default_rng(count * 10 + lanes)
    bits = rng.integers(0, 2, size=(lanes, count, length)).astype(np.uint8)
    if lanes == 1:
        bits = bits[0]

    # Reference: an identically-seeded plan reducing actual streams.
    ref_plan = TreePlan(lambda: MuxAdder(toggle_select=True), count, lanes=lanes)
    expected = np.asarray(ref_plan.reduce_bits(bits)).sum(axis=-1, dtype=np.int64)
    np.testing.assert_array_equal(plan.masked_counts_bits(bits), expected)

    # Each cycle is owned by at most one leaf (pads absorb the rest).
    masks = plan.leaf_masks(length, packed=False)
    assert np.all(masks.sum(axis=-2) <= 1)

    # Packed masks agree with the unpacked ones bit for bit.
    packed_masks = plan.leaf_masks(length, packed=True)
    np.testing.assert_array_equal(pack_bits(masks), packed_masks)
    packed_counts = plan.masked_counts_packed(pack_bits(bits), length)
    np.testing.assert_array_equal(packed_counts, expected)


def test_leaf_masks_cached_per_length():
    plan = TreePlan(lambda: MuxAdder(toggle_select=True), 5)
    first = plan.leaf_masks(64, packed=True)
    assert plan.leaf_masks(64, packed=True) is first
    assert plan.leaf_masks(128, packed=True) is not first


def test_tff_plan_reports_count_reduction_mux_reports_masked():
    tff_plan = TreePlan(TffAdder, 8)
    assert tff_plan.supports_count_reduction
    assert not tff_plan.supports_masked_reduction
    mux_plan = TreePlan(lambda: MuxAdder(toggle_select=True), 8)
    assert not mux_plan.supports_count_reduction
    assert mux_plan.supports_masked_reduction


# --------------------------------------------------------------------- #
# satellite regressions: stream-path edge cases
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("tile_patches", [None, 16])
def test_conv_empty_batch_returns_empty_result(tile_patches):
    kernels = np.random.default_rng(0).uniform(-1.0, 1.0, (4, 3, 3))
    layer = StochasticConv2D(
        kernels,
        engine=new_sc_engine(5, seed=1),
        padding=1,
        tile_patches=tile_patches,
    )
    result = layer.forward(np.zeros((0, 8, 8)))
    assert result.sign.shape == (0, 4, 8, 8)
    assert result.positive_count.shape == (0, 4, 8, 8)
    assert result.negative_count.shape == (0, 4, 8, 8)
    assert result.value.shape == (0, 4, 8, 8)
    assert result.sign.dtype == np.int8
    assert result.positive_count.dtype == np.int64
    # Bad geometry still raises even for an empty batch.
    with pytest.raises(ValueError):
        layer.forward(np.zeros((0, 0, 0)))


def test_conv_still_rejects_out_of_range_pixels():
    kernels = np.full((1, 3, 3), 0.5)
    layer = StochasticConv2D(kernels, engine=new_sc_engine(4), padding=1)
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        layer.forward(np.full((1, 8, 8), 1.5))


def test_conv_counts_stay_integer_dtype():
    rng = np.random.default_rng(5)
    layer = StochasticConv2D(
        rng.uniform(-1.0, 1.0, (2, 3, 3)), engine=new_sc_engine(5, seed=1), padding=1
    )
    result = layer.forward(rng.random((1, 6, 6)))
    assert result.positive_count.dtype == np.int64
    assert result.negative_count.dtype == np.int64
    assert result.sign.dtype == np.int8
    assert result.value.dtype == np.float64


def test_patches_to_map_preserves_dtype_exactly():
    # A counter value float64 cannot represent: 2**53 + 1 survives the map.
    big = np.int64(2**53 + 1)
    patch_values = np.full((1, 4, 2), big, dtype=np.int64)
    mapped = patches_to_map(patch_values, (2, 2))
    assert mapped.dtype == np.int64
    assert np.all(mapped == big)
    assert np.int64(float(big)) != big  # the old float64 round trip was lossy
    for dtype in (np.int8, np.int32, np.uint8, np.float32):
        assert patches_to_map(np.zeros((1, 4, 3), dtype=dtype), (2, 2)).dtype == dtype


def test_bipolar_sign_tie_resolves_to_plus_one():
    length = 16
    tie = BipolarDotProductResult(
        count=np.array([length // 2]), length=length, tree_scale=1
    )
    assert tie.sign[0] == 1  # comparator's "not below mid-scale" side
    below = BipolarDotProductResult(
        count=np.array([length // 2 - 1]), length=length, tree_scale=1
    )
    assert below.sign[0] == -1


def test_unipolar_conv_sign_tie_resolves_to_zero():
    # An all-zero kernel produces identical (zero) positive and negative
    # counters at every output: the three-valued sign activation emits 0.
    layer = StochasticConv2D(
        np.zeros((1, 3, 3)), engine=new_sc_engine(4, seed=1), padding=1
    )
    result = layer.forward(np.random.default_rng(0).random((1, 5, 5)))
    np.testing.assert_array_equal(result.positive_count, result.negative_count)
    assert np.all(result.sign == 0)


@pytest.mark.parametrize("backend", ["packed", "unpacked"])
def test_bipolar_rejects_out_of_range_inputs(backend):
    engine = BipolarDotProductEngine(precision=4, backend=backend)
    w = np.full(4, 0.5)
    with pytest.raises(ValueError, match=r"\[-1, 1\]"):
        engine.dot(np.array([[0.0, 0.5, 1.5, -0.5]]), w)
    with pytest.raises(ValueError, match=r"\[-1, 1\]"):
        engine.dot(np.array([[0.0, 0.5, -1.5, -0.5]]), w)
    # Exact boundary values stay legal.
    result = engine.dot(np.array([[1.0, -1.0, 0.0, 1.0]]), w)
    assert result.count.shape == (1,)


# --------------------------------------------------------------------- #
# table evaluators honour the mode
# --------------------------------------------------------------------- #


def test_table2_counts_mode_bit_identical():
    from repro.eval.table2 import ADDER_CONFIGS, adder_mse

    for config in ADDER_CONFIGS:
        for backend in ("packed", "unpacked"):
            assert adder_mse(config, 4, backend=backend, mode="counts") == adder_mse(
                config, 4, backend=backend, mode="streams"
            )


def test_table1_accepts_mode():
    from repro.eval.table1 import multiplier_mse

    assert multiplier_mse("low_discrepancy", 4, mode="counts") == multiplier_mse(
        "low_discrepancy", 4, mode="streams"
    )
    with pytest.raises(ValueError, match="unknown mode"):
        multiplier_mse("low_discrepancy", 4, mode="bogus")


def test_accuracy_config_resolves_mode(monkeypatch):
    from repro.eval.table3_accuracy import AccuracyConfig

    monkeypatch.delenv("REPRO_MODE", raising=False)
    assert AccuracyConfig().mode == "auto"
    assert AccuracyConfig(mode="streams").mode == "streams"
    monkeypatch.setenv("REPRO_MODE", "counts")
    assert AccuracyConfig().mode == "counts"
    with pytest.raises(ValueError, match="unknown mode"):
        AccuracyConfig(mode="bogus")
