"""Cross-module property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netlist import build_array_multiplier, build_ripple_adder, simulate
from repro.nn import build_lenet5_small, quantize_and_freeze
from repro.rng import ComparatorSNG, LFSRSource, VanDerCorputSource, ramp_compare_batch
from repro.sc import AdderTree, TffAdder, count_ones


def int_to_bits(value, bits):
    return [(value >> i) & 1 for i in range(bits)]


def bits_to_int(bits):
    return sum(int(b) << i for i, b in enumerate(bits))


class TestNetlistArithmeticProperties:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_ripple_adder_adds(self, a, b):
        bits = 8
        net = build_ripple_adder(bits)
        stim = {}
        for i in range(bits):
            stim[f"a{i}"] = [int_to_bits(a, bits)[i]]
            stim[f"b{i}"] = [int_to_bits(b, bits)[i]]
        result = simulate(net, stim)
        total = bits_to_int([result.waveform(f"s{i}")[0] for i in range(bits)])
        total += int(result.waveform("cout")[0]) << bits
        assert total == a + b

    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=20, deadline=None)
    def test_array_multiplier_multiplies(self, a, b):
        bits = 5
        net = build_array_multiplier(bits)
        stim = {}
        for i in range(bits):
            stim[f"a{i}"] = [int_to_bits(a, bits)[i]]
            stim[f"b{i}"] = [int_to_bits(b, bits)[i]]
        result = simulate(net, stim)
        product = bits_to_int([result.waveform(f"p{i}")[0] for i in range(2 * bits)])
        assert product == a * b


class TestStochasticInvariants:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=25),
        st.sampled_from([4, 5, 6, 7]),
    )
    @settings(max_examples=30, deadline=None)
    def test_tff_tree_error_bound_on_ramp_streams(self, values, precision):
        # For ramp-converted (auto-correlated) inputs, the TFF adder tree's
        # ones-count differs from the exact scaled sum by at most one LSB per
        # tree level -- the paper's core accuracy argument.
        n = 1 << precision
        streams = ramp_compare_batch(np.array(values), n)
        tree = AdderTree(TffAdder)
        result = tree.reduce(streams)
        depth = tree.depth(len(values))
        exact = streams.sum() / (1 << depth)
        assert abs(int(count_ones(result)) - exact) <= depth

    @given(st.sampled_from([4, 6, 8]), st.integers(1, 200))
    @settings(max_examples=20, deadline=None)
    def test_sng_count_monotone_in_value(self, precision, seed):
        # For a fixed number source, a larger encoded value can never produce
        # fewer ones: the comparator output is monotone in its threshold.
        n = 1 << precision
        values = np.linspace(0, 1, 9)
        for source in (LFSRSource(precision, seed=seed), VanDerCorputSource(precision)):
            counts = ComparatorSNG(source).generate_bits(values, n).sum(axis=-1)
            assert np.all(np.diff(counts) >= 0)

    @given(st.sampled_from([2, 4, 8]))
    @settings(max_examples=3, deadline=None)
    def test_quantize_and_freeze_preserves_other_layers(self, precision):
        model = build_lenet5_small(filters1=4, filters2=4, hidden_units=8, seed=1)
        frozen = quantize_and_freeze(model, precision=precision)
        original_weights = model.get_weights()
        frozen_weights = frozen.get_weights()
        # Same number of parameter arrays, and every array after the first
        # conv layer's (weights, bias) pair is identical.
        assert len(original_weights) == len(frozen_weights)
        for original, copy in zip(original_weights[2:], frozen_weights[2:]):
            np.testing.assert_allclose(original, copy)
        # The first layer's weights are conditioned into the bipolar grid.
        assert np.abs(frozen_weights[0]).max() <= 1.0


class TestHybridEndToEnd:
    def test_tiny_pipeline_runs_and_is_consistent(self):
        # A miniature end-to-end run: synthetic digits -> train -> condition ->
        # hybrid inference in all three modes on a couple of images.
        from repro.datasets import SyntheticDigits
        from repro.hybrid import HybridStochasticBinaryNetwork
        from repro.nn import Adam, retrain
        from repro.sc import new_sc_engine

        data = SyntheticDigits.generate(train_size=120, test_size=20, seed=2)
        x_train = data.x_train[:, np.newaxis]
        model = build_lenet5_small(filters1=4, filters2=4, hidden_units=16, seed=2,
                                   dropout_rate=0.0)
        model.fit(x_train, data.y_train, epochs=2, batch_size=32, optimizer=Adam(2e-3))
        frozen = quantize_and_freeze(model, precision=5, sc_resolution=True)
        retrain(frozen, x_train, data.y_train, epochs=1, optimizer=Adam(1e-3))
        hybrid = HybridStochasticBinaryNetwork(frozen, engine=new_sc_engine(5), seed=3)
        for mode in ("binary", "emulate", "bitexact"):
            predictions = hybrid.predict_classes(data.x_test[:3], mode=mode)
            assert predictions.shape == (3,)
            assert np.all((predictions >= 0) & (predictions <= 9))
