"""Tests for stochastic correlation metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bitstream import (
    Bitstream,
    autocorrelation,
    overlap_count,
    pearson_correlation,
    stochastic_cross_correlation,
)
from repro.rng import ramp_compare_stream


class TestOverlapCount:
    def test_counts_sum_to_length(self):
        x = Bitstream("110010")
        y = Bitstream("101010")
        counts = overlap_count(x, y)
        assert sum(counts.values()) == 6
        assert counts["11"] == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            overlap_count(Bitstream("01"), Bitstream("011"))


class TestSCC:
    def test_identical_streams_fully_correlated(self):
        x = Bitstream("11001010")
        assert stochastic_cross_correlation(x, x) == pytest.approx(1.0)

    def test_complementary_streams_anticorrelated(self):
        x = Bitstream("11110000")
        assert stochastic_cross_correlation(x, ~x) == pytest.approx(-1.0)

    def test_independent_long_streams_near_zero(self):
        rng = np.random.default_rng(0)
        x = (rng.random(4096) < 0.5).astype(np.uint8)
        y = (rng.random(4096) < 0.5).astype(np.uint8)
        assert abs(stochastic_cross_correlation(x, y)) < 0.05

    def test_constant_stream_returns_zero(self):
        assert stochastic_cross_correlation(Bitstream("1111"), Bitstream("0101")) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stochastic_cross_correlation(np.array([]), np.array([]))

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64))
    def test_scc_bounded(self, bits):
        x = np.array(bits, dtype=np.uint8)
        y = np.roll(x, 1)
        assert -1.0 - 1e-9 <= stochastic_cross_correlation(x, y) <= 1.0 + 1e-9


class TestPearson:
    def test_constant_stream_returns_zero(self):
        assert pearson_correlation(Bitstream("1111"), Bitstream("0101")) == 0.0

    def test_identical_is_one(self):
        x = Bitstream("1100110010")
        assert pearson_correlation(x, x) == pytest.approx(1.0)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.array([0, 1]), np.array([0, 1, 1]))


class TestAutocorrelation:
    def test_ramp_streams_heavily_autocorrelated(self):
        # Paper Section IV-A: ramp-compare conversion produces heavily
        # auto-correlated streams (a single run of ones).
        stream = ramp_compare_stream(0.5, 256)
        assert autocorrelation(stream, lag=1) > 0.9

    def test_random_streams_weakly_autocorrelated(self):
        rng = np.random.default_rng(1)
        stream = (rng.random(4096) < 0.5).astype(np.uint8)
        assert abs(autocorrelation(stream, lag=1)) < 0.05

    def test_lag_zero_is_one_for_varying_stream(self):
        assert autocorrelation(Bitstream("0101"), lag=0) == 1.0

    def test_constant_stream_is_zero(self):
        assert autocorrelation(Bitstream("1111"), lag=1) == 0.0

    def test_alternating_stream_negative(self):
        assert autocorrelation(Bitstream("01010101"), lag=1) < -0.9

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            autocorrelation(Bitstream("0101"), lag=-1)
        with pytest.raises(ValueError):
            autocorrelation(Bitstream("0101"), lag=4)
