"""Tests for the stochastic convolution layer."""

import numpy as np
import pytest

from repro.sc import StochasticConv2D, new_sc_engine, old_sc_engine
from repro.utils import extract_patches


def reference_convolution(images, kernels, padding):
    """Exact floating-point convolution used as the accuracy reference."""
    filters = kernels.shape[0]
    kh, kw = kernels.shape[1:]
    patches = extract_patches(images, (kh, kw), padding=padding)
    flat = kernels.reshape(filters, -1)
    values = patches @ flat.T  # (batch, P, F)
    side = images.shape[1] + 2 * padding - kh + 1
    return values.reshape(images.shape[0], side, side, filters).transpose(0, 3, 1, 2)


@pytest.fixture(scope="module")
def small_problem():
    rng = np.random.default_rng(0)
    images = rng.random((2, 8, 8))
    kernels = rng.uniform(-1, 1, size=(3, 3, 3))
    return images, kernels


class TestConstruction:
    def test_rejects_bad_kernels(self):
        with pytest.raises(ValueError):
            StochasticConv2D(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            StochasticConv2D(np.full((1, 3, 3), 2.0))
        with pytest.raises(ValueError):
            StochasticConv2D(np.zeros((1, 3, 3)), soft_threshold=-1)

    def test_properties(self, small_problem):
        _, kernels = small_problem
        layer = StochasticConv2D(kernels, padding=1)
        assert layer.filters == 3
        assert layer.kernel_size == (3, 3)
        assert layer.output_shape((8, 8)) == (8, 8)
        assert "StochasticConv2D" in repr(layer)

    def test_rejects_bad_inputs(self, small_problem):
        _, kernels = small_problem
        layer = StochasticConv2D(kernels)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            layer.forward(np.full((1, 4, 4), 2.0))


class TestForward:
    def test_output_shapes(self, small_problem):
        images, kernels = small_problem
        layer = StochasticConv2D(kernels, engine=new_sc_engine(precision=5), padding=1)
        result = layer.forward(images)
        assert result.sign.shape == (2, 3, 8, 8)
        assert result.value.shape == (2, 3, 8, 8)
        assert result.positive_count.shape == (2, 3, 8, 8)
        assert set(np.unique(result.sign)).issubset({-1, 0, 1})

    def test_signs_match_reference_convolution(self, small_problem):
        images, kernels = small_problem
        layer = StochasticConv2D(kernels, engine=new_sc_engine(precision=8), padding=1)
        result = layer.forward(images)
        reference = reference_convolution(images, kernels, padding=1)
        # Only clear-cut (not near-zero) outputs are expected to match signs.
        confident = np.abs(reference) > 0.5
        agreement = np.mean(
            np.sign(reference[confident]) == result.sign[confident]
        )
        assert agreement > 0.95

    def test_values_track_reference(self, small_problem):
        images, kernels = small_problem
        layer = StochasticConv2D(kernels, engine=new_sc_engine(precision=8), padding=1)
        result = layer.forward(images)
        reference = reference_convolution(images, kernels, padding=1)
        error = np.abs(result.value - reference)
        assert np.median(error) < 0.2

    def test_soft_threshold_zeroes_small_outputs(self, small_problem):
        images, kernels = small_problem
        plain = StochasticConv2D(kernels, engine=new_sc_engine(precision=6), padding=1)
        thresholded = StochasticConv2D(
            kernels,
            engine=new_sc_engine(precision=6),
            padding=1,
            soft_threshold=0.1,
        )
        zeros_plain = int(np.sum(plain.forward(images).sign == 0))
        zeros_thresholded = int(np.sum(thresholded.forward(images).sign == 0))
        assert zeros_thresholded >= zeros_plain

    def test_old_engine_noisier_than_new(self, small_problem):
        images, kernels = small_problem
        reference = reference_convolution(images, kernels, padding=1)
        new_layer = StochasticConv2D(kernels, engine=new_sc_engine(precision=6), padding=1)
        old_layer = StochasticConv2D(kernels, engine=old_sc_engine(precision=6), padding=1)
        new_err = np.mean((new_layer.forward(images).value - reference) ** 2)
        old_err = np.mean((old_layer.forward(images).value - reference) ** 2)
        assert new_err < old_err
