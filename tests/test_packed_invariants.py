"""Property-based invariants of :class:`PackedBitstream` (hypothesis).

Complements the differential suite: instead of comparing against the unpacked
reference point-by-point, these tests assert the *invariants* every
well-formed packed stream must satisfy -- value/ones preservation under the
manipulation helpers, a spotless tail word after every operation, and edge
cases (empty and length-1 streams) behaving exactly like the unpacked class.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitstream import (
    WORD_BITS,
    Bitstream,
    PackedBitstream,
    pack_bits,
    words_for,
)

lengths = st.integers(min_value=1, max_value=300)
values = st.floats(min_value=0.0, max_value=1.0)


def tail_is_clean(packed: PackedBitstream) -> bool:
    """True when no bit beyond ``n_bits`` is set in the tail word."""
    rem = packed.n_bits % WORD_BITS
    if rem == 0 or packed.words.shape[0] == 0:
        return True
    return int(packed.words[-1] >> np.uint64(rem)) == 0


class TestValuePreservation:
    @given(values, lengths, st.integers(-400, 400))
    @settings(max_examples=40, deadline=None)
    def test_rotate_preserves_ones_and_value(self, value, length, shift):
        packed = PackedBitstream.from_random(value, length, rng=7)
        rotated = packed.rotate(shift)
        assert rotated.ones == packed.ones
        assert rotated.length == packed.length
        assert rotated.value == packed.value
        assert tail_is_clean(rotated)

    @given(values, lengths, st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_repeat_preserves_value(self, value, length, times):
        packed = PackedBitstream.from_random(value, length, rng=11)
        repeated = packed.repeat(times)
        assert repeated.length == length * times
        assert repeated.ones == packed.ones * times
        assert repeated.probability == pytest.approx(packed.probability)
        assert tail_is_clean(repeated)

    @given(values, lengths, st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_permute_preserves_ones(self, value, length, seed):
        packed = PackedBitstream.from_random(value, length, rng=3)
        permuted = packed.permute(rng=seed)
        assert permuted.ones == packed.ones
        assert permuted.length == packed.length
        assert tail_is_clean(permuted)

    @given(values, lengths)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_and_complement(self, value, length):
        packed = PackedBitstream.from_random(value, length, rng=5)
        assert packed.unpack().pack() == packed
        complement = ~packed
        assert complement.ones == length - packed.ones
        assert tail_is_clean(complement)
        # Involution: double complement restores the original words exactly.
        assert ~complement == packed


class TestTailMasking:
    @given(lengths, st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_logic_ops_never_leak_tail_bits(self, length, seed):
        rng = np.random.default_rng(seed)
        x = PackedBitstream.from_random(rng.random(), length, rng=rng)
        y = PackedBitstream.from_random(rng.random(), length, rng=rng)
        for result in (x & y, x | y, x ^ y, ~x, ~y):
            assert tail_is_clean(result)
            # popcount over words must agree with the unpacked ones-count,
            # which is only true when no stray tail bits exist.
            assert result.ones == result.unpack().ones

    def test_constructor_rejects_stray_tail_bits(self):
        words = np.array([0xFF], dtype=np.uint64)  # 8 bits set, length 4
        with pytest.raises(ValueError, match="stray bits"):
            PackedBitstream(words, 4)

    def test_constructor_rejects_wrong_word_count(self):
        with pytest.raises(ValueError, match="words"):
            PackedBitstream(np.zeros(2, dtype=np.uint64), 64)
        with pytest.raises(TypeError):
            PackedBitstream(np.zeros(1, dtype=np.int64), 64)

    def test_all_ones_tail_masked(self):
        for length in (1, 63, 64, 65, 130):
            packed = PackedBitstream.all_ones(length)
            assert packed.ones == length
            assert tail_is_clean(packed)


class TestEdgeCases:
    def test_empty_stream_behaves_like_unpacked(self):
        packed = PackedBitstream.all_zeros(0)
        unpacked = Bitstream.all_zeros(0)
        assert len(packed) == len(unpacked) == 0
        assert packed.ones == unpacked.ones == 0
        with pytest.raises(ValueError):
            _ = unpacked.probability
        with pytest.raises(ValueError):
            _ = packed.probability
        assert words_for(0) == 0
        assert packed.unpack() == unpacked

    def test_length_one_streams(self):
        for bit in ("0", "1"):
            packed = PackedBitstream.from_bits(bit)
            unpacked = Bitstream(bit)
            assert packed.ones == unpacked.ones
            assert packed.value == unpacked.value
            assert packed.unpack() == unpacked
            assert len(packed) == 1

    def test_length_mismatch_raises(self):
        x = PackedBitstream.from_bits("0101")
        y = PackedBitstream.from_bits("010")
        with pytest.raises(ValueError, match="length mismatch"):
            _ = x & y

    def test_type_mismatch_raises(self):
        x = PackedBitstream.from_bits("0101")
        with pytest.raises(TypeError):
            _ = x & Bitstream("0101")

    def test_invalid_encoding_raises(self):
        with pytest.raises(ValueError, match="unknown encoding"):
            PackedBitstream(np.zeros(0, dtype=np.uint64), 0, encoding="ternary")

    def test_repeat_requires_positive_times(self):
        with pytest.raises(ValueError):
            PackedBitstream.from_bits("01").repeat(0)


class TestFromExactRounding:
    def test_half_up_rounding_grid(self):
        # Regression for the banker's-rounding bias: round(p * length) with
        # round-half-to-even under-counted ones for e.g. 0.5 at odd lengths.
        for length in range(1, 34):
            for k in range(length + 1):
                value = k / length
                expected = min(int(np.floor(value * length + 0.5)), length)
                assert Bitstream.from_exact(value, length).ones == expected
                assert PackedBitstream.from_exact(value, length).ones == expected

    def test_midpoint_rounds_up(self):
        # 0.5 * 13 = 6.5: banker's rounding gave 6, half-up gives 7.
        assert Bitstream.from_exact(0.5, 13).ones == 7
        assert Bitstream.from_exact(0.5, 15).ones == 8
        assert PackedBitstream.from_exact(0.5, 13).ones == 7

    def test_exact_counts_still_exact(self):
        assert Bitstream.from_exact(0.375, 16).ones == 6
        assert Bitstream.from_exact(0.0, 9).ones == 0
        assert Bitstream.from_exact(1.0, 9).ones == 9


class TestPackedBitstreamMisc:
    def test_as_encoding_and_exact_value(self):
        packed = PackedBitstream.from_bits("1100")
        bipolar = packed.as_encoding("bipolar")
        assert bipolar.value == 0.0
        assert packed.exact_value == packed.unpack().exact_value

    def test_from_bits_keeps_bitstream_encoding(self):
        # Regression: from_bits used to reset a bipolar Bitstream to unipolar.
        source = Bitstream("1100", encoding="bipolar")
        packed = PackedBitstream.from_bits(source)
        assert packed.encoding == "bipolar"
        assert packed.value == source.value == 0.0
        # An explicit encoding still wins over the source's.
        assert PackedBitstream.from_bits(source, encoding="unipolar").value == 0.5

    def test_hash_and_eq(self):
        a = PackedBitstream.from_bits("0110 1001")
        b = Bitstream("0110 1001").pack()
        assert a == b and hash(a) == hash(b)
        assert a != PackedBitstream.from_bits("0110 1000")
        assert (a == "0110") is False

    def test_repr_and_to_string(self):
        packed = PackedBitstream.from_bits("0110")
        assert "0110" in repr(packed)
        assert packed.to_string() == "0110"
        long = PackedBitstream.all_zeros(100)
        assert "..." in repr(long)

    def test_pack_bits_accepts_bool(self):
        bits = np.array([True, False, True])
        assert PackedBitstream(pack_bits(bits), 3).ones == 2


class TestFaultKernelTail:
    """Tail-word hygiene of the fault-injection kernel (repro.faults).

    The fault masks and the ``packed_apply_faults`` kernel must never leave
    garbage beyond ``n_bits`` in the tail word: every popcount in the engine
    trusts the tail invariant, so a single stray bit would silently corrupt
    counter values.
    """

    @given(lengths, st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_apply_faults_masks_the_tail(self, length, seed):
        from repro.bitstream.packed import (
            packed_apply_faults,
            packed_popcount,
            tail_is_clear,
            unpack_bits,
        )

        rng = np.random.default_rng(seed)
        shape = (2, words_for(length))
        # Deliberately unmasked 64-bit garbage in every operand: the kernel
        # must re-establish the invariant itself.
        words, s0, s1, flips = (
            rng.integers(0, 2**64, shape, dtype=np.uint64) for _ in range(4)
        )
        out = packed_apply_faults(words, s0, s1, flips, length)
        assert tail_is_clear(out, length)
        # Popcount must agree with the bit-level reference computation.
        ref = (
            (unpack_bits(words, length) | unpack_bits(s1, length))
            & (1 - unpack_bits(s0, length))
        ) ^ unpack_bits(flips, length)
        assert np.array_equal(packed_popcount(out), ref.sum(axis=-1))

    @given(lengths, st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_fault_plan_chained_with_kernels_stays_clean(self, length, seed):
        from repro.bitstream.packed import (
            packed_not,
            packed_popcount,
            packed_xnor,
            tail_is_clear,
            unpack_bits,
        )
        from repro.faults import FaultSpec

        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (3, 2, length), dtype=np.int64).astype(np.uint8)
        spec = FaultSpec(flip_rate=0.3, stuck_one_rate=0.2, stuck_zero_rate=0.1,
                         burst_rate=0.05, seed=seed % 1000)
        faulted = spec.plan().apply(pack_bits(bits), length)
        assert tail_is_clear(faulted, length)
        # Chain the usual packed kernels after injection: the tail must stay
        # spotless and popcounts must match the unpacked reference after
        # every step.
        inverted = packed_not(faulted, length)
        assert tail_is_clear(inverted, length)
        xnored = packed_xnor(faulted, inverted, length)
        assert tail_is_clear(xnored, length)
        # XNOR of a stream with its complement is all-zeros; with itself,
        # all-ones (and the tail masking keeps the count at ``length``, not
        # the word capacity).
        assert (packed_popcount(xnored) == 0).all()
        assert (packed_popcount(packed_xnor(faulted, faulted, length)) == length).all()
        assert np.array_equal(
            packed_popcount(faulted), unpack_bits(faulted, length).sum(axis=-1)
        )

    def test_tail_is_clear_detects_stray_bits(self):
        from repro.bitstream.packed import tail_is_clear

        words = np.array([0xFF], dtype=np.uint64)
        assert tail_is_clear(words, 8)
        assert not tail_is_clear(words, 4)
        assert tail_is_clear(np.zeros(0, dtype=np.uint64), 0)
        assert tail_is_clear(np.array([2**63], dtype=np.uint64), 64)
