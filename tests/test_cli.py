"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_precision_parsing(self):
        args = build_parser().parse_args(["table1", "--precisions", "6,4"])
        assert args.precisions == (6, 4)

    def test_invalid_precisions_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--precisions", "abc"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--precisions", "1,4"])

    def test_hardware_flags(self):
        args = build_parser().parse_args(["hardware", "--raw"])
        assert args.raw is True

    def test_accuracy_flags(self):
        args = build_parser().parse_args(
            ["accuracy", "--quick", "--no-retrain-row", "--train-size", "200"]
        )
        assert args.quick and args.no_retrain_row
        assert args.train_size == 200

    def test_activity_flags(self):
        args = build_parser().parse_args(
            ["activity", "--precision", "5", "--taps", "9", "--backend", "unpacked"]
        )
        assert args.precision == 5 and args.taps == 9
        assert args.backend == "unpacked"
        assert args.traces == 1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["activity", "--backend", "simd"])

    def test_activity_traces_flag(self):
        args = build_parser().parse_args(["activity", "--traces", "8"])
        assert args.traces == 8

    def test_hardware_activity_traces_flag(self):
        args = build_parser().parse_args(["hardware", "--activity-traces", "16"])
        assert args.activity_traces == 16
        assert build_parser().parse_args(["hardware"]).activity_traces == 0

    def test_accuracy_tile_patches_flag(self):
        from repro.cli import _accuracy_config

        args = build_parser().parse_args(
            ["accuracy", "--quick", "--tile-patches", "96"]
        )
        assert args.tile_patches == 96
        assert _accuracy_config(args).tile_patches == 96
        args = build_parser().parse_args(["accuracy", "--quick"])
        assert args.tile_patches is None
        bad = build_parser().parse_args(["accuracy", "--tile-patches", "0"])
        with pytest.raises(SystemExit):
            _accuracy_config(bad)


class TestCommands:
    def test_table1_command(self, capsys):
        assert main(["table1", "--precisions", "5,4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Ramp-compare" in out

    def test_table2_command(self, capsys):
        assert main(["table2", "--precisions", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "New adder" in out

    def test_hardware_command(self, capsys):
        assert main(["hardware", "--precisions", "8,4"]) == 0
        out = capsys.readouterr().out
        assert "Energy" in out and "Area" in out
        assert "calibrated" in out

    def test_hardware_raw_command(self, capsys):
        assert main(["hardware", "--precisions", "8", "--raw"]) == 0
        assert "raw model" in capsys.readouterr().out

    def test_activity_command_backends_agree(self, capsys):
        # The switching-activity simulation must report identical toggle
        # totals on both simulator backends.
        outputs = {}
        for backend in ("packed", "unpacked"):
            assert main(
                ["activity", "--precision", "4", "--taps", "4", "--backend", backend]
            ) == 0
            out = capsys.readouterr().out
            assert "total toggles" in out
            assert f"backend={backend}" in out
            outputs[backend] = [
                line
                for line in out.splitlines()
                if ":" in line and "backend=" not in line
            ]
        assert outputs["packed"] == outputs["unpacked"]

    def test_activity_batched_command_backends_agree(self, capsys):
        # Batched multi-trace simulation: identical aggregate toggles on
        # both backends (the unpacked one literally runs per-trace loops).
        outputs = {}
        for backend in ("packed", "unpacked"):
            assert main(
                ["activity", "--precision", "4", "--taps", "4",
                 "--traces", "3", "--backend", backend]
            ) == 0
            out = capsys.readouterr().out
            assert "x 3 traces (batched)" in out
            assert "activity spread" in out
            outputs[backend] = [
                line
                for line in out.splitlines()
                if ":" in line and "backend=" not in line
            ]
        assert outputs["packed"] == outputs["unpacked"]

    def test_hardware_measured_activity_command(self, capsys):
        assert main(
            ["hardware", "--precisions", "5,4", "--activity-traces", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "measured SC activity over 3 traces" in out
        assert "Energy" in out

    def test_activity_rejects_bad_args(self):
        with pytest.raises(SystemExit):
            main(["activity", "--precision", "1"])
        with pytest.raises(SystemExit):
            main(["activity", "--taps", "1"])
        with pytest.raises(SystemExit):
            main(["activity", "--traces", "0"])
        with pytest.raises(SystemExit):
            main(["hardware", "--activity-traces", "-1"])

    def test_claims_command(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "energy efficiency at 4-bit" in out

    def test_accuracy_quick_command(self, capsys, monkeypatch):
        # Keep the quick run genuinely small for CI purposes.
        monkeypatch.setenv("REPRO_EVAL_IMAGES", "40")
        assert main(["accuracy", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Misclassification" in out
        assert "This Work" in out


class TestFaultsCommand:
    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["faults", "--rates", "0,1e-3", "--precision", "6",
             "--images", "3", "--filters", "4", "--trials", "1",
             "--backend", "unpacked", "--no-artifact"]
        )
        assert args.rates == (0.0, 1e-3)
        assert args.precision == 6 and args.images == 3
        assert args.backend == "unpacked" and args.no_artifact

    def test_parser_rejects_bad_rates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--rates", "abc"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--rates", ""])

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["faults", "--help"])
        assert exc.value.code == 0
        assert "upset rates" in capsys.readouterr().out

    def test_out_of_range_rate_clean_error(self):
        # Parses fine but fails FaultSweepConfig validation: the CLI must
        # surface it as a clean SystemExit, not a traceback.
        with pytest.raises(SystemExit, match="repro: error"):
            main(["faults", "--rates", "2.0", "--no-artifact"])

    def test_quick_command_prints_table(self, capsys):
        assert main(
            ["faults", "--quick", "--precision", "5", "--no-artifact"]
        ) == 0
        out = capsys.readouterr().out
        assert "SC agree" in out and "bin agree" in out
        assert "wrote" not in out

    def test_command_writes_artifact(self, capsys, tmp_path):
        target = tmp_path / "BENCH_faults.json"
        assert main(
            ["faults", "--quick", "--precision", "5", "--rates", "0,1e-2",
             "--output", str(target)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        import json

        data = json.loads(target.read_text())
        rows = data["fault_sweep"]["rows"]
        assert [row["rate"] for row in rows] == [0.0, 1e-2]
        assert rows[0]["sc_sign_agreement"] == 1.0
