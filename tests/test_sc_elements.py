"""Tests for stochastic arithmetic elements: multipliers, flip-flops, adders,
converters.  These cover the behaviours of Figs. 1 and 2 of the paper,
including the worked adder examples."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitstream import Bitstream
from repro.sc import (
    AdderTree,
    AndMultiplier,
    AsynchronousCounter,
    BinaryCounter,
    MuxAdder,
    OrAdder,
    SynchronousCounter,
    TffAdder,
    ToggleFlipFlop,
    XnorMultiplier,
    and_multiply,
    count_ones,
    mux_add,
    or_add,
    sign_from_counts,
    stochastic_to_binary,
    tff_add,
    tff_halver,
    tff_output,
    toggle_states,
)

bit_arrays = st.lists(st.integers(0, 1), min_size=2, max_size=64).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)


class TestMultipliers:
    def test_and_gate_exact_on_independent_grids(self):
        x = Bitstream("11110000")  # 0.5
        y = Bitstream("11001100")  # 0.5
        z = and_multiply(x, y)
        assert z.value == pytest.approx(0.25)

    def test_class_interface(self):
        mult = AndMultiplier()
        assert mult.expected(0.5, 0.25) == pytest.approx(0.125)
        assert mult.gate_count == 1
        assert "AndMultiplier" in repr(mult)

    def test_xnor_bipolar_multiplication(self):
        mult = XnorMultiplier()
        x = Bitstream("1111", encoding="bipolar")  # +1
        y = Bitstream("0000", encoding="bipolar")  # -1
        z = mult(x, y)
        assert z.value == pytest.approx(-1.0)
        assert mult.expected(1.0, -1.0) == pytest.approx(-1.0)

    def test_array_inputs(self):
        x = np.random.default_rng(0).integers(0, 2, size=(3, 16)).astype(np.uint8)
        y = np.random.default_rng(1).integers(0, 2, size=(3, 16)).astype(np.uint8)
        z = and_multiply(x, y)
        assert z.shape == (3, 16)
        np.testing.assert_array_equal(z, x & y)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            and_multiply(Bitstream("01"), Bitstream("011"))

    @given(bit_arrays, st.integers(0, 1))
    def test_multiplying_by_all_ones_is_identity(self, bits, _):
        ones = np.ones_like(bits)
        np.testing.assert_array_equal(and_multiply(bits, ones), bits)


class TestToggleFlipFlop:
    def test_states_parity(self):
        trigger = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        states = toggle_states(trigger, initial_state=0)
        np.testing.assert_array_equal(states, [0, 1, 1, 0, 1])

    def test_initial_state_one(self):
        trigger = np.array([1, 1], dtype=np.uint8)
        np.testing.assert_array_equal(toggle_states(trigger, 1), [1, 0])

    def test_invalid_initial_state(self):
        with pytest.raises(ValueError):
            toggle_states(np.array([1], dtype=np.uint8), 2)
        with pytest.raises(ValueError):
            ToggleFlipFlop(initial_state=5)

    def test_stateful_matches_vectorized(self):
        rng = np.random.default_rng(3)
        trigger = rng.integers(0, 2, 100).astype(np.uint8)
        ff = ToggleFlipFlop(initial_state=1)
        np.testing.assert_array_equal(ff.run(trigger), toggle_states(trigger, 1))

    def test_stateful_reset(self):
        ff = ToggleFlipFlop()
        ff.step(1)
        assert ff.state == 1
        ff.reset()
        assert ff.state == 0

    def test_run_rejects_batches(self):
        with pytest.raises(ValueError):
            ToggleFlipFlop().run(np.zeros((2, 4), dtype=np.uint8))

    @given(bit_arrays)
    def test_tff_output_toggles_only_on_trigger_ones(self, trigger):
        # The observed TFF state changes between cycle t-1 and t exactly when
        # the trigger was 1 at cycle t-1 (the toggle takes effect next cycle).
        out = np.asarray(tff_output(trigger, initial_state=0)).astype(int)
        changes = np.abs(np.diff(out))
        np.testing.assert_array_equal(changes, trigger[:-1].astype(int))


class TestTffHalver:
    def test_halves_exactly(self):
        # Fig. 2a: p_C = p_A / 2 with no additional random input.
        stream = Bitstream("11110000")
        halved = tff_halver(stream, initial_state=1)
        assert halved.ones == 2

    def test_rounding_direction(self):
        odd = Bitstream("11100000")  # 3 ones
        assert tff_halver(odd, initial_state=1).ones == 2  # ceil(3/2)
        assert tff_halver(odd, initial_state=0).ones == 1  # floor(3/2)

    @given(bit_arrays, st.integers(0, 1))
    def test_exact_halving_property(self, bits, s0):
        ones = int(bits.sum())
        result = int(np.asarray(tff_halver(bits, s0)).sum())
        # ceil for s0=1, floor for s0=0
        expected = (ones + (1 if s0 else 0)) // 2
        assert result == expected


class TestTffAdder:
    def test_paper_example_section_iii(self):
        # The worked example from Section III: Z = 0.5 * (1/2 + 4/5) = 13/20.
        x = Bitstream("0110 0011 0101 0111 1000")
        y = Bitstream("1011 1111 0101 0111 1111")
        z = tff_add(x, y, initial_state=0)
        assert z == Bitstream("0110 1011 0101 0111 1101")
        assert z.ones == 13

    def test_fig2c_initial_state_rounding(self):
        # Fig. 2c: X = 3/8, Y = 1/4, exact sum/2 = 5/16 not representable in 8 bits.
        x = Bitstream("0100 1010")
        y = Bitstream("0010 0010")
        z0 = tff_add(x, y, initial_state=0)
        z1 = tff_add(x, y, initial_state=1)
        assert z0 == Bitstream("0010 0010")  # rounds down to 1/4
        assert z1 == Bitstream("0100 1010")  # rounds up to 3/8
        assert z0.ones == 2 and z1.ones == 3

    def test_exact_when_representable(self):
        x = Bitstream.from_exact(0.5, 16)
        y = Bitstream.from_exact(0.25, 16)
        z = tff_add(x, y)
        assert z.value == pytest.approx(0.375)

    def test_class_interface(self):
        adder = TffAdder(initial_state=1)
        assert adder.expected(0.5, 0.25) == pytest.approx(0.375)
        assert "TffAdder" in repr(adder)
        with pytest.raises(ValueError):
            TffAdder(initial_state=3)

    def test_insensitive_to_autocorrelation(self):
        # Ramp-converted (maximally auto-correlated) inputs still add exactly.
        from repro.rng import ramp_compare_stream

        x = ramp_compare_stream(0.75, 64)
        y = ramp_compare_stream(0.25, 64)
        z = np.asarray(tff_add(x, y))
        assert z.sum() == 32

    @given(bit_arrays, st.data(), st.integers(0, 1))
    @settings(max_examples=200, deadline=None)
    def test_ones_count_exact_up_to_rounding(self, x, data, s0):
        y = data.draw(
            st.lists(st.integers(0, 1), min_size=len(x), max_size=len(x)).map(
                lambda b: np.array(b, dtype=np.uint8)
            )
        )
        z = np.asarray(tff_add(x, y, initial_state=s0))
        total = int(x.sum() + y.sum())
        expected = (total + s0) // 2
        assert int(z.sum()) == expected

    def test_batched_inputs(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, size=(4, 5, 32)).astype(np.uint8)
        y = rng.integers(0, 2, size=(4, 5, 32)).astype(np.uint8)
        z = tff_add(x, y)
        assert z.shape == (4, 5, 32)
        expected = (x.sum(axis=-1) + y.sum(axis=-1)) // 2
        np.testing.assert_array_equal(z.sum(axis=-1), expected)


class TestMuxAdder:
    def test_scaled_sum_with_explicit_select(self):
        x = Bitstream("11111111")
        y = Bitstream("00000000")
        select = Bitstream("01010101")
        z = mux_add(x, y, select)
        assert z.value == pytest.approx(0.5)

    def test_toggle_select_deterministic(self):
        adder = MuxAdder(toggle_select=True)
        np.testing.assert_array_equal(adder.select_bits(6), [0, 1, 0, 1, 0, 1])

    def test_random_select_value_near_half(self):
        adder = MuxAdder(seed=7)
        select = adder.select_bits(4096)
        assert abs(select.mean() - 0.5) < 0.05

    def test_call_produces_scaled_sum_in_expectation(self):
        adder = MuxAdder(seed=11)
        x = Bitstream.from_random(0.8, 4096, rng=1)
        y = Bitstream.from_random(0.2, 4096, rng=2)
        z = adder(x, y)
        assert z.value == pytest.approx(0.5, abs=0.05)

    def test_repr(self):
        assert "toggle_select" in repr(MuxAdder(toggle_select=True))
        assert "MuxAdder" in repr(MuxAdder())


class TestOrAdder:
    def test_accurate_near_zero(self):
        x = Bitstream.from_exact(0.05, 64).permute(rng=1)
        y = Bitstream.from_exact(0.05, 64).permute(rng=2)
        z = or_add(x, y)
        assert z.value == pytest.approx(0.1, abs=0.05)

    def test_saturates_for_large_inputs(self):
        x = Bitstream.from_exact(0.9, 64)
        y = Bitstream.from_exact(0.9, 64)
        assert or_add(x, y).value < 1.8 / 2 + 0.2  # far from x+y
        assert OrAdder().expected(0.9, 0.9) == 1.0

    def test_class_call(self):
        adder = OrAdder()
        assert adder(Bitstream("10"), Bitstream("01")).value == 1.0


class TestAdderTree:
    def test_depth_and_scale(self):
        tree = AdderTree()
        assert tree.depth(2) == 1
        assert tree.depth(25) == 5
        assert tree.scale_factor(25) == pytest.approx(1 / 32)
        with pytest.raises(ValueError):
            tree.depth(0)

    def test_exact_sum_with_tff_adders(self):
        # 4 streams of value 8/16 each: tree output = 32/(16*4) = 0.5 exactly.
        streams = [Bitstream.from_exact(0.5, 16).rotate(i) for i in range(4)]
        tree = AdderTree(TffAdder)
        result = tree.reduce(streams)
        assert result.value == pytest.approx(0.5)

    def test_padding_with_zero_streams(self):
        streams = [Bitstream.from_exact(1.0, 16)] * 3
        tree = AdderTree(TffAdder)
        result = tree.reduce(streams)
        # 3 ones-streams through a depth-2 tree: (1+1+1+0)/4 = 0.75
        assert result.value == pytest.approx(0.75)

    def test_stacked_array_input(self):
        rng = np.random.default_rng(0)
        stacked = rng.integers(0, 2, size=(7, 5, 32)).astype(np.uint8)
        tree = AdderTree(TffAdder)
        result = tree.reduce(stacked)
        assert result.shape == (7, 32)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            AdderTree().reduce([])
        with pytest.raises(ValueError):
            AdderTree().reduce(np.zeros(4, dtype=np.uint8))

    def test_expected_value(self):
        tree = AdderTree()
        assert tree.expected([0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=16
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_tff_tree_error_bounded_by_depth(self, values):
        length = 64
        streams = [Bitstream.from_exact(v, length).permute(rng=i) for i, v in enumerate(values)]
        tree = AdderTree(TffAdder)
        result = tree.reduce(streams)
        exact_counts = sum(s.ones for s in streams)
        depth = tree.depth(len(values))
        expected = exact_counts / (2 ** depth)
        # Each adder level introduces at most one LSB of rounding error.
        assert abs(result.ones - expected) <= depth


class TestConverters:
    def test_count_ones_batched(self):
        bits = np.array([[1, 1, 0, 0], [1, 0, 0, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(count_ones(bits), [2, 1])

    def test_stochastic_to_binary_encodings(self):
        stream = Bitstream("1100")
        assert stochastic_to_binary(stream) == pytest.approx(0.5)
        assert stochastic_to_binary(stream, "bipolar") == pytest.approx(0.0)
        with pytest.raises(ValueError):
            stochastic_to_binary(stream, "ternary")

    def test_counter_run_and_saturation(self):
        counter = BinaryCounter(bits=3)
        assert counter.run(Bitstream("1111111111")) == 7  # saturates at 2^3 - 1
        counter.reset()
        assert counter.count == 0

    def test_counter_step(self):
        counter = BinaryCounter(bits=4)
        counter.step(1)
        counter.step(0)
        counter.step(1)
        assert counter.count == 2

    def test_counter_rejects_batch(self):
        with pytest.raises(ValueError):
            BinaryCounter(4).run(np.zeros((2, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            BinaryCounter(0)

    def test_async_vs_sync_metadata(self):
        assert AsynchronousCounter(8).input_stage_delay_ff == 1
        assert SynchronousCounter(8).input_stage_delay_ff == 8
        assert AsynchronousCounter(8).style == "async"
        assert SynchronousCounter(8).style == "sync"
        # behaviourally identical
        stream = Bitstream("1011 0010")
        assert AsynchronousCounter(8).run(stream) == SynchronousCounter(8).run(stream)

    def test_sign_from_counts(self):
        pos = np.array([5, 2, 3])
        neg = np.array([2, 2, 7])
        np.testing.assert_array_equal(sign_from_counts(pos, neg), [1, 0, -1])
