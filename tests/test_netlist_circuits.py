"""Functional tests of the gate-level circuit generators.

Every builder is verified against its behavioural reference: the stochastic
elements against :mod:`repro.sc`, the binary elements against plain integer
arithmetic.  This is the evidence that the netlists costed in Table 3 compute
the same functions as the models used for the accuracy results.
"""

import numpy as np
import pytest

from repro.rng import LFSR, MAXIMAL_TAPS
from repro.sc import tff_add
from repro.netlist import (
    BUILDER_CATALOG,
    build_adder_tree,
    build_and_multiplier,
    build_array_multiplier,
    build_binary_mac,
    build_comparator,
    build_counter,
    build_lfsr,
    build_mux_adder,
    build_ripple_adder,
    build_sc_dot_product,
    build_sng,
    build_tff_adder,
    lint,
    simulate,
)


def int_to_bits(value: int, bits: int) -> list[int]:
    return [(value >> i) & 1 for i in range(bits)]


def bits_to_int(bits: list[int]) -> int:
    return sum(int(b) << i for i, b in enumerate(bits))


class TestStochasticElementNetlists:
    def test_and_multiplier(self):
        net = build_and_multiplier()
        result = simulate(net, {"x": [1, 1, 0, 0], "y": [1, 0, 1, 0]})
        np.testing.assert_array_equal(result.waveform("z"), [1, 0, 0, 0])

    def test_mux_adder(self):
        net = build_mux_adder()
        result = simulate(
            net, {"x": [1, 1, 0, 0], "y": [0, 1, 1, 0], "sel": [0, 1, 0, 1]}
        )
        np.testing.assert_array_equal(result.waveform("z"), [1, 1, 0, 0])

    def test_tff_adder_matches_functional_model(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, 64).astype(np.uint8)
        y = rng.integers(0, 2, 64).astype(np.uint8)
        net = build_tff_adder(initial_state=0)
        result = simulate(net, {"x": x, "y": y})
        expected = np.asarray(tff_add(x, y, initial_state=0))
        np.testing.assert_array_equal(result.waveform("z"), expected)

    def test_tff_adder_paper_example(self):
        x = [int(c) for c in "01100011010101111000"]
        y = [int(c) for c in "10111111010101111111"]
        net = build_tff_adder()
        result = simulate(net, {"x": x, "y": y})
        assert int(result.waveform("z").sum()) == 13

    def test_adder_tree_tff_counts(self):
        # 4 all-ones inputs through a depth-2 TFF tree: output stays all-ones.
        net = build_adder_tree(4, adder="tff")
        stim = {f"in{i}": [1] * 16 for i in range(4)}
        result = simulate(net, stim)
        assert int(result.waveform("sum").sum()) == 16

    def test_adder_tree_mux_has_select_inputs(self):
        net = build_adder_tree(4, adder="mux")
        selects = [n for n in net.primary_inputs if n.startswith("sel")]
        assert len(selects) == 3  # one per tree node

    def test_adder_tree_rejects_bad_args(self):
        with pytest.raises(ValueError):
            build_adder_tree(1)
        with pytest.raises(ValueError):
            build_adder_tree(4, adder="carry")

    def test_counter_counts_ones(self):
        net = build_counter(4)
        enable = [1, 1, 0, 1, 1, 1, 0, 0, 1, 1]
        result = simulate(net, {"enable": enable}, record=[f"count{i}" for i in range(4)])
        final = bits_to_int([result.waveform(f"count{i}")[-1] for i in range(4)])
        # The count visible at the last cycle reflects all ones before it.
        assert final == sum(enable[:-1])

    def test_counter_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            build_counter(0)

    def test_comparator(self):
        net = build_comparator(4)
        cases = [(5, 3, 1), (3, 5, 0), (7, 7, 0), (0, 0, 0), (15, 14, 1)]
        for a, b, expected in cases:
            stim = {}
            for i in range(4):
                stim[f"a{i}"] = [int_to_bits(a, 4)[i]]
                stim[f"b{i}"] = [int_to_bits(b, 4)[i]]
            result = simulate(net, stim)
            assert result.waveform("gt")[0] == expected, (a, b)

    def test_comparator_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            build_comparator(0)

    def test_lfsr_netlist_matches_software_model(self):
        bits = 4
        net = build_lfsr(bits, MAXIMAL_TAPS[bits])
        cycles = 20
        result = simulate(net, {}, cycles=cycles, record=[f"state{i}" for i in range(bits)])
        hardware_states = [
            bits_to_int([int(result.waveform(f"state{i}")[t]) for i in range(bits)])
            for t in range(cycles)
        ]
        software = LFSR(bits, seed=1)
        expected = [int(s) for s in software.states(cycles)]
        assert hardware_states == expected

    def test_sng_stream_density_tracks_value(self):
        bits = 4
        net = build_sng(bits, MAXIMAL_TAPS[bits])
        period = (1 << bits) - 1
        for value in (3, 8, 12):
            stim = {f"value{i}": [int_to_bits(value, bits)[i]] * period for i in range(bits)}
            result = simulate(net, stim)
            ones = int(result.waveform("stream").sum())
            # Over one full LFSR period the comparator fires `value` times
            # (every state 1..2^bits-1 below the threshold appears once).
            assert abs(ones - value) <= 1

    def test_sc_dot_product_sign(self):
        taps, counter_bits, n = 4, 6, 32
        net = build_sc_dot_product(taps, counter_bits, adder="tff")
        rng = np.random.default_rng(1)
        x = rng.integers(0, 2, size=(taps, n))
        # All-positive weights: wp = all-ones streams, wn = all-zeros.
        stim = {}
        for i in range(taps):
            stim[f"x{i}"] = x[i]
            stim[f"wp{i}"] = [1] * n
            stim[f"wn{i}"] = [0] * n
        result = simulate(net, stim)
        assert result.waveform("sign")[-1] == 1

        # All-negative weights flip the sign.
        for i in range(taps):
            stim[f"wp{i}"] = [0] * n
            stim[f"wn{i}"] = [1] * n
        result = simulate(net, stim)
        assert result.waveform("sign")[-1] == 0

    def test_sc_dot_product_structure(self):
        net = build_sc_dot_product(25, 8, adder="tff")
        counts = net.cell_counts()
        assert counts["AND2"] >= 50  # 25 taps x 2 paths of multipliers
        # 27 adders per 25-leaf tree (padding to even at each level), two
        # trees, plus two 8-bit counters built from TFFs.
        assert counts["TFF"] >= 2 * 27 + 16
        with pytest.raises(ValueError):
            build_sc_dot_product(1, 8)


class TestBinaryElementNetlists:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (9, 6), (15, 15), (7, 8)])
    def test_ripple_adder(self, a, b):
        bits = 4
        net = build_ripple_adder(bits)
        stim = {}
        for i in range(bits):
            stim[f"a{i}"] = [int_to_bits(a, bits)[i]]
            stim[f"b{i}"] = [int_to_bits(b, bits)[i]]
        result = simulate(net, stim)
        total = bits_to_int([result.waveform(f"s{i}")[0] for i in range(bits)])
        total += int(result.waveform("cout")[0]) << bits
        assert total == a + b

    def test_ripple_adder_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            build_ripple_adder(0)

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (3, 5), (7, 9), (15, 15), (12, 10)])
    def test_array_multiplier(self, a, b):
        bits = 4
        net = build_array_multiplier(bits)
        stim = {}
        for i in range(bits):
            stim[f"a{i}"] = [int_to_bits(a, bits)[i]]
            stim[f"b{i}"] = [int_to_bits(b, bits)[i]]
        result = simulate(net, stim)
        product = bits_to_int(
            [result.waveform(f"p{i}")[0] for i in range(2 * bits)]
        )
        assert product == a * b

    def test_array_multiplier_gate_count_scales_quadratically(self):
        small = len(build_array_multiplier(4).instances)
        large = len(build_array_multiplier(8).instances)
        assert large > 3 * small

    def test_binary_mac_accumulates(self):
        bits, acc_bits = 4, 10
        net = build_binary_mac(bits, acc_bits)
        a_values = [3, 5, 2]
        b_values = [4, 6, 7]
        stim = {}
        for i in range(bits):
            stim[f"mul_a{i}"] = [int_to_bits(v, bits)[i] for v in a_values] + [0]
            stim[f"mul_b{i}"] = [int_to_bits(v, bits)[i] for v in b_values] + [0]
        result = simulate(
            net, stim, record=[f"acc{i}" for i in range(acc_bits)]
        )
        final = bits_to_int([result.waveform(f"acc{i}")[-1] for i in range(acc_bits)])
        assert final == sum(a * b for a, b in zip(a_values, b_values))

    def test_binary_mac_rejects_narrow_accumulator(self):
        with pytest.raises(ValueError):
            build_binary_mac(4, 6)


class TestBuildersLintClean:
    """Every public builder must pass static analysis without errors.

    This rides alongside the behavioural differential tests above: a netlist
    that computes the right answer can still carry unobservable cells or
    dangling nets that silently inflate the Table 3 area/power numbers, so
    each catalog circuit is held to a zero-error, zero-warning lint report
    (info-level observations like constant carry ties are expected).
    """

    @pytest.mark.parametrize("name", sorted(BUILDER_CATALOG))
    def test_builder_is_lint_clean(self, name):
        report = lint(BUILDER_CATALOG[name]())
        problems = report.errors + report.warnings
        assert problems == [], report.format()

    def test_catalog_covers_every_builder(self):
        import repro.netlist.circuits as circuits

        public_builders = {
            attr[len("build_"):]
            for attr in circuits.__all__
            if attr.startswith("build_")
        }
        # Adder-tree and dot-product builders appear per adder style.
        covered = {name.split("_tff")[0].split("_mux")[0] for name in BUILDER_CATALOG}
        covered |= {name for name in BUILDER_CATALOG}
        for builder in public_builders:
            assert any(
                catalog_name == builder or catalog_name.startswith(builder)
                for catalog_name in covered
            ), f"builder {builder!r} missing from BUILDER_CATALOG"
