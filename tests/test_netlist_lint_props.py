"""Property-based tests for the static analyzer over random netlists.

The strategy grows a random DAG out of library cells (inputs drawn only from
already-driven nets, so the construction is combinationally acyclic, has
unique instance names and in-range initial states) and exports every leaf
net.  Such netlists must lint error-free, lint must be deterministic, and
strict elaboration must be a no-op relative to plain simulation on them.
Mutations of a clean netlist must be detected by the matching rule.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    CELL_LIBRARY,
    Netlist,
    lint,
    simulate,
)
from repro.netlist.netlist import Instance

CELL_NAMES = sorted(CELL_LIBRARY)


@st.composite
def random_netlists(draw):
    """A random DAG of library cells with every leaf exported."""
    net = Netlist("random")
    nets = [net.add_input(f"in{i}") for i in range(draw(st.integers(1, 4)))]
    for _ in range(draw(st.integers(1, 20))):
        ctype = CELL_LIBRARY[draw(st.sampled_from(CELL_NAMES))]
        ins = [
            nets[draw(st.integers(0, len(nets) - 1))] for _ in ctype.inputs
        ]
        initial = draw(st.integers(0, 1)) if ctype.sequential else 0
        nets.extend(net.add_cell(ctype.name, ins, initial_state=initial))
    read = {n for inst in net.instances for n in inst.inputs}
    for inst in net.instances:
        for out in inst.outputs:
            if out not in read:
                net.add_output(out)
    if not net.primary_outputs:
        net.add_output(nets[-1])
    return net


@settings(max_examples=40, deadline=None)
@given(random_netlists())
def test_random_dag_netlists_lint_error_free(net):
    report = lint(net)
    assert not report.has_errors, report.format(verbose=True)
    # Every leaf was exported, so the whole netlist is observable.
    assert report.by_rule("unobservable-logic") == []
    assert report.by_rule("dangling-net") == []


@settings(max_examples=25, deadline=None)
@given(random_netlists())
def test_lint_is_deterministic_and_pure(net):
    before = [(i.name, i.inputs, i.outputs) for i in net.instances]
    first = lint(net)
    second = lint(net)
    assert first.findings == second.findings
    assert first.stats == second.stats
    assert [(i.name, i.inputs, i.outputs) for i in net.instances] == before


@settings(max_examples=20, deadline=None)
@given(random_netlists(), st.integers(0, 2**32 - 1))
def test_strict_simulation_matches_plain_on_clean_netlists(net, seed):
    rng = np.random.default_rng(seed)
    stim = {
        pin: rng.integers(0, 2, 16).astype(np.uint8)
        for pin in net.primary_inputs
    }
    plain = simulate(net, stim)
    strict = simulate(net, stim, strict=True)
    for out in net.primary_outputs:
        assert np.array_equal(plain.waveform(out), strict.waveform(out))
    assert plain.total_toggles() == strict.total_toggles()


@settings(max_examples=25, deadline=None)
@given(random_netlists(), st.data())
def test_cut_wire_mutation_is_detected(net, data):
    inst_index = data.draw(st.integers(0, len(net.instances) - 1))
    inst = net.instances[inst_index]
    pin_index = data.draw(st.integers(0, len(inst.inputs) - 1))
    cut = list(inst.inputs)
    cut[pin_index] = "severed_net"
    net.instances[inst_index] = Instance(
        name=inst.name,
        cell=inst.cell,
        inputs=tuple(cut),
        outputs=inst.outputs,
        initial_state=inst.initial_state,
    )
    report = lint(net)
    assert any(
        f.rule == "undriven-input" and f.net == "severed_net"
        for f in report.errors
    )


@settings(max_examples=25, deadline=None)
@given(random_netlists(), st.data())
def test_duplicate_name_mutation_is_detected(net, data):
    if len(net.instances) < 2:
        net.add_cell("INV", [net.primary_inputs[0]])
        net.add_output(net.instances[-1].outputs[0])
    indices = st.integers(0, len(net.instances) - 1)
    a = data.draw(indices)
    b = data.draw(indices.filter(lambda i: i != a))
    net.instances[b].name = net.instances[a].name
    report = lint(net)
    assert any(
        f.rule == "duplicate-instance" and f.instance == net.instances[a].name
        for f in report.errors
    )
