"""Differential equivalence suite: packed backend vs. the unpacked reference.

Every gate-level identity of the packed word kernels is machine-checked
against the byte-per-bit :class:`Bitstream` implementation, over randomized
values and lengths -- including lengths that are not multiples of 64, where
tail-word handling matters.  The packed backend's claim is *bit-identical*
output, so every assertion here is exact equality, never approximate.
"""

import numpy as np
import pytest

from repro.bitstream import (
    Bitstream,
    PackedBitstream,
    pack_bits,
    packed_mux_add,
    packed_popcount,
    packed_tff_add,
    packed_toggle_states,
    unpack_bits,
)
from repro.sc import (
    AdderTree,
    MuxAdder,
    OrAdder,
    StochasticConv2D,
    StochasticDotProductEngine,
    TffAdder,
    new_sc_engine,
    old_sc_engine,
)
from repro.sc.dotproduct import stochastic_dot_product, stochastic_dot_product_packed
from repro.sc.elements.adders import mux_add, tff_add
from repro.sc.elements.flipflops import toggle_states

#: Lengths exercising empty tails, full words, one-bit tails and long streams.
LENGTHS = [1, 2, 7, 63, 64, 65, 100, 127, 128, 129, 256, 1000]


def random_bits(rng, shape):
    return rng.integers(0, 2, size=shape).astype(np.uint8)


class TestPackUnpackRoundTrip:
    @pytest.mark.parametrize("length", LENGTHS)
    def test_array_round_trip(self, length):
        rng = np.random.default_rng(length)
        bits = random_bits(rng, (3, 4, length))
        words = pack_bits(bits)
        assert words.dtype == np.uint64
        assert words.shape == (3, 4, (length + 63) // 64)
        np.testing.assert_array_equal(unpack_bits(words, length), bits)

    @pytest.mark.parametrize("length", LENGTHS)
    def test_bitstream_round_trip(self, length):
        rng = np.random.default_rng(length + 1)
        for value in rng.random(3):
            stream = Bitstream.from_random(value, length, rng=rng)
            packed = stream.pack()
            assert isinstance(packed, PackedBitstream)
            assert packed.unpack() == stream
            assert packed.ones == stream.ones
            assert len(packed) == len(stream)

    def test_round_trip_preserves_encoding(self):
        stream = Bitstream("0110 1001", encoding="bipolar")
        assert stream.pack().encoding == "bipolar"
        assert stream.pack().unpack().encoding == "bipolar"
        assert stream.pack().value == stream.value


class TestExtendPeriodic:
    """The wrap kernel behind closed-form LFSR resolution."""

    def test_reference_semantics(self):
        from repro.bitstream.packed import extend_periodic

        prefix = np.array([1, 0, 1, 1, 0], dtype=np.uint8)  # transient 2, period 3
        extended = extend_periodic(prefix, 11, transient=2, period=3)
        np.testing.assert_array_equal(extended, [1, 0, 1, 1, 0, 1, 1, 0, 1, 1, 0])

    def test_zero_transient_tiles_from_start(self):
        from repro.bitstream.packed import extend_periodic

        prefix = np.array([[1, 0], [0, 1]], dtype=np.uint8)  # batched, period 2
        extended = extend_periodic(prefix, 5, transient=0, period=2)
        np.testing.assert_array_equal(extended, [[1, 0, 1, 0, 1], [0, 1, 0, 1, 0]])

    def test_shorter_target_truncates(self):
        from repro.bitstream.packed import extend_periodic

        prefix = np.array([1, 1, 0], dtype=np.uint8)
        np.testing.assert_array_equal(
            extend_periodic(prefix, 2, transient=0, period=3), [1, 1]
        )

    def test_validation(self):
        from repro.bitstream.packed import extend_periodic

        bits = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError, match="period"):
            extend_periodic(bits, 8, transient=0, period=0)
        with pytest.raises(ValueError, match="transient"):
            extend_periodic(bits, 8, transient=-1, period=2)
        with pytest.raises(ValueError, match="positions"):
            extend_periodic(bits, 8, transient=3, period=2)


class TestGateEquivalence:
    @pytest.mark.parametrize("length", LENGTHS)
    def test_and_or_xor_not(self, length):
        rng = np.random.default_rng(length + 2)
        x = Bitstream(random_bits(rng, length))
        y = Bitstream(random_bits(rng, length))
        xp, yp = x.pack(), y.pack()
        assert (xp & yp).unpack() == (x & y)
        assert (xp | yp).unpack() == (x | y)
        assert (xp ^ yp).unpack() == (x ^ y)
        assert (~xp).unpack() == ~x

    @pytest.mark.parametrize("length", LENGTHS)
    @pytest.mark.parametrize("initial_state", [0, 1])
    def test_toggle_states(self, length, initial_state):
        rng = np.random.default_rng(length + 3)
        trigger = random_bits(rng, (2, length))
        expected = toggle_states(trigger, initial_state)
        got = unpack_bits(
            packed_toggle_states(pack_bits(trigger), length, initial_state), length
        )
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("length", LENGTHS)
    @pytest.mark.parametrize("initial_state", [0, 1])
    def test_tff_adder(self, length, initial_state):
        rng = np.random.default_rng(length + 4)
        x = random_bits(rng, (3, length))
        y = random_bits(rng, (3, length))
        expected = tff_add(x, y, initial_state=initial_state)
        got = unpack_bits(
            packed_tff_add(pack_bits(x), pack_bits(y), length, initial_state), length
        )
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("length", LENGTHS)
    def test_mux_adder(self, length):
        rng = np.random.default_rng(length + 5)
        x = random_bits(rng, (3, length))
        y = random_bits(rng, (3, length))
        select = random_bits(rng, length)
        expected = mux_add(x, y, select)
        got = unpack_bits(
            packed_mux_add(pack_bits(x), pack_bits(y), pack_bits(select)), length
        )
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("length", LENGTHS)
    def test_popcount(self, length):
        rng = np.random.default_rng(length + 6)
        bits = random_bits(rng, (5, length))
        np.testing.assert_array_equal(
            packed_popcount(pack_bits(bits)), bits.sum(axis=-1)
        )


class TestAdderTreeEquivalence:
    @pytest.mark.parametrize("taps", [1, 2, 3, 5, 8, 13])
    @pytest.mark.parametrize(
        "factory",
        [TffAdder, OrAdder, lambda: TffAdder(initial_state=1)],
        ids=["tff", "or", "tff_init1"],
    )
    def test_tree_matches_unpacked(self, taps, factory):
        rng = np.random.default_rng(taps)
        length = 200  # not a multiple of 64: exercises the tail at every level
        streams = random_bits(rng, (4, taps, length))
        tree = AdderTree(factory)
        expected = tree.reduce(streams)
        got = unpack_bits(tree.reduce_packed(pack_bits(streams), length), length)
        np.testing.assert_array_equal(got, expected)

    def test_mux_tree_with_stateful_factory(self):
        # Per-node select seeds must be consumed in the same order by both
        # representations, including the zero-padded node of odd levels.
        rng = np.random.default_rng(9)
        length, taps = 192, 5

        def make_factories():
            counter = [0]

            def factory():
                counter[0] += 1
                return MuxAdder(seed=1000 + counter[0])

            return factory

        streams = random_bits(rng, (taps, length))
        expected = AdderTree(make_factories()).reduce(streams)
        got = AdderTree(make_factories()).reduce_packed(pack_bits(streams), length)
        np.testing.assert_array_equal(unpack_bits(got, length), expected)


class TestDotProductEquivalence:
    @pytest.mark.parametrize("adder", [TffAdder, OrAdder])
    def test_raw_kernel(self, adder):
        rng = np.random.default_rng(11)
        x = random_bits(rng, (6, 9, 300))
        w = random_bits(rng, (9, 300))
        expected = stochastic_dot_product(x, w, adder)
        got = stochastic_dot_product_packed(pack_bits(x), pack_bits(w), 300, adder)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(adder="tff", input_generator="ramp", weight_generator="lowdisc"),
            dict(adder="mux", input_generator="lfsr", weight_generator="lfsr"),
            dict(adder="or", input_generator="lowdisc", weight_generator="lowdisc"),
            dict(adder="mux", input_generator="ramp", weight_generator="lfsr"),
        ],
        ids=["this_work", "old_sc", "or_lowdisc", "mux_ramp"],
    )
    @pytest.mark.parametrize("precision", [4, 6, 8])
    def test_engine_backends_bit_identical(self, kwargs, precision):
        rng = np.random.default_rng(precision)
        x = rng.random((5, 25))
        w = rng.uniform(-1.0, 1.0, 25)
        packed = StochasticDotProductEngine(
            precision=precision, seed=7, backend="packed", **kwargs
        ).dot(x, w)
        unpacked = StochasticDotProductEngine(
            precision=precision, seed=7, backend="unpacked", **kwargs
        ).dot(x, w)
        np.testing.assert_array_equal(packed.positive_count, unpacked.positive_count)
        np.testing.assert_array_equal(packed.negative_count, unpacked.negative_count)
        np.testing.assert_array_equal(packed.sign, unpacked.sign)
        assert packed.tree_scale == unpacked.tree_scale

    def test_generate_packed_matches_generate_bits(self):
        for factory, precision in ((new_sc_engine, 6), (old_sc_engine, 5)):
            engine = factory(precision, seed=3)
            values = np.linspace(0.0, 1.0, 7).reshape(7, 1).repeat(2, axis=1)
            np.testing.assert_array_equal(
                unpack_bits(engine.input_words(values), engine.length),
                engine.input_streams(values),
            )
            w = np.linspace(-1.0, 1.0, 9)
            pos_w, neg_w = engine.weight_words(w)
            pos_b, neg_b = engine.weight_streams(w)
            np.testing.assert_array_equal(unpack_bits(pos_w, engine.length), pos_b)
            np.testing.assert_array_equal(unpack_bits(neg_w, engine.length), neg_b)


class TestConvolutionEquivalence:
    @pytest.mark.parametrize("factory", [new_sc_engine, old_sc_engine])
    def test_backends_produce_identical_maps(self, factory):
        rng = np.random.default_rng(13)
        images = rng.random((2, 9, 9))
        kernels = rng.uniform(-1.0, 1.0, (4, 3, 3))
        results = {}
        for backend in ("packed", "unpacked"):
            layer = StochasticConv2D(
                kernels,
                engine=factory(5, seed=2, backend=backend),
                padding=1,
                soft_threshold=0.02,
            )
            results[backend] = layer.forward(images)
        np.testing.assert_array_equal(
            results["packed"].positive_count, results["unpacked"].positive_count
        )
        np.testing.assert_array_equal(
            results["packed"].negative_count, results["unpacked"].negative_count
        )
        np.testing.assert_array_equal(results["packed"].sign, results["unpacked"].sign)
        np.testing.assert_array_equal(results["packed"].value, results["unpacked"].value)


class TestEvaluatorEquivalence:
    def test_table1_mse_identical_across_backends(self):
        from repro.eval.table1 import multiplier_mse

        for scheme in ("shared_lfsr", "ramp_low_discrepancy"):
            assert multiplier_mse(scheme, 4, backend="packed") == multiplier_mse(
                scheme, 4, backend="unpacked"
            )

    def test_table2_mse_identical_across_backends(self):
        from repro.eval.table2 import adder_mse

        for config in ("old_random_lfsr", "old_lfsr_tff", "new_tff"):
            assert adder_mse(config, 4, backend="packed") == adder_mse(
                config, 4, backend="unpacked"
            )
