"""Tests for low-discrepancy number sources (van der Corput, Sobol, Halton)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rng import (
    HaltonSource,
    SobolSource,
    VanDerCorputSource,
    bit_reverse,
    van_der_corput,
)


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(np.array([1]), 4)[0] == 8
        assert bit_reverse(np.array([0b1011]), 4)[0] == 0b1101

    def test_involution(self):
        values = np.arange(64)
        np.testing.assert_array_equal(bit_reverse(bit_reverse(values, 6), 6), values)


class TestVanDerCorput:
    def test_first_points(self):
        seq = van_der_corput(8, 3)
        np.testing.assert_allclose(
            seq, [0, 0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875]
        )

    def test_full_period_is_permutation_of_grid(self):
        bits = 6
        seq = van_der_corput(1 << bits, bits)
        expected = np.arange(1 << bits) / (1 << bits)
        np.testing.assert_allclose(np.sort(seq), expected)

    def test_low_discrepancy_prefix_property(self):
        # Every prefix of length 2^k contains exactly one point per bin of
        # width 2^-k: the defining property that makes SNG error O(1/N).
        bits = 8
        seq = van_der_corput(1 << bits, bits)
        for k in range(1, bits + 1):
            prefix = seq[: 1 << k]
            bins = np.floor(prefix * (1 << k)).astype(int)
            assert len(np.unique(bins)) == 1 << k

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            van_der_corput(8, 0)

    def test_source_phase_offset(self):
        a = VanDerCorputSource(4).sequence(16)
        b = VanDerCorputSource(4, phase=3).sequence(16)
        np.testing.assert_allclose(np.sort(a), np.sort(b))
        assert not np.allclose(a, b)


class TestSobol:
    def test_dimension_zero_matches_van_der_corput_set(self):
        bits = 6
        sob = SobolSource(bits, dimension=0).sequence(1 << bits)
        vdc = van_der_corput(1 << bits, bits)
        np.testing.assert_allclose(np.sort(sob), np.sort(vdc))

    @pytest.mark.parametrize("dimension", range(8))
    def test_all_dimensions_equidistributed(self, dimension):
        bits = 6
        seq = SobolSource(bits, dimension=dimension).sequence(1 << bits)
        # Over one full period every grid point appears exactly once.
        assert len(np.unique(np.round(seq * (1 << bits)).astype(int))) == 1 << bits

    def test_values_in_unit_interval(self):
        seq = SobolSource(8, dimension=3).sequence(500)
        assert np.all(seq >= 0.0) and np.all(seq < 1.0)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            SobolSource(8, dimension=99)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SobolSource(0)

    def test_pairwise_2d_coverage(self):
        # Two different dimensions jointly cover the unit square reasonably:
        # no quadrant should be empty over a full period.
        bits = 6
        a = SobolSource(bits, dimension=0).sequence(1 << bits)
        b = SobolSource(bits, dimension=1).sequence(1 << bits)
        quadrant = (a >= 0.5).astype(int) * 2 + (b >= 0.5).astype(int)
        assert set(np.unique(quadrant)) == {0, 1, 2, 3}


class TestHalton:
    def test_base2_matches_van_der_corput(self):
        seq = HaltonSource(4, base=2).sequence(16)
        np.testing.assert_allclose(seq, van_der_corput(16, 4))

    def test_base3_values(self):
        seq = HaltonSource(4, base=3).sequence(4)
        np.testing.assert_allclose(seq, [0, 1 / 3, 2 / 3, 1 / 9])

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            HaltonSource(4, base=1)

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_values_in_unit_interval(self, base, length):
        seq = HaltonSource(4, base=base).sequence(length)
        assert np.all(seq >= 0.0) and np.all(seq < 1.0)
