"""Tests for the netlist static analyzer (repro.netlist.lint).

Mutation style: start from a known-clean netlist, break exactly one thing,
and assert the matching rule (and only it, at its severity) fires.  Also
covers the report/stats structures, rule selection, strict elaboration via
``simulate(strict=True)``, the power-model unobservable-area warning, the
CLI subcommand, and the regression cases for the PR's satellite bugfixes
(validate() primary-output check, merge() collision reporting, new_net()
skipping taken names).
"""

import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.netlist import (
    BUILDER_CATALOG,
    LINT_RULES,
    LintError,
    Netlist,
    UnobservableAreaWarning,
    build_sc_dot_product,
    enforce,
    estimate_area_mm2,
    estimate_power,
    lint,
    simulate,
    simulate_batch,
    unobservable_instances,
)
from repro.netlist.lint import _FANOUT_HOTSPOT_THRESHOLD


def clean_pair() -> Netlist:
    """A minimal lint-clean netlist: y = a AND b."""
    net = Netlist("clean")
    net.add_input("a")
    net.add_input("b")
    (y,) = net.add_cell("AND2", ["a", "b"], outputs=["y"])
    net.add_output(y)
    return net


def rule_ids(report, severity=None):
    found = report.findings if severity is None else [
        f for f in report.findings if f.severity == severity
    ]
    return {f.rule for f in found}


class TestCleanBaseline:
    def test_clean_netlist_has_no_findings(self):
        report = lint(clean_pair())
        assert report.findings == []
        assert not report.has_errors
        assert report.counts() == {"error": 0, "warning": 0, "info": 0}

    def test_report_identifies_netlist(self):
        report = lint(clean_pair())
        assert report.netlist == "clean"
        assert report.cells == 1


class TestErrorRules:
    def test_undriven_input(self):
        net = clean_pair()
        net.add_cell("INV", ["ghost"], outputs=["gy"])
        net.add_output("gy")
        report = lint(net)
        assert "undriven-input" in rule_ids(report, "error")
        (finding,) = report.by_rule("undriven-input")
        assert finding.net == "ghost"
        assert "no driver" in finding.message
        assert finding.hint

    def test_undriven_primary_output(self):
        net = clean_pair()
        net.add_output("nowhere")
        report = lint(net)
        (finding,) = report.by_rule("undriven-output")
        assert finding.severity == "error"
        assert finding.net == "nowhere"

    def test_duplicate_instance_names(self):
        net = clean_pair()
        net.add_cell("INV", ["a"], outputs=["i1"], instance_name="dup")
        net.add_cell("INV", ["b"], outputs=["i2"], instance_name="dup")
        net.add_output("i1")
        net.add_output("i2")
        # validate() cannot see this: every net is driven.
        net.validate()
        report = lint(net)
        (finding,) = report.by_rule("duplicate-instance")
        assert finding.severity == "error"
        assert finding.instance == "dup"
        assert "2 times" in finding.message

    def test_combinational_cycle_names_scc_members(self):
        net = Netlist("ring")
        net.add_input("x")
        net.add_cell("INV", ["b"], outputs=["a"], instance_name="inv_a")
        net.add_cell("NAND2", ["a", "x"], outputs=["b"], instance_name="nand_b")
        net.add_output("a")
        report = lint(net)
        (finding,) = report.by_rule("combinational-cycle")
        assert finding.severity == "error"
        assert "inv_a" in finding.message and "nand_b" in finding.message
        assert "2 instance(s)" in finding.message

    def test_self_loop_is_a_cycle(self):
        net = Netlist("selfloop")
        net.add_input("x")
        net.add_cell("NAND2", ["x", "q"], outputs=["q"], instance_name="latch")
        net.add_output("q")
        report = lint(net)
        (finding,) = report.by_rule("combinational-cycle")
        assert "latch" in finding.message

    def test_sequential_feedback_is_not_a_cycle(self):
        # A TFF in a loop with an XOR is fine: the register breaks the path.
        net = Netlist("tff_loop")
        net.add_input("t")
        (q,) = net.add_cell("TFF", ["t"], outputs=["q"])
        (y,) = net.add_cell("XOR2", ["t", q], outputs=["y"])
        net.add_output(y)
        net.add_output(q)
        assert lint(net).by_rule("combinational-cycle") == []

    def test_bad_initial_state(self):
        net = Netlist("badstate")
        net.add_input("d")
        (q,) = net.add_cell("DFF", ["d"], outputs=["q"], initial_state=2)
        net.add_output(q)
        net.validate()  # driver-complete, so validate() passes
        report = lint(net)
        (finding,) = report.by_rule("bad-initial-state")
        assert finding.severity == "error"
        assert "initial_state=2" in finding.message


class TestWarningRules:
    def test_dangling_net(self):
        net = clean_pair()
        net.add_cell("INV", ["a"], outputs=["loose"], instance_name="u_loose")
        report = lint(net)
        (finding,) = report.by_rule("dangling-net")
        assert finding.severity == "warning"
        assert finding.net == "loose"
        # The same cell is also outside every output cone.
        assert {f.instance for f in report.by_rule("unobservable-logic")} == {
            "u_loose"
        }

    def test_unobservable_cone_is_transitive(self):
        net = clean_pair()
        # inv1 feeds inv2 feeds nothing: both are unobservable, only inv2's
        # output dangles.
        net.add_cell("INV", ["a"], outputs=["m"], instance_name="inv1")
        net.add_cell("INV", ["m"], outputs=["end"], instance_name="inv2")
        report = lint(net)
        assert {f.instance for f in report.by_rule("unobservable-logic")} == {
            "inv1",
            "inv2",
        }
        assert [f.net for f in report.by_rule("dangling-net")] == ["end"]

    def test_unused_input(self):
        net = clean_pair()
        net.add_input("spare")
        report = lint(net)
        (finding,) = report.by_rule("unused-input")
        assert finding.severity == "warning"
        assert finding.net == "spare"

    def test_constant_cell_dead_logic(self):
        net = clean_pair()
        (z,) = net.add_cell("AND2", ["a", "0"], outputs=["z"], instance_name="dead")
        (y2,) = net.add_cell("OR2", [z, "b"], outputs=["y2"])
        net.add_output(y2)
        report = lint(net)
        (finding,) = report.by_rule("constant-cell")
        assert finding.severity == "warning"
        assert finding.instance == "dead"
        assert "z=0" in finding.message

    def test_constant_propagates_through_chains(self):
        net = clean_pair()
        (z,) = net.add_cell("AND2", ["a", "0"], outputs=["z"], instance_name="dead")
        # OR2(z, 1) is constant 1 regardless of z; INV of that is constant 0.
        (w,) = net.add_cell("OR2", [z, "1"], outputs=["w"], instance_name="dead2")
        (v,) = net.add_cell("INV", [w], outputs=["v"], instance_name="dead3")
        (y2,) = net.add_cell("OR2", [v, "b"], outputs=["y2"])
        net.add_output(y2)
        report = lint(net)
        assert {f.instance for f in report.by_rule("constant-cell")} == {
            "dead",
            "dead2",
            "dead3",
        }
        # The downstream reader of the propagated constant gets an info note.
        nets = {f.net for f in report.by_rule("constant-input")}
        assert {"0", "1", "z", "w", "v"} <= nets

    def test_xor_with_itself_is_constant(self):
        net = Netlist("xor_self")
        net.add_input("a")
        (y,) = net.add_cell("XOR2", ["a", "a"], outputs=["y"], instance_name="u_x")
        net.add_output(y)
        report = lint(net)
        # Exhaustive evaluation assigns each distinct unknown net one value,
        # so both pins see the same bit and x XOR x is proven constant 0.
        (finding,) = report.by_rule("constant-cell")
        assert finding.instance == "u_x"
        assert "y=0" in finding.message

    def test_net_name_collision(self):
        net = clean_pair()
        # Squat far ahead in the and2_y_{n} namespace new_net() uses.
        (z,) = net.add_cell("AND2", ["a", "b"], outputs=["and2_y_999"])
        net.add_output(z)
        report = lint(net)
        (finding,) = report.by_rule("net-name-collision")
        assert finding.severity == "warning"
        assert finding.net == "and2_y_999"

    def test_plain_user_names_do_not_collide(self):
        net = clean_pair()
        (z,) = net.add_cell("AND2", ["a", "b"], outputs=["pp0_7"])
        net.add_output(z)
        assert lint(net).by_rule("net-name-collision") == []


class TestInfoRules:
    def test_constant_input_literal(self):
        net = clean_pair()
        (z,) = net.add_cell("OR2", ["y", "1"], outputs=["z"])
        net.add_output(z)
        report = lint(net)
        assert any(
            f.net == "1" and f.severity == "info"
            for f in report.by_rule("constant-input")
        )

    def test_fanout_hotspot(self):
        net = Netlist("hot")
        net.add_input("x")
        outs = []
        for i in range(_FANOUT_HOTSPOT_THRESHOLD):
            (y,) = net.add_cell("INV", ["x"], outputs=[f"y{i}"])
            outs.append(y)
        for y in outs:
            net.add_output(y)
        report = lint(net)
        (finding,) = report.by_rule("fanout-hotspot")
        assert finding.net == "x"
        assert str(_FANOUT_HOTSPOT_THRESHOLD) in finding.message

    def test_ignored_initial_state(self):
        net = clean_pair()
        net.instances[0].initial_state = 1
        report = lint(net)
        (finding,) = report.by_rule("ignored-initial-state")
        assert finding.severity == "info"
        assert "no effect" in finding.message


class TestStats:
    def test_logic_depth_and_critical_path(self):
        net = Netlist("chain")
        net.add_input("a")
        prev = "a"
        for i in range(4):
            (prev,) = net.add_cell(
                "INV", [prev], outputs=[f"s{i}"], instance_name=f"inv{i}"
            )
        net.add_output(prev)
        report = lint(net)
        assert report.stats.logic_depth == {"s3": 4}
        assert report.stats.critical_path_length == 4
        assert report.stats.critical_path == ["inv0", "inv1", "inv2", "inv3"]

    def test_sequential_outputs_reset_depth(self):
        net = Netlist("pipelined")
        net.add_input("a")
        (m,) = net.add_cell("INV", ["a"], outputs=["m"])
        (q,) = net.add_cell("DFF", [m], outputs=["q"])
        (y,) = net.add_cell("INV", [q], outputs=["y"])
        net.add_output(y)
        report = lint(net)
        assert report.stats.logic_depth == {"y": 1}

    def test_cyclic_netlist_reports_none_depth(self):
        net = Netlist("ring")
        net.add_input("x")
        net.add_cell("INV", ["b"], outputs=["a"])
        net.add_cell("NAND2", ["a", "x"], outputs=["b"])
        net.add_output("a")
        report = lint(net)
        assert report.stats.logic_depth == {"a": None}
        assert report.stats.critical_path_length is None

    def test_fanout_histogram(self):
        net = clean_pair()  # a->1 reader, b->1 reader, y->0 readers (PO)
        report = lint(net)
        assert report.stats.fanout_histogram == {0: 1, 1: 2}
        assert report.stats.max_fanout == 1


class TestReportAndSelection:
    def test_findings_sorted_by_severity(self):
        net = clean_pair()
        net.add_output("nowhere")  # error
        net.add_input("spare")  # warning
        (z,) = net.add_cell("OR2", ["y", "1"], outputs=["z"])  # info
        net.add_output(z)
        report = lint(net)
        severities = [f.severity for f in report.findings]
        assert severities == sorted(
            severities, key=["error", "warning", "info"].index
        )
        assert [f.rule for f in report.errors] == ["undriven-output"]

    def test_format_plain_hides_infos(self):
        net = clean_pair()
        (z,) = net.add_cell("OR2", ["y", "1"], outputs=["z"])
        net.add_output(z)
        report = lint(net)
        assert "constant-input" not in report.format()
        verbose = report.format(verbose=True)
        assert "constant-input" in verbose
        assert "fanout histogram" in verbose
        assert "critical path" in verbose

    def test_finding_format_includes_hint(self):
        net = clean_pair()
        net.add_output("nowhere")
        (finding,) = lint(net).by_rule("undriven-output")
        text = finding.format()
        assert text.startswith("[E] undriven-output")
        assert "hint:" in text

    def test_rule_selection_and_ignore(self):
        net = clean_pair()
        net.add_output("nowhere")
        net.add_input("spare")
        only = lint(net, rules=["undriven-output"])
        assert rule_ids(only) == {"undriven-output"}
        ignored = lint(net, ignore=["unused-input"])
        assert "unused-input" not in rule_ids(ignored)
        assert "undriven-output" in rule_ids(ignored)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint(clean_pair(), rules=["no-such-rule"])
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint(clean_pair(), ignore=["no-such-rule"])

    def test_registry_severities_are_valid(self):
        assert LINT_RULES
        for rule in LINT_RULES.values():
            assert rule.severity in ("error", "warning", "info")
            assert rule.description


class TestEnforceAndStrictSimulate:
    def test_enforce_clean_returns_report(self):
        report = enforce(clean_pair())
        assert not report.has_errors

    def test_enforce_raises_with_report_attached(self):
        net = clean_pair()
        net.add_output("nowhere")
        with pytest.raises(LintError, match="undriven-output") as exc:
            enforce(net)
        assert exc.value.report.has_errors

    def test_enforce_warning_level(self):
        net = clean_pair()
        net.add_input("spare")
        enforce(net)  # error level: warnings do not raise
        with pytest.raises(LintError, match="unused-input"):
            enforce(net, severity="warning")

    def test_enforce_rejects_bad_severity(self):
        with pytest.raises(ValueError, match="severity"):
            enforce(clean_pair(), severity="fatal")

    def test_strict_rejects_what_validate_accepts(self):
        # Acceptance criterion: duplicate instance names pass validate()
        # today but corrupt shared sequential state; strict=True refuses.
        net = Netlist("dup_state")
        net.add_input("d")
        net.add_cell("DFF", ["d"], outputs=["q1"], instance_name="dup")
        net.add_cell("DFF", ["q1"], outputs=["q2"], instance_name="dup")
        net.add_output("q2")
        net.validate()  # passes: every net is driven
        stim = {"d": [1, 0, 1, 0]}
        simulate(net, stim)  # non-strict runs (wrongly sharing state)
        with pytest.raises(LintError, match="duplicate-instance"):
            simulate(net, stim, strict=True)

    def test_strict_rejects_bad_initial_state(self):
        net = Netlist("badstate")
        net.add_input("d")
        (q,) = net.add_cell("DFF", ["d"], outputs=["q"], initial_state=3)
        net.add_output(q)
        net.validate()
        with pytest.raises(LintError, match="bad-initial-state"):
            simulate(net, {"d": [1, 0]}, strict=True)

    def test_strict_matches_nonstrict_on_clean_netlist(self):
        net = build_sc_dot_product(4, 5)
        rng = np.random.default_rng(7)
        stim = {
            pin: rng.integers(0, 2, 32).astype(np.uint8)
            for pin in net.primary_inputs
        }
        loose = simulate(net, stim)
        strict = simulate(net, stim, strict=True)
        for out in net.primary_outputs:
            assert np.array_equal(loose.waveform(out), strict.waveform(out))

    def test_strict_simulate_batch(self):
        net = Netlist("dup_state")
        net.add_input("d")
        net.add_cell("DFF", ["d"], outputs=["q1"], instance_name="dup")
        net.add_cell("DFF", ["q1"], outputs=["q2"], instance_name="dup")
        net.add_output("q2")
        stim = {"d": np.zeros((2, 8), dtype=np.uint8)}
        simulate_batch(net, stim)  # non-strict accepts
        with pytest.raises(LintError, match="duplicate-instance"):
            simulate_batch(net, stim, strict=True)


class TestUnobservableAreaWarning:
    def make_partly_dead(self) -> Netlist:
        net = clean_pair()
        net.add_cell("INV", ["a"], outputs=["loose"])
        return net

    def test_estimate_power_warns(self):
        with pytest.warns(UnobservableAreaWarning, match="cannot affect"):
            estimate_power(self.make_partly_dead(), frequency_mhz=100.0)

    def test_estimate_area_warns(self):
        with pytest.warns(UnobservableAreaWarning, match="counted in area"):
            estimate_area_mm2(self.make_partly_dead())

    def test_clean_netlist_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnobservableAreaWarning)
            estimate_power(clean_pair(), frequency_mhz=100.0)
            estimate_area_mm2(clean_pair())

    def test_unobservable_instances_helper(self):
        net = self.make_partly_dead()
        assert [i.name for i in unobservable_instances(net)] == [
            net.instances[-1].name
        ]
        # No primary outputs: nothing is observable.
        blind = Netlist("blind")
        blind.add_input("a")
        blind.add_cell("INV", ["a"], outputs=["y"])
        assert len(unobservable_instances(blind)) == 1


class TestSatelliteRegressions:
    def test_validate_checks_primary_outputs(self):
        # Regression: add_output() of a nonexistent net used to pass
        # validate() silently.
        net = clean_pair()
        net.add_output("phantom")
        with pytest.raises(ValueError, match="primary output 'phantom'"):
            net.validate()

    def test_merge_collision_names_both_netlists(self):
        host = Netlist("host")
        host.add_input("a")
        host.add_cell("INV", ["a"], outputs=["blk_y"])
        guest = Netlist("guest")
        guest.add_input("x")
        guest.add_cell("INV", ["x"], outputs=["y"])
        guest.add_output("y")
        with pytest.raises(ValueError) as exc:
            host.merge(guest, prefix="blk")
        message = str(exc.value)
        assert "'guest'" in message and "'host'" in message
        assert "'blk_y'" in message
        assert "prefix" in message

    def test_merge_without_collision_still_works(self):
        host = Netlist("host")
        guest = Netlist("guest")
        guest.add_input("x")
        guest.add_cell("INV", ["x"], outputs=["y"])
        guest.add_output("y")
        mapping = host.merge(guest, prefix="g")
        assert mapping["y"] == "g_y"
        host.validate()
        assert not lint(host).has_errors

    def test_new_net_skips_taken_names(self):
        net = Netlist("skip")
        net.add_input("n_1")  # squat on the first generated name
        first = net.new_net()
        assert first == "n_2"
        (q,) = net.add_cell("DFF", ["n_1"], outputs=["n_3"])
        assert net.new_net() == "n_4"


class TestLintCli:
    def test_lint_all_builders_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert f"linted {len(BUILDER_CATALOG)} netlist(s)" in out

    def test_lint_list(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(BUILDER_CATALOG) == out

    def test_lint_single_circuit_verbose(self, capsys):
        assert main(["lint", "--circuit", "binary_mac", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "binary_mac" in out
        assert "critical path" in out

    def test_lint_unknown_circuit(self):
        with pytest.raises(SystemExit, match="unknown circuit"):
            main(["lint", "--circuit", "definitely_not_a_circuit"])

    def test_lint_fail_on_info(self, capsys):
        # The catalog is error- and warning-clean but has constant-tie infos.
        assert main(["lint", "--fail-on", "info"]) == 1
        assert main(["lint", "--fail-on", "never"]) == 0
        capsys.readouterr()
