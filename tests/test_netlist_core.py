"""Tests for the netlist substrate: cells, netlist graph, simulator, power."""

import numpy as np
import pytest

from repro.netlist import (
    CELL_LIBRARY,
    Netlist,
    PowerReport,
    cell,
    energy_per_frame_nj,
    estimate_area_mm2,
    estimate_power,
    nand2_equivalents,
    simulate,
)


class TestCellLibrary:
    def test_lookup(self):
        assert cell("NAND2").name == "NAND2"
        with pytest.raises(KeyError):
            cell("NAND9")

    def test_all_cells_have_logic(self):
        for name, ctype in CELL_LIBRARY.items():
            assert ctype.logic is not None, name
            assert ctype.area_um2 > 0
            assert ctype.toggle_energy_fj > 0
            assert ctype.leakage_nw > 0

    def test_combinational_logic_truth_tables(self):
        assert cell("NAND2").logic((1, 1)) == (0,)
        assert cell("NOR2").logic((0, 0)) == (1,)
        assert cell("XOR2").logic((1, 0)) == (1,)
        assert cell("XNOR2").logic((1, 0)) == (0,)
        assert cell("MUX2").logic((0, 1, 1)) == (1,)
        assert cell("MUX2").logic((0, 1, 0)) == (0,)
        assert cell("INV").logic((1,)) == (0,)
        assert cell("FA").logic((1, 1, 1)) == (1, 1)
        assert cell("FA").logic((1, 1, 0)) == (0, 1)
        assert cell("HA").logic((1, 1)) == (0, 1)
        assert cell("CMP1").logic((1, 0, 0)) == (1,)
        assert cell("CMP1").logic((0, 1, 1)) == (0,)
        assert cell("CMP1").logic((1, 1, 1)) == (1,)

    def test_sequential_logic(self):
        new_state, outs = cell("DFF").logic(0, (1,))
        assert (new_state, outs) == (1, (0,))
        new_state, outs = cell("TFF").logic(1, (1,))
        assert (new_state, outs) == (0, (1,))

    def test_gate_equivalents(self):
        assert cell("NAND2").gate_equivalents == pytest.approx(1.0)
        assert cell("FA").gate_equivalents == pytest.approx(5.0)
        assert nand2_equivalents(14.4) == pytest.approx(10.0)


class TestNetlistGraph:
    def build_simple(self):
        net = Netlist("simple")
        a = net.add_input("a")
        b = net.add_input("b")
        (n1,) = net.add_cell("NAND2", [a, b])
        (y,) = net.add_cell("INV", [n1], outputs=["y"])
        net.add_output(y)
        return net

    def test_construction(self):
        net = self.build_simple()
        assert len(net.instances) == 2
        assert net.cell_counts() == {"NAND2": 1, "INV": 1}
        assert net.driver_of("a") == "<input>"
        assert "Netlist" in repr(net)

    def test_duplicate_input_rejected(self):
        net = Netlist("x")
        net.add_input("a")
        with pytest.raises(ValueError):
            net.add_input("a")

    def test_double_driver_rejected(self):
        net = Netlist("x")
        a = net.add_input("a")
        net.add_cell("INV", [a], outputs=["y"])
        with pytest.raises(ValueError):
            net.add_cell("INV", [a], outputs=["y"])

    def test_wrong_pin_count_rejected(self):
        net = Netlist("x")
        a = net.add_input("a")
        with pytest.raises(ValueError):
            net.add_cell("NAND2", [a])
        with pytest.raises(ValueError):
            net.add_cell("INV", [a], outputs=["y", "z"])

    def test_validate_detects_undriven_net(self):
        net = Netlist("x")
        net.add_input("a")
        net.add_cell("NAND2", ["a", "ghost"], outputs=["y"])
        with pytest.raises(ValueError):
            net.validate()

    def test_topological_order(self):
        net = self.build_simple()
        order = [inst.cell.name for inst in net.topological_order()]
        assert order == ["NAND2", "INV"]

    def test_combinational_cycle_detected(self):
        net = Netlist("loop")
        net.add_input("a")
        net.add_cell("NAND2", ["a", "y"], outputs=["x"])
        net.add_cell("INV", ["x"], outputs=["y"])
        with pytest.raises(ValueError):
            net.topological_order()

    def test_total_area(self):
        net = self.build_simple()
        expected = CELL_LIBRARY["NAND2"].area_um2 + CELL_LIBRARY["INV"].area_um2
        assert net.total_area_um2() == pytest.approx(expected)

    def test_merge(self):
        inner = self.build_simple()
        outer = Netlist("outer")
        mapping = outer.merge(inner, prefix="sub")
        assert "sub_a" in outer.primary_inputs
        assert mapping["y"] == "sub_y"
        assert len(outer.instances) == 2


class TestSimulator:
    def test_combinational_and_gate(self):
        net = Netlist("and")
        a = net.add_input("a")
        b = net.add_input("b")
        (y,) = net.add_cell("AND2", [a, b], outputs=["y"])
        net.add_output(y)
        result = simulate(net, {"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]})
        np.testing.assert_array_equal(result.waveform("y"), [0, 0, 0, 1])

    def test_missing_stimulus_rejected(self):
        net = Netlist("x")
        net.add_input("a")
        with pytest.raises(ValueError):
            simulate(net, {})

    def test_short_stimulus_rejected(self):
        net = Netlist("x")
        a = net.add_input("a")
        (y,) = net.add_cell("INV", [a], outputs=["y"])
        net.add_output(y)
        with pytest.raises(ValueError):
            simulate(net, {"a": [0, 1]}, cycles=5)

    def test_dff_delays_by_one_cycle(self):
        net = Netlist("dff")
        d = net.add_input("d")
        (q,) = net.add_cell("DFF", [d], outputs=["q"])
        net.add_output(q)
        result = simulate(net, {"d": [1, 0, 1, 1]})
        np.testing.assert_array_equal(result.waveform("q"), [0, 1, 0, 1])

    def test_tff_toggles(self):
        net = Netlist("tff")
        t = net.add_input("t")
        (q,) = net.add_cell("TFF", [t], outputs=["q"])
        net.add_output(q)
        result = simulate(net, {"t": [1, 1, 0, 1]})
        np.testing.assert_array_equal(result.waveform("q"), [0, 1, 0, 0])

    def test_toggle_counts_and_activity(self):
        net = Netlist("inv")
        a = net.add_input("a")
        (y,) = net.add_cell("INV", [a], outputs=["y"])
        net.add_output(y)
        result = simulate(net, {"a": [0, 1, 0, 1]})
        assert result.toggles["y"] == 3
        assert result.activity("y") == pytest.approx(1.0)
        assert result.total_toggles() >= 6
        assert 0.0 < result.average_activity() <= 1.0

    def test_record_specific_nets(self):
        net = Netlist("x")
        a = net.add_input("a")
        (n1,) = net.add_cell("INV", [a], outputs=["mid"])
        (y,) = net.add_cell("INV", [n1], outputs=["y"])
        net.add_output(y)
        result = simulate(net, {"a": [0, 1]}, record=["mid"])
        assert "mid" in result.waveforms
        assert "y" not in result.waveforms


class TestPowerModels:
    def build_block(self):
        net = Netlist("block")
        a = net.add_input("a")
        b = net.add_input("b")
        (y,) = net.add_cell("AND2", [a, b], outputs=["y"])
        (q,) = net.add_cell("DFF", [y], outputs=["q"])
        net.add_output(q)
        return net

    def test_area_estimate(self):
        net = self.build_block()
        area = estimate_area_mm2(net, utilization=1.0)
        expected = (CELL_LIBRARY["AND2"].area_um2 + CELL_LIBRARY["DFF"].area_um2) / 1e6
        assert area == pytest.approx(expected)
        assert estimate_area_mm2(net, utilization=0.5) == pytest.approx(2 * expected)
        with pytest.raises(ValueError):
            estimate_area_mm2(net, utilization=0.0)

    def test_power_with_default_activity(self):
        report = estimate_power(self.build_block(), frequency_mhz=100.0)
        assert isinstance(report, PowerReport)
        assert report.dynamic_mw > 0
        assert report.leakage_mw > 0
        assert report.total_mw == pytest.approx(report.dynamic_mw + report.leakage_mw)

    def test_power_scales_with_frequency_and_activity(self):
        net = self.build_block()
        slow = estimate_power(net, frequency_mhz=100.0, activity=0.1)
        fast = estimate_power(net, frequency_mhz=200.0, activity=0.1)
        busy = estimate_power(net, frequency_mhz=100.0, activity=0.2)
        assert fast.dynamic_mw == pytest.approx(2 * slow.dynamic_mw)
        assert busy.dynamic_mw == pytest.approx(2 * slow.dynamic_mw)
        assert fast.leakage_mw == pytest.approx(slow.leakage_mw)

    def test_power_rejects_bad_args(self):
        net = self.build_block()
        with pytest.raises(ValueError):
            estimate_power(net, frequency_mhz=0.0)
        with pytest.raises(ValueError):
            estimate_power(net, frequency_mhz=100.0, activity=-1.0)

    def test_power_from_simulation_trace(self):
        net = self.build_block()
        result = simulate(net, {"a": [0, 1] * 8, "b": [1, 1] * 8})
        report = estimate_power(net, frequency_mhz=100.0, simulation=result)
        assert report.dynamic_mw > 0
        assert report.activity == pytest.approx(result.average_activity())

    def test_energy_per_frame(self):
        report = PowerReport(dynamic_mw=1.0, leakage_mw=0.0, frequency_mhz=100.0, activity=0.1)
        # 100 cycles at 100 MHz = 1 us; 1 mW * 1 us = 1 nJ.
        assert energy_per_frame_nj(report, cycles_per_frame=100) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            energy_per_frame_nj(report, cycles_per_frame=-1)
