"""Tests for activations and losses of the NN substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    Identity,
    MeanSquaredError,
    ReLU,
    Sigmoid,
    Sign,
    SoftmaxCrossEntropy,
    Tanh,
    get_activation,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 10))
        probs = softmax(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_no_overflow_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()


class TestActivations:
    def test_relu(self):
        act = ReLU()
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(act.forward(x), [0.0, 0.0, 2.0])
        np.testing.assert_allclose(act.backward(x, np.ones(3)), [0.0, 0.0, 1.0])

    def test_sign_values(self):
        act = Sign()
        x = np.array([-0.5, 0.0, 0.7])
        np.testing.assert_allclose(act.forward(x), [-1.0, 0.0, 1.0])

    def test_sign_soft_threshold(self):
        act = Sign(threshold=0.2)
        x = np.array([-0.5, 0.1, -0.1, 0.7])
        np.testing.assert_allclose(act.forward(x), [-1.0, 0.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            Sign(threshold=-1)

    def test_sign_straight_through_gradient(self):
        act = Sign(clip=1.0)
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        grad = act.backward(x, np.ones(4))
        np.testing.assert_allclose(grad, [0.0, 1.0, 1.0, 0.0])

    def test_tanh_sigmoid_identity(self):
        x = np.linspace(-2, 2, 7)
        assert np.allclose(Tanh().forward(x), np.tanh(x))
        assert np.allclose(Identity().forward(x), x)
        s = Sigmoid().forward(x)
        assert np.all((s > 0) & (s < 1))

    @pytest.mark.parametrize("cls", [Tanh, Sigmoid])
    def test_smooth_gradients_match_numerical(self, cls):
        act = cls()
        x = np.linspace(-1.5, 1.5, 11)
        eps = 1e-6
        numerical = (act.forward(x + eps) - act.forward(x - eps)) / (2 * eps)
        analytical = act.backward(x, np.ones_like(x))
        np.testing.assert_allclose(analytical, numerical, atol=1e-6)

    def test_get_activation_resolution(self):
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("SIGN"), Sign)
        assert isinstance(get_activation(None), Identity)
        relu = ReLU()
        assert get_activation(relu) is relu
        with pytest.raises(ValueError):
            get_activation("swish9")
        with pytest.raises(TypeError):
            get_activation(3.14)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([[0], [1]]), 3)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        value, grad = loss.forward(logits, np.array([0, 1]))
        assert value < 1e-4
        assert grad.shape == logits.shape

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        targets = rng.integers(0, 5, size=4)
        loss = SoftmaxCrossEntropy()
        _, grad = loss.forward(logits, targets)
        eps = 1e-6
        numerical = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numerical[i, j] = (
                    loss.forward(plus, targets)[0] - loss.forward(minus, targets)[0]
                ) / (2 * eps)
        np.testing.assert_allclose(grad, numerical, atol=1e-6)

    def test_accepts_one_hot_targets(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((2, 3))
        value_int, _ = loss.forward(logits, np.array([0, 2]))
        value_oh, _ = loss.forward(logits, one_hot(np.array([0, 2]), 3))
        assert value_int == pytest.approx(value_oh)

    def test_rejects_bad_shapes(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros(3), np.array([0]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.zeros((3, 3)))

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_uniform_logits_loss_is_log_classes(self, classes):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((3, classes))
        value, _ = loss.forward(logits, np.zeros(3, dtype=np.int64))
        assert value == pytest.approx(np.log(classes), rel=1e-6)


class TestMeanSquaredError:
    def test_value_and_gradient(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        value, grad = loss.forward(pred, target)
        assert value == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [[1.0, 2.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((2, 3)))
