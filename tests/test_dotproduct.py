"""Tests for the stochastic dot-product engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc import (
    StochasticDotProductEngine,
    new_sc_engine,
    old_sc_engine,
    split_weights,
    stochastic_dot_product,
)
from repro.sc.elements.adders import TffAdder


class TestSplitWeights:
    def test_basic_split(self):
        w = np.array([0.5, -0.25, 0.0])
        pos, neg = split_weights(w)
        np.testing.assert_allclose(pos, [0.5, 0.0, 0.0])
        np.testing.assert_allclose(neg, [0.0, 0.25, 0.0])
        np.testing.assert_allclose(pos - neg, w)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            split_weights(np.array([1.5]))

    @given(
        st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=30)
    )
    def test_reconstruction_property(self, weights):
        w = np.array(weights)
        pos, neg = split_weights(w)
        assert np.all(pos >= 0) and np.all(neg >= 0)
        assert np.all(pos <= 1) and np.all(neg <= 1)
        np.testing.assert_allclose(pos - neg, w, atol=1e-12)


class TestStochasticDotProduct:
    def test_counts_exact_for_tff_tree(self):
        # 4 taps, all inputs 1.0 and all weights 1.0: every product stream is
        # all-ones, the tree output is all-ones, count = N.
        n = 32
        x_bits = np.ones((4, n), dtype=np.uint8)
        w_bits = np.ones((4, n), dtype=np.uint8)
        counts = stochastic_dot_product(x_bits, w_bits, TffAdder)
        assert counts == n

    def test_batched_shape(self):
        rng = np.random.default_rng(0)
        x_bits = rng.integers(0, 2, size=(3, 7, 9, 16)).astype(np.uint8)
        w_bits = rng.integers(0, 2, size=(9, 16)).astype(np.uint8)
        counts = stochastic_dot_product(x_bits, w_bits)
        assert counts.shape == (3, 7)


class TestEngineConfiguration:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            StochasticDotProductEngine(precision=1)
        with pytest.raises(ValueError):
            StochasticDotProductEngine(adder="carry-save")
        with pytest.raises(ValueError):
            StochasticDotProductEngine(input_generator="laser")
        with pytest.raises(ValueError):
            StochasticDotProductEngine(weight_generator="dice")

    def test_length(self):
        assert StochasticDotProductEngine(precision=6).length == 64

    def test_factories(self):
        new = new_sc_engine(precision=5)
        assert (new.adder, new.input_generator, new.weight_generator) == (
            "tff",
            "ramp",
            "lowdisc",
        )
        old = old_sc_engine(precision=5)
        assert (old.adder, old.input_generator, old.weight_generator) == (
            "mux",
            "lfsr",
            "lfsr",
        )

    def test_tap_mismatch_rejected(self):
        engine = new_sc_engine(precision=4)
        with pytest.raises(ValueError):
            engine.dot(np.zeros(5), np.zeros(6))


class TestEngineAccuracy:
    def test_new_engine_accurate_dot_product(self):
        engine = new_sc_engine(precision=8)
        rng = np.random.default_rng(0)
        x = rng.random(25)
        w = rng.uniform(-1, 1, 25)
        result = engine.dot(x, w)
        exact = float(x @ w)
        # The proposed design should get within a few counter LSBs of the
        # exact dot product (scaled by the tree).
        assert abs(result.value[()] - exact) < 0.15 * 25 / 32 + 0.1

    def test_new_engine_much_more_accurate_than_old(self):
        rng = np.random.default_rng(1)
        errors = {"new": [], "old": []}
        for trial in range(10):
            x = rng.random(25)
            w = rng.uniform(-1, 1, 25)
            exact = float(x @ w)
            for name, factory in (("new", new_sc_engine), ("old", old_sc_engine)):
                engine = factory(precision=6, seed=trial + 1)
                result = engine.dot(x, w)
                errors[name].append((float(result.value[()]) - exact) ** 2)
        assert np.mean(errors["new"]) < np.mean(errors["old"])

    def test_sign_activation_correctness(self):
        engine = new_sc_engine(precision=8)
        x = np.full(25, 0.8)
        w_positive = np.full(25, 0.5)
        w_negative = np.full(25, -0.5)
        assert engine.dot(x, w_positive).sign[()] == 1
        assert engine.dot(x, w_negative).sign[()] == -1

    def test_batched_dot(self):
        engine = new_sc_engine(precision=6)
        rng = np.random.default_rng(2)
        x = rng.random((4, 9))
        w = rng.uniform(-1, 1, 9)
        result = engine.dot(x, w)
        assert result.positive_count.shape == (4,)
        assert result.sign.shape == (4,)
        exact = x @ w
        np.testing.assert_allclose(result.value, exact, atol=0.3)

    def test_value_reconstruction_scale(self):
        # value = (pos - neg) / N * 2**depth
        engine = new_sc_engine(precision=4)
        result = engine.dot(np.ones(2), np.array([1.0, 1.0]))
        assert result.tree_scale == 2
        assert result.value[()] == pytest.approx(2.0)

    @given(st.integers(min_value=3, max_value=7))
    @settings(max_examples=5, deadline=None)
    def test_error_decreases_with_precision(self, precision):
        rng = np.random.default_rng(42)
        x = rng.random(16)
        w = rng.uniform(-1, 1, 16)
        exact = float(x @ w)
        low = new_sc_engine(precision=2).dot(x, w)
        high = new_sc_engine(precision=8).dot(x, w)
        assert abs(float(high.value[()]) - exact) <= abs(float(low.value[()]) - exact) + 1e-9
