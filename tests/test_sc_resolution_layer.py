"""Tests for StochasticResolutionConv2D and SC-resolution-aware retraining."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Sequential,
    StochasticResolutionConv2D,
    quantize_and_freeze,
    retrain,
)
from repro.sc import StochasticConv2D, new_sc_engine


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            StochasticResolutionConv2D(1, 4, 3, precision=1)
        with pytest.raises(ValueError):
            StochasticResolutionConv2D(1, 4, 3, precision=4, soft_threshold=-1)

    def test_tree_scale(self):
        layer = StochasticResolutionConv2D(1, 4, 5, precision=4)
        assert layer.tree_scale == 32  # 25 taps -> depth 5
        layer3 = StochasticResolutionConv2D(1, 4, 3, precision=4)
        assert layer3.tree_scale == 16  # 9 taps -> depth 4

    def test_from_conv(self):
        base = Conv2D(1, 4, 3, padding=1)
        weights = np.clip(base.weights, -1, 1) * 0.5
        layer = StochasticResolutionConv2D.from_conv(base, weights, precision=6)
        assert layer.padding == 1
        assert layer.trainable is False
        np.testing.assert_allclose(layer.bias, 0.0)
        with pytest.raises(ValueError):
            StochasticResolutionConv2D.from_conv(base, np.zeros((4, 1, 5, 5)), precision=6)
        with pytest.raises(ValueError):
            StochasticResolutionConv2D.from_conv(base, weights * 10, precision=6)

    def test_repr(self):
        layer = StochasticResolutionConv2D(1, 2, 3, precision=5)
        assert "precision=5" in repr(layer)


class TestForward:
    def test_outputs_are_ternary(self):
        rng = np.random.default_rng(0)
        layer = StochasticResolutionConv2D(1, 4, 3, precision=4, padding=1)
        layer.weights[...] = rng.uniform(-1, 1, layer.weights.shape)
        out = layer.forward(rng.random((2, 1, 8, 8)))
        assert out.shape == (2, 4, 8, 8)
        assert set(np.unique(out)).issubset({-1.0, 0.0, 1.0})

    def test_input_shape_validation(self):
        layer = StochasticResolutionConv2D(1, 2, 3, precision=4)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 3, 8, 8)))

    def test_high_precision_matches_ideal_sign(self):
        # At very high precision the layer degenerates to sign(x . w).
        rng = np.random.default_rng(1)
        layer = StochasticResolutionConv2D(1, 3, 3, precision=12, padding=1)
        layer.weights[...] = rng.uniform(-1, 1, layer.weights.shape)
        x = rng.random((1, 1, 6, 6))
        out = layer.forward(x)
        reference = Conv2D(1, 3, 3, padding=1, activation="sign")
        reference.weights[...] = layer.weights
        reference.bias[...] = 0.0
        expected = reference.forward(x)
        assert np.mean(out == expected) > 0.95

    def test_low_precision_zeroes_small_outputs(self):
        # At 2-bit precision the counter LSB is large, so small dot products
        # collapse to zero far more often than at 8-bit precision.
        rng = np.random.default_rng(2)
        weights = rng.uniform(-0.3, 0.3, (4, 1, 5, 5))
        x = rng.random((2, 1, 12, 12)) * 0.3
        zeros = {}
        for precision in (2, 8):
            layer = StochasticResolutionConv2D(1, 4, 5, precision=precision, padding=2)
            layer.weights[...] = weights
            zeros[precision] = int(np.sum(layer.forward(x) == 0))
        assert zeros[2] > zeros[8]

    def test_matches_bitexact_engine_closely(self):
        # The layer is the noise-free limit of the TFF-adder engine: its sign
        # decisions agree with bit-exact simulation except within a few LSBs
        # of the decision boundary.
        rng = np.random.default_rng(3)
        kernels = rng.uniform(-1, 1, (3, 5, 5))
        images = rng.random((1, 10, 10))
        precision = 6
        layer = StochasticResolutionConv2D(1, 3, 5, precision=precision, padding=2)
        layer.weights[...] = kernels[:, np.newaxis]
        ideal = layer.forward(images[:, np.newaxis])
        engine_layer = StochasticConv2D(
            kernels, engine=new_sc_engine(precision), padding=2
        )
        exact = engine_layer.forward(images)
        agreement = np.mean(ideal == exact.sign)
        assert agreement > 0.7
        confident = np.abs(exact.value) > 0.5
        assert np.mean(ideal[confident] == exact.sign[confident]) > 0.9

    def test_soft_threshold_increases_zeros(self):
        rng = np.random.default_rng(4)
        weights = rng.uniform(-1, 1, (4, 1, 3, 3))
        x = rng.random((1, 1, 8, 8))
        plain = StochasticResolutionConv2D(1, 4, 3, precision=6, padding=1)
        plain.weights[...] = weights
        soft = StochasticResolutionConv2D(
            1, 4, 3, precision=6, padding=1, soft_threshold=0.05
        )
        soft.weights[...] = weights
        assert np.sum(soft.forward(x) == 0) >= np.sum(plain.forward(x) == 0)


class TestRetrainingIntegration:
    def test_quantize_and_freeze_sc_resolution(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            [
                Conv2D(1, 4, 3, padding=1, activation="relu", rng=rng),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 7 * 7, 10, rng=rng),
            ]
        )
        frozen = quantize_and_freeze(
            model, precision=4, sc_resolution=True, soft_threshold=0.02
        )
        first = frozen.layers[0]
        assert isinstance(first, StochasticResolutionConv2D)
        assert first.precision == 4
        assert first.soft_threshold == 0.02
        assert np.abs(first.weights).max() <= 1.0

    def test_retraining_with_sc_resolution_layer_learns(self):
        rng = np.random.default_rng(5)
        x = rng.random((120, 1, 12, 12))
        y = (x.mean(axis=(1, 2, 3)) > 0.5).astype(np.int64)
        model = Sequential(
            [
                Conv2D(1, 4, 3, padding=1, activation="relu", rng=rng),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 6 * 6, 2, rng=rng),
            ]
        )
        model.fit(x, y, epochs=4, optimizer=Adam(0.01))
        frozen = quantize_and_freeze(model, precision=4, sc_resolution=True)
        weights_before = frozen.layers[0].weights.copy()
        before = frozen.misclassification_rate(x, y)
        retrain(frozen, x, y, epochs=5, optimizer=Adam(0.01))
        after = frozen.misclassification_rate(x, y)
        assert after <= before + 1e-9
        # The frozen SC-resolution layer itself must not move.
        np.testing.assert_allclose(frozen.layers[0].weights, weights_before)
