"""Unit and property tests for repro.bitstream.encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bitstream import encoding as enc


class TestStreamLength:
    def test_matches_paper_rule(self):
        # Paper Section II-A: a length-16 stream has log2(16) = 4 bits of precision.
        assert enc.stream_length(4) == 16

    @pytest.mark.parametrize("bits,length", [(1, 2), (2, 4), (3, 8), (8, 256), (10, 1024)])
    def test_powers_of_two(self, bits, length):
        assert enc.stream_length(bits) == length

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            enc.stream_length(0)

    @pytest.mark.parametrize("bits", range(1, 16))
    def test_precision_roundtrip(self, bits):
        assert enc.precision_bits(enc.stream_length(bits)) == bits

    def test_precision_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            enc.precision_bits(12)

    def test_precision_rejects_one(self):
        with pytest.raises(ValueError):
            enc.precision_bits(1)


class TestPolarityConversion:
    def test_unipolar_to_bipolar_midpoint(self):
        assert enc.unipolar_to_bipolar(0.5) == pytest.approx(0.0)

    def test_bipolar_to_unipolar_extremes(self):
        assert enc.bipolar_to_unipolar(-1.0) == pytest.approx(0.0)
        assert enc.bipolar_to_unipolar(1.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_roundtrip_unipolar(self, p):
        assert enc.bipolar_to_unipolar(enc.unipolar_to_bipolar(p)) == pytest.approx(p)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_roundtrip_bipolar(self, x):
        assert enc.unipolar_to_bipolar(enc.bipolar_to_unipolar(x)) == pytest.approx(x)

    def test_to_probability_clips(self):
        assert enc.to_probability(1.7) == pytest.approx(1.0)
        assert enc.to_probability(-0.3) == pytest.approx(0.0)
        assert enc.to_probability(2.0, enc.BIPOLAR) == pytest.approx(1.0)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            enc.to_probability(0.5, "ternary")
        with pytest.raises(ValueError):
            enc.from_probability(0.5, "ternary")
        with pytest.raises(ValueError):
            enc.quantization_grid(4, "ternary")


class TestQuantization:
    def test_unipolar_grid_size(self):
        grid = enc.quantization_grid(4)
        assert len(grid) == 17
        assert grid[0] == 0.0
        assert grid[-1] == 1.0

    def test_bipolar_grid_covers_range(self):
        grid = enc.quantization_grid(3, enc.BIPOLAR)
        assert grid[0] == -1.0
        assert grid[-1] == 1.0
        assert np.all(np.diff(grid) > 0)

    def test_quantize_unipolar_snaps_to_grid(self):
        assert enc.quantize_unipolar(0.26, 2) == pytest.approx(0.25)
        assert enc.quantize_unipolar(0.3749, 4) == pytest.approx(6 / 16)

    def test_quantize_bipolar_step(self):
        # 3-bit bipolar grid has step 2/8 = 0.25.
        assert enc.quantize_bipolar(0.3, 3) == pytest.approx(0.25)
        assert enc.quantize_bipolar(-0.3, 3) == pytest.approx(-0.25)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=10),
    )
    def test_quantization_error_bounded(self, value, precision):
        q = float(enc.quantize_unipolar(value, precision))
        assert abs(q - value) <= 0.5 / enc.stream_length(precision) + 1e-12

    @given(
        st.floats(min_value=-1.0, max_value=1.0),
        st.integers(min_value=1, max_value=10),
    )
    def test_bipolar_quantization_idempotent(self, value, precision):
        q1 = float(enc.quantize_bipolar(value, precision))
        q2 = float(enc.quantize_bipolar(q1, precision))
        assert q1 == pytest.approx(q2)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=8),
    )
    def test_quantize_vectorized_matches_scalar(self, values, precision):
        arr = np.array(values)
        vec = enc.quantize_unipolar(arr, precision)
        scalar = np.array([enc.quantize_unipolar(v, precision) for v in values])
        np.testing.assert_allclose(vec, scalar)
