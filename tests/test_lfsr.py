"""Tests for the LFSR number sources."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rng import LFSR, LFSRSource, MAXIMAL_TAPS, ShiftedLFSRSource


class TestLFSR:
    @pytest.mark.parametrize("bits", [2, 3, 4, 5, 6, 7, 8])
    def test_maximal_period(self, bits):
        # A maximal-length n-bit LFSR must visit all 2**n - 1 non-zero states.
        lfsr = LFSR(bits, seed=1)
        cycle = lfsr.cycle()
        assert len(cycle) == (1 << bits) - 1
        assert len(set(cycle)) == len(cycle)
        assert 0 not in cycle

    def test_period_property(self):
        assert LFSR(8).period == 255

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(4, seed=0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            LFSR(1)

    def test_unknown_width_requires_taps(self):
        with pytest.raises(ValueError):
            LFSR(25)
        lfsr = LFSR(4, taps=(4, 3))
        assert len(lfsr.cycle()) == 15

    def test_bad_taps_rejected(self):
        with pytest.raises(ValueError):
            LFSR(4, taps=(5, 1))

    def test_reset_restores_seed(self):
        lfsr = LFSR(6, seed=13)
        lfsr.step()
        lfsr.step()
        lfsr.reset()
        assert lfsr.state == 13

    def test_states_deterministic(self):
        a = LFSR(8, seed=7).states(100)
        b = LFSR(8, seed=7).states(100)
        np.testing.assert_array_equal(a, b)

    def test_bit_sequence_is_msb(self):
        lfsr = LFSR(4, seed=8)  # state 8 = 0b1000, MSB = 1
        bits = lfsr.bit_sequence(1)
        assert bits[0] == 1

    def test_different_seeds_different_phases(self):
        a = LFSR(8, seed=1).states(50)
        b = LFSR(8, seed=100).states(50)
        assert not np.array_equal(a, b)

    @given(st.sampled_from(sorted(MAXIMAL_TAPS)), st.integers(min_value=1, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_state_never_zero(self, bits, seed):
        lfsr = LFSR(bits, seed=(seed % ((1 << bits) - 1)) + 1)
        states = lfsr.states(min(200, 4 * lfsr.period))
        assert np.all(states != 0)


class TestLFSRSource:
    def test_values_in_unit_interval(self):
        seq = LFSRSource(8).sequence(255)
        assert np.all(seq > 0.0)  # zero state never occurs
        assert np.all(seq < 1.0)

    def test_sequence_resets_each_call(self):
        src = LFSRSource(8, seed=3)
        np.testing.assert_array_equal(src.sequence(64), src.sequence(64))

    def test_nearly_uniform_over_period(self):
        src = LFSRSource(8)
        seq = src.sequence(255)
        # All non-zero grid points appear exactly once over one full period.
        assert len(np.unique(seq)) == 255

    def test_resolution_bits(self):
        assert LFSRSource(6).resolution_bits == 6


class TestShiftedLFSRSource:
    def test_is_delayed_copy(self):
        base = LFSRSource(8, seed=1)
        shifted = ShiftedLFSRSource(base, shift=5)
        full = base.sequence(300)
        np.testing.assert_array_equal(shifted.sequence(100), full[5:105])

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            ShiftedLFSRSource(LFSRSource(4), shift=-1)

    def test_highly_correlated_with_base(self):
        # The whole point of the Table 1 comparison: a shifted copy of the
        # same LFSR is far from independent of the original sequence.
        base = LFSRSource(8, seed=1)
        shifted = ShiftedLFSRSource(base, shift=4)
        a = base.sequence(255)
        b = shifted.sequence(255)
        assert not np.array_equal(a, b)
        assert set(np.round(a, 12)) == set(np.round(b, 12))
