"""Tests for the bipolar stochastic dot-product engine (the rejected alternative)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc import BipolarDotProductEngine, new_sc_engine
from repro.sc.bipolar import BipolarDotProductResult


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            BipolarDotProductEngine(precision=1)
        with pytest.raises(ValueError):
            BipolarDotProductEngine(adder="or")
        with pytest.raises(ValueError):
            BipolarDotProductEngine(backend="simd")

    def test_backend_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert BipolarDotProductEngine().backend == "packed"
        assert BipolarDotProductEngine(backend="unpacked").backend == "unpacked"
        monkeypatch.setenv("REPRO_BACKEND", "unpacked")
        assert BipolarDotProductEngine().backend == "unpacked"

    def test_length(self):
        assert BipolarDotProductEngine(precision=6).length == 64

    def test_tap_mismatch(self):
        engine = BipolarDotProductEngine(precision=4)
        with pytest.raises(ValueError):
            engine.dot(np.zeros(5), np.zeros(6))

    def test_weight_range_check(self):
        engine = BipolarDotProductEngine(precision=4)
        with pytest.raises(ValueError):
            engine.weight_streams(np.array([1.5]))


class TestAccuracy:
    def test_simple_dot_product(self):
        engine = BipolarDotProductEngine(precision=8)
        x = np.full(4, 0.5)
        w = np.array([1.0, 1.0, 1.0, 1.0])
        result = engine.dot(x, w)
        assert result.value[()] == pytest.approx(2.0, abs=0.3)
        assert result.sign[()] == 1

    def test_negative_weights_flip_sign(self):
        engine = BipolarDotProductEngine(precision=8)
        x = np.full(9, 0.8)
        result = engine.dot(x, np.full(9, -0.8))
        assert result.sign[()] == -1
        assert result.value[()] < 0

    def test_padding_does_not_bias_result(self):
        # 25 taps get padded to 32 leaves; the pad streams encode bipolar zero
        # so an all-zero dot product must stay near zero.
        engine = BipolarDotProductEngine(precision=8)
        x = np.zeros(25)
        w = np.zeros(25)
        result = engine.dot(x, w)
        assert abs(result.value[()]) < 2.0

    def test_batched_shape(self):
        engine = BipolarDotProductEngine(precision=6)
        rng = np.random.default_rng(0)
        x = rng.random((5, 9))
        w = rng.uniform(-1, 1, 9)
        result = engine.dot(x, w)
        assert result.count.shape == (5,)
        assert result.sign.shape == (5,)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_value_reconstruction_bounds(self, seed):
        rng = np.random.default_rng(seed)
        engine = BipolarDotProductEngine(precision=6, seed=seed + 1)
        x = rng.random(9)
        w = rng.uniform(-1, 1, 9)
        result = engine.dot(x, w)
        # The reconstructed value must stay within the representable range.
        assert abs(result.value[()]) <= result.tree_scale


class TestSignActivation:
    def test_sign_tie_resolves_to_plus_one(self):
        # A hardware sign activation emits +-1 only: the exact mid-scale tie
        # 2 * count == length is defined as +1, never 0.
        result = BipolarDotProductResult(
            count=np.array([8, 0, 16, 9, 7]), length=16, tree_scale=4
        )
        np.testing.assert_array_equal(result.sign, [1, -1, 1, 1, -1])
        assert result.sign.dtype == np.int8

    def test_sign_never_zero(self):
        rng = np.random.default_rng(2)
        engine = BipolarDotProductEngine(precision=4)
        for trial in range(20):
            x = rng.random(9)
            w = rng.uniform(-1, 1, 9)
            assert np.all(np.isin(engine.dot(x, w).sign, (-1, 1))), trial


class TestDeterminism:
    @pytest.mark.parametrize("adder", ["tff", "mux"])
    def test_repeated_dot_calls_are_identical(self, adder):
        # The MUX select seed counter must reset per dot() call: one engine
        # evaluating the same inputs twice returns the same counts.
        rng = np.random.default_rng(5)
        x = rng.random((3, 9))
        w = rng.uniform(-1, 1, 9)
        engine = BipolarDotProductEngine(precision=6, adder=adder, seed=2)
        first = engine.dot(x, w)
        second = engine.dot(x, w)
        np.testing.assert_array_equal(first.count, second.count)

    def test_repeated_calls_match_fresh_engine(self):
        rng = np.random.default_rng(6)
        x = rng.random(25)
        w = rng.uniform(-1, 1, 25)
        engine = BipolarDotProductEngine(precision=5, adder="mux", seed=3)
        engine.dot(x, rng.uniform(-1, 1, 25))  # unrelated earlier call
        reused = engine.dot(x, w)
        fresh = BipolarDotProductEngine(precision=5, adder="mux", seed=3).dot(x, w)
        np.testing.assert_array_equal(reused.count, fresh.count)


class TestBackendEquivalence:
    @pytest.mark.parametrize("adder", ["tff", "mux"])
    # Odd/prime tap counts exercise the bipolar-zero padding; precisions 3
    # and 5 give stream lengths (8, 32) that are not multiples of 64, where
    # tail-word masking matters, 7 gives two full words per stream.
    @pytest.mark.parametrize("taps", [2, 3, 5, 9, 25])
    @pytest.mark.parametrize("precision", [3, 5, 7])
    def test_backends_bit_identical(self, adder, taps, precision):
        rng = np.random.default_rng(precision * 100 + taps)
        x = rng.random((4, taps))
        w = rng.uniform(-1, 1, taps)
        packed = BipolarDotProductEngine(
            precision=precision, adder=adder, seed=7, backend="packed"
        ).dot(x, w)
        unpacked = BipolarDotProductEngine(
            precision=precision, adder=adder, seed=7, backend="unpacked"
        ).dot(x, w)
        np.testing.assert_array_equal(packed.count, unpacked.count)
        np.testing.assert_array_equal(packed.sign, unpacked.sign)
        assert packed.tree_scale == unpacked.tree_scale
        assert packed.length == unpacked.length

    def test_stream_generation_round_trips(self):
        from repro.bitstream import unpack_bits

        engine = BipolarDotProductEngine(precision=5)
        values = np.linspace(-1.0, 1.0, 7)
        np.testing.assert_array_equal(
            unpack_bits(engine.input_words(values), engine.length),
            engine.input_streams(values),
        )
        np.testing.assert_array_equal(
            unpack_bits(engine.weight_words(values), engine.length),
            engine.weight_streams(values),
        )

    def test_prepared_inputs_reusable_across_kernels(self):
        rng = np.random.default_rng(9)
        x = rng.random((3, 9))
        kernels = rng.uniform(-1, 1, (4, 9))
        for backend in ("packed", "unpacked"):
            engine = BipolarDotProductEngine(precision=5, backend=backend)
            prepared = engine.prepare_inputs(x)
            for kernel in kernels:
                direct = engine.dot(x, kernel)
                reused = engine.dot_prepared(prepared, kernel)
                np.testing.assert_array_equal(direct.count, reused.count)


class TestPaperClaim:
    def test_split_unipolar_design_more_accurate_near_zero(self):
        """Section IV-B: near the decision point the bipolar design is noisier.

        Compare the paper's positive/negative-split unipolar engine against
        the bipolar engine on dot products whose true value is near zero,
        which is exactly where the sign activation decides.
        """
        rng = np.random.default_rng(0)
        taps = 25
        split_errors, bipolar_errors = [], []
        for trial in range(12):
            x = rng.random(taps)
            w = rng.uniform(-1, 1, taps)
            w = w - (x @ w) / x.sum()  # force the true dot product to ~0
            w = np.clip(w, -1, 1)
            exact = float(x @ w)
            split = new_sc_engine(precision=6, seed=trial + 1).dot(x, w)
            bipolar = BipolarDotProductEngine(precision=6, seed=trial + 1).dot(x, w)
            split_errors.append((float(split.value[()]) - exact) ** 2)
            bipolar_errors.append((float(bipolar.value[()]) - exact) ** 2)
        assert np.mean(split_errors) < np.mean(bipolar_errors)
