"""Tests for the bipolar stochastic dot-product engine (the rejected alternative)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc import BipolarDotProductEngine, new_sc_engine


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            BipolarDotProductEngine(precision=1)
        with pytest.raises(ValueError):
            BipolarDotProductEngine(adder="or")

    def test_length(self):
        assert BipolarDotProductEngine(precision=6).length == 64

    def test_tap_mismatch(self):
        engine = BipolarDotProductEngine(precision=4)
        with pytest.raises(ValueError):
            engine.dot(np.zeros(5), np.zeros(6))

    def test_weight_range_check(self):
        engine = BipolarDotProductEngine(precision=4)
        with pytest.raises(ValueError):
            engine.weight_streams(np.array([1.5]))


class TestAccuracy:
    def test_simple_dot_product(self):
        engine = BipolarDotProductEngine(precision=8)
        x = np.full(4, 0.5)
        w = np.array([1.0, 1.0, 1.0, 1.0])
        result = engine.dot(x, w)
        assert result.value[()] == pytest.approx(2.0, abs=0.3)
        assert result.sign[()] == 1

    def test_negative_weights_flip_sign(self):
        engine = BipolarDotProductEngine(precision=8)
        x = np.full(9, 0.8)
        result = engine.dot(x, np.full(9, -0.8))
        assert result.sign[()] == -1
        assert result.value[()] < 0

    def test_padding_does_not_bias_result(self):
        # 25 taps get padded to 32 leaves; the pad streams encode bipolar zero
        # so an all-zero dot product must stay near zero.
        engine = BipolarDotProductEngine(precision=8)
        x = np.zeros(25)
        w = np.zeros(25)
        result = engine.dot(x, w)
        assert abs(result.value[()]) < 2.0

    def test_batched_shape(self):
        engine = BipolarDotProductEngine(precision=6)
        rng = np.random.default_rng(0)
        x = rng.random((5, 9))
        w = rng.uniform(-1, 1, 9)
        result = engine.dot(x, w)
        assert result.count.shape == (5,)
        assert result.sign.shape == (5,)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_value_reconstruction_bounds(self, seed):
        rng = np.random.default_rng(seed)
        engine = BipolarDotProductEngine(precision=6, seed=seed + 1)
        x = rng.random(9)
        w = rng.uniform(-1, 1, 9)
        result = engine.dot(x, w)
        # The reconstructed value must stay within the representable range.
        assert abs(result.value[()]) <= result.tree_scale


class TestPaperClaim:
    def test_split_unipolar_design_more_accurate_near_zero(self):
        """Section IV-B: near the decision point the bipolar design is noisier.

        Compare the paper's positive/negative-split unipolar engine against
        the bipolar engine on dot products whose true value is near zero,
        which is exactly where the sign activation decides.
        """
        rng = np.random.default_rng(0)
        taps = 25
        split_errors, bipolar_errors = [], []
        for trial in range(12):
            x = rng.random(taps)
            w = rng.uniform(-1, 1, taps)
            w = w - (x @ w) / x.sum()  # force the true dot product to ~0
            w = np.clip(w, -1, 1)
            exact = float(x @ w)
            split = new_sc_engine(precision=6, seed=trial + 1).dot(x, w)
            bipolar = BipolarDotProductEngine(precision=6, seed=trial + 1).dot(x, w)
            split_errors.append((float(split.value[()]) - exact) ** 2)
            bipolar_errors.append((float(bipolar.value[()]) - exact) ** 2)
        assert np.mean(split_errors) < np.mean(bipolar_errors)
