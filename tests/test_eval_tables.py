"""Tests for the experiment harness (Tables 1-3, summary, report formatting)."""

import pytest

from repro.eval import (
    AccuracyConfig,
    HeadlineClaims,
    adder_mse,
    format_headline_claims,
    format_table1,
    format_table2,
    format_table3_accuracy,
    format_table3_hardware,
    multiplier_mse,
    run_table1,
    run_table2,
    run_table3_accuracy,
    run_table3_hardware,
    summarize,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        # 6-bit and 4-bit keep the exhaustive sweep fast while preserving the
        # qualitative ordering; the benchmark runs the full 8-bit version.
        return run_table1(precisions=(6, 4))

    def test_all_schemes_present(self, result):
        assert set(result.mse) == {
            "shared_lfsr",
            "two_lfsrs",
            "low_discrepancy",
            "ramp_low_discrepancy",
        }

    def test_paper_ordering(self, result):
        # Paper Table 1: shared LFSR worst, ramp + low-discrepancy best.
        for precision in (6, 4):
            ordering = result.ordering_at(precision)
            assert ordering[0] == "shared_lfsr"
            assert result.best_scheme(precision) in (
                "ramp_low_discrepancy",
                "low_discrepancy",
            )
            assert (
                result.mse["shared_lfsr"][precision]
                > 3 * result.mse["ramp_low_discrepancy"][precision]
            )

    def test_mse_decreases_with_precision(self):
        for scheme in ("low_discrepancy", "ramp_low_discrepancy"):
            assert multiplier_mse(scheme, 7) < multiplier_mse(scheme, 4)

    def test_formatting(self, result):
        text = format_table1(result)
        assert "Table 1" in text
        assert "Ramp-compare" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(precisions=(6, 4))

    def test_all_configs_present(self, result):
        assert set(result.mse) == {
            "old_random_lfsr",
            "old_random_tff",
            "old_lfsr_tff",
            "new_tff",
        }

    def test_new_adder_dominates(self, result):
        # Paper Table 2: the TFF adder is at least an order of magnitude more
        # accurate than every MUX-adder configuration.
        for precision in (6, 4):
            new = result.mse["new_tff"][precision]
            for config in ("old_random_lfsr", "old_random_tff", "old_lfsr_tff"):
                assert result.mse[config][precision] > 4 * new
        assert result.improvement_factor(6) > 4

    def test_new_adder_error_is_at_quantization_level(self):
        # The TFF adder's only error is the half-LSB rounding; its MSE must be
        # on the order of (1 / 2N)^2.
        precision = 6
        n = 2**precision
        assert adder_mse("new_tff", precision) < (1.0 / n) ** 2

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            adder_mse("quantum_adder", 4)

    def test_formatting(self, result):
        text = format_table2(result)
        assert "Table 2" in text
        assert "New adder" in text


@pytest.fixture(scope="module")
def accuracy_result():
    """A miniature Table 3 accuracy run (small dataset, few epochs, 3 precisions)."""
    config = AccuracyConfig(
        precisions=(6, 4, 2),
        train_size=300,
        test_size=100,
        baseline_epochs=2,
        retrain_epochs=1,
        sc_mode="emulate",
        sc_eval_images=60,
        include_no_retrain=True,
        seed=0,
    )
    return run_table3_accuracy(config)


class TestTable3Accuracy:
    def test_designs_and_precisions_present(self, accuracy_result):
        assert set(accuracy_result.rates) == {
            "binary",
            "old_sc",
            "this_work",
            "binary_no_retrain",
        }
        for design in accuracy_result.rates.values():
            assert set(design) == {6, 4, 2}

    def test_rates_are_valid_probabilities(self, accuracy_result):
        for design in accuracy_result.rates.values():
            for rate in design.values():
                assert 0.0 <= rate <= 1.0

    def test_metadata(self, accuracy_result):
        assert accuracy_result.train_size == 300
        assert accuracy_result.test_size == 100
        assert 0.0 <= accuracy_result.baseline_misclassification <= 1.0

    def test_helper_accessors(self, accuracy_result):
        gap = accuracy_result.gap_to_binary("this_work", 6)
        assert isinstance(gap, float)
        improvement = accuracy_result.improvement_over_old_sc(6)
        assert isinstance(improvement, float)

    def test_formatting(self, accuracy_result):
        text = format_table3_accuracy(accuracy_result)
        assert "Misclassification" in text
        assert "This Work" in text
        assert "%" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AccuracyConfig(sc_mode="approximate")

    def test_bitexact_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BITEXACT", "1")
        config = AccuracyConfig()
        assert config.sc_mode == "bitexact"
        assert config.sc_eval_images == 100

    def test_eval_images_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_IMAGES", "42")
        assert AccuracyConfig().sc_eval_images == 42


class TestTable3Hardware:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3_hardware(precisions=(8, 6, 4, 2))

    def test_rows_and_accessors(self, result):
        assert [row.precision for row in result.rows] == [8, 6, 4, 2]
        assert result.break_even_precision() == 8
        assert result.energy_efficiency_at(4) > 5.0
        assert result.area_ratio_at(4) > 1.5

    def test_formatting(self, result):
        text = format_table3_hardware(result)
        assert "Power" in text and "Energy" in text and "Area" in text
        assert "calibrated" in text

    def test_measured_activity_mode(self):
        measured = run_table3_hardware(precisions=(5, 4), activity_traces=3)
        assert measured.measured_activity is not None
        assert 0.0 < measured.measured_activity < 1.0
        # Determinism: the same seed measures the same activity.
        again = run_table3_hardware(precisions=(5, 4), activity_traces=3)
        assert again.measured_activity == measured.measured_activity
        default = run_table3_hardware(precisions=(5, 4))
        assert default.measured_activity is None
        # The measurement must actually shift the calibrated rows: the
        # anchoring factors are computed with the technology-default
        # activity, so they cannot cancel the measured value back out.
        for row, default_row in zip(measured.rows, default.rows):
            assert row.sc_power_mw != default_row.sc_power_mw
            assert row.binary_power_mw == default_row.binary_power_mw

    def test_measured_activity_is_per_precision(self):
        measured = run_table3_hardware(precisions=(5, 4), activity_traces=3)
        by_precision = measured.measured_activity_by_precision
        assert set(by_precision) == {5, 4}
        assert all(0.0 < activity < 1.0 for activity in by_precision.values())
        # Each precision column is measured at its own stream length, not
        # copied from the highest precision.
        assert by_precision[5] != by_precision[4]
        assert measured.measured_activity == by_precision[5]
        # Each row's power model is driven by its own precision's activity:
        # a run measuring only that precision produces the identical row.
        solo = run_table3_hardware(precisions=(4,), activity_traces=3)
        assert solo.measured_activity_by_precision[4] == by_precision[4]
        assert (
            solo.by_precision()[4].sc_power_mw
            == measured.by_precision()[4].sc_power_mw
        )
        default = run_table3_hardware(precisions=(5, 4))
        assert default.measured_activity_by_precision is None

    def test_hardware_comparison_accepts_activity_mapping(self):
        from repro.hw import HardwareComparison

        low, high = 0.05, 0.25
        mapping = HardwareComparison(sc_activity={8: low, 4: high})
        assert mapping.sc_activity_at(8) == low
        assert mapping.sc_activity_at(4) == high
        assert mapping.sc_activity_at(6) is None  # falls back to the default
        scalar_low = HardwareComparison(sc_activity=low)
        scalar_high = HardwareComparison(sc_activity=high)
        default = HardwareComparison()
        assert mapping.row(8).sc_power_mw == scalar_low.row(8).sc_power_mw
        assert mapping.row(4).sc_power_mw == scalar_high.row(4).sc_power_mw
        assert mapping.row(6).sc_power_mw == default.row(6).sc_power_mw

    def test_raw_mode(self):
        raw = run_table3_hardware(precisions=(8, 4), calibrate=False)
        assert not raw.calibrated
        assert raw.rows[0].binary_power_mw > 0


class TestSummary:
    def test_summary_from_hardware_only(self):
        hardware = run_table3_hardware(precisions=(8, 6, 4, 2))
        claims = summarize(hardware)
        assert isinstance(claims, HeadlineClaims)
        assert claims.energy_ratio_4bit > 5.0
        assert claims.break_even_precision == 8
        assert claims.accuracy_gap_8bit_pct is None
        text = format_headline_claims(claims)
        assert "energy efficiency" in text

    def test_summary_with_accuracy(self, accuracy_result):
        hardware = run_table3_hardware(precisions=(8, 6, 4, 2))
        claims = summarize(hardware, accuracy_result)
        assert claims.accuracy_gap_4bit_pct is not None
        assert claims.max_improvement_over_old_sc_pct is not None
        assert "accuracy gap" in format_headline_claims(claims)
        as_dict = claims.as_dict()
        assert "energy_ratio_4bit" in as_dict
