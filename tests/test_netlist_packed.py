"""Differential suite: packed netlist simulation vs. the per-cycle cell loop.

The packed backend's claim is *bit-identical* ``SimulationResult`` contents
-- toggles, waveforms and activity -- so every assertion here is exact
equality.  The circuits exercised are the ones the Table 3 power numbers are
built from (the stochastic dot-product engine, its adder trees and counters,
and the binary baseline datapaths), plus the register-feedback netlists
(LFSR, SNG) that must fall back to the cycle loop transparently.
"""

import numpy as np
import pytest

from repro.netlist import (
    CELL_LIBRARY,
    Netlist,
    build_adder_tree,
    build_array_multiplier,
    build_binary_mac,
    build_counter,
    build_lfsr,
    build_ripple_adder,
    build_sc_dot_product,
    build_sng,
    build_tff_adder,
    simulate,
)
from repro.rng import MAXIMAL_TAPS

#: Cycle counts exercising one partial word, exact words and multi-word
#: runs with a partial tail.
CYCLE_COUNTS = [1, 7, 64, 100, 129]


def random_stimulus(netlist, cycles, seed=0):
    rng = np.random.default_rng(seed)
    return {
        net: rng.integers(0, 2, cycles).astype(np.uint8)
        for net in netlist.primary_inputs
    }


def assert_backends_identical(netlist, stimulus, cycles=None, record=None):
    unpacked = simulate(netlist, stimulus, cycles=cycles, record=record,
                        backend="unpacked")
    packed = simulate(netlist, stimulus, cycles=cycles, record=record,
                      backend="packed")
    assert packed.cycles == unpacked.cycles
    assert packed.toggles == unpacked.toggles
    assert set(packed.waveforms) == set(unpacked.waveforms)
    for net in unpacked.waveforms:
        np.testing.assert_array_equal(
            packed.waveforms[net], unpacked.waveforms[net], err_msg=net
        )
        assert packed.waveforms[net].dtype == np.uint8
    assert packed.total_toggles() == unpacked.total_toggles()
    assert packed.average_activity() == unpacked.average_activity()
    return packed


class TestCellWordLogic:
    """Every combinational cell's word_logic against its scalar logic."""

    @pytest.mark.parametrize(
        "name", [n for n, c in CELL_LIBRARY.items() if not c.sequential]
    )
    @pytest.mark.parametrize("cycles", [1, 63, 130])
    def test_cell(self, name, cycles):
        ctype = CELL_LIBRARY[name]
        net = Netlist(f"one_{name.lower()}")
        inputs = [net.add_input(f"i{k}") for k in range(len(ctype.inputs))]
        outputs = net.add_cell(name, inputs)
        for out in outputs:
            net.add_output(out)
        assert_backends_identical(net, random_stimulus(net, cycles, seed=cycles))

    @pytest.mark.parametrize("name", ["DFF", "TFF"])
    @pytest.mark.parametrize("initial_state", [0, 1])
    def test_sequential_cell(self, name, initial_state):
        net = Netlist(f"one_{name.lower()}")
        d = net.add_input("d")
        (q,) = net.add_cell(name, [d], outputs=["q"], initial_state=initial_state)
        net.add_output(q)
        assert_backends_identical(net, random_stimulus(net, 100))


class TestTable3Circuits:
    @pytest.mark.parametrize("cycles", CYCLE_COUNTS)
    def test_tff_adder(self, cycles):
        net = build_tff_adder()
        assert_backends_identical(net, random_stimulus(net, cycles, seed=cycles))

    @pytest.mark.parametrize("adder", ["tff", "mux"])
    @pytest.mark.parametrize("leaves", [3, 4, 5, 8])
    def test_adder_trees(self, adder, leaves):
        net = build_adder_tree(leaves, adder=adder)
        assert_backends_identical(net, random_stimulus(net, 100, seed=leaves))

    def test_counter(self):
        net = build_counter(5)
        assert_backends_identical(
            net,
            random_stimulus(net, 130),
            record=[f"count{i}" for i in range(5)],
        )

    @pytest.mark.parametrize("adder", ["tff", "mux"])
    def test_sc_dot_product_engine(self, adder):
        # The Table 3 activity circuit: multipliers, two trees, two counters
        # and the sign comparator, over a non-word-aligned cycle count.
        net = build_sc_dot_product(9, 6, adder=adder)
        assert_backends_identical(net, random_stimulus(net, 100, seed=3))

    def test_binary_baseline(self):
        for net, cycles in (
            (build_ripple_adder(4), 20),
            (build_array_multiplier(4), 20),
            (build_binary_mac(4, 10), 40),
        ):
            assert_backends_identical(net, random_stimulus(net, cycles))


class TestRegisterFeedbackFallback:
    """Cyclic register graphs have no packed closed form: the packed backend
    must transparently fall back to the cycle loop with identical results."""

    def test_lfsr(self):
        bits = 4
        net = build_lfsr(bits, MAXIMAL_TAPS[bits])
        assert_backends_identical(
            net, {}, cycles=20, record=[f"state{i}" for i in range(bits)]
        )

    def test_sng(self):
        bits = 4
        net = build_sng(bits, MAXIMAL_TAPS[bits])
        assert_backends_identical(net, random_stimulus(net, 15))


class TestRecordValidation:
    def build_simple(self):
        net = Netlist("simple")
        a = net.add_input("a")
        (y,) = net.add_cell("INV", [a], outputs=["y"])
        net.add_output(y)
        return net

    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    def test_unknown_record_net_rejected(self, backend):
        # A typo in `record` must fail loudly instead of silently returning
        # an all-zero waveform.
        net = self.build_simple()
        with pytest.raises(ValueError, match="ghost"):
            simulate(net, {"a": [0, 1]}, record=["y", "ghost"], backend=backend)

    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    def test_constant_nets_recordable(self, backend):
        net = self.build_simple()
        result = simulate(net, {"a": [0, 1, 0]}, record=["1", "0"], backend=backend)
        np.testing.assert_array_equal(result.waveform("1"), [1, 1, 1])
        np.testing.assert_array_equal(result.waveform("0"), [0, 0, 0])

    def test_unknown_backend_rejected(self):
        net = self.build_simple()
        with pytest.raises(ValueError, match="backend"):
            simulate(net, {"a": [0, 1]}, backend="simd")

    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    def test_nonbinary_stimulus_normalized(self, backend):
        # Any nonzero stimulus value counts as logic 1, identically on both
        # backends (raw ints must never reach the scalar cell logic).
        net = self.build_simple()
        result = simulate(net, {"a": [0, 2, 0, 3]}, backend=backend)
        np.testing.assert_array_equal(result.waveform("y"), [1, 0, 1, 0])
        assert result.toggles["y"] == 3

    def test_toggles_cover_all_nets_including_quiet_ones(self):
        # Nets that never toggle still get a zero entry (the power roll-up
        # iterates over instance outputs and expects complete coverage).
        net = Netlist("quiet")
        a = net.add_input("a")
        (y,) = net.add_cell("BUF", [a], outputs=["y"])
        net.add_output(y)
        for backend in ("packed", "unpacked"):
            result = simulate(net, {"a": [1, 1, 1, 1]}, backend=backend)
            assert result.toggles == {"a": 0, "y": 0}
