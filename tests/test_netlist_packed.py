"""Differential suite: packed netlist simulation vs. the per-cycle cell loop.

The packed backend's claim is *bit-identical* ``SimulationResult`` contents
-- toggles, waveforms and activity -- so every assertion here is exact
equality.  Every circuit builder in :mod:`repro.netlist.circuits` is
exercised, not just the Table 3 engine: the stochastic datapath, the binary
baselines, and the register-feedback netlists (LFSR, SNG, MAC accumulator
loop) that the packed backend now resolves word-parallel via narrow feedback
cores instead of falling back to the cycle loop.  The no-fallback claim is
asserted directly by instrumenting the cycle-loop entry point.
"""

import contextlib

import numpy as np
import pytest

from repro.netlist import (
    CELL_LIBRARY,
    Netlist,
    build_adder_tree,
    build_and_multiplier,
    build_array_multiplier,
    build_binary_mac,
    build_comparator,
    build_counter,
    build_lfsr,
    build_mux_adder,
    build_ripple_adder,
    build_sc_dot_product,
    build_sng,
    build_tff_adder,
    simulate,
)
from repro.netlist import simulator as simulator_module
from repro.rng import MAXIMAL_TAPS

#: Cycle counts exercising one partial word, exact words and multi-word
#: runs with a partial tail.
CYCLE_COUNTS = [1, 7, 64, 100, 129]

#: Every public circuit builder, with small-but-representative parameters.
ALL_BUILDERS = {
    "and_multiplier": lambda: build_and_multiplier(),
    "mux_adder": lambda: build_mux_adder(),
    "tff_adder": lambda: build_tff_adder(),
    "adder_tree_tff": lambda: build_adder_tree(5, adder="tff"),
    "adder_tree_mux": lambda: build_adder_tree(4, adder="mux"),
    "counter": lambda: build_counter(4),
    "comparator": lambda: build_comparator(3),
    "lfsr": lambda: build_lfsr(5, MAXIMAL_TAPS[5]),
    "sng": lambda: build_sng(4, MAXIMAL_TAPS[4]),
    "sc_dot_product_tff": lambda: build_sc_dot_product(4, 5, adder="tff"),
    "sc_dot_product_mux": lambda: build_sc_dot_product(4, 5, adder="mux"),
    "ripple_adder": lambda: build_ripple_adder(4),
    "array_multiplier": lambda: build_array_multiplier(3),
    "binary_mac": lambda: build_binary_mac(3, 8),
}


def random_stimulus(netlist, cycles, seed=0):
    rng = np.random.default_rng(seed)
    return {
        net: rng.integers(0, 2, cycles).astype(np.uint8)
        for net in netlist.primary_inputs
    }


@contextlib.contextmanager
def forbid_cycle_loop():
    """Fail the test if the packed backend falls back to the cycle loop."""

    def tripwire(*args, **kwargs):
        raise AssertionError("packed backend took the cycle-loop fallback")

    original = simulator_module._simulate_cycle_loop
    simulator_module._simulate_cycle_loop = tripwire
    try:
        yield
    finally:
        simulator_module._simulate_cycle_loop = original


def assert_backends_identical(netlist, stimulus, cycles=None, record=None):
    unpacked = simulate(netlist, stimulus, cycles=cycles, record=record,
                        backend="unpacked")
    with forbid_cycle_loop():
        packed = simulate(netlist, stimulus, cycles=cycles, record=record,
                          backend="packed")
    assert packed.cycles == unpacked.cycles
    assert packed.toggles == unpacked.toggles
    assert set(packed.waveforms) == set(unpacked.waveforms)
    for net in unpacked.waveforms:
        np.testing.assert_array_equal(
            packed.waveforms[net], unpacked.waveforms[net], err_msg=net
        )
        assert packed.waveforms[net].dtype == np.uint8
    assert packed.total_toggles() == unpacked.total_toggles()
    assert packed.average_activity() == unpacked.average_activity()
    return packed


class TestCellWordLogic:
    """Every combinational cell's word_logic against its scalar logic."""

    @pytest.mark.parametrize(
        "name", [n for n, c in CELL_LIBRARY.items() if not c.sequential]
    )
    @pytest.mark.parametrize("cycles", [1, 63, 130])
    def test_cell(self, name, cycles):
        ctype = CELL_LIBRARY[name]
        net = Netlist(f"one_{name.lower()}")
        inputs = [net.add_input(f"i{k}") for k in range(len(ctype.inputs))]
        outputs = net.add_cell(name, inputs)
        for out in outputs:
            net.add_output(out)
        assert_backends_identical(net, random_stimulus(net, cycles, seed=cycles))

    @pytest.mark.parametrize("name", ["DFF", "TFF"])
    @pytest.mark.parametrize("initial_state", [0, 1])
    def test_sequential_cell(self, name, initial_state):
        net = Netlist(f"one_{name.lower()}")
        d = net.add_input("d")
        (q,) = net.add_cell(name, [d], outputs=["q"], initial_state=initial_state)
        net.add_output(q)
        assert_backends_identical(net, random_stimulus(net, 100))


class TestTable3Circuits:
    @pytest.mark.parametrize("cycles", CYCLE_COUNTS)
    def test_tff_adder(self, cycles):
        net = build_tff_adder()
        assert_backends_identical(net, random_stimulus(net, cycles, seed=cycles))

    @pytest.mark.parametrize("adder", ["tff", "mux"])
    @pytest.mark.parametrize("leaves", [3, 4, 5, 8])
    def test_adder_trees(self, adder, leaves):
        net = build_adder_tree(leaves, adder=adder)
        assert_backends_identical(net, random_stimulus(net, 100, seed=leaves))

    def test_counter(self):
        net = build_counter(5)
        assert_backends_identical(
            net,
            random_stimulus(net, 130),
            record=[f"count{i}" for i in range(5)],
        )

    @pytest.mark.parametrize("adder", ["tff", "mux"])
    def test_sc_dot_product_engine(self, adder):
        # The Table 3 activity circuit: multipliers, two trees, two counters
        # and the sign comparator, over a non-word-aligned cycle count.
        net = build_sc_dot_product(9, 6, adder=adder)
        assert_backends_identical(net, random_stimulus(net, 100, seed=3))

    def test_binary_baseline(self):
        for net, cycles in (
            (build_ripple_adder(4), 20),
            (build_array_multiplier(4), 20),
            (build_binary_mac(4, 10), 40),
        ):
            assert_backends_identical(net, random_stimulus(net, cycles))


class TestEveryBuilder:
    """Differential equivalence over the full builder catalogue.

    Waveforms are recorded for *every* driven net (not just the primary
    outputs), so the comparison covers internal nodes, and the packed run is
    instrumented to prove it never takes the cycle-loop fallback -- the
    feedback-core resolution must handle the LFSR/SNG/MAC register loops.
    """

    @pytest.mark.parametrize("name", sorted(ALL_BUILDERS))
    @pytest.mark.parametrize("cycles", [7, 100])
    def test_builder_bit_identical(self, name, cycles):
        netlist = ALL_BUILDERS[name]()
        stimulus = random_stimulus(netlist, cycles, seed=hash(name) % 1000)
        assert_backends_identical(
            netlist, stimulus, cycles=cycles, record=netlist.nets
        )


class TestRegisterFeedbackResolution:
    """Cyclic register graphs (LFSR-style feedback) are resolved inside the
    packed run by narrow per-cycle core iteration -- never by falling back
    to the full cycle loop -- with bit-identical results."""

    def test_lfsr(self):
        bits = 4
        net = build_lfsr(bits, MAXIMAL_TAPS[bits])
        assert_backends_identical(
            net, {}, cycles=20, record=[f"state{i}" for i in range(bits)]
        )

    def test_sng(self):
        bits = 4
        net = build_sng(bits, MAXIMAL_TAPS[bits])
        assert_backends_identical(net, random_stimulus(net, 15))

    def test_register_self_loop(self):
        # A TFF toggling on its own inverted output: the smallest possible
        # feedback core (one instance with a self-edge through an inverter).
        net = Netlist("self_loop")
        (q,) = net.add_cell("TFF", ["nq"], outputs=["q"], initial_state=0)
        net.add_cell("INV", ["q"], outputs=["nq"])
        net.add_output(q)
        assert_backends_identical(net, {}, cycles=37, record=["q", "nq"])

    def test_two_independent_cores(self):
        # Two disjoint feedback cores plus shared downstream logic: each SCC
        # must be resolved separately and the XOR of their outputs evaluated
        # word-parallel.
        net = Netlist("two_cores")
        for tag in ("a", "b"):
            (q,) = net.add_cell(
                "DFF", [f"{tag}_d"], outputs=[f"{tag}_q"],
                initial_state=1 if tag == "a" else 0,
            )
            net.add_cell("INV", [q], outputs=[f"{tag}_d"])
        (mix,) = net.add_cell("XOR2", ["a_q", "b_q"], outputs=["mix"])
        net.add_output(mix)
        assert_backends_identical(net, {}, cycles=50, record=["a_q", "b_q", "mix"])

    def test_core_with_external_time_varying_input(self):
        # The MAC-style case: a register loop fed by a changing primary
        # input has no periodic shortcut and must be iterated per cycle.
        net = Netlist("accumulating")
        x = net.add_input("x")
        (q,) = net.add_cell("DFF", ["d"], outputs=["q"])
        net.add_cell("XOR2", [x, q], outputs=["d"])
        net.add_output(q)
        assert_backends_identical(net, random_stimulus(net, 129), record=["q", "d"])


class TestPeriodWrapRegression:
    """Runs longer than the register-core period must wrap the precomputed
    state sequence identically on both backends -- including runs that end
    exactly on a period boundary or one cycle past it."""

    @pytest.mark.parametrize("bits", [3, 4])
    def test_lfsr_beyond_period(self, bits):
        period = (1 << bits) - 1  # maximal LFSR visits every non-zero state
        net = build_lfsr(bits, MAXIMAL_TAPS[bits])
        record = [f"state{i}" for i in range(bits)]
        for cycles in (period - 1, period, period + 1, 4 * period + 3):
            packed = assert_backends_identical(net, {}, cycles=cycles, record=record)
            assert packed.cycles == cycles

    def test_lfsr_waveform_wraps_exactly(self):
        bits = 4
        period = (1 << bits) - 1
        net = build_lfsr(bits, MAXIMAL_TAPS[bits])
        record = [f"state{i}" for i in range(bits)]
        long = simulate(net, {}, cycles=3 * period + 5, record=record,
                        backend="packed")
        short = simulate(net, {}, cycles=period, record=record, backend="packed")
        for net_name in record:
            reference = short.waveform(net_name)
            wave = long.waveform(net_name)
            for start in range(0, len(wave), period):
                chunk = wave[start:start + period]
                np.testing.assert_array_equal(chunk, reference[: len(chunk)])

    def test_sng_beyond_period(self):
        bits = 4
        period = (1 << bits) - 1
        net = build_sng(bits, MAXIMAL_TAPS[bits])
        cycles = 5 * period + 2
        assert_backends_identical(net, random_stimulus(net, cycles, seed=9))

    def test_core_with_transient_before_period(self):
        # A register core whose state sequence has a non-trivial transient:
        # q starts at 0, latches OR(q, 1) = 1 and stays -- transient 1,
        # period 1.  The wrap must start after the transient, not at cycle 0.
        net = Netlist("transient")
        (q,) = net.add_cell("DFF", ["d"], outputs=["q"], initial_state=0)
        net.add_cell("OR2", [q, "1"], outputs=["d"])
        net.add_output(q)
        packed = assert_backends_identical(net, {}, cycles=70, record=["q"])
        np.testing.assert_array_equal(
            packed.waveform("q"), [0] + [1] * 69
        )


class TestRecordValidation:
    def build_simple(self):
        net = Netlist("simple")
        a = net.add_input("a")
        (y,) = net.add_cell("INV", [a], outputs=["y"])
        net.add_output(y)
        return net

    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    def test_unknown_record_net_rejected(self, backend):
        # A typo in `record` must fail loudly instead of silently returning
        # an all-zero waveform.
        net = self.build_simple()
        with pytest.raises(ValueError, match="ghost"):
            simulate(net, {"a": [0, 1]}, record=["y", "ghost"], backend=backend)

    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    def test_constant_nets_recordable(self, backend):
        net = self.build_simple()
        result = simulate(net, {"a": [0, 1, 0]}, record=["1", "0"], backend=backend)
        np.testing.assert_array_equal(result.waveform("1"), [1, 1, 1])
        np.testing.assert_array_equal(result.waveform("0"), [0, 0, 0])

    def test_unknown_backend_rejected(self):
        net = self.build_simple()
        with pytest.raises(ValueError, match="backend"):
            simulate(net, {"a": [0, 1]}, backend="simd")

    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    def test_nonbinary_stimulus_normalized(self, backend):
        # Any nonzero stimulus value counts as logic 1, identically on both
        # backends (raw ints must never reach the scalar cell logic).
        net = self.build_simple()
        result = simulate(net, {"a": [0, 2, 0, 3]}, backend=backend)
        np.testing.assert_array_equal(result.waveform("y"), [1, 0, 1, 0])
        assert result.toggles["y"] == 3

    def test_toggles_cover_all_nets_including_quiet_ones(self):
        # Nets that never toggle still get a zero entry (the power roll-up
        # iterates over instance outputs and expects complete coverage).
        net = Netlist("quiet")
        a = net.add_input("a")
        (y,) = net.add_cell("BUF", [a], outputs=["y"])
        net.add_output(y)
        for backend in ("packed", "unpacked"):
            result = simulate(net, {"a": [1, 1, 1, 1]}, backend=backend)
            assert result.toggles == {"a": 0, "y": 0}
