"""Smoke tests for the runnable examples (the fast ones).

The two long-running examples (hybrid_digit_classification.py and
reproduce_paper_tables.py) are exercised indirectly: the library calls they
make are covered by tests/test_eval_tables.py and tests/test_hybrid.py, and
the benchmark suite runs the same experiments end to end.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExampleScripts:
    def test_examples_directory_contents(self):
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "sc_primitives_tour.py",
            "hybrid_digit_classification.py",
            "energy_tradeoff_sweep.py",
            "reproduce_paper_tables.py",
        } <= scripts

    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "exactly 13/20" in output
        assert "stochastic dot product" in output
        assert "0.3750" in output  # the AND-gate multiplication result

    def test_energy_tradeoff_sweep(self):
        output = run_example("energy_tradeoff_sweep.py")
        assert "Raw gate-count model" in output
        assert "Calibrated to the paper's 8-bit synthesis anchor" in output
        assert "energy efficiency at 4-bit" in output
        assert "measured 8 bits" in output  # break-even precision

    def test_sc_primitives_tour(self):
        output = run_example("sc_primitives_tour.py", timeout=600)
        assert "Table 1" in output and "Table 2" in output
        assert "TFF adder netlist" in output
        assert "auto-correlated" in output

    @pytest.mark.parametrize(
        "name",
        ["hybrid_digit_classification.py", "reproduce_paper_tables.py"],
    )
    def test_long_examples_have_docstrings_and_main(self, name):
        source = (EXAMPLES_DIR / name).read_text()
        assert '"""' in source
        assert "def main()" in source
        assert '__name__ == "__main__"' in source
