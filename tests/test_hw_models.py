"""Tests for the hardware cost models (Table 3 bottom half)."""

import pytest

from repro.hw import (
    BinaryEngineModel,
    HardwareComparison,
    PAPER_TABLE3_REFERENCE,
    StochasticEngineModel,
    SystemGeometry,
    TechnologyParameters,
)


class TestTechnologyParameters:
    def test_defaults_valid(self):
        tech = TechnologyParameters()
        assert tech.sc_clock_mhz > 0
        assert 0 < tech.utilization <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TechnologyParameters(sc_clock_mhz=0)
        with pytest.raises(ValueError):
            TechnologyParameters(utilization=1.5)
        with pytest.raises(ValueError):
            TechnologyParameters(wiring_overhead=0.5)
        with pytest.raises(ValueError):
            TechnologyParameters(sc_activity=2.0)

    def test_geometry_macs(self):
        geometry = SystemGeometry()
        assert geometry.macs_per_frame == 784 * 25 * 32


class TestStochasticEngineModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            StochasticEngineModel(precision=1)

    def test_cycles_scale_exponentially(self):
        assert StochasticEngineModel(4).cycles_per_frame() == 32 * 16
        assert StochasticEngineModel(8).cycles_per_frame() == 32 * 256

    def test_power_roughly_constant_across_precision(self):
        p8 = StochasticEngineModel(8).power_mw()
        p2 = StochasticEngineModel(2).power_mw()
        assert 0.5 < p2 / p8 < 1.1  # slightly lower at low precision (smaller counters)

    def test_energy_decays_exponentially(self):
        e8 = StochasticEngineModel(8).energy_per_frame_nj()
        e4 = StochasticEngineModel(4).energy_per_frame_nj()
        assert e8 / e4 > 8.0  # ~16x fewer cycles, nearly equal power

    def test_area_nearly_constant(self):
        a8 = StochasticEngineModel(8).area_mm2()
        a2 = StochasticEngineModel(2).area_mm2()
        assert 0.7 < a2 / a8 <= 1.0

    def test_report_fields_consistent(self):
        report = StochasticEngineModel(6).report()
        assert report.energy_per_frame_nj == pytest.approx(
            report.power_mw * report.frame_time_us, rel=1e-6
        )
        assert report.throughput_fps == pytest.approx(1e6 / report.frame_time_us)


class TestBinaryEngineModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            BinaryEngineModel(precision=1)
        with pytest.raises(ValueError):
            BinaryEngineModel(4).matched_frequency_mhz(0)

    def test_cycles_independent_of_precision(self):
        assert BinaryEngineModel(4).cycles_per_frame() == BinaryEngineModel(8).cycles_per_frame()

    def test_area_shrinks_with_precision(self):
        a8 = BinaryEngineModel(8).area_mm2()
        a4 = BinaryEngineModel(4).area_mm2()
        a2 = BinaryEngineModel(2).area_mm2()
        assert a8 > a4 > a2

    def test_power_scales_with_frequency(self):
        model = BinaryEngineModel(8)
        assert model.power_mw(400.0) > model.power_mw(100.0)

    def test_energy_nearly_frequency_independent(self):
        model = BinaryEngineModel(8)
        slow = model.energy_per_frame_nj(100.0)
        fast = model.energy_per_frame_nj(1000.0)
        # dynamic energy per frame is fixed; only leakage integration differs
        assert abs(slow - fast) / slow < 0.2

    def test_matched_frequency(self):
        model = BinaryEngineModel(8)
        fps = 1000.0
        freq = model.matched_frequency_mhz(fps)
        assert freq == pytest.approx(model.cycles_per_frame() * fps / 1e6)

    def test_report_with_target_fps(self):
        report = BinaryEngineModel(6).report(target_fps=5000.0)
        assert report.throughput_fps == pytest.approx(5000.0, rel=1e-6)


class TestHardwareComparison:
    @pytest.fixture(scope="class")
    def calibrated(self):
        return HardwareComparison(calibrate=True)

    @pytest.fixture(scope="class")
    def raw(self):
        return HardwareComparison(calibrate=False)

    def test_anchor_matches_paper(self, calibrated):
        row = calibrated.row(8)
        reference = PAPER_TABLE3_REFERENCE
        assert row.binary_power_mw == pytest.approx(reference["binary_power_mw"][8], rel=1e-6)
        assert row.sc_power_mw == pytest.approx(reference["sc_power_mw"][8], rel=1e-6)
        assert row.binary_area_mm2 == pytest.approx(reference["binary_area_mm2"][8], rel=1e-6)
        assert row.sc_area_mm2 == pytest.approx(reference["sc_area_mm2"][8], rel=1e-6)
        # Energy anchors follow from power anchors and the matched frame time.
        assert row.binary_energy_nj == pytest.approx(reference["binary_energy_nj"][8], rel=0.05)
        assert row.sc_energy_nj == pytest.approx(reference["sc_energy_nj"][8], rel=0.05)

    def test_paper_trends_hold(self, calibrated):
        rows = calibrated.rows()
        by_precision = {r.precision: r for r in rows}
        # Binary throughput-normalized power grows steeply as precision drops.
        assert by_precision[2].binary_power_mw > 8 * by_precision[8].binary_power_mw
        # SC power stays roughly flat.
        assert 0.5 < by_precision[2].sc_power_mw / by_precision[8].sc_power_mw < 1.2
        # SC energy decays by orders of magnitude; binary decays slower.
        assert by_precision[8].sc_energy_nj / by_precision[2].sc_energy_nj > 30
        assert by_precision[8].binary_energy_nj / by_precision[2].binary_energy_nj < 10
        # Break-even at 8 bits and roughly an order of magnitude at 4 bits.
        assert calibrated.break_even_precision() == 8
        assert by_precision[4].energy_efficiency_ratio > 5.0
        # SC area roughly flat, binary area shrinking; ~2x ratio at 4 bits.
        assert by_precision[4].area_ratio > 1.5

    def test_monotone_energy_ratio(self, calibrated):
        rows = calibrated.rows()
        ratios = [r.energy_efficiency_ratio for r in rows]  # 8 -> 2 bits
        assert all(b >= a for a, b in zip(ratios, ratios[1:]))

    def test_raw_rows_positive(self, raw):
        for row in raw.rows((8, 4, 2)):
            assert row.binary_power_mw > 0
            assert row.sc_power_mw > 0
            assert row.binary_energy_nj > 0
            assert row.sc_energy_nj > 0
        assert raw.calibration_factors == {
            "binary_power": 1.0,
            "sc_power": 1.0,
            "binary_area": 1.0,
            "sc_area": 1.0,
        }

    def test_calibration_factors_exposed(self, calibrated):
        factors = calibrated.calibration_factors
        assert set(factors) == {"binary_power", "sc_power", "binary_area", "sc_area"}
        assert all(f > 0 for f in factors.values())
