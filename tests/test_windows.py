"""Tests for the shared sliding-window (im2col) utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils import conv_output_size, extract_patches, pad_images, patches_to_map


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(28, 5, 1, 0, 24), (28, 5, 1, 2, 28), (28, 2, 2, 0, 14), (24, 3, 1, 1, 24)],
    )
    def test_known_geometries(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestPadImages:
    def test_zero_padding_is_identity(self):
        images = np.random.default_rng(0).random((2, 4, 4))
        assert pad_images(images, 0) is images

    def test_padding_shape_and_values(self):
        images = np.ones((1, 2, 2))
        padded = pad_images(images, 1)
        assert padded.shape == (1, 4, 4)
        assert padded[0, 0, 0] == 0.0
        assert padded[0, 1, 1] == 1.0

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            pad_images(np.ones((1, 2, 2)), -1)


class TestExtractPatches:
    def test_simple_3x3_kernel2(self):
        image = np.arange(9, dtype=float).reshape(1, 3, 3)
        patches = extract_patches(image, (2, 2))
        assert patches.shape == (1, 4, 4)
        np.testing.assert_allclose(patches[0, 0], [0, 1, 3, 4])
        np.testing.assert_allclose(patches[0, 3], [4, 5, 7, 8])

    def test_same_padding_patch_count(self):
        images = np.random.default_rng(0).random((3, 28, 28))
        patches = extract_patches(images, (5, 5), padding=2)
        # Fig. 3: 784 windows per 28x28 image with "same" geometry.
        assert patches.shape == (3, 784, 25)

    def test_stride(self):
        images = np.random.default_rng(0).random((1, 6, 6))
        patches = extract_patches(images, (2, 2), stride=2)
        assert patches.shape == (1, 9, 4)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            extract_patches(np.zeros((4, 4)), (2, 2))

    def test_matches_naive_implementation(self):
        rng = np.random.default_rng(5)
        images = rng.random((2, 7, 7))
        kh, kw, pad = 3, 3, 1
        patches = extract_patches(images, (kh, kw), padding=pad)
        padded = np.pad(images, ((0, 0), (pad, pad), (pad, pad)))
        out_size = 7
        naive = np.zeros((2, out_size * out_size, kh * kw))
        for b in range(2):
            idx = 0
            for i in range(out_size):
                for j in range(out_size):
                    naive[b, idx] = padded[b, i : i + kh, j : j + kw].ravel()
                    idx += 1
        np.testing.assert_allclose(patches, naive)

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_patch_count_matches_formula(self, size, kernel, stride):
        if kernel > size:
            return
        images = np.zeros((1, size, size))
        patches = extract_patches(images, (kernel, kernel), stride=stride)
        out = conv_output_size(size, kernel, stride, 0)
        assert patches.shape == (1, out * out, kernel * kernel)


class TestPatchesToMap:
    def test_roundtrip_layout(self):
        values = np.arange(2 * 4 * 3, dtype=float).reshape(2, 4, 3)
        maps = patches_to_map(values, (2, 2))
        assert maps.shape == (2, 3, 2, 2)
        # filter f at position (0, 1) is patch index 1
        assert maps[0, 0, 0, 1] == values[0, 1, 0]

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            patches_to_map(np.zeros((1, 5, 2)), (2, 2))
