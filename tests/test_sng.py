"""Tests for stochastic number generators and the Table 1 scheme factory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitstream import Bitstream
from repro.rng import (
    ComparatorSNG,
    ConstantSource,
    RampCompareSNG,
    TABLE1_SCHEMES,
    VanDerCorputSource,
    sng_pair,
)


class TestComparatorSNG:
    def test_generates_bitstream(self):
        sng = ComparatorSNG(VanDerCorputSource(4))
        stream = sng.generate(0.5, 16)
        assert isinstance(stream, Bitstream)
        assert stream.length == 16

    def test_low_discrepancy_exactness(self):
        # With a van der Corput source, every representable value is encoded
        # exactly over one full period (the O(1/N) property).
        sng = ComparatorSNG(VanDerCorputSource(6))
        for k in range(0, 65, 7):
            stream = sng.generate(k / 64, 64)
            assert stream.ones == k

    def test_constant_source_threshold_behaviour(self):
        sng = ComparatorSNG(ConstantSource(0.4))
        assert sng.generate(0.5, 8).ones == 8
        assert sng.generate(0.3, 8).ones == 0

    def test_bipolar_encoding(self):
        sng = ComparatorSNG(VanDerCorputSource(6), encoding="bipolar")
        stream = sng.generate(0.0, 64)
        assert stream.value == pytest.approx(0.0)
        assert stream.encoding == "bipolar"

    def test_generate_bits_batch_shape(self):
        sng = ComparatorSNG(VanDerCorputSource(4))
        values = np.array([[0.0, 0.5], [0.25, 1.0]])
        bits = sng.generate_bits(values, 16)
        assert bits.shape == (2, 2, 16)
        assert bits[0, 0].sum() == 0
        assert bits[1, 1].sum() == 16

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_encoding_error_bounded_by_lsb(self, value):
        sng = ComparatorSNG(VanDerCorputSource(8))
        stream = sng.generate(value, 256)
        assert abs(stream.value - value) <= 1.0 / 256 + 1e-12


class TestRampCompareSNG:
    def test_equivalent_to_ramp_compare_stream(self):
        sng = RampCompareSNG(bits=6)
        stream = sng.generate(0.3, 64)
        assert stream.ones == int(np.ceil(0.3 * 64)) or stream.ones == int(
            np.floor(0.3 * 64)
        )

    def test_autocorrelated_output(self):
        from repro.bitstream import autocorrelation

        stream = RampCompareSNG(bits=8).generate(0.5, 256)
        assert autocorrelation(stream, lag=1) > 0.9


class TestSNGPairFactory:
    @pytest.mark.parametrize("scheme", sorted(TABLE1_SCHEMES))
    def test_all_schemes_constructible(self, scheme):
        sng_x, sng_y = sng_pair(scheme, precision=4)
        x = sng_x.generate(0.5, 16)
        y = sng_y.generate(0.25, 16)
        assert x.length == y.length == 16

    def test_random_scheme(self):
        sng_x, sng_y = sng_pair("random", precision=4, seed=3)
        assert sng_x.generate(0.5, 16).length == 16

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            sng_pair("quantum", precision=4)

    def test_scheme_quality_ordering_on_multiplication(self):
        # A coarse preview of Table 1: over a grid of input pairs, the
        # shared-LFSR scheme must give a worse AND-multiplication MSE than the
        # ramp + low-discrepancy scheme proposed by the paper.
        from repro.sc import and_multiply, stochastic_to_binary

        def scheme_mse(scheme: str) -> float:
            sng_x, sng_y = sng_pair(scheme, precision=6)
            grid = np.linspace(0.0, 1.0, 9)
            errors = []
            for px in grid:
                x_bits = sng_x.generate(px, 64)
                for py in grid:
                    y_bits = sng_y.generate(py, 64)
                    z = stochastic_to_binary(and_multiply(x_bits, y_bits))
                    errors.append((float(z) - px * py) ** 2)
            return float(np.mean(errors))

        assert scheme_mse("shared_lfsr") > scheme_mse("ramp_low_discrepancy")
