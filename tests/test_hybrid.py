"""Tests for the hybrid stochastic-binary pipeline: acquisition, emulation, network."""

import numpy as np
import pytest

from repro.datasets import SyntheticDigits
from repro.hybrid import CalibratedSCEmulator, HybridStochasticBinaryNetwork, SensorFrontEnd
from repro.nn import Adam, build_lenet5_small, quantize_and_freeze, retrain
from repro.sc import new_sc_engine, old_sc_engine


class TestSensorFrontEnd:
    def test_validation(self):
        with pytest.raises(ValueError):
            SensorFrontEnd(precision=1)
        with pytest.raises(ValueError):
            SensorFrontEnd(noise_sigma=-0.1)
        with pytest.raises(ValueError):
            SensorFrontEnd().acquire(np.array([[1.5]]))

    def test_stream_length(self):
        assert SensorFrontEnd(precision=6).stream_length == 64

    def test_noise_free_acquire_is_identity(self):
        images = np.random.default_rng(0).random((2, 4, 4))
        np.testing.assert_allclose(SensorFrontEnd().acquire(images), images)

    def test_noisy_acquire_stays_in_range_and_is_reproducible(self):
        images = np.random.default_rng(0).random((2, 4, 4))
        fe = SensorFrontEnd(noise_sigma=0.1, seed=3)
        noisy1 = fe.acquire(images)
        noisy2 = SensorFrontEnd(noise_sigma=0.1, seed=3).acquire(images)
        np.testing.assert_allclose(noisy1, noisy2)
        assert noisy1.min() >= 0.0 and noisy1.max() <= 1.0
        assert not np.allclose(noisy1, images)

    def test_convert_shape_and_counts(self):
        fe = SensorFrontEnd(precision=4)
        images = np.array([[[0.0, 0.5], [1.0, 0.25]]])
        streams = fe.convert(images)
        assert streams.shape == (1, 2, 2, 16)
        assert streams[0, 0, 0].sum() == 0
        assert streams[0, 1, 0].sum() == 16

    def test_conversion_energy_metadata(self):
        fe = SensorFrontEnd(conversion_energy_pj=100.0)
        assert fe.conversion_energy_nj(784) == pytest.approx(78.4)
        with pytest.raises(ValueError):
            fe.conversion_energy_nj(-1)


class TestCalibratedEmulator:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(0)
        inputs = rng.random((128, 25))
        kernels = rng.uniform(-1, 1, size=(4, 25))
        return inputs, kernels

    def test_requires_calibration(self, setup):
        inputs, kernels = setup
        emulator = CalibratedSCEmulator(new_sc_engine(precision=5))
        with pytest.raises(RuntimeError):
            emulator.forward_patches(inputs[np.newaxis], kernels)

    def test_calibration_statistics(self, setup):
        inputs, kernels = setup
        emulator = CalibratedSCEmulator(new_sc_engine(precision=5))
        model = emulator.calibrate(inputs, kernels)
        assert model.samples == 128 * 4
        assert model.residuals.shape == (128 * 4,)
        # The proposed engine's counter-difference error is small (a few LSBs):
        # positive- and negative-path rounding errors largely cancel.
        assert abs(model.bias) < 3.0
        assert model.sigma < 3.0

    def test_old_engine_has_larger_error(self, setup):
        inputs, kernels = setup
        new = CalibratedSCEmulator(new_sc_engine(precision=5)).calibrate(inputs, kernels)
        old = CalibratedSCEmulator(old_sc_engine(precision=5)).calibrate(inputs, kernels)
        assert old.sigma > new.sigma

    def test_calibration_validation(self, setup):
        inputs, kernels = setup
        emulator = CalibratedSCEmulator(new_sc_engine(precision=4))
        with pytest.raises(ValueError):
            emulator.calibrate(inputs[:, :10], kernels)
        with pytest.raises(ValueError):
            emulator.calibrate(inputs.ravel(), kernels)

    def test_emulated_signs_agree_with_bitexact(self, setup):
        inputs, kernels = setup
        engine = new_sc_engine(precision=6)
        emulator = CalibratedSCEmulator(engine, seed=1)
        emulator.calibrate(inputs[:64], kernels)

        # Bit-exact reference on a small batch of images.
        rng = np.random.default_rng(1)
        images = rng.random((2, 10, 10))
        from repro.sc import StochasticConv2D

        layer = StochasticConv2D(kernels.reshape(4, 5, 5), engine=engine, padding=2)
        exact_sign = layer.forward(images).sign
        emulated_sign = emulator.forward(images, kernels.reshape(4, 5, 5), padding=2)
        agreement = np.mean(exact_sign == emulated_sign)
        # On uniform-random inputs many dot products sit near zero where the
        # sign genuinely flickers; agreement must still be far above the 1/3
        # chance level, and near-perfect on confident outputs.
        assert agreement > 0.7
        reference = layer.forward(images).value
        confident = np.abs(reference) > 0.5
        assert np.mean(exact_sign[confident] == emulated_sign[confident]) > 0.9

    def test_forward_kernel_shape_validation(self, setup):
        inputs, kernels = setup
        emulator = CalibratedSCEmulator(new_sc_engine(precision=4))
        emulator.calibrate(inputs, kernels)
        with pytest.raises(ValueError):
            emulator.forward(np.zeros((1, 8, 8)), kernels)  # kernels not 3-D

    def test_bipolar_engine_calibrates(self, setup):
        # The Section IV-B ablation engine is emulable too: the calibrated
        # quantity is the single counter's offset from the N/2 decision point.
        from repro.sc import BipolarDotProductEngine

        inputs, kernels = setup
        engine = BipolarDotProductEngine(precision=6)
        emulator = CalibratedSCEmulator(engine, seed=1)
        model = emulator.calibrate(inputs[:64], kernels)
        assert model.samples == 64 * 4
        # Residuals are measured against the decision point the sign
        # activation uses, so the calibrated model must track it closely
        # enough for sign emulation (bipolar error is larger than split).
        assert abs(model.bias) < 8.0

        sign = emulator.forward_patches(inputs[np.newaxis, :32], kernels)
        assert sign.shape == (1, 32, 4)
        assert np.all(np.isin(sign, (-1.0, 1.0)))

        # Emulated signs agree with the bit-exact bipolar engine on
        # confidently-signed dot products.
        exact = np.stack(
            [engine.dot(inputs[:32], kernel).sign for kernel in kernels], axis=-1
        )
        values = np.stack(
            [engine.dot(inputs[:32], kernel).value for kernel in kernels], axis=-1
        )
        confident = np.abs(values) > 0.5
        assert np.mean(exact[confident] == sign[0][confident]) > 0.8


class TestMeasureActivity:
    """Trace-driven switching activity via batched netlist simulation."""

    def test_batched_result_matches_backends(self):
        engine = new_sc_engine(precision=4)
        emulator = CalibratedSCEmulator(engine, seed=2)
        rng = np.random.default_rng(2)
        windows = rng.random((3, 4))
        weights = rng.uniform(-1.0, 1.0, 4)
        packed = emulator.measure_activity(windows, weights, backend="packed")
        unpacked = emulator.measure_activity(windows, weights, backend="unpacked")
        assert packed.batch == 3
        assert packed.cycles == engine.length
        assert packed.total_toggles() == unpacked.total_toggles()
        for net in packed.toggles:
            np.testing.assert_array_equal(
                packed.toggles[net], unpacked.toggles[net], err_msg=net
            )
        assert 0.0 < packed.average_activity() < 1.0

    def test_mux_adder_engine_covers_select_inputs(self):
        # The old-SC engine uses MUX trees whose select nets are extra
        # primary inputs; measure_activity must drive them too.
        emulator = CalibratedSCEmulator(old_sc_engine(precision=4), seed=3)
        rng = np.random.default_rng(3)
        result = emulator.measure_activity(
            rng.random((2, 4)), rng.uniform(-1, 1, 4)
        )
        assert result.batch == 2

    def test_rejects_bipolar_and_bad_shapes(self):
        from repro.sc import BipolarDotProductEngine

        bipolar = CalibratedSCEmulator(BipolarDotProductEngine(precision=4))
        with pytest.raises(ValueError, match="bipolar"):
            bipolar.measure_activity(np.zeros((2, 4)), np.zeros(4))
        emulator = CalibratedSCEmulator(new_sc_engine(precision=4))
        with pytest.raises(ValueError, match="traces"):
            emulator.measure_activity(np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError, match="taps"):
            emulator.measure_activity(np.zeros((2, 4)), np.zeros(5))


@pytest.fixture(scope="module")
def trained_hybrid_setup():
    """A small trained + quantized/retrained model on a small synthetic dataset."""
    data = SyntheticDigits.generate(train_size=800, test_size=160, seed=1)
    x_train = data.x_train[:, np.newaxis, :, :]
    model = build_lenet5_small(
        filters1=8, filters2=8, hidden_units=32, seed=0, dropout_rate=0.0
    )
    model.fit(x_train, data.y_train, epochs=5, batch_size=64, optimizer=Adam(2e-3))
    frozen = quantize_and_freeze(model, precision=6)
    retrain(frozen, x_train, data.y_train, epochs=3, optimizer=Adam(2e-3))
    return data, frozen


class TestHybridNetwork:
    def test_requires_sign_first_layer(self):
        model = build_lenet5_small(filters1=4, hidden_units=16)
        with pytest.raises(ValueError):
            HybridStochasticBinaryNetwork(model)

    def test_precision_mismatch_rejected(self, trained_hybrid_setup):
        _, frozen = trained_hybrid_setup
        with pytest.raises(ValueError):
            HybridStochasticBinaryNetwork(
                frozen,
                engine=new_sc_engine(precision=6),
                front_end=SensorFrontEnd(precision=4),
            )

    def test_kernels_extracted_from_first_layer(self, trained_hybrid_setup):
        _, frozen = trained_hybrid_setup
        hybrid = HybridStochasticBinaryNetwork(frozen, engine=new_sc_engine(6))
        assert hybrid.kernels.shape == (8, 5, 5)
        assert hybrid.precision == 6
        assert np.abs(hybrid.kernels).max() <= 1.0
        assert "HybridStochasticBinaryNetwork" in repr(hybrid)

    def test_binary_mode_matches_frozen_model(self, trained_hybrid_setup):
        data, frozen = trained_hybrid_setup
        hybrid = HybridStochasticBinaryNetwork(frozen, engine=new_sc_engine(6))
        x_test = data.x_test[:32]
        binary_rate = hybrid.misclassification_rate(x_test, data.y_test[:32], mode="binary")
        reference = frozen.misclassification_rate(
            x_test[:, np.newaxis, :, :], data.y_test[:32]
        )
        assert binary_rate == pytest.approx(reference)

    def test_emulate_mode_close_to_binary(self, trained_hybrid_setup):
        data, frozen = trained_hybrid_setup
        hybrid = HybridStochasticBinaryNetwork(
            frozen, engine=new_sc_engine(6), soft_threshold=0.02
        )
        x_test, y_test = data.x_test, data.y_test
        binary_rate = hybrid.misclassification_rate(x_test, y_test, mode="binary")
        sc_rate = hybrid.misclassification_rate(x_test, y_test, mode="emulate")
        # The proposed design should track the binary design closely.
        assert abs(sc_rate - binary_rate) < 0.15

    def test_bitexact_mode_on_tiny_subset(self, trained_hybrid_setup):
        data, frozen = trained_hybrid_setup
        hybrid = HybridStochasticBinaryNetwork(
            frozen, engine=new_sc_engine(5), front_end=SensorFrontEnd(precision=5)
        )
        rate = hybrid.misclassification_rate(
            data.x_test, data.y_test, mode="bitexact", limit=8
        )
        assert 0.0 <= rate <= 1.0

    def test_unknown_mode_rejected(self, trained_hybrid_setup):
        data, frozen = trained_hybrid_setup
        hybrid = HybridStochasticBinaryNetwork(frozen, engine=new_sc_engine(6))
        with pytest.raises(ValueError):
            hybrid.forward(data.x_test[:2], mode="quantum")

    def test_new_design_beats_old_design(self, trained_hybrid_setup):
        data, frozen = trained_hybrid_setup
        x_test, y_test = data.x_test, data.y_test
        new_hybrid = HybridStochasticBinaryNetwork(
            frozen, engine=new_sc_engine(4), soft_threshold=0.02, seed=2
        )
        old_hybrid = HybridStochasticBinaryNetwork(
            frozen, engine=old_sc_engine(4), soft_threshold=0.02, seed=2
        )
        new_rate = new_hybrid.misclassification_rate(x_test, y_test, mode="emulate")
        old_rate = old_hybrid.misclassification_rate(x_test, y_test, mode="emulate")
        assert new_rate <= old_rate + 0.02
