"""Invariant suite for batched multi-trace netlist simulation.

The defining property of :func:`repro.netlist.simulator.simulate_batch` is
that a batch of ``K`` stimulus sets is *bit-identical* to ``K`` independent
:func:`~repro.netlist.simulator.simulate` runs.  Hypothesis drives that
equivalence over randomly generated circuits (including register feedback
loops), cycle counts that are deliberately not multiples of 64, record
subsets, and mixtures of per-trace and shared (1-D) stimulus.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    Netlist,
    cell,
    build_sc_dot_product,
    build_sng,
    estimate_power,
    simulate,
    simulate_batch,
)
from repro.rng import MAXIMAL_TAPS

#: Combinational cells the random-circuit strategy draws from.
COMB_CELLS = ["INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2",
              "MUX2", "HA", "FA", "CMP1"]
SEQ_CELLS = ["DFF", "TFF"]


@st.composite
def random_netlists(draw):
    """A random small netlist: comb DAG + registers, optionally with feedback.

    Register input nets are declared first and driven *after* the rest of
    the circuit exists, so a register's data input can (and often does)
    depend on its own output -- exactly the LFSR-style feedback cores the
    packed backend resolves per cycle.
    """
    n_inputs = draw(st.integers(min_value=1, max_value=3))
    n_regs = draw(st.integers(min_value=0, max_value=3))
    n_comb = draw(st.integers(min_value=1, max_value=10))

    netlist = Netlist("random")
    pool = [netlist.add_input(f"i{k}") for k in range(n_inputs)] + ["0", "1"]
    reg_inputs = []
    for r in range(n_regs):
        reg_cell = draw(st.sampled_from(SEQ_CELLS))
        d_net = f"regin{r}"
        (q,) = netlist.add_cell(
            reg_cell, [d_net], outputs=[f"q{r}"],
            initial_state=draw(st.integers(0, 1)),
        )
        reg_inputs.append(d_net)
        pool.append(q)
    for _ in range(n_comb):
        cell_name = draw(st.sampled_from(COMB_CELLS))
        ctype = cell(cell_name)
        inputs = [draw(st.sampled_from(pool)) for _ in ctype.inputs]
        outputs = netlist.add_cell(cell_name, inputs)
        pool.extend(outputs)
    # Close the feedback loops: every register input is a buffered copy of
    # some existing net (possibly downstream of the register itself).
    for d_net in reg_inputs:
        source = draw(st.sampled_from(pool))
        netlist.add_cell("BUF", [source], outputs=[d_net])
    for net in draw(st.lists(st.sampled_from(pool), min_size=1, max_size=3)):
        netlist.add_output(net)
    return netlist


def batched_stimulus(netlist, batch, cycles, seed, share_some=False):
    """Random stimulus; with ``share_some`` every other input is 1-D (shared)."""
    rng = np.random.default_rng(seed)
    stimulus = {}
    for i, net in enumerate(netlist.primary_inputs):
        if share_some and i % 2 == 1:
            stimulus[net] = rng.integers(0, 2, cycles).astype(np.uint8)
        else:
            stimulus[net] = rng.integers(0, 2, (batch, cycles)).astype(np.uint8)
    return stimulus


def per_trace_stimulus(stimulus, k):
    return {
        net: (wave if wave.ndim == 1 else wave[k])
        for net, wave in stimulus.items()
    }


def assert_batch_equals_independent_runs(
    netlist, stimulus, batch, cycles=None, record=None
):
    """The core invariant, checked for both backends of simulate_batch."""
    for backend in ("packed", "unpacked"):
        batched = simulate_batch(
            netlist, stimulus, cycles=cycles, record=record,
            backend=backend, batch=batch,
        )
        assert batched.batch == batch
        for k in range(batch):
            single = simulate(
                netlist, per_trace_stimulus(stimulus, k), cycles=cycles,
                record=record, backend="unpacked",
            )
            trace = batched.trace(k)
            assert trace.cycles == single.cycles
            assert trace.toggles == single.toggles, (backend, k)
            assert set(trace.waveforms) == set(single.waveforms)
            for net in single.waveforms:
                np.testing.assert_array_equal(
                    trace.waveforms[net], single.waveforms[net],
                    err_msg=f"{backend}/{k}/{net}",
                )
    return batched


class TestHypothesisInvariants:
    @given(
        netlist=random_netlists(),
        batch=st.integers(min_value=1, max_value=4),
        cycles=st.integers(min_value=1, max_value=150),
        seed=st.integers(min_value=0, max_value=2**16),
        share=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_identical_to_independent_runs(
        self, netlist, batch, cycles, seed, share
    ):
        stimulus = batched_stimulus(netlist, batch, cycles, seed, share_some=share)
        assert_batch_equals_independent_runs(
            netlist, stimulus, batch, cycles=cycles, record=netlist.nets
        )

    @given(
        batch=st.integers(min_value=1, max_value=3),
        cycles=st.sampled_from([1, 63, 65, 100, 127, 130]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_sng_feedback_core_batched(self, batch, cycles, seed):
        # An LFSR-driven SNG: the feedback core is shared by every trace
        # while the value inputs vary per trace.
        netlist = build_sng(4, MAXIMAL_TAPS[4])
        stimulus = batched_stimulus(netlist, batch, cycles, seed)
        assert_batch_equals_independent_runs(netlist, stimulus, batch)

    @given(
        subset_seed=st.integers(min_value=0, max_value=2**16),
        cycles=st.sampled_from([66, 100]),
    )
    @settings(max_examples=10, deadline=None)
    def test_record_subsets(self, subset_seed, cycles):
        netlist = build_sc_dot_product(3, 4, adder="tff")
        rng = np.random.default_rng(subset_seed)
        nets = netlist.nets
        record = list(
            rng.choice(nets, size=rng.integers(1, len(nets)), replace=False)
        )
        stimulus = batched_stimulus(netlist, 2, cycles, subset_seed)
        batched = assert_batch_equals_independent_runs(
            netlist, stimulus, 2, record=record
        )
        assert set(batched.waveforms) == set(record)
        # Toggle counts always cover every driven net, regardless of record.
        assert set(batched.toggles) == set(nets)


class TestBatchApi:
    def build_simple(self):
        netlist = Netlist("simple")
        a = netlist.add_input("a")
        (y,) = netlist.add_cell("INV", [a], outputs=["y"])
        netlist.add_output(y)
        return netlist

    def test_inconsistent_batch_sizes_rejected(self):
        netlist = Netlist("two_inputs")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_cell("AND2", ["a", "b"], outputs=["y"])
        netlist.add_output("y")
        with pytest.raises(ValueError, match="batch"):
            simulate_batch(
                netlist,
                {"a": np.zeros((2, 8)), "b": np.zeros((3, 8))},
            )

    def test_batch_size_required_when_not_inferrable(self):
        netlist = self.build_simple()
        with pytest.raises(ValueError, match="batch"):
            simulate_batch(netlist, {"a": np.zeros(8)})

    def test_zero_trace_stimulus_rejected(self):
        netlist = self.build_simple()
        for backend in ("packed", "unpacked"):
            with pytest.raises(ValueError, match="at least one trace"):
                simulate_batch(netlist, {"a": np.zeros((0, 8))}, backend=backend)

    def test_explicit_batch_with_shared_stimulus(self):
        netlist = self.build_simple()
        result = simulate_batch(netlist, {"a": [0, 1, 0, 1]}, batch=3)
        assert result.batch == 3
        assert result.waveform("y").shape == (3, 4)
        for k in range(3):
            np.testing.assert_array_equal(result.waveform("y")[k], [1, 0, 1, 0])
        np.testing.assert_array_equal(result.toggles["y"], [3, 3, 3])

    def test_explicit_batch_contradiction_rejected(self):
        netlist = self.build_simple()
        with pytest.raises(ValueError, match="batch"):
            simulate_batch(netlist, {"a": np.zeros((2, 8))}, batch=4)

    def test_3d_stimulus_rejected(self):
        netlist = self.build_simple()
        with pytest.raises(ValueError, match="shape"):
            simulate_batch(netlist, {"a": np.zeros((2, 2, 8))})

    def test_unknown_record_net_rejected(self):
        netlist = self.build_simple()
        with pytest.raises(ValueError, match="ghost"):
            simulate_batch(
                netlist, {"a": np.zeros((2, 8))}, record=["y", "ghost"]
            )

    def test_single_simulate_rejects_stacked_stimulus(self):
        netlist = self.build_simple()
        with pytest.raises(ValueError, match="simulate_batch"):
            simulate(netlist, {"a": np.zeros((2, 8))})

    def test_input_less_netlist_with_explicit_batch(self):
        netlist = Netlist("free_running")
        (q,) = netlist.add_cell("TFF", ["1"], outputs=["q"])
        netlist.add_output(q)
        result = simulate_batch(netlist, {}, cycles=5, batch=2)
        for k in range(2):
            np.testing.assert_array_equal(result.waveform("q")[k], [0, 1, 0, 1, 0])


class TestBatchAggregation:
    def test_aggregates_match_per_trace_results(self):
        netlist = build_sc_dot_product(3, 4, adder="tff")
        stimulus = batched_stimulus(netlist, 4, 100, seed=5)
        batched = simulate_batch(netlist, stimulus, backend="packed")
        singles = [
            simulate(netlist, per_trace_stimulus(stimulus, k), backend="unpacked")
            for k in range(4)
        ]
        assert batched.total_toggles() == sum(s.total_toggles() for s in singles)
        assert batched.average_activity() == pytest.approx(
            np.mean([s.average_activity() for s in singles])
        )
        np.testing.assert_allclose(
            batched.average_activity_per_trace(),
            [s.average_activity() for s in singles],
        )
        for net in list(batched.toggles)[:5]:
            assert batched.activity(net) == pytest.approx(
                np.mean([s.activity(net) for s in singles])
            )

    def test_estimate_power_accepts_batched_result(self):
        netlist = build_sc_dot_product(3, 4, adder="tff")
        stimulus = batched_stimulus(netlist, 3, 100, seed=11)
        batched = simulate_batch(netlist, stimulus, backend="packed")
        report = estimate_power(netlist, 500.0, simulation=batched)
        assert report.activity == pytest.approx(batched.average_activity())
        per_trace = [
            estimate_power(
                netlist, 500.0,
                simulation=simulate(
                    netlist, per_trace_stimulus(stimulus, k), backend="unpacked"
                ),
            ).dynamic_mw
            for k in range(3)
        ]
        assert report.dynamic_mw == pytest.approx(np.mean(per_trace))

def _feedback_counter_netlist():
    """A non-autonomous register feedback core: a gated toggle accumulator.

    The TFF's trigger is ``AND(enable, XOR(q, x))`` -- its next state depends
    on its own output *and* two per-trace primary inputs, so the batched
    packed simulator must iterate the core per cycle (no closed form, no
    shared-input broadcast, no periodic wrap).
    """
    netlist = Netlist("feedback-counter")
    enable = netlist.add_input("enable")
    x = netlist.add_input("x")
    (q,) = netlist.add_cell("TFF", ["t"], outputs=["q"], initial_state=1)
    (mix,) = netlist.add_cell("XOR2", [q, x], outputs=["mix"])
    netlist.add_cell("AND2", [enable, mix], outputs=["t"])
    netlist.add_output(q)
    return netlist


class TestTracePackedFeedbackCores:
    """The PR-4 fast path: per-trace feedback cores iterated with the trace
    axis packed into words, bit-identical to independent per-trace runs."""

    def test_trace_packed_core_path_is_used_and_exact(self, monkeypatch):
        import repro.netlist.simulator as simulator_module

        netlist = _feedback_counter_netlist()
        stimulus = batched_stimulus(netlist, 5, 130, seed=3)
        calls = {"count": 0}
        original = simulator_module._iterate_core_tracewords

        def spy(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(simulator_module, "_iterate_core_tracewords", spy)
        assert_batch_equals_independent_runs(
            netlist, stimulus, 5, record=netlist.nets
        )
        assert calls["count"] > 0, "trace-packed core resolution was not exercised"

    @given(
        batch=st.integers(min_value=1, max_value=70),
        cycles=st.sampled_from([1, 63, 64, 65, 100]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_hypothesis_batch_sizes_cross_word_boundaries(self, batch, cycles, seed):
        # Batches above 64 traces exercise multi-word trace packing.
        netlist = _feedback_counter_netlist()
        stimulus = batched_stimulus(netlist, batch, cycles, seed)
        batched = simulate_batch(netlist, stimulus, backend="packed")
        for k in range(0, batch, max(1, batch // 7)):
            single = simulate(
                netlist, per_trace_stimulus(stimulus, k), backend="unpacked"
            )
            assert batched.trace(k).toggles == single.toggles

    def test_word_step_fallback_matches(self):
        import dataclasses

        netlist = _feedback_counter_netlist()
        stripped = _feedback_counter_netlist()
        for inst in stripped.instances:
            if inst.cell.sequential:
                inst.cell = dataclasses.replace(inst.cell, word_step=None)
        stimulus = batched_stimulus(netlist, 3, 100, seed=9)
        fast = simulate_batch(netlist, stimulus, backend="packed")
        slow = simulate_batch(stripped, stimulus, backend="packed")
        assert set(fast.toggles) == set(slow.toggles)
        for net in fast.toggles:
            np.testing.assert_array_equal(fast.toggles[net], slow.toggles[net])
        for net in fast.waveforms:
            np.testing.assert_array_equal(fast.waveforms[net], slow.waveforms[net])

    def test_shared_stimulus_core_still_resolved_once(self):
        # All-shared stimulus: the core is identical for every trace, which
        # must keep taking the broadcast path (and stay exact).
        netlist = _feedback_counter_netlist()
        rng = np.random.default_rng(4)
        stimulus = {
            "enable": rng.integers(0, 2, 100).astype(np.uint8),
            "x": rng.integers(0, 2, 100).astype(np.uint8),
        }
        batched = simulate_batch(netlist, stimulus, backend="packed", batch=3)
        single = simulate(netlist, stimulus, backend="unpacked")
        for k in range(3):
            assert batched.trace(k).toggles == single.toggles
