"""Unit and property tests for the Bitstream container."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bitstream import BIPOLAR, Bitstream


bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64)


class TestConstruction:
    def test_from_paper_string(self):
        # The example stream from Section II-A: X = 001011... has value 0.5.
        x = Bitstream("001011")
        assert x.value == pytest.approx(0.5)

    def test_string_with_spaces(self):
        x = Bitstream("0110 0011 0101 0111 1000")
        assert x.length == 20
        assert x.value == pytest.approx(0.5)

    def test_rejects_bad_string(self):
        with pytest.raises(ValueError):
            Bitstream("0102")

    def test_rejects_bad_integers(self):
        with pytest.raises(ValueError):
            Bitstream([0, 1, 2])

    def test_rejects_2d_array(self):
        with pytest.raises(ValueError):
            Bitstream(np.zeros((2, 2), dtype=np.uint8))

    def test_rejects_unknown_encoding(self):
        with pytest.raises(ValueError):
            Bitstream("01", encoding="trinary")

    def test_from_bool_array(self):
        x = Bitstream(np.array([True, False, True]))
        assert x.ones == 2

    def test_zeros_and_ones(self):
        assert Bitstream.all_zeros(8).value == 0.0
        assert Bitstream.all_ones(8).value == 1.0
        assert Bitstream.all_zeros(8, encoding=BIPOLAR).value == -1.0
        assert Bitstream.all_ones(8, encoding=BIPOLAR).value == 1.0

    def test_from_exact_counts(self):
        x = Bitstream.from_exact(0.375, 16)
        assert x.ones == 6
        assert x.value == pytest.approx(0.375)

    def test_from_random_seeded_reproducible(self):
        a = Bitstream.from_random(0.5, 64, rng=42)
        b = Bitstream.from_random(0.5, 64, rng=42)
        assert a == b

    def test_from_bitstream_copy(self):
        a = Bitstream("0101")
        b = Bitstream(a)
        assert a == b and a is not b


class TestInterpretation:
    def test_bipolar_value(self):
        x = Bitstream("1111", encoding=BIPOLAR)
        assert x.value == pytest.approx(1.0)
        y = Bitstream("1100", encoding=BIPOLAR)
        assert y.value == pytest.approx(0.0)

    def test_exact_value_is_fraction(self):
        x = Bitstream("10100000")
        assert x.exact_value == Fraction(1, 4)
        y = Bitstream("1010", encoding=BIPOLAR)
        assert y.exact_value == Fraction(0, 1)

    def test_empty_probability_raises(self):
        with pytest.raises(ValueError):
            Bitstream(np.zeros(0, dtype=np.uint8)).probability

    def test_as_encoding_keeps_bits(self):
        x = Bitstream("1010")
        y = x.as_encoding(BIPOLAR)
        assert np.array_equal(x.bits, y.bits)
        assert y.encoding == BIPOLAR

    @given(bit_lists)
    def test_value_in_unipolar_range(self, bits):
        x = Bitstream(bits)
        assert 0.0 <= x.value <= 1.0

    @given(bit_lists)
    def test_value_in_bipolar_range(self, bits):
        x = Bitstream(bits, encoding=BIPOLAR)
        assert -1.0 <= x.value <= 1.0


class TestLogicOps:
    def test_and_is_multiplication_density(self):
        x = Bitstream("1100")
        y = Bitstream("1010")
        z = x & y
        assert z.value == pytest.approx(0.25)

    def test_or_xor_invert(self):
        x = Bitstream("1100")
        y = Bitstream("1010")
        assert (x | y).value == pytest.approx(0.75)
        assert (x ^ y).value == pytest.approx(0.5)
        assert (~x).value == pytest.approx(0.5)
        assert (~Bitstream.all_ones(4)).value == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Bitstream("01") & Bitstream("011")

    def test_type_error(self):
        with pytest.raises(TypeError):
            Bitstream("01") & np.array([0, 1])

    @given(bit_lists)
    def test_invert_complements_value(self, bits):
        x = Bitstream(bits)
        assert (~x).value == pytest.approx(1.0 - x.value)

    @given(bit_lists)
    def test_demorgan(self, bits):
        x = Bitstream(bits)
        y = Bitstream(list(reversed(bits)))
        assert (~(x & y)) == ((~x) | (~y))


class TestManipulation:
    def test_repeat_preserves_value(self):
        x = Bitstream("0110")
        assert x.repeat(3).value == pytest.approx(x.value)
        assert x.repeat(3).length == 12

    def test_repeat_rejects_zero(self):
        with pytest.raises(ValueError):
            Bitstream("01").repeat(0)

    def test_rotate_preserves_value(self):
        x = Bitstream("0011")
        assert x.rotate(1).value == pytest.approx(x.value)
        assert x.rotate(1) == Bitstream("1001")

    def test_permute_preserves_value(self):
        x = Bitstream("00001111")
        assert x.permute(rng=0).value == pytest.approx(x.value)

    def test_to_string_grouping(self):
        x = Bitstream("01100011")
        assert x.to_string() == "0110 0011"
        assert x.to_string(group=0) == "01100011"

    def test_repr_contains_value(self):
        assert "value=" in repr(Bitstream("0101"))

    def test_equality_and_hash(self):
        a = Bitstream("0101")
        b = Bitstream([0, 1, 0, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Bitstream("0101", encoding=BIPOLAR)
        assert (a == "0101") is False or True  # NotImplemented path exercised

    def test_iteration(self):
        assert list(Bitstream("0101")) == [0, 1, 0, 1]
