"""Tests for optimizers, the Sequential container, training, and retraining."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FrozenConv2D,
    MaxPool2D,
    Sequential,
    Sign,
    build_lenet5,
    build_lenet5_small,
    freeze_first_layer,
    prepare_first_layer_weights,
    quantize_and_freeze,
    quantize_weights,
    retrain,
    scale_kernels,
    soft_threshold,
)


def make_blobs(n_per_class=100, seed=0):
    """Two well-separated 2-D Gaussian blobs (a trivially learnable problem)."""
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=(-2, -2), scale=0.5, size=(n_per_class, 2))
    b = rng.normal(loc=(2, 2), scale=0.5, size=(n_per_class, 2))
    x = np.concatenate([a, b])
    y = np.concatenate([np.zeros(n_per_class), np.ones(n_per_class)]).astype(np.int64)
    return x, y


class TestOptimizers:
    def test_sgd_plain_step(self):
        opt = SGD(learning_rate=0.1)
        param = np.array([1.0, 2.0])
        opt.step([param], [np.array([1.0, -1.0])])
        np.testing.assert_allclose(param, [0.9, 2.1])

    def test_sgd_momentum_accumulates(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        param = np.zeros(1)
        grad = np.ones(1)
        opt.step([param], [grad])
        first = param.copy()
        opt.step([param], [grad])
        assert abs(param[0] - first[0]) > abs(first[0])  # second step is larger
        opt.reset()
        assert opt._velocity == {}

    def test_sgd_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)

    def test_adam_converges_on_quadratic(self):
        opt = Adam(learning_rate=0.1)
        param = np.array([5.0])
        for _ in range(200):
            opt.step([param], [2.0 * param])
        assert abs(param[0]) < 0.1

    def test_adam_validation_and_reset(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=-1)
        with pytest.raises(ValueError):
            Adam(beta1=1.5)
        opt = Adam()
        p = np.ones(1)
        opt.step([p], [np.ones(1)])
        opt.reset()
        assert opt._t == 0


class TestSequential:
    def test_add_and_summary(self):
        model = Sequential(name="toy")
        model.add(Dense(2, 4, activation="relu")).add(Dense(4, 2))
        assert len(model.layers) == 2
        assert "toy" in model.summary()
        assert model.parameter_count == (2 * 4 + 4) + (4 * 2 + 2)

    def test_get_set_weights_roundtrip(self):
        model = Sequential([Dense(3, 2), Dense(2, 1)])
        weights = model.get_weights()
        new = [w + 1.0 for w in weights]
        model.set_weights(new)
        np.testing.assert_allclose(model.get_weights()[0], weights[0] + 1.0)
        with pytest.raises(ValueError):
            model.set_weights(weights[:-1])
        with pytest.raises(ValueError):
            model.set_weights([w.T for w in weights])

    def test_fit_learns_blobs(self):
        x, y = make_blobs()
        model = Sequential([Dense(2, 8, activation="relu", rng=np.random.default_rng(1)),
                            Dense(8, 2, rng=np.random.default_rng(2))])
        history = model.fit(x, y, epochs=20, batch_size=32, optimizer=Adam(0.01))
        assert history.accuracy[-1] > 0.95
        loss, accuracy = model.evaluate(x, y)
        assert accuracy > 0.95
        assert model.misclassification_rate(x, y) < 0.05
        assert model.predict_classes(x).shape == (x.shape[0],)

    def test_fit_with_validation_history(self):
        x, y = make_blobs(50)
        model = Sequential([Dense(2, 4, activation="relu"), Dense(4, 2)])
        history = model.fit(
            x, y, epochs=3, validation_data=(x, y), optimizer=Adam(0.01)
        )
        assert len(history.val_loss) == 3
        assert len(history.as_dict()["val_accuracy"]) == 3

    def test_fit_rejects_mismatched_samples(self):
        model = Sequential([Dense(2, 2)])
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 2)), np.zeros(3, dtype=np.int64))

    def test_dropout_only_active_in_training(self):
        model = Sequential([Dense(2, 8), Dropout(0.9, rng=np.random.default_rng(0)), Dense(8, 2)])
        x = np.ones((4, 2))
        out1 = model.forward(x, training=False)
        out2 = model.forward(x, training=False)
        np.testing.assert_allclose(out1, out2)

    def test_frozen_layers_not_updated(self):
        frozen = FrozenConv2D(1, 2, 3, padding=1, activation="sign")
        frozen_weights_before = frozen.weights.copy()
        model = Sequential([frozen, Flatten(), Dense(2 * 8 * 8, 2)])
        x = np.random.default_rng(0).random((16, 1, 8, 8))
        y = np.random.default_rng(1).integers(0, 2, 16)
        model.fit(x, y, epochs=2, optimizer=Adam(0.01))
        np.testing.assert_allclose(frozen.weights, frozen_weights_before)


class TestLeNetBuilders:
    def test_small_variant_shapes(self):
        model = build_lenet5_small(seed=1)
        out = model.forward(np.zeros((2, 1, 28, 28)))
        assert out.shape == (2, 10)
        assert isinstance(model.layers[0], Conv2D)
        assert model.layers[0].filters == 32

    def test_full_variant_shapes(self):
        model = build_lenet5(hidden_units=32, filters2=8, seed=1)
        out = model.forward(np.zeros((1, 1, 28, 28)))
        assert out.shape == (1, 10)

    def test_sign_first_activation(self):
        model = build_lenet5_small(first_activation="sign")
        first_out = model.layers[0].forward(np.random.default_rng(0).random((1, 1, 28, 28)))
        assert set(np.unique(first_out)).issubset({-1.0, 0.0, 1.0})

    def test_rejects_odd_image_size(self):
        with pytest.raises(ValueError):
            build_lenet5_small(image_size=27)


class TestQuantizationHelpers:
    def test_scale_kernels(self):
        kernels = np.array([[[2.0, -1.0]], [[0.5, 0.25]], [[0.0, 0.0]]])
        scaled, scales = scale_kernels(kernels)
        np.testing.assert_allclose(np.abs(scaled).max(axis=(1, 2)), [1.0, 1.0, 0.0])
        np.testing.assert_allclose(scales, [2.0, 0.5, 1.0])
        with pytest.raises(ValueError):
            scale_kernels(np.zeros(3))

    def test_quantize_weights(self):
        w = np.array([0.3, -0.3])
        q = quantize_weights(w, 3)
        np.testing.assert_allclose(q, [0.25, -0.25])
        with pytest.raises(ValueError):
            quantize_weights(np.array([1.5]), 3)

    def test_prepare_first_layer_weights(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(4, 1, 3, 3)) * 3.0
        prepared = prepare_first_layer_weights(w, precision=4)
        assert np.abs(prepared).max() <= 1.0
        grid_step = 2 / 16
        np.testing.assert_allclose(
            prepared / grid_step, np.round(prepared / grid_step), atol=1e-9
        )
        unscaled = prepare_first_layer_weights(w, precision=4, scale=False)
        assert np.abs(unscaled).max() <= 1.0

    def test_soft_threshold(self):
        values = np.array([-0.05, 0.2, 0.01])
        np.testing.assert_allclose(soft_threshold(values, 0.1), [0.0, 0.2, 0.0])
        np.testing.assert_allclose(soft_threshold(values, 0.0), values)
        with pytest.raises(ValueError):
            soft_threshold(values, -0.1)


class TestRetrainingWorkflow:
    def _toy_conv_model(self, seed=0):
        rng = np.random.default_rng(seed)
        return Sequential(
            [
                Conv2D(1, 4, 3, padding=1, activation="relu", rng=rng),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 7 * 7, 10, rng=rng),
            ],
            name="toy-conv",
        )

    def _toy_data(self, n=64, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.random((n, 1, 14, 14))
        y = rng.integers(0, 10, n)
        return x, y

    def test_freeze_first_layer_replaces_and_freezes(self):
        model = self._toy_conv_model()
        weights = np.sign(model.layers[0].weights)
        frozen_model = freeze_first_layer(model, weights, activation=Sign())
        assert isinstance(frozen_model.layers[0], FrozenConv2D)
        assert frozen_model.layers[0].trainable is False
        np.testing.assert_allclose(frozen_model.layers[0].weights, weights)
        # Original model untouched.
        assert not isinstance(model.layers[0], FrozenConv2D)

    def test_freeze_requires_conv_layer(self):
        dense_only = Sequential([Dense(4, 2)])
        with pytest.raises(ValueError):
            freeze_first_layer(dense_only, np.zeros((1, 1, 3, 3)))

    def test_quantize_and_freeze_properties(self):
        model = self._toy_conv_model()
        frozen_model = quantize_and_freeze(model, precision=4)
        frozen = frozen_model.layers[0]
        assert isinstance(frozen, FrozenConv2D)
        assert np.abs(frozen.weights).max() <= 1.0
        assert isinstance(frozen.activation, Sign)
        np.testing.assert_allclose(frozen.bias, 0.0)

    def test_retrain_improves_frozen_model(self):
        # After swapping in a sign/quantized first layer, retraining the rest
        # of the network must not degrade accuracy (it should recover it).
        rng = np.random.default_rng(5)
        x = rng.random((120, 1, 14, 14))
        y = (x.mean(axis=(1, 2, 3)) > 0.5).astype(np.int64)
        model = Sequential(
            [
                Conv2D(1, 4, 3, padding=1, activation="relu", rng=rng),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 7 * 7, 2, rng=rng),
            ]
        )
        model.fit(x, y, epochs=5, optimizer=Adam(0.01))
        frozen_model = quantize_and_freeze(model, precision=3)
        before = frozen_model.misclassification_rate(x, y)
        history = retrain(frozen_model, x, y, epochs=5, optimizer=Adam(0.01))
        after = frozen_model.misclassification_rate(x, y)
        assert after <= before + 1e-9
        assert len(history.loss) == 5
