"""Tests for the deterministic fault-injection subsystem (:mod:`repro.faults`).

Covers the mask generator's statistics and coordinate determinism, the
``((w | stuck1) & ~stuck0) ^ flips`` composition contract, backend/tiling
bit-identity of faulted engines and convolutions, the mode interaction
(stream faults force stream-domain evaluation), stream injection helpers,
netlist stuck-at faults on both simulation backends, stuck SNG register
cells, the matched binary-word flip baseline, and the degradation sweep.
"""

import dataclasses

import numpy as np
import pytest

from repro.bitstream import Bitstream, PackedBitstream
from repro.bitstream.packed import pack_bits, unpack_bits
from repro.faults import (
    FaultPlan,
    FaultSpec,
    NetlistFaults,
    bernoulli_words,
    burst_words,
    coordinate_words,
    flip_binary_words,
    inject_stream,
)
from repro.faults.sweep import (
    FaultSweepConfig,
    parse_rates,
    run_fault_sweep,
    write_artifact,
)
from repro.netlist import Netlist, build_sc_dot_product, simulate, simulate_batch
from repro.rng.lfsr import LFSR
from repro.sc.bipolar import BipolarDotProductEngine
from repro.sc.convolution import StochasticConv2D
from repro.sc.dotproduct import new_sc_engine, old_sc_engine


def _unpack(words, n_bits):
    return unpack_bits(np.asarray(words, dtype=np.uint64), n_bits)


# --------------------------------------------------------------------------- #
# mask generator
# --------------------------------------------------------------------------- #
class TestMasks:
    def test_bernoulli_rate_statistics(self):
        for rate in (0.03, 0.125, 0.5, 0.9):
            words = bernoulli_words(rate, seed=1, salt=7, n_streams=40,
                                    taps=5, n_bits=512)
            bits = _unpack(words, 512)
            assert bits.mean() == pytest.approx(rate, abs=0.01)

    def test_bernoulli_extremes(self):
        zeros = bernoulli_words(0.0, 0, 1, 3, 2, 100)
        ones = bernoulli_words(1.0, 0, 1, 3, 2, 100)
        assert not _unpack(zeros, 100).any()
        assert _unpack(ones, 100).all()

    def test_coordinate_determinism_and_offset(self):
        # Generating streams [0, 8) in one call must equal two offset calls.
        whole = bernoulli_words(0.2, seed=3, salt=1, n_streams=8, taps=3,
                                n_bits=192)
        head = bernoulli_words(0.2, seed=3, salt=1, n_streams=5, taps=3,
                               n_bits=192)
        tail = bernoulli_words(0.2, seed=3, salt=1, n_streams=3, taps=3,
                               n_bits=192, offset=5)
        assert np.array_equal(whole, np.concatenate([head, tail], axis=0))

    def test_distinct_channels_decorrelated(self):
        a = bernoulli_words(0.5, seed=9, salt=1, n_streams=4, taps=2, n_bits=256)
        b = bernoulli_words(0.5, seed=9, salt=2, n_streams=4, taps=2, n_bits=256)
        assert not np.array_equal(a, b)
        assert np.array_equal(a, bernoulli_words(0.5, 9, 1, 4, 2, 256))

    def test_coordinate_words_shape(self):
        grid = coordinate_words(seed=0, salt=5, n_streams=3, taps=4, n_bits=130)
        assert grid.shape == (3, 4, 3)  # ceil(130 / 64) == 3 words

    def test_burst_run_lengths(self):
        words = burst_words(0.01, length=6, seed=2, salt=4, n_streams=30,
                            taps=1, n_bits=1024)
        bits = _unpack(words, 1024)
        # Bursts smear each seed bit across up to ``length`` positions, so
        # the hit rate must land well above the per-bit seed rate.
        assert bits.mean() > 0.02
        assert bits.mean() < 0.12

    def test_tail_bits_always_clear(self):
        for n_bits in (1, 63, 64, 65, 127, 200):
            words = bernoulli_words(1.0, 0, 1, 2, 2, n_bits)
            rem = n_bits % 64
            if rem:
                assert int(words[..., -1].max()) < (1 << rem)


# --------------------------------------------------------------------------- #
# FaultSpec / FaultPlan
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(flip_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(stuck_zero_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(burst_rate=0.1, burst_length=0)
        with pytest.raises(ValueError):
            FaultSpec(sensor_noise_sigma=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(sng_stuck_cells=((0, 2),))

    def test_activity_flags(self):
        assert not FaultSpec().active
        assert FaultSpec(flip_rate=0.1).corrupts_streams
        noise_only = FaultSpec(sensor_noise_sigma=0.05)
        assert noise_only.active and not noise_only.corrupts_streams
        cells_only = FaultSpec(sng_stuck_cells=((1, 0),))
        assert cells_only.active and not cells_only.corrupts_streams

    def test_composition_order(self):
        # Contract: ((w | stuck1) & ~stuck0) ^ flips -- stuck-at-0 dominates
        # stuck-at-1, and flips act on the stuck value.
        base = np.random.default_rng(0).integers(0, 2, (2, 3, 128), dtype=np.int64)
        prepared = pack_bits(base.astype(np.uint8))

        all_one = FaultSpec(stuck_one_rate=1.0).plan().apply(prepared, 128)
        assert _unpack(all_one, 128).all()

        dominated = (
            FaultSpec(stuck_one_rate=1.0, stuck_zero_rate=1.0)
            .plan().apply(prepared, 128)
        )
        assert not _unpack(dominated, 128).any()

        inverted = (
            FaultSpec(stuck_one_rate=1.0, stuck_zero_rate=1.0, flip_rate=1.0)
            .plan().apply(prepared, 128)
        )
        assert _unpack(inverted, 128).all()

    def test_packed_and_unpacked_apply_identical(self):
        spec = FaultSpec(flip_rate=0.05, stuck_zero_rate=0.02,
                         stuck_one_rate=0.02, burst_rate=0.01, seed=11)
        bits = np.random.default_rng(1).integers(0, 2, (4, 5, 200),
                                                 dtype=np.int64).astype(np.uint8)
        packed = spec.plan().apply(pack_bits(bits), 200, packed=True)
        unpacked = spec.plan().apply(bits, 200, packed=False)
        assert np.array_equal(unpack_bits(packed, 200), unpacked)

    def test_apply_is_offset_composable(self):
        spec = FaultSpec(flip_rate=0.1, seed=3)
        bits = np.random.default_rng(2).integers(0, 2, (6, 2, 100),
                                                 dtype=np.int64).astype(np.uint8)
        whole = spec.plan().apply(bits, 100, packed=False)
        head = spec.plan().apply(bits[:4], 100, packed=False)
        tail = spec.plan().apply(bits[4:], 100, offset=4, packed=False)
        assert np.array_equal(whole, np.concatenate([head, tail], axis=0))

    def test_empty_apply_is_noop(self):
        plan = FaultSpec(flip_rate=0.5).plan()
        empty = np.zeros((0, 3, 2), dtype=np.uint64)
        assert plan.apply(empty, 100).shape == empty.shape
        zero_bits = np.zeros((2, 3, 0), dtype=np.uint8)
        assert plan.apply(zero_bits, 0, packed=False).shape == zero_bits.shape

    def test_plan_is_frozen_dataclass(self):
        plan = FaultSpec(flip_rate=0.5).plan()
        assert isinstance(plan, FaultPlan)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.spec = None


class TestInjectStream:
    def test_packed_unpacked_equivalent(self):
        spec = FaultSpec(flip_rate=0.2, seed=5)
        packed = PackedBitstream.from_random(0.5, 300, rng=7)
        unpacked = packed.unpack()
        faulted_p = inject_stream(packed, spec)
        faulted_u = inject_stream(unpacked, spec)
        assert faulted_p.unpack() == faulted_u
        assert faulted_p.encoding == packed.encoding

    def test_index_selects_the_stream_coordinate(self):
        spec = FaultSpec(flip_rate=0.3, seed=1)
        stream = PackedBitstream.from_random(0.5, 256, rng=3)
        assert inject_stream(stream, spec, index=0) != inject_stream(
            stream, spec, index=1
        )

    def test_empty_stream_is_noop(self):
        spec = FaultSpec(flip_rate=1.0)
        empty_p = PackedBitstream.all_zeros(0)
        empty_u = Bitstream.all_zeros(0)
        assert inject_stream(empty_p, spec) is empty_p
        assert inject_stream(empty_u, spec) is empty_u

    def test_inactive_spec_is_noop(self):
        stream = PackedBitstream.from_random(0.5, 128, rng=0)
        assert inject_stream(stream, FaultSpec()) is stream

    def test_type_error(self):
        with pytest.raises(TypeError):
            inject_stream([0, 1, 0], FaultSpec(flip_rate=0.5))


# --------------------------------------------------------------------------- #
# engines and convolution
# --------------------------------------------------------------------------- #
class TestEngineFaults:
    def setup_method(self):
        self.rng = np.random.default_rng(42)
        self.x = self.rng.random((12, 9))
        self.w = self.rng.uniform(-1, 1, 9)

    def test_backends_bit_identical_under_faults(self):
        spec = FaultSpec(flip_rate=0.02, stuck_one_rate=0.01, seed=9)
        results = {}
        for backend in ("packed", "unpacked"):
            engine = new_sc_engine(precision=6, backend=backend, faults=spec)
            results[backend] = engine.dot(self.x, self.w)
        assert np.array_equal(
            results["packed"].positive_count, results["unpacked"].positive_count
        )
        assert np.array_equal(
            results["packed"].negative_count, results["unpacked"].negative_count
        )

    def test_repeated_dot_is_deterministic(self):
        engine = new_sc_engine(precision=6, faults=FaultSpec(flip_rate=0.05, seed=2))
        a = engine.dot(self.x, self.w)
        b = engine.dot(self.x, self.w)
        assert np.array_equal(a.positive_count, b.positive_count)
        assert np.array_equal(a.negative_count, b.negative_count)

    def test_faults_actually_perturb(self):
        clean = new_sc_engine(precision=6).dot(self.x, self.w)
        faulted = new_sc_engine(
            precision=6, faults=FaultSpec(stuck_one_rate=0.3, seed=1)
        ).dot(self.x, self.w)
        assert not (
            np.array_equal(clean.positive_count, faulted.positive_count)
            and np.array_equal(clean.negative_count, faulted.negative_count)
        )

    def test_counts_mode_with_stream_faults_raises(self):
        with pytest.raises(ValueError, match="count"):
            new_sc_engine(precision=6, mode="counts",
                          faults=FaultSpec(flip_rate=0.01))

    def test_auto_mode_resolves_to_streams(self):
        engine = new_sc_engine(precision=6, faults=FaultSpec(flip_rate=0.01))
        assert engine._stream_faults_active
        plan = engine.prepare_weights(self.w.reshape(1, -1)).plan
        assert not engine._use_count_mode(plan)
        assert new_sc_engine(precision=6)._use_count_mode(plan)
        # Non-stream fault channels keep the count-domain shortcut legal.
        cells_only = new_sc_engine(precision=6,
                                   faults=FaultSpec(sng_stuck_cells=((1, 1),)))
        assert not cells_only._stream_faults_active
        assert cells_only._use_count_mode(plan)

    def test_faults_type_checked(self):
        with pytest.raises(TypeError):
            new_sc_engine(precision=6, faults={"flip_rate": 0.1})

    def test_bipolar_engine_faults(self):
        values = self.rng.uniform(-1, 1, (8, 5))
        weights = self.rng.uniform(-1, 1, 5)
        spec = FaultSpec(flip_rate=0.05, seed=4)
        counts = {}
        for backend in ("packed", "unpacked"):
            engine = BipolarDotProductEngine(precision=6, backend=backend,
                                             faults=spec)
            counts[backend] = engine.dot(values, weights).count
        assert np.array_equal(counts["packed"], counts["unpacked"])
        clean = BipolarDotProductEngine(precision=6).dot(values, weights)
        assert not np.array_equal(clean.count, counts["packed"])
        with pytest.raises(ValueError, match="count"):
            BipolarDotProductEngine(precision=6, mode="counts", faults=spec)

    def test_sng_stuck_cells_thread_into_generator(self):
        values = self.rng.random((6, 9))
        weights = self.rng.uniform(-1, 1, 9)
        spec = FaultSpec(sng_stuck_cells=((0, 1), (3, 0)))
        counts = {}
        for backend in ("packed", "unpacked"):
            engine = old_sc_engine(precision=6, backend=backend, faults=spec)
            counts[backend] = engine.dot(values, weights).positive_count
        assert np.array_equal(counts["packed"], counts["unpacked"])
        clean = old_sc_engine(precision=6).dot(values, weights)
        assert not np.array_equal(clean.positive_count, counts["packed"])


class TestConvolutionFaults:
    def test_tiling_and_backend_invariance(self):
        rng = np.random.default_rng(7)
        images = rng.random((2, 10, 10))
        kernels = rng.uniform(-1, 1, (3, 3, 3))
        spec = FaultSpec(flip_rate=0.02, burst_rate=0.005, seed=13)
        signs = []
        for backend in ("packed", "unpacked"):
            for tile in (None, 7, 13):
                engine = new_sc_engine(precision=6, backend=backend, faults=spec)
                layer = StochasticConv2D(kernels, engine=engine, padding=1,
                                         tile_patches=tile)
                result = layer.forward(images)
                signs.append((result.positive_count, result.negative_count))
        first_pos, first_neg = signs[0]
        for pos, neg in signs[1:]:
            assert np.array_equal(first_pos, pos)
            assert np.array_equal(first_neg, neg)


# --------------------------------------------------------------------------- #
# netlist stuck-at faults
# --------------------------------------------------------------------------- #
def _toy_netlist():
    net = Netlist("toy_faults")
    a = net.add_input("a")
    b = net.add_input("b")
    (c,) = net.add_cell("AND2", [a, b], outputs=["c"])
    net.add_output(c)
    return net


class TestNetlistFaults:
    def test_stuck_at_forces_constant_output(self):
        net = _toy_netlist()
        stim = {
            "a": np.ones(32, dtype=np.uint8),
            "b": np.zeros(32, dtype=np.uint8),
        }
        for backend in ("packed", "unpacked"):
            result = simulate(net, stim, backend=backend, faults={"c": 1})
            assert result.waveforms["c"].all()
        clean = simulate(net, stim, backend="packed")
        assert not clean.waveforms["c"].any()

    def test_unknown_net_rejected(self):
        net = _toy_netlist()
        stim = {"a": np.zeros(8, dtype=np.uint8), "b": np.zeros(8, dtype=np.uint8)}
        with pytest.raises(ValueError, match="do not exist"):
            simulate(net, stim, faults={"nonexistent": 1})

    def test_backends_identical_on_real_circuit(self):
        net = build_sc_dot_product(9, 5)
        rng = np.random.default_rng(3)
        stim = {
            name: rng.integers(0, 2, 64, dtype=np.int64).astype(np.uint8)
            for name in net.primary_inputs
        }
        victim = net.instances[len(net.instances) // 3].outputs[0]
        faults = NetlistFaults({victim: 0})
        packed = simulate(net, stim, backend="packed", faults=faults)
        unpacked = simulate(net, stim, backend="unpacked", faults=faults)
        for out in net.primary_outputs:
            assert np.array_equal(packed.waveforms[out], unpacked.waveforms[out])
        assert packed.total_toggles() == unpacked.total_toggles()
        clean = simulate(net, stim, backend="packed")
        assert any(
            not np.array_equal(packed.waveforms[out], clean.waveforms[out])
            for out in net.primary_outputs
        )

    def test_batched_faults_and_zero_traces(self):
        net = _toy_netlist()
        rng = np.random.default_rng(5)
        stim = {
            name: rng.integers(0, 2, (3, 40), dtype=np.int64).astype(np.uint8)
            for name in net.primary_inputs
        }
        for backend in ("packed", "unpacked"):
            result = simulate_batch(net, stim, backend=backend, faults={"c": 1})
            assert result.waveforms["c"].all()
        empty = {name: np.zeros((0, 16), dtype=np.uint8)
                 for name in net.primary_inputs}
        with pytest.raises(ValueError, match="at least one trace"):
            simulate_batch(net, empty)

    def test_coerce_and_normalization(self):
        faults = NetlistFaults.coerce({"n1": 1, "n2": 0})
        assert faults.stuck_at == {"n1": 1, "n2": 0}
        assert NetlistFaults.coerce(None) is None
        assert not NetlistFaults({})
        with pytest.raises(ValueError):
            NetlistFaults({"n": 2})


class TestLFSRStuckCells:
    def test_cell_forced(self):
        clean = LFSR(bits=8, seed=1)
        stuck = LFSR(bits=8, seed=1, stuck_cells=((2, 1),))
        for _ in range(20):
            assert (stuck.step() >> 2) & 1 == 1
        # The clean register visits states with bit 2 low.
        assert any((clean.step() >> 2) & 1 == 0 for _ in range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            LFSR(bits=8, seed=1, stuck_cells=((8, 1),))
        with pytest.raises(ValueError):
            LFSR(bits=8, seed=1, stuck_cells=((0, 5),))


# --------------------------------------------------------------------------- #
# binary baseline
# --------------------------------------------------------------------------- #
class TestBinaryFlips:
    def test_rate_zero_identity_and_determinism(self):
        values = np.array([[-100, 0, 77], [5, -1, 1023]], dtype=np.int64)
        assert np.array_equal(flip_binary_words(values, 12, 0.0, 0), values)
        a = flip_binary_words(values, 12, 0.3, seed=6)
        b = flip_binary_words(values, 12, 0.3, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, flip_binary_words(values, 12, 0.3, seed=7))

    def test_round_trip_via_double_flip(self):
        # XOR-ing the same mask twice restores the original words.
        values = np.arange(-32, 32, dtype=np.int64)
        once = flip_binary_words(values, 8, 0.5, seed=3)
        masks = (values.view(np.uint64) ^ once.view(np.uint64))
        twice = once.view(np.uint64) ^ masks
        assert np.array_equal(twice.view(np.int64), values)

    def test_results_stay_in_range(self):
        values = np.array([-64, 63], dtype=np.int64)
        flipped = flip_binary_words(values, 7, 1.0, seed=0)
        assert flipped.min() >= -64 and flipped.max() <= 63

    def test_validation(self):
        with pytest.raises(ValueError):
            flip_binary_words(np.array([1000], dtype=np.int64), 8, 0.1, 0)
        with pytest.raises(ValueError):
            flip_binary_words(np.array([0]), 64, 0.1, 0)
        with pytest.raises(TypeError):
            flip_binary_words(np.array([0.5]), 8, 0.1, 0)


# --------------------------------------------------------------------------- #
# degradation sweep
# --------------------------------------------------------------------------- #
class TestSweep:
    def test_quick_sweep_structure(self, tmp_path):
        config = FaultSweepConfig(
            rates=(0.0, 1e-2), precision=5, images=1, filters=2, kernel=3,
            trials=1,
        )
        result = run_fault_sweep(config)
        assert len(result.rows) == 2
        clean_row = result.rows[0]
        assert clean_row["sc_sign_agreement"] == 1.0
        assert clean_row["binary_sign_agreement"] == 1.0
        assert clean_row["sc_value_rmse"] == 0.0
        for row in result.rows:
            assert set(row) == {
                "rate", "binary_word_rate", "sc_sign_agreement",
                "binary_sign_agreement", "sc_value_rmse", "binary_value_rmse",
            }
        artifact = tmp_path / "BENCH_faults.json"
        write_artifact(result, artifact)
        import json

        data = json.loads(artifact.read_text())
        assert data["fault_sweep"]["rows"] == result.rows
        assert data["fault_sweep"]["accumulator_bits"] == 2 * 5 + 5

    def test_parse_rates(self):
        assert parse_rates("0,1e-3, 0.5") == (0.0, 1e-3, 0.5)
        with pytest.raises(ValueError):
            parse_rates("abc")
        with pytest.raises(ValueError):
            parse_rates("")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultSweepConfig(rates=())
        with pytest.raises(ValueError):
            FaultSweepConfig(rates=(2.0,))
        with pytest.raises(ValueError):
            FaultSweepConfig(images=0)
        with pytest.raises(ValueError):
            FaultSweepConfig(trials=0)
