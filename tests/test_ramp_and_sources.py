"""Tests for ramp sources, the ramp-compare converter and the basic sources."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rng import (
    ConstantSource,
    CounterSource,
    PseudoRandomSource,
    RampSource,
    ramp_compare_batch,
    ramp_compare_stream,
)


class TestBasicSources:
    def test_pseudo_random_reproducible(self):
        np.testing.assert_array_equal(
            PseudoRandomSource(seed=5).sequence(100),
            PseudoRandomSource(seed=5).sequence(100),
        )

    def test_pseudo_random_reset_noop(self):
        src = PseudoRandomSource(seed=5)
        a = src.sequence(10)
        src.reset()
        np.testing.assert_array_equal(a, src.sequence(10))

    def test_counter_source_wraps(self):
        seq = CounterSource(2).sequence(6)
        np.testing.assert_allclose(seq, [0, 0.25, 0.5, 0.75, 0, 0.25])

    def test_counter_source_phase(self):
        seq = CounterSource(2, phase=2).sequence(2)
        np.testing.assert_allclose(seq, [0.5, 0.75])

    def test_counter_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            CounterSource(0)

    def test_constant_source(self):
        np.testing.assert_allclose(ConstantSource(0.3).sequence(5), [0.3] * 5)
        with pytest.raises(ValueError):
            ConstantSource(1.0)

    def test_reprs(self):
        for src in (PseudoRandomSource(), CounterSource(4), ConstantSource(0.1)):
            assert type(src).__name__ in repr(src)


class TestRampSource:
    def test_ascending_sequence(self):
        np.testing.assert_allclose(
            RampSource(2).sequence(4), [0.0, 0.25, 0.5, 0.75]
        )

    def test_descending_sequence(self):
        np.testing.assert_allclose(
            RampSource(2, descending=True).sequence(4), [0.75, 0.5, 0.25, 0.0]
        )

    def test_wraps_after_period(self):
        seq = RampSource(2).sequence(8)
        np.testing.assert_allclose(seq[:4], seq[4:])

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            RampSource(0)


class TestRampCompare:
    def test_exact_ones_count(self):
        # Ramp conversion is exact: value k/N yields exactly k ones.
        for k in range(17):
            stream = ramp_compare_stream(k / 16, 16)
            assert stream.sum() == k

    def test_single_run_structure(self):
        stream = ramp_compare_stream(0.5, 16)
        # All ones form one contiguous run (maximal auto-correlation).
        transitions = np.abs(np.diff(stream.astype(int))).sum()
        assert transitions <= 2

    def test_clipping(self):
        assert ramp_compare_stream(1.5, 16).sum() == 16
        assert ramp_compare_stream(-0.5, 16).sum() == 0

    def test_descending_places_run_at_end(self):
        stream = ramp_compare_stream(0.25, 16, descending=True)
        assert stream[:12].sum() == 0
        assert stream[12:].sum() == 4

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            ramp_compare_stream(0.5, 12)

    def test_batch_matches_scalar(self):
        values = np.array([[0.1, 0.5], [0.9, 0.0]])
        batch = ramp_compare_batch(values, 32)
        assert batch.shape == (2, 2, 32)
        for i in range(2):
            for j in range(2):
                np.testing.assert_array_equal(
                    batch[i, j], ramp_compare_stream(values[i, j], 32)
                )

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.sampled_from([8, 16, 64, 256]),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantization_error_bounded(self, value, length):
        stream = ramp_compare_stream(value, length)
        assert abs(stream.sum() / length - value) <= 1.0 / length
