"""Tests for the synthetic digit generator and the MNIST loader plumbing."""

import gzip
import struct

import numpy as np
import pytest

from repro.datasets import (
    SyntheticDigits,
    generate_digits,
    load_dataset,
    load_mnist,
    read_idx,
    render_digit,
)


class TestRenderDigit:
    def test_output_shape_and_range(self):
        rng = np.random.default_rng(0)
        image = render_digit(3, rng)
        assert image.shape == (28, 28)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_all_digits_renderable(self):
        rng = np.random.default_rng(1)
        for digit in range(10):
            image = render_digit(digit, rng)
            assert image.sum() > 5.0  # some ink on the page

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            render_digit(10, np.random.default_rng(0))

    def test_more_segments_more_ink(self):
        # Digit 8 lights all seven segments, digit 1 only two: with noise off,
        # the average 8 must contain clearly more ink than the average 1.
        rng = np.random.default_rng(2)
        ink_8 = np.mean([render_digit(8, rng, noise=0).sum() for _ in range(10)])
        ink_1 = np.mean([render_digit(1, rng, noise=0).sum() for _ in range(10)])
        assert ink_8 > 1.5 * ink_1

    def test_randomization_changes_images(self):
        rng = np.random.default_rng(3)
        a = render_digit(5, rng)
        b = render_digit(5, rng)
        assert not np.allclose(a, b)


class TestGenerateDigits:
    def test_shapes_and_balance(self):
        images, labels = generate_digits(200, rng=0)
        assert images.shape == (200, 28, 28)
        assert labels.shape == (200,)
        counts = np.bincount(labels, minlength=10)
        assert counts.min() >= 15  # balanced round-robin assignment

    def test_reproducible(self):
        a_images, a_labels = generate_digits(20, rng=7)
        b_images, b_labels = generate_digits(20, rng=7)
        np.testing.assert_array_equal(a_labels, b_labels)
        np.testing.assert_allclose(a_images, b_images)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            generate_digits(0)

    def test_classes_are_separable_by_template_matching(self):
        # A nearest-mean classifier on clean class templates should beat
        # chance (10 %) by a wide margin -- the dataset is learnable even by a
        # classifier far weaker than the CNNs used in the experiments.
        rng = np.random.default_rng(0)
        templates = np.stack(
            [np.mean([render_digit(d, rng) for _ in range(20)], axis=0) for d in range(10)]
        )
        images, labels = generate_digits(200, rng=1)
        flat_templates = templates.reshape(10, -1)
        flat_images = images.reshape(200, -1)
        predictions = np.argmin(
            ((flat_images[:, None, :] - flat_templates[None, :, :]) ** 2).sum(-1), axis=1
        )
        assert (predictions == labels).mean() > 0.45


class TestSyntheticDigitsContainer:
    def test_generate_split(self):
        data = SyntheticDigits.generate(train_size=50, test_size=20, seed=0)
        assert data.x_train.shape == (50, 28, 28)
        assert data.x_test.shape == (20, 28, 28)
        assert data.y_train.dtype == np.int64

    def test_quantized_pixels(self):
        data = SyntheticDigits.generate(train_size=10, test_size=5, seed=0)
        quantized = data.as_quantized_pixels(bits=4)
        levels = quantized.x_train * 15
        np.testing.assert_allclose(levels, np.round(levels), atol=1e-9)


class TestIdxLoader:
    def _write_idx_images(self, path, array):
        with open(path, "wb") as handle:
            handle.write(bytes([0, 0, 0x08, array.ndim]))
            handle.write(struct.pack(f">{array.ndim}I", *array.shape))
            handle.write(array.astype(np.uint8).tobytes())

    def test_read_idx_roundtrip(self, tmp_path):
        data = np.arange(2 * 4 * 4, dtype=np.uint8).reshape(2, 4, 4)
        path = tmp_path / "images-idx3-ubyte"
        self._write_idx_images(path, data)
        np.testing.assert_array_equal(read_idx(path), data)

    def test_read_idx_gzip(self, tmp_path):
        data = np.arange(10, dtype=np.uint8)
        path = tmp_path / "labels-idx1-ubyte.gz"
        raw = bytes([0, 0, 0x08, 1]) + struct.pack(">I", 10) + data.tobytes()
        with gzip.open(path, "wb") as handle:
            handle.write(raw)
        np.testing.assert_array_equal(read_idx(path), data)

    def test_read_idx_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(b"\x01\x02\x03\x04")
        with pytest.raises(ValueError):
            read_idx(path)

    def test_load_mnist_missing_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mnist(tmp_path)

    def test_load_mnist_from_directory(self, tmp_path):
        rng = np.random.default_rng(0)
        train_images = rng.integers(0, 256, size=(6, 28, 28)).astype(np.uint8)
        test_images = rng.integers(0, 256, size=(4, 28, 28)).astype(np.uint8)
        train_labels = rng.integers(0, 10, 6).astype(np.uint8)
        test_labels = rng.integers(0, 10, 4).astype(np.uint8)
        self._write_idx_images(tmp_path / "train-images-idx3-ubyte", train_images)
        self._write_idx_images(tmp_path / "t10k-images-idx3-ubyte", test_images)
        self._write_idx_images(tmp_path / "train-labels-idx1-ubyte", train_labels)
        self._write_idx_images(tmp_path / "t10k-labels-idx1-ubyte", test_labels)
        data = load_mnist(tmp_path)
        assert data.x_train.shape == (6, 28, 28)
        assert data.x_train.max() <= 1.0
        np.testing.assert_array_equal(data.y_test, test_labels)


class TestLoadDataset:
    def test_synthetic_fallback_sizes(self):
        data = load_dataset(train_size=30, test_size=12, prefer_mnist=False)
        assert data.x_train.shape[0] == 30
        assert data.x_test.shape[0] == 12

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "25")
        monkeypatch.setenv("REPRO_TEST_SIZE", "10")
        data = load_dataset(prefer_mnist=False)
        assert data.x_train.shape[0] == 25
        assert data.x_test.shape[0] == 10

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            load_dataset(train_size=0, test_size=5, prefer_mnist=False)

    def test_prefers_mnist_when_available(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(0)
        images = rng.integers(0, 256, size=(20, 28, 28)).astype(np.uint8)
        labels = rng.integers(0, 10, 20).astype(np.uint8)

        def write(path, array):
            with open(path, "wb") as handle:
                handle.write(bytes([0, 0, 0x08, array.ndim]))
                handle.write(struct.pack(f">{array.ndim}I", *array.shape))
                handle.write(array.astype(np.uint8).tobytes())

        write(tmp_path / "train-images-idx3-ubyte", images)
        write(tmp_path / "t10k-images-idx3-ubyte", images)
        write(tmp_path / "train-labels-idx1-ubyte", labels)
        write(tmp_path / "t10k-labels-idx1-ubyte", labels)
        data = load_dataset(train_size=5, test_size=5, mnist_dir=tmp_path)
        assert data.x_train.shape == (5, 28, 28)

    def test_all_digits_present(self):
        data = load_dataset(train_size=100, test_size=50, prefer_mnist=False)
        assert set(np.unique(data.y_train)) == set(range(10))
