"""Differential suite for the filter-parallel, tile-streamed convolution path.

The seed semantics are the historical per-filter loop: one
``engine.dot_prepared`` call per kernel over untiled prepared inputs.  Every
test here asserts that the vectorized paths that replaced it -- the
:class:`~repro.sc.dotproduct.PreparedWeights` filter bank, the count-domain
TFF shortcut, and tile-streamed :class:`~repro.sc.convolution.StochasticConv2D`
execution -- are *bit-identical* to that loop on both backends, for every
adder type, including tile sizes that do not divide the patch count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hybrid import CalibratedSCEmulator, HybridStochasticBinaryNetwork
from repro.nn import build_lenet5_small, quantize_and_freeze
from repro.sc import StochasticConv2D, resolve_tile_patches
from repro.sc.dotproduct import PreparedWeights, StochasticDotProductEngine
from repro.sc.elements.adders import AdderTree, MuxAdder, TffAdder, TreePlan


def per_filter_reference(engine, prepared, kernels):
    """The seed path: one dot_prepared call per kernel, counts stacked last."""
    lead = np.asarray(prepared).shape[:-2]
    pos = np.empty(lead + (kernels.shape[0],), dtype=np.int64)
    neg = np.empty_like(pos)
    for f in range(kernels.shape[0]):
        result = engine.dot_prepared(prepared, kernels[f])
        pos[..., f] = result.positive_count
        neg[..., f] = result.negative_count
    return pos, neg


def make_engine(adder, backend, precision=5):
    return StochasticDotProductEngine(
        precision=precision, adder=adder, backend=backend, seed=3
    )


class TestFilterBankEquivalence:
    @pytest.mark.parametrize("adder", ["tff", "mux", "or"])
    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    def test_bank_matches_per_filter_loop(self, adder, backend):
        rng = np.random.default_rng(1)
        x = rng.random((2, 9, 13))
        kernels = rng.uniform(-1, 1, (6, 13))
        reference_engine = make_engine(adder, backend)
        bank_engine = make_engine(adder, backend)
        pos_ref, neg_ref = per_filter_reference(
            reference_engine, reference_engine.prepare_inputs(x), kernels
        )
        result = bank_engine.dot_filters(x, kernels)
        np.testing.assert_array_equal(result.positive_count, pos_ref)
        np.testing.assert_array_equal(result.negative_count, neg_ref)
        # Stateful factories must have advanced identically, so the *next*
        # evaluation on each engine stays in lockstep too (free-running MUX
        # select sources).
        assert bank_engine._mux_seed_counter == reference_engine._mux_seed_counter
        pos2, neg2 = per_filter_reference(
            reference_engine, reference_engine.prepare_inputs(x), kernels
        )
        again = bank_engine.dot_filters(x, kernels)
        np.testing.assert_array_equal(again.positive_count, pos2)
        np.testing.assert_array_equal(again.negative_count, neg2)

    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    def test_bank_reuse_across_tiles_matches_untiled(self, backend):
        rng = np.random.default_rng(2)
        x = rng.random((11, 9))
        kernels = rng.uniform(-1, 1, (4, 9))
        engine = make_engine("mux", backend)
        bank = engine.prepare_weights(kernels)
        whole_pos, whole_neg = bank.counts(engine.prepare_inputs(x))
        tiled_pos = np.empty_like(whole_pos)
        tiled_neg = np.empty_like(whole_neg)
        for start in range(0, x.shape[0], 4):  # 4 does not divide 11
            tile = x[start : start + 4]
            p, n = bank.counts(engine.prepare_inputs(tile))
            tiled_pos[start : start + 4] = p
            tiled_neg[start : start + 4] = n
        np.testing.assert_array_equal(tiled_pos, whole_pos)
        np.testing.assert_array_equal(tiled_neg, whole_neg)

    def test_tree_scale_matches_dot_prepared(self):
        rng = np.random.default_rng(3)
        engine = make_engine("tff", "packed")
        kernels = rng.uniform(-1, 1, (3, 10))
        result = engine.dot_filters(rng.random((4, 10)), kernels)
        single = engine.dot(rng.random((4, 10)), kernels[0])
        assert result.tree_scale == single.tree_scale
        assert result.length == single.length

    def test_bank_validation(self):
        engine = make_engine("tff", "packed")
        with pytest.raises(ValueError):
            engine.prepare_weights(np.zeros(5))  # not 2-D
        with pytest.raises(ValueError):
            engine.prepare_weights(np.zeros((0, 5)))  # zero filters
        bank = engine.prepare_weights(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            bank.counts(engine.prepare_inputs(np.zeros((3, 4))))  # tap mismatch
        other = make_engine("tff", "packed")
        with pytest.raises(ValueError):
            other.dot_filters_prepared(other.prepare_inputs(np.zeros((3, 5))), bank)
        with pytest.raises(ValueError):
            engine.dot_filters(np.zeros((3, 4)), np.zeros((2, 5)))
        assert "PreparedWeights" in repr(bank)
        assert isinstance(bank, PreparedWeights)

    @settings(deadline=None, max_examples=20)
    @given(
        taps=st.integers(min_value=1, max_value=12),
        filters=st.integers(min_value=1, max_value=5),
        adder=st.sampled_from(["tff", "mux", "or"]),
        backend=st.sampled_from(["packed", "unpacked"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_hypothesis_random_kernels(self, taps, filters, adder, backend, seed):
        rng = np.random.default_rng(seed)
        x = rng.random((3, taps))
        kernels = rng.uniform(-1, 1, (filters, taps))
        reference_engine = make_engine(adder, backend, precision=4)
        bank_engine = make_engine(adder, backend, precision=4)
        pos_ref, neg_ref = per_filter_reference(
            reference_engine, reference_engine.prepare_inputs(x), kernels
        )
        result = bank_engine.dot_filters(x, kernels)
        np.testing.assert_array_equal(result.positive_count, pos_ref)
        np.testing.assert_array_equal(result.negative_count, neg_ref)


class TestCountDomainShortcut:
    def test_reduce_counts_matches_stream_reduction(self):
        rng = np.random.default_rng(4)
        n_bits = 96
        for count in (1, 2, 5, 8, 11):
            streams = rng.integers(0, 2, (7, count, n_bits)).astype(np.uint8)
            plan = AdderTree(TffAdder).plan(count)
            summed = plan.reduce_bits(streams)
            from_streams = summed.sum(axis=-1, dtype=np.int64)
            from_counts = plan.reduce_counts(
                streams.sum(axis=-1, dtype=np.int64)
            )
            np.testing.assert_array_equal(from_counts, from_streams)

    def test_reduce_counts_ceil_rounding(self):
        plan = TreePlan(lambda: TffAdder(initial_state=1), 2)
        # ones 3 + 0 -> ceil(3 / 2) = 2 with initial state 1.
        assert plan.reduce_counts(np.array([3, 0])) == 2
        floor_plan = TreePlan(TffAdder, 2)
        assert floor_plan.reduce_counts(np.array([3, 0])) == 1

    def test_reduce_counts_rejects_position_dependent_adders(self):
        plan = TreePlan(lambda: MuxAdder(seed=1), 4)
        assert not plan.supports_count_reduction
        with pytest.raises(ValueError):
            plan.reduce_counts(np.zeros((2, 4), dtype=np.int64))

    def test_reduce_counts_validates_shape(self):
        plan = TreePlan(TffAdder, 4)
        with pytest.raises(ValueError):
            plan.reduce_counts(np.zeros((2, 3), dtype=np.int64))


class TestTiledConvolution:
    @pytest.mark.parametrize("backend", ["packed", "unpacked"])
    @pytest.mark.parametrize("tile", [1, 3, 7, 50, None])
    def test_tiling_is_bit_identical(self, backend, tile):
        rng = np.random.default_rng(5)
        images = rng.random((2, 6, 6))
        kernels = rng.uniform(-1, 1, (3, 3, 3))
        untiled = StochasticConv2D(
            kernels, engine=make_engine("tff", backend), padding=1
        ).forward(images)
        tiled = StochasticConv2D(
            kernels, engine=make_engine("tff", backend), padding=1, tile_patches=tile
        ).forward(images)
        np.testing.assert_array_equal(tiled.positive_count, untiled.positive_count)
        np.testing.assert_array_equal(tiled.negative_count, untiled.negative_count)
        np.testing.assert_array_equal(tiled.sign, untiled.sign)
        np.testing.assert_array_equal(tiled.value, untiled.value)

    @settings(deadline=None, max_examples=15)
    @given(
        tile=st.integers(min_value=1, max_value=40),
        adder=st.sampled_from(["tff", "mux"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_hypothesis_tile_sizes(self, tile, adder, seed):
        rng = np.random.default_rng(seed)
        images = rng.random((1, 5, 5))
        kernels = rng.uniform(-1, 1, (2, 3, 3))
        untiled = StochasticConv2D(
            kernels, engine=make_engine(adder, "packed", precision=4), padding=1
        ).forward(images)
        tiled = StochasticConv2D(
            kernels,
            engine=make_engine(adder, "packed", precision=4),
            padding=1,
            tile_patches=tile,
        ).forward(images)
        np.testing.assert_array_equal(tiled.positive_count, untiled.positive_count)
        np.testing.assert_array_equal(tiled.negative_count, untiled.negative_count)

    def test_zero_filter_kernels_rejected(self):
        with pytest.raises(ValueError, match="at least one filter"):
            StochasticConv2D(np.zeros((0, 3, 3)))

    def test_tile_patches_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_PATCHES", "7")
        assert resolve_tile_patches(None) == 7
        assert resolve_tile_patches(3) == 3  # explicit wins
        layer = StochasticConv2D(np.zeros((1, 3, 3)))
        assert layer.tile_patches == 7
        monkeypatch.setenv("REPRO_TILE_PATCHES", "junk")
        with pytest.raises(ValueError):
            resolve_tile_patches(None)
        monkeypatch.delenv("REPRO_TILE_PATCHES")
        assert resolve_tile_patches(None) is None
        with pytest.raises(ValueError):
            resolve_tile_patches(0)


class TestHybridAndEmulatorTiling:
    def test_calibrate_matches_per_kernel_loop(self):
        rng = np.random.default_rng(6)
        windows = rng.random((12, 9))
        kernels = rng.uniform(-1, 1, (3, 9))
        for adder in ("tff", "mux"):
            reference_engine = make_engine(adder, "packed")
            x_streams = reference_engine.prepare_inputs(windows)
            residuals = []
            from repro.bitstream import quantize_unipolar
            from repro.sc.dotproduct import split_weights

            tree_scale = 1 << AdderTree().depth(9)
            n = reference_engine.length
            quantized = quantize_unipolar(windows, reference_engine.precision)
            for kernel in kernels:
                result = reference_engine.dot_prepared(x_streams, kernel)
                w_pos, w_neg = split_weights(kernel)
                ideal = (quantized @ (w_pos - w_neg)) / tree_scale * n
                residuals.append(
                    result.positive_count - result.negative_count - ideal
                )
            expected = np.concatenate([r.ravel() for r in residuals])

            emulator = CalibratedSCEmulator(make_engine(adder, "packed"))
            model = emulator.calibrate(windows, kernels)
            np.testing.assert_array_equal(model.residuals, expected)

    def test_tiled_calibration_is_bit_identical(self):
        rng = np.random.default_rng(7)
        windows = rng.random((10, 9))
        kernels = rng.uniform(-1, 1, (2, 9))
        untiled = CalibratedSCEmulator(make_engine("tff", "packed")).calibrate(
            windows, kernels
        )
        tiled = CalibratedSCEmulator(
            make_engine("tff", "packed"), tile_patches=3
        ).calibrate(windows, kernels)
        np.testing.assert_array_equal(tiled.residuals, untiled.residuals)
        assert tiled.bias == untiled.bias
        assert tiled.sigma == untiled.sigma

    def test_bitexact_first_layer_tiled_matches_untiled(self):
        rng = np.random.default_rng(8)
        images = rng.random((2, 8, 8))
        model = build_lenet5_small(seed=0, image_size=8, filters1=2)
        frozen = quantize_and_freeze(model, precision=4)
        untiled = HybridStochasticBinaryNetwork(
            frozen, engine=make_engine("tff", "packed", precision=4)
        )
        tiled = HybridStochasticBinaryNetwork(
            frozen,
            engine=make_engine("tff", "packed", precision=4),
            tile_patches=13,
        )
        np.testing.assert_array_equal(
            tiled.first_layer_bitexact(images), untiled.first_layer_bitexact(images)
        )
