"""Tests for NN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    ActivationLayer,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FrozenConv2D,
    MaxPool2D,
    MeanSquaredError,
    col2im,
    conv_output_hw,
    im2col,
)


def numerical_gradient(fn, array, eps=1e-6):
    """Central-difference gradient of a scalar function w.r.t. an array."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn()
        array[idx] = original - eps
        minus = fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestConvOps:
    def test_conv_output_hw(self):
        assert conv_output_hw(28, 28, (5, 5), 1, 2) == (28, 28)
        assert conv_output_hw(28, 28, (5, 5), 1, 0) == (24, 24)
        with pytest.raises(ValueError):
            conv_output_hw(3, 3, (5, 5), 1, 0)

    def test_im2col_shape_and_content(self):
        x = np.arange(2 * 1 * 4 * 4, dtype=float).reshape(2, 1, 4, 4)
        cols = im2col(x, (3, 3), stride=1, padding=0)
        assert cols.shape == (2, 4, 9)
        np.testing.assert_allclose(cols[0, 0], x[0, 0, :3, :3].ravel())

    def test_im2col_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((4, 4)), (2, 2))

    def test_col2im_adjointness(self):
        # <im2col(x), y> == <x, col2im(y)> -- the defining adjoint property
        # that makes the convolution backward pass correct.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        kernel, stride, padding = (3, 3), 1, 1
        cols = im2col(x, kernel, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, kernel, stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_shape_check(self):
        with pytest.raises(ValueError):
            col2im(np.zeros((1, 4, 9)), (1, 1, 4, 4), (3, 3), 1, 1)


class TestDense:
    def test_forward_shape_and_validation(self):
        layer = Dense(4, 3, activation="relu")
        out = layer.forward(np.zeros((2, 4)))
        assert out.shape == (2, 3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))
        assert layer.parameter_count == 4 * 3 + 3

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(1)
        layer = Dense(5, 4, activation="tanh", rng=rng)
        x = rng.normal(size=(3, 5))
        target = rng.normal(size=(3, 4))
        loss = MeanSquaredError()

        def compute_loss():
            return loss.forward(layer.forward(x), target)[0]

        out = layer.forward(x)
        _, grad_out = loss.forward(out, target)
        grad_x = layer.backward(grad_out)

        np.testing.assert_allclose(
            layer.grads[0], numerical_gradient(compute_loss, layer.weights), atol=1e-6
        )
        np.testing.assert_allclose(
            layer.grads[1], numerical_gradient(compute_loss, layer.bias), atol=1e-6
        )
        np.testing.assert_allclose(
            grad_x, numerical_gradient(compute_loss, x), atol=1e-6
        )


class TestConv2D:
    def test_forward_shape(self):
        layer = Conv2D(1, 8, 5, padding=2, activation="relu")
        out = layer.forward(np.zeros((2, 1, 28, 28)))
        assert out.shape == (2, 8, 28, 28)
        assert layer.output_shape(28, 28) == (28, 28)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 3, 28, 28)))

    def test_forward_matches_direct_convolution(self):
        rng = np.random.default_rng(2)
        layer = Conv2D(2, 3, 3, padding=1, activation=None, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        # Direct computation at output position (h=2, w=3): with stride 1 the
        # window starts at the same coordinates in the padded input.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        manual = np.sum(padded[0, :, 2:5, 3:6] * layer.weights[1]) + layer.bias[1]
        assert out[0, 1, 2, 3] == pytest.approx(manual)

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(3)
        layer = Conv2D(2, 3, 3, padding=1, activation="tanh", rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        target = rng.normal(size=(2, 3, 5, 5))
        loss = MeanSquaredError()

        def compute_loss():
            return loss.forward(layer.forward(x), target)[0]

        out = layer.forward(x)
        _, grad_out = loss.forward(out, target)
        grad_x = layer.backward(grad_out)

        np.testing.assert_allclose(
            layer.grads[0], numerical_gradient(compute_loss, layer.weights), atol=1e-5
        )
        np.testing.assert_allclose(
            layer.grads[1], numerical_gradient(compute_loss, layer.bias), atol=1e-5
        )
        np.testing.assert_allclose(
            grad_x, numerical_gradient(compute_loss, x), atol=1e-5
        )

    def test_strided_convolution(self):
        layer = Conv2D(1, 2, 3, stride=2, padding=1)
        out = layer.forward(np.zeros((1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)


class TestFrozenConv2D:
    def test_from_conv_copies_geometry_and_weights(self):
        base = Conv2D(1, 4, 3, padding=1)
        new_weights = np.full_like(base.weights, 0.5)
        frozen = FrozenConv2D.from_conv(base, new_weights, activation="sign")
        assert frozen.trainable is False
        np.testing.assert_allclose(frozen.weights, 0.5)
        np.testing.assert_allclose(frozen.bias, 0.0)
        out = frozen.forward(np.ones((1, 1, 6, 6)))
        assert set(np.unique(out)).issubset({-1.0, 0.0, 1.0})

    def test_rejects_wrong_shape(self):
        base = Conv2D(1, 4, 3)
        with pytest.raises(ValueError):
            FrozenConv2D.from_conv(base, np.zeros((4, 1, 5, 5)))


class TestMaxPool2D:
    def test_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool.forward(x)
        grad = pool.backward(np.array([[[[10.0]]]]))
        np.testing.assert_allclose(grad, [[[[0, 0], [0, 10.0]]]])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 5)))
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 4, 4)))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        pool = MaxPool2D(2)
        x = rng.normal(size=(1, 2, 4, 4))
        target = rng.normal(size=(1, 2, 2, 2))
        loss = MeanSquaredError()

        def compute_loss():
            return loss.forward(pool.forward(x), target)[0]

        out = pool.forward(x)
        _, grad_out = loss.forward(out, target)
        grad_x = pool.backward(grad_out)
        np.testing.assert_allclose(
            grad_x, numerical_gradient(compute_loss, x), atol=1e-6
        )


class TestFlattenDropoutActivation:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)

    def test_dropout_inference_is_identity(self):
        layer = Dropout(0.5)
        x = np.ones((4, 10))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_dropout_training_scales_kept_units(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000, 1))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.3 < (out > 0).mean() < 0.7
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_activation_layer(self):
        layer = ActivationLayer("relu")
        x = np.array([[-1.0, 2.0]])
        np.testing.assert_allclose(layer.forward(x), [[0.0, 2.0]])
        np.testing.assert_allclose(layer.backward(np.ones((1, 2))), [[0.0, 1.0]])
        assert layer.trainable is False
